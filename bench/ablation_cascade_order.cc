// Ablation: the paper's footnote 1 assumes 2-way Cascade evaluates joins
// "in the optimal order". This sweep quantifies how much the order
// matters: a chain query over relations of very different sizes and
// selectivities is evaluated in every valid order, reporting intermediate
// volume and modeled time.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/str_format.h"
#include "core/optimizer.h"
#include "core/runner.h"
#include "query/parser.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

int Main() {
  ThreadPool pool;
  const BenchEnv env = BenchEnv::FromEnvironment(&pool);
  const Query query = ParseQuery("R1 OV R2 AND R2 OV R3").value();
  PrintHeader(
      "Ablation — 2-way Cascade join order (skewed chain: small R1, huge "
      "dense R2/R3)",
      query.ToString(), env);

  const Rect space = ScaledSyntheticSpace(env);
  // R1 is small and sparse; R2 and R3 are large with fat rectangles, so
  // starting with R2xR3 creates a giant intermediate result.
  const std::vector<std::vector<Rect>> data = {
      ScaledSyntheticRelation(env, 200'000, 100, 100, 1),
      ScaledSyntheticRelation(env, 2'000'000, 300, 300, 2),
      ScaledSyntheticRelation(env, 2'000'000, 300, 300, 3),
  };

  const std::vector<std::vector<int>> orders = {
      {0, 1, 2},  // Selective first (the good plan).
      {1, 0, 2}, {1, 2, 0}, {2, 1, 0},  // Start from the dense side.
  };

  std::printf("%-12s %-12s %-16s %-12s\n", "order", "wall s",
              "intermediates(m)", "modeled s");
  for (const auto& order : orders) {
    RunnerOptions options;
    options.algorithm = Algorithm::kTwoWayCascade;
    options.grid_rows = 8;
    options.grid_cols = 8;
    options.space = space;
    options.cascade_order = order;
    options.count_only = true;
    options.context.pool = env.pool;
    Stopwatch watch;
    const auto result = RunSpatialJoin(query, data, options);
    if (!result.ok()) {
      std::printf("order failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    const double wall = watch.ElapsedSeconds();
    const std::string name = StrFormat("R%d,R%d,R%d", order[0] + 1,
                                       order[1] + 1, order[2] + 1);
    std::printf(
        "%-12s %-12.2f %-16s %-12.1f\n", name.c_str(), wall,
        FormatMillions(
            static_cast<double>(
                result.value().stats.TotalIntermediateRecords()) /
            env.scale)
            .c_str(),
        env.model.RunSeconds(result.value().stats));
  }
  const std::vector<int> chosen = OptimizeCascadeOrder(query, data);
  std::printf("sampling optimizer picks: R%d,R%d,R%d\n", chosen[0] + 1,
              chosen[1] + 1, chosen[2] + 1);
  PrintNote(
      "expected: orders that defer the small selective relation shuffle an "
      "order of magnitude more intermediate records — the paper's 'optimal "
      "order' assumption is load-bearing for the Cascade baseline, and the "
      "sampling optimizer recovers a cheap order automatically.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
