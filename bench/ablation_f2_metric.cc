// Ablation: C-Rep-L's f2 cell-distance metric. The paper defines f2 with
// the Euclidean dist(c, u) <= d (§4); the replication bounds of §7.9/§8
// constrain each axis separately, so the provably safe test is Chebyshev
// (per-axis). This sweep measures what the literal Euclidean test saves in
// copies and whether it drops output tuples on range workloads.

#include <cstdio>

#include "common/str_format.h"
#include "core/runner.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

int Main() {
  ThreadPool pool;
  const BenchEnv env = BenchEnv::FromEnvironment(&pool);
  PrintHeader("Ablation — C-Rep-L f2 metric: Chebyshev (safe) vs Euclidean "
              "(paper literal)",
              "R1 Ra(d) R2 AND R2 Ra(d) R3, nI = 1 million", env);

  std::printf("%-6s %-12s %-14s %-14s %-18s\n", "d", "metric", "copies(m)",
              "tuples", "lost vs safe");
  for (double d : {100.0, 300.0, 500.0}) {
    const BenchEnv row_env = env.WithRowScale(d > 100 ? 0.05 : 0.5);
    const Rect space = ScaledSyntheticSpace(row_env);
    QueryBuilder qb;
    const int r1 = qb.AddRelation("R1");
    const int r2 = qb.AddRelation("R2");
    const int r3 = qb.AddRelation("R3");
    qb.AddRange(r1, r2, d).AddRange(r2, r3, d);
    const Query query = qb.Build().value();
    std::vector<std::vector<Rect>> data;
    for (uint64_t r = 0; r < 3; ++r) {
      data.push_back(ScaledSyntheticRelation(row_env, 1'000'000, 100, 100,
                                             static_cast<uint64_t>(d) + r));
    }

    int64_t safe_tuples = 0;
    for (DistanceMetric metric :
         {DistanceMetric::kChebyshev, DistanceMetric::kEuclidean}) {
      RunnerOptions options;
      options.algorithm = Algorithm::kControlledReplicateInLimit;
      options.grid_rows = 8;
      options.grid_cols = 8;
      options.space = space;
      options.limit_metric = metric;
      options.count_only = true;
      options.context.pool = row_env.pool;
      const auto result = RunSpatialJoin(query, data, options);
      if (!result.ok()) continue;
      const bool safe = metric == DistanceMetric::kChebyshev;
      if (safe) safe_tuples = result.value().num_tuples;
      const int64_t lost = safe_tuples - result.value().num_tuples;
      std::printf(
          "%-6.0f %-12s %-14s %-14lld %-18s\n", d,
          safe ? "Chebyshev" : "Euclidean",
          FormatMillions(
              static_cast<double>(result.value().stats.UserCounter(
                  kCounterReplicationCopies)) /
              row_env.scale)
              .c_str(),
          static_cast<long long>(result.value().num_tuples),
          safe ? "(reference)"
               : StrFormat("%lld tuple(s)", static_cast<long long>(lost))
                     .c_str());
    }
  }
  PrintNote(
      "expected: Euclidean ships slightly fewer copies; any nonzero 'lost' "
      "value is an output tuple the paper-literal metric misses (corner "
      "cells at per-axis distance <= bound but Euclidean distance > bound).");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
