// Ablation: sensitivity of Controlled-Replicate to the reducer-grid size.
// The paper fixes 64 reducers (8x8, §7.8.1); this sweep shows the
// trade-off that choice balances: fewer cells -> fewer boundary crossings
// and less replication but fatter reducers (skew, less parallelism); more
// cells -> better balance but more marked rectangles and more copies.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/str_format.h"
#include "core/runner.h"
#include "query/parser.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

int Main() {
  ThreadPool pool;
  const BenchEnv env = BenchEnv::FromEnvironment(&pool);
  const Query query = ParseQuery("R1 OV R2 AND R2 OV R3").value();
  PrintHeader("Ablation — C-Rep vs reducer-grid size (Q2, nI = 2 million)",
              query.ToString(), env);

  const Rect space = ScaledSyntheticSpace(env);
  std::vector<std::vector<Rect>> data;
  for (uint64_t r = 0; r < 3; ++r) {
    data.push_back(ScaledSyntheticRelation(env, 2'000'000, 100, 100, 70 + r));
  }

  std::printf("%-7s %-10s %-14s %-14s %-12s %-10s\n", "grid", "wall s",
              "marked (m)", "shuffled (m)", "max/avg", "modeled s");
  for (int g : {2, 4, 8, 12, 16}) {
    RunnerOptions options;
    options.algorithm = Algorithm::kControlledReplicate;
    options.grid_rows = g;
    options.grid_cols = g;
    options.space = space;
    options.count_only = true;
    options.context.pool = env.pool;
    Stopwatch watch;
    const auto result = RunSpatialJoin(query, data, options);
    if (!result.ok()) {
      std::printf("%dx%d failed: %s\n", g, g,
                  result.status().ToString().c_str());
      continue;
    }
    const double wall = watch.ElapsedSeconds();
    const RunStats& stats = result.value().stats;
    const JobStats& join_job = stats.jobs.back();
    const double avg = static_cast<double>(join_job.intermediate_records) /
                       join_job.num_reducers;
    CostModel model = env.model;
    const double modeled =
        model.RunSeconds(stats);  // Unextrapolated: relative only.
    std::printf(
        "%-7s %-10.2f %-14s %-14s %-12.2f %-10.1f\n",
        StrFormat("%dx%d", g, g).c_str(), wall,
        FormatMillions(static_cast<double>(stats.UserCounter(
                           kCounterRectanglesReplicated)) /
                       env.scale)
            .c_str(),
        FormatMillions(static_cast<double>(stats.TotalIntermediateRecords()) /
                       env.scale)
            .c_str(),
        avg > 0 ? static_cast<double>(join_job.MaxReducerRecords()) / avg : 0,
        modeled);
  }
  PrintNote(
      "expected: marked count and shuffled volume rise with grid size (more "
      "boundary crossings, and f1 replication concentrates copies toward "
      "bottom-right reducers, worsening max/avg) while coarse grids starve "
      "parallelism — the paper's 8x8 balances the two.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
