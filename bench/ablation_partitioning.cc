// Ablation: uniform vs equi-depth reducer grids under spatial skew.
// The paper partitions the space into equal cells (§5.1); on clustered
// data like road networks that leaves some reducers idle and others
// overloaded. The equi-depth extension places grid lines at data
// quantiles. This sweep compares reducer balance and end-to-end cost on
// the California workload.

#include <cstdio>

#include "common/stopwatch.h"
#include "common/str_format.h"
#include "core/runner.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

int Main() {
  ThreadPool pool;
  const BenchEnv env = BenchEnv::FromEnvironment(&pool);
  QueryBuilder qb;
  const int a = qb.AddRelation("Road1");
  const int b = qb.AddRelation("Road2");
  const int c = qb.AddRelation("Road3");
  qb.AddOverlap(a, b).AddOverlap(b, c);
  const Query query = qb.Build().value();
  PrintHeader(
      "Ablation — uniform vs equi-depth partitioning on clustered road data "
      "(Q2s, C-Rep)",
      query.ToString(), env);

  const Rect space = ScaledCaliforniaSpace(env);
  const std::vector<Rect> roads = ScaledCaliforniaRoads(env, 2'092'079, 2000);
  const std::vector<std::vector<Rect>> data = {roads, roads, roads};
  std::printf("roads: %zu\n", roads.size());

  std::printf("%-11s %-10s %-16s %-16s %-12s %-14s\n", "grid", "wall s",
              "mark max/avg", "join max/avg", "idle cells", "shuffled (m)");
  for (const Partitioning partitioning :
       {Partitioning::kUniform, Partitioning::kEquiDepth}) {
    RunnerOptions options;
    options.algorithm = Algorithm::kControlledReplicate;
    options.grid_rows = 8;
    options.grid_cols = 8;
    options.partitioning = partitioning;
    options.space = space;
    options.count_only = true;
    options.context.pool = env.pool;
    Stopwatch watch;
    const auto result = RunSpatialJoin(query, data, options);
    if (!result.ok()) {
      std::printf("failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    const double wall = watch.ElapsedSeconds();
    const JobStats& mark_job = result.value().stats.jobs.front();
    const JobStats& join_job = result.value().stats.jobs.back();
    int idle = 0;
    for (int64_t records : join_job.per_reducer_records) {
      if (records == 0) ++idle;
    }
    auto skew = [](const JobStats& job) {
      const double avg = static_cast<double>(job.intermediate_records) /
                         job.num_reducers;
      return avg > 0 ? static_cast<double>(job.MaxReducerRecords()) / avg : 0;
    };
    std::printf(
        "%-11s %-10.2f %-16.2f %-16.2f %-12d %-14s\n",
        partitioning == Partitioning::kUniform ? "uniform" : "equi-depth",
        wall, skew(mark_job), skew(join_job), idle,
        FormatMillions(
            static_cast<double>(
                result.value().stats.TotalIntermediateRecords()) /
            env.scale)
            .c_str());
  }
  PrintNote(
      "expected: the quantile grid balances the split-driven round-1 "
      "(marking) load; the join round stays skewed either way because f1 "
      "replication concentrates copies toward bottom-right reducers — "
      "balancing that round needs a different replication quadrant per "
      "region, which the paper notes is an arbitrary choice (§6.1).");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
