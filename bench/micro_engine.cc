// Micro-benchmarks for the map-reduce engine substrate: shuffle and
// grouping throughput bounds every algorithm's fixed costs.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "common/thread_pool.h"
#include "mapreduce/engine.h"
#include "mapreduce/fault.h"

namespace mwsj {
namespace {

using IntJob = MapReduceJob<int64_t, int32_t, int64_t, int64_t>;

void BM_ShuffleThroughput(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> input;
  input.reserve(static_cast<size_t>(n));
  Rng rng(1);
  for (int64_t i = 0; i < n; ++i) input.push_back(rng.Next() >> 1);
  for (auto _ : state) {
    IntJob job("shuffle", 64);
    job.set_partition([](const int32_t& k) { return k & 63; });
    job.set_map([](const int64_t& v, IntJob::Emitter& emit) {
      emit.Emit(static_cast<int32_t>(v % 64), v);
    });
    job.set_reduce([](const int32_t&, std::span<const int64_t> vals,
                      IntJob::OutEmitter& out) {
      int64_t sum = 0;
      for (int64_t v : vals) sum += v;
      out.Emit(sum);
    });
    std::vector<int64_t> output;
    const JobStats stats = job.Run(std::span<const int64_t>(input), &output);
    benchmark::DoNotOptimize(stats.intermediate_records);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShuffleThroughput)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_FanOutAmplification(benchmark::State& state) {
  // Each input record emits `fan` intermediate pairs — the replication
  // pattern of All-Replicate.
  const int fan = static_cast<int>(state.range(0));
  std::vector<int64_t> input(20'000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int64_t>(i);
  }
  for (auto _ : state) {
    IntJob job("fanout", 64);
    job.set_partition([](const int32_t& k) { return k & 63; });
    job.set_map([fan](const int64_t& v, IntJob::Emitter& emit) {
      for (int f = 0; f < fan; ++f) {
        emit.Emit(static_cast<int32_t>((v + f) % 64), v);
      }
    });
    job.set_reduce([](const int32_t&, std::span<const int64_t> vals,
                      IntJob::OutEmitter& out) {
      out.Emit(static_cast<int64_t>(vals.size()));
    });
    std::vector<int64_t> output;
    const JobStats stats = job.Run(std::span<const int64_t>(input), &output);
    benchmark::DoNotOptimize(stats.intermediate_records);
  }
  state.SetItemsProcessed(state.iterations() * 20'000 * fan);
}
BENCHMARK(BM_FanOutAmplification)->Arg(1)->Arg(4)->Arg(20);

void BM_ShuffleHeavyFanout(benchmark::State& state) {
  // Shuffle-dominated workload: a cheap map fans every record out to 16
  // reducers and the reduce is a trivial count, so routing the ~1.6M
  // intermediate pairs is nearly the entire job. Arg = pool threads
  // (0 = serial engine path); the mapper-partitioned shuffle both removes
  // the serial routing loop and lets the per-reducer merges run on the
  // pool, so larger Args should track the machine's core count.
  const int threads = static_cast<int>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);

  std::vector<int64_t> input(100'000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int64_t>(i);
  }
  for (auto _ : state) {
    IntJob job("shuffle_heavy", 64);
    job.set_partition([](const int32_t& k) { return k & 63; });
    job.set_map([](const int64_t& v, IntJob::Emitter& emit) {
      for (int f = 0; f < 16; ++f) {
        emit.Emit(static_cast<int32_t>((v + f * 4) & 63), v);
      }
    });
    job.set_reduce([](const int32_t&, std::span<const int64_t> vals,
                      IntJob::OutEmitter& out) {
      out.Emit(static_cast<int64_t>(vals.size()));
    });
    std::vector<int64_t> output;
    const JobStats stats = job.Run(std::span<const int64_t>(input), &output,
                                   ExecutionContext(pool.get()));
    benchmark::DoNotOptimize(stats.intermediate_records);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 16);
}
BENCHMARK(BM_ShuffleHeavyFanout)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EngineTracingOverhead(benchmark::State& state) {
  // Cost of the tracing hooks on the shuffle-heavy workload. Arg selects
  // the tracing mode: 0 = no tracer attached (the pre-tracing engine
  // path), 1 = disabled Tracer attached (one predicted branch per span),
  // 2 = enabled Tracer (records every phase/task span). Modes 0 and 1
  // must be within noise of each other — tracing must be free when off.
  const int mode = static_cast<int>(state.range(0));

  std::vector<int64_t> input(100'000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int64_t>(i);
  }
  for (auto _ : state) {
    // The enabled tracer lives inside the iteration so its buffers do not
    // grow across iterations; construction is a few microseconds against
    // a multi-millisecond job.
    std::unique_ptr<Tracer> tracer;
    if (mode == 1) tracer = std::make_unique<Tracer>(/*enabled=*/false);
    if (mode == 2) tracer = std::make_unique<Tracer>();
    ExecutionContext ctx(nullptr, tracer.get());

    IntJob job("tracing_overhead", 64);
    job.set_partition([](const int32_t& k) { return k & 63; });
    job.set_map([](const int64_t& v, IntJob::Emitter& emit) {
      for (int f = 0; f < 16; ++f) {
        emit.Emit(static_cast<int32_t>((v + f * 4) & 63), v);
      }
    });
    job.set_reduce([](const int32_t&, std::span<const int64_t> vals,
                      IntJob::OutEmitter& out) {
      out.Emit(static_cast<int64_t>(vals.size()));
    });
    std::vector<int64_t> output;
    const JobStats stats =
        job.Run(std::span<const int64_t>(input), &output, ctx);
    benchmark::DoNotOptimize(stats.intermediate_records);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 16);
}
BENCHMARK(BM_EngineTracingOverhead)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_ReduceGroupBy(benchmark::State& state) {
  // Reduce-phase group-by throughput on spatial-join-sized values (RelRect
  // is ~40 bytes, CascadeRecord bigger still): the SoA inbox sorts a u32
  // index permutation instead of whole pairs, applies it once, and hands
  // reduce_ spans directly into the value array. Manual time = the job's
  // reduce_seconds, so map and shuffle are excluded. Arg = distinct keys.
  struct FatValue {
    int64_t id;
    double payload[6];
  };
  using GroupJob = MapReduceJob<int64_t, int32_t, FatValue, int64_t>;
  const int64_t keys = state.range(0);
  std::vector<int64_t> input(200'000);
  Rng rng(5);
  for (auto& v : input) v = rng.UniformInt(0, keys - 1);
  for (auto _ : state) {
    GroupJob job("reduce_group_by", 16);
    job.set_map([](const int64_t& v, GroupJob::Emitter& emit) {
      FatValue f;
      f.id = v;
      for (double& p : f.payload) p = static_cast<double>(v) * 0.5;
      emit.Emit(static_cast<int32_t>(v), f);
    });
    job.set_reduce([](const int32_t&, std::span<const FatValue> vals,
                      GroupJob::OutEmitter& out) {
      int64_t sum = 0;
      for (const FatValue& f : vals) sum += f.id;
      out.Emit(sum);
    });
    std::vector<int64_t> output;
    const JobStats stats = job.Run(std::span<const int64_t>(input), &output);
    benchmark::DoNotOptimize(output.size());
    state.SetIterationTime(stats.reduce_seconds);
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_ReduceGroupBy)->Arg(64)->Arg(4096)->Arg(100'000)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_ReduceGroupBySingleKey(benchmark::State& state) {
  // The spatial algorithms' actual reduce shape: identity partitioner,
  // one key (cell id) per reducer. Arrival order is trivially key-sorted,
  // so the group-by takes the zero-move fast path and the reduce function
  // reads one span covering the whole inbox. Manual time = reduce_seconds.
  struct FatValue {
    int64_t id;
    double payload[6];
  };
  using GroupJob = MapReduceJob<int64_t, int32_t, FatValue, int64_t>;
  std::vector<int64_t> input(200'000);
  Rng rng(6);
  for (auto& v : input) v = rng.UniformInt(0, 15);
  for (auto _ : state) {
    GroupJob job("reduce_group_by_single_key", 16);
    job.set_partition([](const int32_t& k) { return k; });
    job.set_map([](const int64_t& v, GroupJob::Emitter& emit) {
      FatValue f;
      f.id = v;
      for (double& p : f.payload) p = static_cast<double>(v) * 0.5;
      emit.Emit(static_cast<int32_t>(v), f);
    });
    job.set_reduce([](const int32_t&, std::span<const FatValue> vals,
                      GroupJob::OutEmitter& out) {
      int64_t sum = 0;
      for (const FatValue& f : vals) sum += f.id;
      out.Emit(sum);
    });
    std::vector<int64_t> output;
    const JobStats stats = job.Run(std::span<const int64_t>(input), &output);
    benchmark::DoNotOptimize(output.size());
    state.SetIterationTime(stats.reduce_seconds);
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_ReduceGroupBySingleKey)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_EngineFaultRecovery(benchmark::State& state) {
  // Retry amplification of the fault-injection layer on the shuffle-heavy
  // workload. Arg encodes the fault regime:
  //   0 = no plan attached (the pre-fault engine path),
  //   1 = zero-probability plan (empty; must be within noise of 0),
  //   2 = light faults (~6% of attempts),
  //   3 = heavy faults (~30% of attempts).
  // Backoff runs on a virtual clock so the benchmark measures re-executed
  // work, not sleeps. Counters report the attempt/waste amplification.
  const int regime = static_cast<int>(state.range(0));
  FaultPlan plan;
  switch (regime) {
    case 1: plan = FaultPlan::Seeded(11, 0.0, 0.0, 0.0); break;
    case 2: plan = FaultPlan::Seeded(11, 0.02, 0.02, 0.02); break;
    case 3: plan = FaultPlan::Seeded(11, 0.12, 0.12, 0.06); break;
    default: break;
  }
  RetryPolicy retry;
  retry.sleep = [](double) {};
  ExecutionContext ctx;
  if (regime > 0) ctx.faults = &plan;
  ctx.retry = &retry;

  std::vector<int64_t> input(100'000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int64_t>(i);
  }
  int64_t attempts = 0, tasks = 0, wasted = 0;
  for (auto _ : state) {
    IntJob job("fault_recovery", 64);
    job.set_partition([](const int32_t& k) { return k & 63; });
    job.set_map([](const int64_t& v, IntJob::Emitter& emit) {
      for (int f = 0; f < 16; ++f) {
        emit.Emit(static_cast<int32_t>((v + f * 4) & 63), v);
      }
    });
    job.set_reduce([](const int32_t&, std::span<const int64_t> vals,
                      IntJob::OutEmitter& out) {
      out.Emit(static_cast<int64_t>(vals.size()));
    });
    std::vector<int64_t> output;
    const JobStats stats =
        job.Run(std::span<const int64_t>(input), &output, ctx);
    benchmark::DoNotOptimize(stats.intermediate_records);
    attempts += stats.map_faults.attempts + stats.reduce_faults.attempts;
    tasks += stats.map_faults.tasks + stats.reduce_faults.tasks;
    wasted +=
        stats.map_faults.wasted_records + stats.reduce_faults.wasted_records;
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 16);
  state.counters["attempts_per_task"] =
      tasks > 0 ? static_cast<double>(attempts) / static_cast<double>(tasks)
                : 0.0;
  state.counters["wasted_records_per_iter"] =
      state.iterations() > 0
          ? static_cast<double>(wasted) / static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_EngineFaultRecovery)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_GroupingManyKeys(benchmark::State& state) {
  // Many distinct keys per reducer stress the sort-and-group phase.
  const int64_t keys = state.range(0);
  std::vector<int64_t> input(200'000);
  Rng rng(3);
  for (auto& v : input) v = rng.UniformInt(0, keys - 1);
  for (auto _ : state) {
    IntJob job("grouping", 16);
    job.set_map([](const int64_t& v, IntJob::Emitter& emit) {
      emit.Emit(static_cast<int32_t>(v), v);
    });
    job.set_reduce([](const int32_t&, std::span<const int64_t> vals,
                      IntJob::OutEmitter& out) {
      out.Emit(static_cast<int64_t>(vals.size()));
    });
    std::vector<int64_t> output;
    job.Run(std::span<const int64_t>(input), &output);
    benchmark::DoNotOptimize(output.size());
  }
  state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_GroupingManyKeys)->Arg(16)->Arg(4096)->Arg(100'000);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
