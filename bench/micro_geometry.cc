// Micro-benchmarks for the geometry kernel: the predicates run once per
// candidate pair in every reducer.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/random.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "simd/simd.h"

namespace mwsj {
namespace {

std::vector<Rect> MakeRects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Rect::FromXYLB(rng.Uniform(0, 900), rng.Uniform(100, 1000),
                                 rng.Uniform(0, 100), rng.Uniform(0, 100)));
  }
  return out;
}

void BM_Overlaps(benchmark::State& state) {
  const auto rects = MakeRects(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Overlaps(rects[i & 1023], rects[(i * 7 + 13) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_Overlaps);

void BM_MinDistance(benchmark::State& state) {
  const auto rects = MakeRects(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinDistance(rects[i & 1023], rects[(i * 7 + 13) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_MinDistance);

void BM_Intersection(benchmark::State& state) {
  const auto rects = MakeRects(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Intersection(rects[i & 1023], rects[(i * 3 + 5) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_Intersection);

void BM_PolygonIntersects(benchmark::State& state) {
  const int sides = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Polygon> polys;
  for (int i = 0; i < 256; ++i) {
    polys.push_back(Polygon::RegularNGon(
        Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
        rng.Uniform(10, 80), sides, rng.Uniform(0, 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        polys[i & 255].Intersects(polys[(i * 11 + 3) & 255]));
    ++i;
  }
}
BENCHMARK(BM_PolygonIntersects)->Arg(4)->Arg(16)->Arg(64);

void BM_PolygonMinDistance(benchmark::State& state) {
  Rng rng(5);
  std::vector<Polygon> polys;
  for (int i = 0; i < 256; ++i) {
    polys.push_back(Polygon::RegularNGon(
        Point{rng.Uniform(0, 5000), rng.Uniform(0, 5000)},
        rng.Uniform(10, 40), 12, rng.Uniform(0, 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        polys[i & 255].MinDistanceTo(polys[(i * 11 + 3) & 255]));
    ++i;
  }
}
BENCHMARK(BM_PolygonMinDistance);

// --- Batched SIMD filter kernels -------------------------------------------
// One kernel call filters a whole SoA-resident relation against a probe
// rectangle; items_per_second counts rectangles tested. Each ISA variant is
// benchmarked through KernelsFor() so the rows are directly comparable on
// the same machine.

simd::SoaRects MakeSoaRects(size_t n, uint64_t seed) {
  Rng rng(seed);
  simd::SoaRects soa;
  soa.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 900);
    const double y = rng.Uniform(0, 900);
    soa.PushBack(x, y, x + rng.Uniform(1, 100), y + rng.Uniform(1, 100));
  }
  return soa;
}

void RunOverlapBatch(benchmark::State& state, simd::Isa isa) {
  if (!simd::IsaAvailable(isa)) {
    state.SkipWithError("ISA not available on this machine");
    return;
  }
  const simd::KernelTable& kernels = simd::KernelsFor(isa);
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::SoaRects soa = MakeSoaRects(n, 11);
  std::vector<uint32_t> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.overlap_filter(
        soa.min_x.data(), soa.min_y.data(), soa.max_x.data(),
        soa.max_y.data(), n, 300.0, 300.0, 600.0, 600.0, out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void RunWithinDistanceBatch(benchmark::State& state, simd::Isa isa) {
  if (!simd::IsaAvailable(isa)) {
    state.SkipWithError("ISA not available on this machine");
    return;
  }
  const simd::KernelTable& kernels = simd::KernelsFor(isa);
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::SoaRects soa = MakeSoaRects(n, 12);
  std::vector<uint32_t> out(n);
  const double d = 40.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.within_filter(
        soa.min_x.data(), soa.min_y.data(), soa.max_x.data(),
        soa.max_y.data(), n, 300.0, 300.0, 600.0, 600.0, d * d, out.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void RunSortKeyIdxBatch(benchmark::State& state, simd::Isa isa) {
  if (!simd::IsaAvailable(isa)) {
    state.SkipWithError("ISA not available on this machine");
    return;
  }
  const simd::KernelTable& kernels = simd::KernelsFor(isa);
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) {
    k = simd::OrderedKeyFromDouble(rng.Uniform(0, 1000));
  }
  std::vector<uint64_t> scratch_keys(n);
  std::vector<uint32_t> idx(n);
  for (auto _ : state) {
    scratch_keys = keys;
    for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
    kernels.sort_key_idx(scratch_keys.data(), idx.data(), n);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_OverlapBatch_Scalar(benchmark::State& state) {
  RunOverlapBatch(state, simd::Isa::kScalar);
}
void BM_OverlapBatch_Sse(benchmark::State& state) {
  RunOverlapBatch(state, simd::Isa::kSse);
}
void BM_OverlapBatch_Avx2(benchmark::State& state) {
  RunOverlapBatch(state, simd::Isa::kAvx2);
}
BENCHMARK(BM_OverlapBatch_Scalar)->Arg(1024)->Arg(65536);
BENCHMARK(BM_OverlapBatch_Sse)->Arg(1024)->Arg(65536);
BENCHMARK(BM_OverlapBatch_Avx2)->Arg(1024)->Arg(65536);

void BM_WithinDistanceBatch_Scalar(benchmark::State& state) {
  RunWithinDistanceBatch(state, simd::Isa::kScalar);
}
void BM_WithinDistanceBatch_Sse(benchmark::State& state) {
  RunWithinDistanceBatch(state, simd::Isa::kSse);
}
void BM_WithinDistanceBatch_Avx2(benchmark::State& state) {
  RunWithinDistanceBatch(state, simd::Isa::kAvx2);
}
BENCHMARK(BM_WithinDistanceBatch_Scalar)->Arg(1024)->Arg(65536);
BENCHMARK(BM_WithinDistanceBatch_Sse)->Arg(1024)->Arg(65536);
BENCHMARK(BM_WithinDistanceBatch_Avx2)->Arg(1024)->Arg(65536);

// The pre-SIMD engine sort: std::stable_sort of an index array with an
// indirect comparator over the key column. The kernel rows below replace
// this with packed (key, index) sorts.
void BM_SortKeyIdx_StableSortBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<double> keys(n);
  for (auto& k : keys) k = rng.Uniform(0, 1000);
  std::vector<uint32_t> idx(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
    std::stable_sort(idx.begin(), idx.end(),
                     [&keys](uint32_t a, uint32_t b) {
                       return keys[a] < keys[b];
                     });
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SortKeyIdx_StableSortBaseline)->Arg(65536);

void BM_SortKeyIdx_Scalar(benchmark::State& state) {
  RunSortKeyIdxBatch(state, simd::Isa::kScalar);
}
void BM_SortKeyIdx_Sse(benchmark::State& state) {
  RunSortKeyIdxBatch(state, simd::Isa::kSse);
}
void BM_SortKeyIdx_Avx2(benchmark::State& state) {
  RunSortKeyIdxBatch(state, simd::Isa::kAvx2);
}
BENCHMARK(BM_SortKeyIdx_Scalar)->Arg(65536);
BENCHMARK(BM_SortKeyIdx_Sse)->Arg(65536);
BENCHMARK(BM_SortKeyIdx_Avx2)->Arg(65536);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
