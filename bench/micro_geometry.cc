// Micro-benchmarks for the geometry kernel: the predicates run once per
// candidate pair in every reducer.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace mwsj {
namespace {

std::vector<Rect> MakeRects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Rect::FromXYLB(rng.Uniform(0, 900), rng.Uniform(100, 1000),
                                 rng.Uniform(0, 100), rng.Uniform(0, 100)));
  }
  return out;
}

void BM_Overlaps(benchmark::State& state) {
  const auto rects = MakeRects(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Overlaps(rects[i & 1023], rects[(i * 7 + 13) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_Overlaps);

void BM_MinDistance(benchmark::State& state) {
  const auto rects = MakeRects(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinDistance(rects[i & 1023], rects[(i * 7 + 13) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_MinDistance);

void BM_Intersection(benchmark::State& state) {
  const auto rects = MakeRects(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Intersection(rects[i & 1023], rects[(i * 3 + 5) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_Intersection);

void BM_PolygonIntersects(benchmark::State& state) {
  const int sides = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Polygon> polys;
  for (int i = 0; i < 256; ++i) {
    polys.push_back(Polygon::RegularNGon(
        Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)},
        rng.Uniform(10, 80), sides, rng.Uniform(0, 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        polys[i & 255].Intersects(polys[(i * 11 + 3) & 255]));
    ++i;
  }
}
BENCHMARK(BM_PolygonIntersects)->Arg(4)->Arg(16)->Arg(64);

void BM_PolygonMinDistance(benchmark::State& state) {
  Rng rng(5);
  std::vector<Polygon> polys;
  for (int i = 0; i < 256; ++i) {
    polys.push_back(Polygon::RegularNGon(
        Point{rng.Uniform(0, 5000), rng.Uniform(0, 5000)},
        rng.Uniform(10, 40), 12, rng.Uniform(0, 1)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        polys[i & 255].MinDistanceTo(polys[(i * 11 + 3) & 255]));
    ++i;
  }
}
BENCHMARK(BM_PolygonMinDistance);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
