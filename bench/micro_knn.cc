// kNN join micro-benchmarks: the distributed two-round knn-mr pipeline
// (queries/knn_mr.h) against the single-node three-round KnnJoin
// (queries/knn.h) on the same data, sweeping k. knn-mr additionally
// reports its point replication factor (round-2 point copies per point) —
// the quantity its round-1 bounds exist to minimize.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "queries/knn.h"
#include "queries/knn_mr.h"

namespace mwsj {
namespace {

std::vector<Rect> MakePointRects(int64_t n, uint64_t seed, double space) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(
        Rect::FromPoint(Point{rng.Uniform(0, space), rng.Uniform(0, space)}));
  }
  return out;
}

std::vector<Rect> MakeDataRects(int64_t n, uint64_t seed, double space) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 8);
    const double b = rng.Uniform(0, 8);
    out.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return out;
}

constexpr double kSpace = 10'000.0;

void BM_KnnJoinMR(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int k = static_cast<int>(state.range(1));
  const std::vector<std::vector<Rect>> relations = {
      MakePointRects(n, 1, kSpace), MakeDataRects(n, 2, kSpace)};
  const Query query = MakeChainQuery(2, Predicate::Overlap()).value();
  ThreadPool pool(0);  // Hardware concurrency.

  RunnerOptions options;
  options.grid_rows = 16;
  options.grid_cols = 16;
  options.space = Rect(0, 0, kSpace, kSpace);
  options.context.pool = &pool;

  int64_t points = 0;
  int64_t point_copies = 0;
  for (auto _ : state) {
    const StatusOr<JoinRunResult> result =
        RunKnnJoinMr(query, relations, k, options);
    benchmark::DoNotOptimize(result.value().num_tuples);
    points = 0;
    point_copies = 0;
    for (const JobStats& job : result.value().stats.jobs) {
      const auto p = job.user_counters.find(kCounterKnnPoints);
      if (p != job.user_counters.end()) points += p->second;
      const auto c = job.user_counters.find(kCounterKnnPointCopies);
      if (c != job.user_counters.end()) point_copies += c->second;
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  if (points > 0) {
    state.counters["replication"] =
        static_cast<double>(point_copies) / static_cast<double>(points);
  }
}
BENCHMARK(BM_KnnJoinMR)
    ->Args({100'000, 1})
    ->Args({100'000, 10})
    ->Args({100'000, 100})
    ->Args({1'000'000, 1})
    ->Args({1'000'000, 10})
    ->Args({1'000'000, 100})
    ->Unit(benchmark::kMillisecond);

void BM_KnnJoinSingleNode(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int k = static_cast<int>(state.range(1));
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(n));
  {
    Rng rng(1);
    for (int64_t i = 0; i < n; ++i) {
      points.push_back(Point{rng.Uniform(0, kSpace), rng.Uniform(0, kSpace)});
    }
  }
  const std::vector<Rect> rects = MakeDataRects(n, 2, kSpace);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, kSpace, kSpace), 16, 16).value();
  ThreadPool pool(0);
  ExecutionContext ctx;
  ctx.pool = &pool;

  for (auto _ : state) {
    const StatusOr<KnnResult> result = KnnJoin(grid, points, rects, k, ctx);
    benchmark::DoNotOptimize(result.value().neighbors.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KnnJoinSingleNode)
    ->Args({100'000, 1})
    ->Args({100'000, 10})
    ->Args({100'000, 100})
    ->Args({1'000'000, 1})
    ->Args({1'000'000, 10})
    ->Args({1'000'000, 100})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
