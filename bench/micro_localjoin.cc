// Micro-benchmarks for the reducer-side join kernels: STR R-tree build and
// probe, plane sweep, and the multiway backtracking join.
//
// This binary replaces the global operator new/delete with counting
// wrappers so probe benchmarks can assert the steady state performs zero
// heap allocations per query (reported as the `allocs_per_*` counters).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/random.h"
#include "localjoin/multiway.h"
#include "localjoin/plane_sweep.h"
#include "localjoin/rtree.h"
#include "query/query.h"

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mwsj {
namespace {

std::vector<Rect> MakeRects(int n, uint64_t seed, double space = 10'000,
                            double max_dim = 60) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, max_dim);
    const double b = rng.Uniform(0, max_dim);
    rects.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return rects;
}

void BM_RTreeBuild(benchmark::State& state) {
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    RTree tree(rects);
    benchmark::DoNotOptimize(&tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeOverlapProbe(benchmark::State& state) {
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 2);
  const RTree tree(rects);
  const auto probes = MakeRects(512, 3);
  RTree::QueryScratch scratch;
  std::vector<int32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.CollectOverlapping(probes[i & 511], &scratch, &out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_RTreeOverlapProbe)->Arg(1000)->Arg(100000);

void BM_RTreeDistanceProbe(benchmark::State& state) {
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 4);
  const RTree tree(rects);
  const auto probes = MakeRects(512, 5);
  RTree::QueryScratch scratch;
  std::vector<int32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.CollectWithinDistance(probes[i & 511], 100.0, &scratch, &out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_RTreeDistanceProbe)->Arg(1000)->Arg(100000);

void BM_RTreeQuery(benchmark::State& state) {
  // Steady-state allocation check for the scratch probe API: after the
  // scratch and output buffers reach their high-water mark, a probe must
  // not touch the heap at all (allocs_per_probe == 0).
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 8);
  const RTree tree(rects);
  const auto probes = MakeRects(512, 9);
  RTree::QueryScratch scratch;
  std::vector<int32_t> out;
  for (size_t i = 0; i < 512; ++i) {  // Warm buffers to high-water mark.
    out.clear();
    tree.CollectOverlapping(probes[i], &scratch, &out);
  }
  int64_t allocs = 0;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    const int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    tree.CollectOverlapping(probes[i & 511], &scratch, &out);
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.counters["allocs_per_probe"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RTreeQuery)->Arg(1000)->Arg(100000);

void BM_PlaneSweepOverlap(benchmark::State& state) {
  const auto a = MakeRects(static_cast<int>(state.range(0)), 6);
  const auto b = MakeRects(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    int64_t pairs = 0;
    PlaneSweepJoin(a, b, Predicate::Overlap(),
                   [&pairs](int32_t, int32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_PlaneSweepOverlap)->Arg(1000)->Arg(20000);

std::vector<std::vector<LocalRect>> MakeChainLocals(int n) {
  std::vector<std::vector<LocalRect>> locals;
  for (uint64_t r = 0; r < 3; ++r) {
    const auto rects = MakeRects(n, 10 + r);
    std::vector<LocalRect> local;
    local.reserve(rects.size());
    for (size_t i = 0; i < rects.size(); ++i) {
      local.push_back(LocalRect{rects[i], static_cast<int64_t>(i)});
    }
    locals.push_back(std::move(local));
  }
  return locals;
}

void BM_MultiwayLocalJoinChain3(benchmark::State& state) {
  // Build + execute per iteration: what one reducer does for one cell.
  const Query query = MakeChainQuery(3, Predicate::Overlap()).value();
  const int n = static_cast<int>(state.range(0));
  const auto locals = MakeChainLocals(n);
  for (auto _ : state) {
    std::vector<std::span<const LocalRect>> spans;
    for (const auto& l : locals) spans.emplace_back(l.data(), l.size());
    MultiwayLocalJoin join(query, std::move(spans));
    int64_t tuples = 0;
    join.Execute([&tuples](const std::vector<const LocalRect*>&) {
      ++tuples;
    });
    benchmark::DoNotOptimize(tuples);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_MultiwayLocalJoinChain3)->Arg(1000)->Arg(10000);

void BM_MultiwayLocalJoinExecute(benchmark::State& state) {
  // Probe-only: the trees are built once, the backtracking search runs per
  // iteration. Also reports steady-state heap allocations per Execute —
  // a small constant (the BindScratch vectors), independent of the number
  // of probes and emitted tuples.
  const Query query = MakeChainQuery(3, Predicate::Overlap()).value();
  const int n = static_cast<int>(state.range(0));
  const auto locals = MakeChainLocals(n);
  std::vector<std::span<const LocalRect>> spans;
  for (const auto& l : locals) spans.emplace_back(l.data(), l.size());
  const MultiwayLocalJoin join(query, std::move(spans));
  int64_t tuples = 0;
  join.Execute([&tuples](const std::vector<const LocalRect*>&) { ++tuples; });
  int64_t allocs = 0;
  for (auto _ : state) {
    int64_t count = 0;
    const int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    join.Execute([&count](const std::vector<const LocalRect*>&) { ++count; });
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(count);
  }
  state.counters["allocs_per_exec"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.counters["tuples"] =
      benchmark::Counter(static_cast<double>(tuples));
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_MultiwayLocalJoinExecute)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
