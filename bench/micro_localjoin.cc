// Micro-benchmarks for the reducer-side join kernels: STR R-tree build and
// probe, plane sweep, and the multiway backtracking join.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "localjoin/multiway.h"
#include "localjoin/plane_sweep.h"
#include "localjoin/rtree.h"
#include "query/query.h"

namespace mwsj {
namespace {

std::vector<Rect> MakeRects(int n, uint64_t seed, double space = 10'000,
                            double max_dim = 60) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, max_dim);
    const double b = rng.Uniform(0, max_dim);
    rects.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return rects;
}

void BM_RTreeBuild(benchmark::State& state) {
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    RTree tree(rects);
    benchmark::DoNotOptimize(&tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeOverlapProbe(benchmark::State& state) {
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 2);
  const RTree tree(rects);
  const auto probes = MakeRects(512, 3);
  std::vector<int32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.CollectOverlapping(probes[i & 511], &out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_RTreeOverlapProbe)->Arg(1000)->Arg(100000);

void BM_RTreeDistanceProbe(benchmark::State& state) {
  const auto rects = MakeRects(static_cast<int>(state.range(0)), 4);
  const RTree tree(rects);
  const auto probes = MakeRects(512, 5);
  std::vector<int32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    tree.CollectWithinDistance(probes[i & 511], 100.0, &out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK(BM_RTreeDistanceProbe)->Arg(1000)->Arg(100000);

void BM_PlaneSweepOverlap(benchmark::State& state) {
  const auto a = MakeRects(static_cast<int>(state.range(0)), 6);
  const auto b = MakeRects(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    int64_t pairs = 0;
    PlaneSweepJoin(a, b, Predicate::Overlap(),
                   [&pairs](int32_t, int32_t) { ++pairs; });
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_PlaneSweepOverlap)->Arg(1000)->Arg(20000);

void BM_MultiwayLocalJoinChain3(benchmark::State& state) {
  const Query query = MakeChainQuery(3, Predicate::Overlap()).value();
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<LocalRect>> locals;
  for (uint64_t r = 0; r < 3; ++r) {
    const auto rects = MakeRects(n, 10 + r);
    std::vector<LocalRect> local;
    local.reserve(rects.size());
    for (size_t i = 0; i < rects.size(); ++i) {
      local.push_back(LocalRect{rects[i], static_cast<int64_t>(i)});
    }
    locals.push_back(std::move(local));
  }
  for (auto _ : state) {
    std::vector<std::span<const LocalRect>> spans;
    for (const auto& l : locals) spans.emplace_back(l.data(), l.size());
    MultiwayLocalJoin join(query, std::move(spans));
    int64_t tuples = 0;
    join.Execute([&tuples](const std::vector<const LocalRect*>&) {
      ++tuples;
    });
    benchmark::DoNotOptimize(tuples);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_MultiwayLocalJoinChain3)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
