// Micro-benchmark for the C-Rep round-1 marking oracle (conditions C1-C3),
// the novel per-reducer computation the framework introduces.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/controlled_replicate.h"
#include "query/query.h"

namespace mwsj {
namespace {

// A reducer's view: rectangles of `m` relations split onto one cell of an
// 8x8 grid, sized so that roughly `crossing_fraction` cross the boundary.
struct CellWorld {
  GridPartition grid;
  CellId cell;
  std::vector<std::vector<LocalRect>> rects;
};

CellWorld MakeCellWorld(int per_relation, int num_relations, uint64_t seed) {
  const Rect space(0, 0, 8000, 8000);
  CellWorld world{GridPartition::Create(space, 8, 8).value(), 0, {}};
  world.cell = world.grid.CellIdOf(3, 3);  // An interior cell.
  const Rect cell_rect = world.grid.CellRect(world.cell);
  Rng rng(seed);
  world.rects.resize(static_cast<size_t>(num_relations));
  for (auto& relation : world.rects) {
    for (int i = 0; i < per_relation; ++i) {
      const double l = rng.Uniform(1, 80);
      const double b = rng.Uniform(1, 80);
      // Start inside (or slightly left/above) the cell so that a share of
      // rectangles cross its boundary.
      const double x = rng.Uniform(cell_rect.min_x() - 40, cell_rect.max_x());
      const double y = rng.Uniform(cell_rect.min_y(), cell_rect.max_y() + 40);
      relation.push_back(
          LocalRect{Rect::FromXYLB(x, y, l, b), static_cast<int64_t>(i)});
    }
  }
  return world;
}

void BM_MarkingOracleChain(benchmark::State& state) {
  const Query query = MakeChainQuery(3, Predicate::Overlap()).value();
  const CellWorld world =
      MakeCellWorld(static_cast<int>(state.range(0)), 3, 99);
  for (auto _ : state) {
    auto marked =
        MarkRectanglesForCell(query, world.grid, world.cell, world.rects);
    benchmark::DoNotOptimize(marked.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * state.range(0));
}
BENCHMARK(BM_MarkingOracleChain)->Arg(100)->Arg(1000)->Arg(5000);

void BM_MarkingOracleRangeChain(benchmark::State& state) {
  const Query query = MakeChainQuery(3, Predicate::Range(50)).value();
  const CellWorld world =
      MakeCellWorld(static_cast<int>(state.range(0)), 3, 7);
  for (auto _ : state) {
    auto marked =
        MarkRectanglesForCell(query, world.grid, world.cell, world.rects);
    benchmark::DoNotOptimize(marked.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * state.range(0));
}
BENCHMARK(BM_MarkingOracleRangeChain)->Arg(100)->Arg(1000);

void BM_MarkingOracleChain4(benchmark::State& state) {
  const Query query = MakeChainQuery(4, Predicate::Overlap()).value();
  const CellWorld world =
      MakeCellWorld(static_cast<int>(state.range(0)), 4, 13);
  for (auto _ : state) {
    auto marked =
        MarkRectanglesForCell(query, world.grid, world.cell, world.rects);
    benchmark::DoNotOptimize(marked.data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * state.range(0));
}
BENCHMARK(BM_MarkingOracleChain4)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
