// Micro-benchmarks for the grid substrate: the transform operations of §4
// run once per rectangle per job, so their throughput bounds the map
// phase.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "grid/transform.h"

namespace mwsj {
namespace {

std::vector<Rect> MakeRects(int n, double space, double max_dim) {
  Rng rng(42);
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, max_dim);
    const double b = rng.Uniform(0, max_dim);
    rects.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return rects;
}

void BM_CellOfPoint(benchmark::State& state) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100'000, 100'000), 8, 8).value();
  const auto rects = MakeRects(1024, 100'000, 100);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.CellOfPoint(rects[i & 1023].start_point()));
    ++i;
  }
}
BENCHMARK(BM_CellOfPoint);

void BM_SplitCells(benchmark::State& state) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100'000, 100'000), 8, 8).value();
  const auto rects = MakeRects(1024, 100'000, state.range(0));
  std::vector<CellId> cells;
  size_t i = 0;
  for (auto _ : state) {
    cells.clear();
    SplitCells(grid, rects[i & 1023], &cells);
    benchmark::DoNotOptimize(cells.data());
    ++i;
  }
}
BENCHMARK(BM_SplitCells)->Arg(100)->Arg(5000)->Arg(40000);

void BM_ReplicateF1(benchmark::State& state) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100'000, 100'000), 8, 8).value();
  const auto rects = MakeRects(1024, 100'000, 100);
  std::vector<CellId> cells;
  size_t i = 0;
  for (auto _ : state) {
    cells.clear();
    ReplicateF1Cells(grid, rects[i & 1023], &cells);
    benchmark::DoNotOptimize(cells.data());
    ++i;
  }
}
BENCHMARK(BM_ReplicateF1);

void BM_ReplicateF2(benchmark::State& state) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100'000, 100'000), 8, 8).value();
  const auto rects = MakeRects(1024, 100'000, 100);
  const double d = static_cast<double>(state.range(0));
  std::vector<CellId> cells;
  size_t i = 0;
  for (auto _ : state) {
    cells.clear();
    ReplicateF2Cells(grid, rects[i & 1023], d, DistanceMetric::kChebyshev,
                     &cells);
    benchmark::DoNotOptimize(cells.data());
    ++i;
  }
}
BENCHMARK(BM_ReplicateF2)->Arg(100)->Arg(20000);

void BM_EnlargedSplit(benchmark::State& state) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100'000, 100'000), 8, 8).value();
  const auto rects = MakeRects(1024, 100'000, 100);
  std::vector<CellId> cells;
  size_t i = 0;
  for (auto _ : state) {
    cells.clear();
    EnlargedSplitCells(grid, rects[i & 1023], 500.0, &cells);
    benchmark::DoNotOptimize(cells.data());
    ++i;
  }
}
BENCHMARK(BM_EnlargedSplit);

}  // namespace
}  // namespace mwsj

BENCHMARK_MAIN();
