#!/usr/bin/env bash
# Builds the micro benchmarks in Release and runs them with JSON output,
# writing the merged results to BENCH_<date>.json at the repo root.
#
# Usage: bench/run_benchmarks.sh [--json OUT] [benchmark_filter]
#
#   bench/run_benchmarks.sh                 # run everything
#   bench/run_benchmarks.sh 'BM_Reduce.*'   # only the reduce benches
#   bench/run_benchmarks.sh 'BM_EngineFaultRecovery.*'
#                                           # retry amplification under
#                                           # seeded fault plans (regimes:
#                                           # no plan / empty / light / heavy)
#   bench/run_benchmarks.sh --json OUT      # run the table-reproduction
#                                           # suite (Tables 2-9) and write
#                                           # one structured row per
#                                           # algorithm x configuration to
#                                           # OUT: table, algorithm, scale,
#                                           # wall seconds, communication
#                                           # bytes, output tuples (plus a
#                                           # spill object when
#                                           # MWSJ_SHUFFLE_BUDGET is set).
#                                           # MWSJ_BENCH_SCALE applies
#                                           # (e.g. =1.0 for the paper's
#                                           # full-size world).
#
# The build directory (build-bench) is kept between runs for fast
# re-measurement. Compare two JSON files across commits to spot
# regressions; EXPERIMENTS.md records the interpretation of each bench.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-bench"

if [[ "${1:-}" == "--json" ]]; then
  [[ $# -ge 2 ]] || { echo "usage: $0 --json OUT" >&2; exit 2; }
  OUT="$2"
  [[ "$OUT" == /* ]] || OUT="$PWD/$OUT"
  TABLES=(table2_vary_size table3_vary_dims table4_california_overlap
          table5_range_vary_size table6_range_vary_d
          table7_california_range table8_hybrid_vary_size
          table9_california_hybrid)
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" -j"$(nproc)" --target "${TABLES[@]}"
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' EXIT
  for table in "${TABLES[@]}"; do
    echo "== $table =="
    MWSJ_BENCH_JSON="$TMP/rows.jsonl" "$BUILD/bench/$table"
  done
  python3 - "$OUT" "$TMP/rows.jsonl" <<'EOF'
import json, os, sys
out, rows_path = sys.argv[1], sys.argv[2]
rows = [json.loads(line) for line in open(rows_path) if line.strip()]
doc = {
    "bench_scale": os.environ.get("MWSJ_BENCH_SCALE", ""),
    "shuffle_budget": os.environ.get("MWSJ_SHUFFLE_BUDGET", ""),
    "rows": rows,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
  echo "wrote $OUT"
  exit 0
fi

FILTER="${1:-.}"
BENCHES=(micro_engine micro_knn micro_localjoin micro_marking micro_geometry
         micro_transforms)

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)" --target "${BENCHES[@]}"

OUT="$ROOT/BENCH_$(date +%Y-%m-%d).json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
for bench in "${BENCHES[@]}"; do
  echo "== $bench =="
  "$BUILD/bench/$bench" --benchmark_filter="$FILTER" \
    --benchmark_format=json > "$TMP/$bench.json"
done

python3 - "$OUT" "$TMP" <<'EOF'
import json, pathlib, sys
out, tmp = sys.argv[1], pathlib.Path(sys.argv[2])
merged = {}
for p in sorted(tmp.glob("*.json")):
    text = p.read_text()
    if not text.strip():
        # A filter matching none of this binary's benchmarks yields empty
        # output (and exit 0) from google-benchmark; skip it.
        continue
    merged[p.stem] = json.loads(text)
pathlib.Path(out).write_text(json.dumps(merged, indent=2) + "\n")
EOF
echo "wrote $OUT"
