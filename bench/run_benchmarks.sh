#!/usr/bin/env bash
# Builds the micro benchmarks in Release and runs them with JSON output,
# writing the merged results to BENCH_<date>.json at the repo root.
#
# Usage: bench/run_benchmarks.sh [benchmark_filter]
#
#   bench/run_benchmarks.sh                 # run everything
#   bench/run_benchmarks.sh 'BM_Reduce.*'   # only the reduce benches
#   bench/run_benchmarks.sh 'BM_EngineFaultRecovery.*'
#                                           # retry amplification under
#                                           # seeded fault plans (regimes:
#                                           # no plan / empty / light / heavy)
#
# The build directory (build-bench) is kept between runs for fast
# re-measurement. Compare two JSON files across commits to spot
# regressions; EXPERIMENTS.md records the interpretation of each bench.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-bench"
FILTER="${1:-.}"
BENCHES=(micro_engine micro_localjoin micro_marking micro_geometry
         micro_transforms)

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)" --target "${BENCHES[@]}"

OUT="$ROOT/BENCH_$(date +%Y-%m-%d).json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
for bench in "${BENCHES[@]}"; do
  echo "== $bench =="
  "$BUILD/bench/$bench" --benchmark_filter="$FILTER" \
    --benchmark_format=json > "$TMP/$bench.json"
done

python3 - "$OUT" "$TMP" <<'EOF'
import json, pathlib, sys
out, tmp = sys.argv[1], pathlib.Path(sys.argv[2])
merged = {}
for p in sorted(tmp.glob("*.json")):
    text = p.read_text()
    if not text.strip():
        # A filter matching none of this binary's benchmarks yields empty
        # output (and exit 0) from google-benchmark; skip it.
        continue
    merged[p.stem] = json.loads(text)
pathlib.Path(out).write_text(json.dumps(merged, indent=2) + "\n")
EOF
echo "wrote $OUT"
