// Reproduces Table 2 of the paper: query Q2 = R1 Ov R2 ∧ R2 Ov R3 over
// synthetic uniform data (100K x 100K, dims in (0,100)), varying the
// relation size nI from 1 to 5 million, comparing 2-way Cascade,
// All-Replicate, C-Rep and C-Rep-L on end-to-end time and on the number
// of rectangles replicated / communicated after replication.
//
// Expected shape (the paper's finding): All-Rep degrades fastest (its
// communication is ~20x the input), Cascade degrades with the growing
// intermediate results, and C-Rep/C-Rep-L stay cheap with replication
// around 1/20th of the input and C-Rep-L shipping fewer copies.

#include <cstdio>

#include "common/str_format.h"
#include "query/parser.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  int64_t paper_n;        // Rectangles per relation in the paper's run.
  const char* cascade;    // Paper's hh:mm columns.
  const char* all_rep;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_all;    // Paper's replication columns.
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {1'000'000, "00:05", "00:32", "00:05", "00:05", "3, (64.3)",
     "0.05, (3.9)", "0.05 (3.0)"},
    {2'000'000, "00:10", "01:22", "00:07", "00:07", "6, (128.7)",
     "0.1, (7.6)", "0.1 (6.1)"},
    {3'000'000, "00:13", ">03:00", "00:08", "00:09", "9, (-)",
     "0.19, (12.5)", "0.19 (9.2)"},
    {4'000'000, "00:24", ">03:00", "00:11", "00:11", "12, (-)",
     "0.23, (15.6)", "0.23 (12.2)"},
    {5'000'000, "00:35", ">03:00", "00:15", "00:13", "15, (-)",
     "0.31 (19.8)", "0.31 (17.9)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv env = BenchEnv::FromEnvironment(&pool);
  const Query query = ParseQuery("R1 OV R2 AND R2 OV R3").value();
  PrintHeader("Table 2 — Q2, varying the dataset size (nI 1..5 million)",
              query.ToString(), env);

  const Rect space = ScaledSyntheticSpace(env);
  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "nI", "algorithm",
              "paper", "measured time", "replicated (paper | measured)");

  for (size_t row = 0; row < std::size(kRows); ++row) {
    const PaperRow& paper = kRows[row];
    std::vector<std::vector<Rect>> data;
    for (uint64_t r = 0; r < 3; ++r) {
      data.push_back(ScaledSyntheticRelation(env, paper.paper_n, 100, 100,
                                             1000 * (row + 1) + r));
    }

    const Measured cascade =
        RunMeasured(env, query, data, space, Algorithm::kTwoWayCascade);
    // The paper aborts All-Replicate beyond nI=2m (">03:00"); mirror that
    // unless the caller insists.
    Measured all_rep;
    if (row < 2 || std::getenv("MWSJ_BENCH_ALLREP_ALL") != nullptr) {
      all_rep =
          RunMeasured(env, query, data, space, Algorithm::kAllReplicate);
    }
    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    const double n_millions =
        static_cast<double>(paper.paper_n) / 1'000'000;
    std::printf("%-5.0f %-15s %-9s %-24s %-28s\n", n_millions, "Cascade",
                paper.cascade, TimeCell(cascade).c_str(), "");
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "All-Rep",
                paper.all_rep, TimeCell(all_rep).c_str(), paper.rep_all,
                ReplicationCell(all_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep", paper.c_rep,
                TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep-L",
                paper.c_rep_l, TimeCell(c_rep_l).c_str(), paper.rep_crepl,
                ReplicationCell(c_rep_l).c_str());
    if (c_rep.ran && cascade.ran) {
      std::printf(
          "      -> output ~%s tuples at paper scale; C-Rep vs Cascade "
          "speedup (modeled): %.2fx\n",
          FormatMillions(static_cast<double>(c_rep.output_tuples) / env.scale)
              .c_str(),
          cascade.modeled_seconds / c_rep.modeled_seconds);
    }
  }
  PrintNote(
      "shape check: All-Rep communication ~20x input and worst time; "
      "C-Rep(-L) replicate a few percent of the input and win at every nI.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
