// Reproduces Table 3 of the paper: query Q2 = R1 Ov R2 ∧ R2 Ov R3 at
// nI = 2 million per relation, varying the maximum rectangle dimensions
// l_max = b_max from 100 to 500. Larger rectangles overlap more, the
// output explodes, and 2-way Cascade's intermediate results blow up with
// it, while C-Rep degrades gently and C-Rep-L wins by capping how far the
// (bigger) rectangles are replicated.
//
// High-dimension rows have enormous outputs even in the paper (the 05:14
// Cascade cell); they run at a reduced per-row scale, printed per row.

#include <cstdio>

#include "common/str_format.h"
#include "query/parser.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  double lmax;            // = bmax.
  double row_scale;       // Extra scale factor for this row.
  const char* cascade;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {100, 1.0, "00:10", "00:07", "00:07", "0.11, (7.6)", "0.11 (6.1)"},
    {200, 1.0, "00:13", "00:09", "00:08", "0.25, (10.1)", "0.25 (6.5)"},
    {300, 0.25, "00:30", "00:16", "00:13", "0.39, (12.0)", "0.39 (6.8)"},
    {400, 0.1, "02:23", "00:28", "00:20", "0.53, (14.5)", "0.53 (7.1)"},
    {500, 0.05, "05:14", "00:59", "00:33", "0.67, (16.8)", "0.67 (7.3)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  const Query query = ParseQuery("R1 OV R2 AND R2 OV R3").value();
  PrintHeader(
      "Table 3 — Q2, nI = 2 million, varying rectangle dimensions "
      "(l_max = b_max = 100..500)",
      query.ToString(), base_env);

  std::printf("%-6s %-15s %-9s %-24s %-28s\n", "lmax", "algorithm", "paper",
              "measured time", "replicated (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledSyntheticSpace(env);
    std::vector<std::vector<Rect>> data;
    for (uint64_t r = 0; r < 3; ++r) {
      data.push_back(ScaledSyntheticRelation(
          env, 2'000'000, paper.lmax, paper.lmax,
          static_cast<uint64_t>(paper.lmax) * 10 + r));
    }

    const Measured cascade =
        RunMeasured(env, query, data, space, Algorithm::kTwoWayCascade);
    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    std::printf("%-6.0f %-15s %-9s %-24s (row scale %g)\n", paper.lmax,
                "Cascade", paper.cascade, TimeCell(cascade).c_str(),
                env.scale);
    std::printf("%-6s %-15s %-9s %-24s %s | %s\n", "", "C-Rep", paper.c_rep,
                TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCell(c_rep).c_str());
    std::printf("%-6s %-15s %-9s %-24s %s | %s\n", "", "C-Rep-L",
                paper.c_rep_l, TimeCell(c_rep_l).c_str(), paper.rep_crepl,
                ReplicationCell(c_rep_l).c_str());
    if (c_rep.ran && cascade.ran && c_rep_l.ran) {
      std::printf(
          "       -> output ~%s at paper scale; Cascade/C-Rep-L modeled "
          "ratio %.2fx; C-Rep-L copies are %.0f%% of C-Rep's\n",
          FormatMillions(static_cast<double>(c_rep.output_tuples) / env.scale)
              .c_str(),
          cascade.modeled_seconds / c_rep_l.modeled_seconds,
          100.0 * c_rep_l.after_replication / c_rep.after_replication);
    }
  }
  PrintNote(
      "shape check: Cascade deteriorates sharply with l_max (the paper's "
      "00:10 -> 05:14); C-Rep grows mildly; C-Rep-L's bounded replication "
      "keeps its copy count nearly flat (paper: 6.1 -> 7.3 vs C-Rep's "
      "7.6 -> 16.8).");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
