// Reproduces Table 4 of the paper: the self-join Q2s = R Ov R ∧ R Ov R
// (road triples rd1-rd2-rd3) over the California road dataset (nI = 2
// million MBBs), densified by enlarging every MBB by a factor k from 1.0
// to 2.0. Larger k -> more overlaps -> bigger output; the paper shows
// C-Rep beating Cascade in every row, with C-Rep-L slightly ahead.
//
// The paper's replication column for the California tables counts
// replicated copies only (0.8m-1.33m), so that is what the measured cell
// shows here.

#include <cstdio>

#include "common/str_format.h"
#include "datagen/synthetic.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  double k;
  double row_scale;
  const char* cascade;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {1.00, 1.0, "00:19", "00:15", "00:14", "0.08, (0.8)", "0.08 (0.64)"},
    {1.25, 1.0, "00:27", "00:24", "00:21", "0.12, (0.9)", "0.12 (0.65)"},
    {1.50, 1.0, "00:43", "00:25", "00:24", "0.18, (1.0)", "0.18 (0.66)"},
    {1.75, 1.0, "01:04", "00:46", "00:42", "0.23, (1.14)", "0.23 (0.67)"},
    {2.00, 1.0, "01:35", "00:57", "00:53", "0.32, (1.33)", "0.32 (0.68)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  // Three roles over one dataset: Road1 Ov Road2 ∧ Road2 Ov Road3.
  QueryBuilder qb;
  const int a = qb.AddRelation("Road1");
  const int b = qb.AddRelation("Road2");
  const int c = qb.AddRelation("Road3");
  qb.AddOverlap(a, b).AddOverlap(b, c);
  const Query query = qb.Build().value();

  PrintHeader(
      "Table 4 — Q2s (road triples) on California road data, varying the "
      "enlargement factor k",
      query.ToString(), base_env);
  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "k", "algorithm", "paper",
              "measured time", "replicated copies (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledCaliforniaSpace(env);
    const std::vector<Rect> roads = ClampInto(
        EnlargeDataset(ScaledCaliforniaRoads(env, 2'092'079, 2000), paper.k),
        space);
    const std::vector<std::vector<Rect>> data = {roads, roads, roads};

    const Measured cascade =
        RunMeasured(env, query, data, space, Algorithm::kTwoWayCascade);
    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    std::printf("%-5.2f %-15s %-9s %-24s (row scale %g)\n", paper.k,
                "Cascade", paper.cascade, TimeCell(cascade).c_str(),
                env.scale);
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep", paper.c_rep,
                TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCopiesCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep-L",
                paper.c_rep_l, TimeCell(c_rep_l).c_str(), paper.rep_crepl,
                ReplicationCopiesCell(c_rep_l).c_str());
    if (c_rep.ran) {
      std::printf("      -> output ~%s road triples at paper scale\n",
                  FormatMillions(
                      static_cast<double>(c_rep.output_tuples) / env.scale)
                      .c_str());
    }
  }
  PrintNote(
      "shape check: every algorithm slows as k grows; C-Rep beats Cascade "
      "throughout, and C-Rep-L's copy count stays nearly flat with k "
      "(paper: 0.64 -> 0.68) while C-Rep's rises (0.8 -> 1.33).");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
