// Reproduces Table 5 of the paper: range query Q3 = R1 Ra(100) R2 ∧
// R2 Ra(100) R3 over synthetic uniform data, varying nI from 1 to 5
// million. Range predicates are far less selective than overlap, so every
// algorithm works harder; the paper's headline here is that C-Rep-L's
// bounded replication ships ~30% of C-Rep's copies and wins big
// (02:37 -> 01:03 at nI=5m), while Cascade exceeds six hours.

#include <cstdio>

#include "common/str_format.h"
#include "query/parser.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  int64_t paper_n;
  double row_scale;
  const char* cascade;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {1'000'000, 1.0, "00:11", "00:10", "00:06", "0.36, (9.1)", "0.36 (3.0)"},
    {2'000'000, 0.3, "00:56", "00:27", "00:12", "0.61, (16.5)", "0.61 (6.1)"},
    {3'000'000, 0.12, "02:27", "01:12", "00:23", "0.96, (26.2)",
     "0.96 (9.7)"},
    {4'000'000, 0.06, "04:23", "01:43", "00:39", "1.3, (41.6)", "1.3 (12.8)"},
    {5'000'000, 0.04, ">06:00", "02:37", "01:03", "1.7, (58.4)",
     "1.7 (15.8)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  const Query query = ParseQuery("R1 RA(100) R2 AND R2 RA(100) R3").value();
  PrintHeader("Table 5 — Q3 (range, d=100), varying the dataset size",
              query.ToString(), base_env);

  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "nI", "algorithm", "paper",
              "measured time", "replicated (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledSyntheticSpace(env);
    std::vector<std::vector<Rect>> data;
    for (uint64_t r = 0; r < 3; ++r) {
      data.push_back(ScaledSyntheticRelation(
          env, paper.paper_n, 100, 100,
          static_cast<uint64_t>(paper.paper_n / 1000) + r));
    }

    const Measured cascade =
        RunMeasured(env, query, data, space, Algorithm::kTwoWayCascade);
    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    const double n_millions = static_cast<double>(paper.paper_n) / 1'000'000;
    std::printf("%-5.0f %-15s %-9s %-24s (row scale %g)\n", n_millions,
                "Cascade", paper.cascade, TimeCell(cascade).c_str(),
                env.scale);
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep", paper.c_rep,
                TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep-L",
                paper.c_rep_l, TimeCell(c_rep_l).c_str(), paper.rep_crepl,
                ReplicationCell(c_rep_l).c_str());
    if (c_rep.ran && c_rep_l.ran) {
      std::printf(
          "      -> output ~%s at paper scale; C-Rep-L copies %.0f%% of "
          "C-Rep's (paper ~30%%)\n",
          FormatMillions(static_cast<double>(c_rep.output_tuples) / env.scale)
              .c_str(),
          100.0 * c_rep_l.after_replication / c_rep.after_replication);
    }
  }
  PrintNote(
      "shape check: Cascade spirals out with nI; C-Rep-L ships a fraction "
      "of C-Rep's copies and is the fastest in every row.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
