// Reproduces Table 6 of the paper: range query Q3 with nI = 1 million per
// relation, varying the distance parameter d from 100 to 500. As d grows,
// C-Rep must replicate to ever more cells, but C-Rep-L's bound
// (m-2)*d_max + (m-1)*d stays tiny relative to the space, so its copy
// count stays nearly flat (paper: 3.0m -> 3.5m) while C-Rep's balloons
// (9.1m -> 24.8m).

#include <cstdio>

#include "common/str_format.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  double d;
  double row_scale;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {100, 1.0, "00:10", "00:06", "0.36, (9.1)", "0.36 (3.0)"},
    {200, 0.3, "00:18", "00:08", "0.53, (13.1)", "0.53 (3.2)"},
    {300, 0.15, "00:42", "00:15", "0.72, (16.5)", "0.72 (3.3)"},
    {400, 0.08, "01:16", "00:25", "0.94, (20.3)", "0.94 (3.4)"},
    {500, 0.05, "01:40", "00:41", "1.06, (24.8)", "1.06 (3.5)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  PrintHeader("Table 6 — Q3, nI = 1 million, varying distance d (100..500)",
              "R1 Ra(d) R2 AND R2 Ra(d) R3", base_env);

  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "d", "algorithm", "paper",
              "measured time", "replicated (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledSyntheticSpace(env);
    QueryBuilder b;
    const int r1 = b.AddRelation("R1");
    const int r2 = b.AddRelation("R2");
    const int r3 = b.AddRelation("R3");
    b.AddRange(r1, r2, paper.d).AddRange(r2, r3, paper.d);
    const Query query = b.Build().value();

    std::vector<std::vector<Rect>> data;
    for (uint64_t r = 0; r < 3; ++r) {
      data.push_back(ScaledSyntheticRelation(
          env, 1'000'000, 100, 100, static_cast<uint64_t>(paper.d) * 7 + r));
    }

    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    std::printf("%-5.0f %-15s %-9s %-24s %s | %s\n", paper.d, "C-Rep",
                paper.c_rep, TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s   (row scale %g)\n", "",
                "C-Rep-L", paper.c_rep_l, TimeCell(c_rep_l).c_str(),
                paper.rep_crepl, ReplicationCell(c_rep_l).c_str(), env.scale);
    if (c_rep.ran && c_rep_l.ran) {
      std::printf(
          "      -> output ~%s at paper scale; C-Rep-L copies %.0f%% of "
          "C-Rep's\n",
          FormatMillions(static_cast<double>(c_rep.output_tuples) / env.scale)
              .c_str(),
          100.0 * c_rep_l.after_replication / c_rep.after_replication);
    }
  }
  PrintNote(
      "shape check: C-Rep's copy count grows steeply with d while "
      "C-Rep-L's stays nearly flat, and C-Rep-L leads every row.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
