// Reproduces Table 7 of the paper: the range self-join Q3s = R Ra(d) R ∧
// R Ra(d) R over a p=0.5 sample of the California road data (nI = 1
// million MBBs), varying d from 5 to 20. The paper's Cascade column blows
// up from 01:16 to 04:06 while C-Rep stays under a minute scaled and
// C-Rep-L shaves a further ~30%.

#include <cstdio>

#include "common/str_format.h"
#include "datagen/synthetic.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  double d;
  double row_scale;
  const char* cascade;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {5, 1.0, "01:16", "00:14", "00:11", "0.04, (4.1)", "0.04 (3.1)"},
    {10, 1.0, "02:02", "00:21", "00:16", "0.07, (4.9)", "0.07 (3.2)"},
    {15, 1.0, "02:52", "00:36", "00:23", "0.09, (5.4)", "0.09 (3.2)"},
    {20, 1.0, "04:06", "00:46", "00:31", "0.10, (5.9)", "0.10 (3.3)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  PrintHeader(
      "Table 7 — Q3s (range road triples) on sampled California road data "
      "(p=0.5, nI = 1 million), varying d",
      "Road1 Ra(d) Road2 AND Road2 Ra(d) Road3", base_env);
  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "d", "algorithm", "paper",
              "measured time", "replicated copies (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledCaliforniaSpace(env);
    const std::vector<Rect> roads =
        ScaledCaliforniaRoads(env, 2'092'079, 2000, /*sample_p=*/0.5);
    const std::vector<std::vector<Rect>> data = {roads, roads, roads};

    QueryBuilder qb;
    const int a = qb.AddRelation("Road1");
    const int b = qb.AddRelation("Road2");
    const int c = qb.AddRelation("Road3");
    qb.AddRange(a, b, paper.d).AddRange(b, c, paper.d);
    const Query query = qb.Build().value();

    const Measured cascade =
        RunMeasured(env, query, data, space, Algorithm::kTwoWayCascade);
    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    std::printf("%-5.0f %-15s %-9s %-24s (row scale %g)\n", paper.d,
                "Cascade", paper.cascade, TimeCell(cascade).c_str(),
                env.scale);
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep", paper.c_rep,
                TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCopiesCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s\n", "", "C-Rep-L",
                paper.c_rep_l, TimeCell(c_rep_l).c_str(), paper.rep_crepl,
                ReplicationCopiesCell(c_rep_l).c_str());
    if (c_rep.ran && cascade.ran && c_rep_l.ran) {
      std::printf(
          "      -> output ~%s at paper scale; Cascade/C-Rep modeled ratio "
          "%.1fx\n",
          FormatMillions(static_cast<double>(c_rep.output_tuples) / env.scale)
              .c_str(),
          cascade.modeled_seconds / c_rep.modeled_seconds);
    }
  }
  PrintNote(
      "shape check: Cascade is several times slower than C-Rep in every "
      "row and degrades fastest with d; C-Rep-L stays ahead of C-Rep.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
