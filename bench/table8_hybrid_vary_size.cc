// Reproduces Table 8 of the paper: the hybrid query Q4 = R1 Ov R2 ∧
// R2 Ra(200) R3 over synthetic uniform data, varying nI from 1 to 5
// million. Hybrid queries exercise the §9 per-edge C2 condition; the
// paper compares C-Rep with C-Rep-L and finds C-Rep-L ahead in every row
// with roughly one third of the copies.

#include <cstdio>

#include "common/str_format.h"
#include "query/parser.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  int64_t paper_n;
  double row_scale;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {1'000'000, 1.0, "00:07", "00:06", "0.27, (8.0)", "0.27 (3.1)"},
    {2'000'000, 0.4, "00:16", "00:12", "0.57, (15.8)", "0.57 (6.3)"},
    {3'000'000, 0.2, "00:39", "00:23", "0.94, (26.5)", "0.94 (9.6)"},
    {4'000'000, 0.1, "01:08", "00:44", "1.22, (33.0)", "1.22 (12.7)"},
    {5'000'000, 0.06, "01:57", "01:16", "1.54, (46.3)", "1.54 (16.1)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  const Query query = ParseQuery("R1 OV R2 AND R2 RA(200) R3").value();
  PrintHeader("Table 8 — Q4 (hybrid Ov + Ra(200)), varying the dataset size",
              query.ToString(), base_env);
  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "nI", "algorithm", "paper",
              "measured time", "replicated (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledSyntheticSpace(env);
    std::vector<std::vector<Rect>> data;
    for (uint64_t r = 0; r < 3; ++r) {
      data.push_back(ScaledSyntheticRelation(
          env, paper.paper_n, 100, 100,
          static_cast<uint64_t>(paper.paper_n / 500) + r));
    }

    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    const double n_millions = static_cast<double>(paper.paper_n) / 1'000'000;
    std::printf("%-5.0f %-15s %-9s %-24s %s | %s\n", n_millions, "C-Rep",
                paper.c_rep, TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s   (row scale %g)\n", "",
                "C-Rep-L", paper.c_rep_l, TimeCell(c_rep_l).c_str(),
                paper.rep_crepl, ReplicationCell(c_rep_l).c_str(), env.scale);
    if (c_rep.ran && c_rep_l.ran) {
      std::printf(
          "      -> output ~%s at paper scale; C-Rep-L copies %.0f%% of "
          "C-Rep's (paper ~35-40%%)\n",
          FormatMillions(static_cast<double>(c_rep.output_tuples) / env.scale)
              .c_str(),
          100.0 * c_rep_l.after_replication / c_rep.after_replication);
    }
  }
  PrintNote(
      "shape check: C-Rep-L leads C-Rep in every row, with the gap "
      "widening as nI grows.");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
