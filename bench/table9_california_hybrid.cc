// Reproduces Table 9 of the paper: the hybrid self-join Q4s = R Ov R ∧
// R Ra(d) R over a p=0.5 sample of the California road data (nI = 1
// million MBBs), varying d from 10 to 40. C-Rep-L leads C-Rep in every
// row; the replication column counts copies (California-table style).

#include <cstdio>

#include "common/str_format.h"
#include "datagen/synthetic.h"
#include "table_bench.h"

namespace mwsj::bench {
namespace {

struct PaperRow {
  double d;
  double row_scale;
  const char* c_rep;
  const char* c_rep_l;
  const char* rep_crep;
  const char* rep_crepl;
};

constexpr PaperRow kRows[] = {
    {10, 1.0, "00:28", "00:26", "0.08, (5.0)", "0.08 (3.6)"},
    {20, 1.0, "00:39", "00:30", "0.11, (5.9)", "0.11 (3.8)"},
    {30, 1.0, "00:51", "00:41", "0.14, (6.7)", "0.14 (3.9)"},
    {40, 1.0, "01:03", "00:48", "0.18, (7.5)", "0.18 (4.1)"},
};

int Main() {
  ThreadPool pool;
  const BenchEnv base_env = BenchEnv::FromEnvironment(&pool);
  PrintHeader(
      "Table 9 — Q4s (hybrid road triples) on sampled California road data "
      "(p=0.5, nI = 1 million), varying d",
      "Road1 Ov Road2 AND Road2 Ra(d) Road3", base_env);
  std::printf("%-5s %-15s %-9s %-24s %-28s\n", "d", "algorithm", "paper",
              "measured time", "replicated copies (paper | measured)");

  for (const PaperRow& paper : kRows) {
    const BenchEnv env = base_env.WithRowScale(paper.row_scale);
    const Rect space = ScaledCaliforniaSpace(env);
    const std::vector<Rect> roads =
        ScaledCaliforniaRoads(env, 2'092'079, 2000, /*sample_p=*/0.5);
    const std::vector<std::vector<Rect>> data = {roads, roads, roads};

    QueryBuilder qb;
    const int a = qb.AddRelation("Road1");
    const int b = qb.AddRelation("Road2");
    const int c = qb.AddRelation("Road3");
    qb.AddOverlap(a, b).AddRange(b, c, paper.d);
    const Query query = qb.Build().value();

    const Measured c_rep = RunMeasured(env, query, data, space,
                                       Algorithm::kControlledReplicate);
    const Measured c_rep_l = RunMeasured(
        env, query, data, space, Algorithm::kControlledReplicateInLimit);

    std::printf("%-5.0f %-15s %-9s %-24s %s | %s\n", paper.d, "C-Rep",
                paper.c_rep, TimeCell(c_rep).c_str(), paper.rep_crep,
                ReplicationCopiesCell(c_rep).c_str());
    std::printf("%-5s %-15s %-9s %-24s %s | %s   (row scale %g)\n", "",
                "C-Rep-L", paper.c_rep_l, TimeCell(c_rep_l).c_str(),
                paper.rep_crepl, ReplicationCopiesCell(c_rep_l).c_str(),
                env.scale);
    if (c_rep.ran && c_rep_l.ran) {
      std::printf("      -> output ~%s at paper scale\n",
                  FormatMillions(
                      static_cast<double>(c_rep.output_tuples) / env.scale)
                      .c_str());
    }
  }
  PrintNote(
      "shape check: both algorithms slow gently with d; C-Rep-L stays "
      "ahead with a flatter copy count (paper: 3.6 -> 4.1 vs 5.0 -> 7.5).");
  return 0;
}

}  // namespace
}  // namespace mwsj::bench

int main() { return mwsj::bench::Main(); }
