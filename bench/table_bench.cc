#include "table_bench.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "common/str_format.h"
#include "datagen/california.h"
#include "datagen/synthetic.h"

namespace mwsj::bench {

BenchEnv BenchEnv::FromEnvironment(ThreadPool* pool) {
  BenchEnv env;
  env.pool = pool;
  if (const char* s = std::getenv("MWSJ_BENCH_SCALE")) {
    const double parsed = std::atof(s);
    if (parsed > 0 && parsed <= 1.0) env.scale = parsed;
  }
  env.length_scale = std::sqrt(env.scale);
  // Calibration note: reduce CPU measured on this machine stands in for
  // the paper's 3 GHz Xeon blades; cpu_scale rescales it (set via
  // MWSJ_CPU_SCALE if this machine is much faster/slower).
  if (const char* s = std::getenv("MWSJ_CPU_SCALE")) {
    const double parsed = std::atof(s);
    if (parsed > 0) env.model.cpu_scale = parsed;
  }
  return env;
}

BenchEnv BenchEnv::WithRowScale(double factor) const {
  BenchEnv env = *this;
  env.scale = scale * factor;
  env.length_scale = std::sqrt(env.scale);
  return env;
}

int64_t BenchEnv::Count(int64_t paper_count) const {
  return static_cast<int64_t>(
      std::llround(static_cast<double>(paper_count) * scale));
}

double BenchEnv::SpaceLength(double paper_length) const {
  return paper_length * length_scale;
}

Measured RunMeasured(const BenchEnv& env, const Query& query,
                     const std::vector<std::vector<Rect>>& relations,
                     const Rect& space, Algorithm algorithm,
                     bool distinct_ids) {
  RunnerOptions options;
  options.algorithm = algorithm;
  options.grid_rows = 8;  // The paper's 64 reducers (§7.8.1).
  options.grid_cols = 8;
  options.space = space;
  options.distinct_ids = distinct_ids;
  options.count_only = !distinct_ids;
  options.context.pool = env.pool;

  Stopwatch watch;
  StatusOr<JoinRunResult> result = RunSpatialJoin(query, relations, options);
  Measured m;
  if (!result.ok()) {
    std::fprintf(stderr, "bench run failed: %s\n",
                 result.status().ToString().c_str());
    return m;
  }
  m.ran = true;
  m.wall_seconds = watch.ElapsedSeconds();
  m.output_tuples = result.value().num_tuples;

  // Extrapolate counters to paper scale, then model cluster time.
  const double inv = 1.0 / env.scale;
  RunStats extrapolated = result.value().stats;
  for (JobStats& job : extrapolated.jobs) {
    job.map_input_bytes = static_cast<int64_t>(job.map_input_bytes * inv);
    job.intermediate_bytes =
        static_cast<int64_t>(job.intermediate_bytes * inv);
    job.reduce_output_bytes =
        static_cast<int64_t>(job.reduce_output_bytes * inv);
    for (double& s : job.per_reducer_seconds) s *= inv;
  }
  m.modeled_seconds = env.model.RunSeconds(extrapolated);
  m.replicated =
      result.value().stats.UserCounter(kCounterRectanglesReplicated) * inv;
  m.after_replication =
      result.value().stats.UserCounter(kCounterRectanglesAfterReplication) *
      inv;
  m.copies = result.value().stats.UserCounter(kCounterReplicationCopies) * inv;
  return m;
}

Rect ScaledSyntheticSpace(const BenchEnv& env) {
  return Rect(0, 0, env.SpaceLength(100'000), env.SpaceLength(100'000));
}

std::vector<Rect> ScaledSyntheticRelation(const BenchEnv& env,
                                          int64_t paper_count,
                                          double paper_lmax, double paper_bmax,
                                          uint64_t seed) {
  SyntheticParams params;
  params.num_rectangles = env.Count(paper_count);
  params.x_min = 0;
  params.x_max = env.SpaceLength(100'000);
  params.y_min = 0;
  params.y_max = env.SpaceLength(100'000);
  params.l_min = 0;
  params.l_max = paper_lmax;  // Dimensions keep their paper values.
  params.b_min = 0;
  params.b_max = paper_bmax;
  params.seed = seed;
  return GenerateSynthetic(params).value();
}

std::vector<Rect> ClampInto(const std::vector<Rect>& rects,
                            const Rect& space) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    const double l = std::min(r.length(), space.length());
    const double b = std::min(r.breadth(), space.breadth());
    double x = std::clamp(r.x(), space.min_x(), space.max_x() - l);
    double y = std::clamp(r.y(), space.min_y() + b, space.max_y());
    out.push_back(Rect::FromXYLB(x, y, l, b));
  }
  return out;
}

std::vector<Rect> ScaledCaliforniaRoads(const BenchEnv& env,
                                        int64_t paper_count, uint64_t seed,
                                        double sample_p) {
  CaliforniaParams params;
  params.num_roads = paper_count;
  params.seed = seed;
  std::vector<Rect> roads = GenerateCaliforniaRoads(params);
  if (sample_p < 1.0) roads = SampleDataset(roads, sample_p, seed + 17);
  const Rect window = ScaledCaliforniaSpace(env);
  std::vector<Rect> cropped;
  cropped.reserve(static_cast<size_t>(
      static_cast<double>(roads.size()) * env.scale * 1.3));
  for (const Rect& r : roads) {
    if (window.Contains(r)) cropped.push_back(r);
  }
  return cropped;
}

Rect ScaledCaliforniaSpace(const BenchEnv& env) {
  const Rect space = CaliforniaSpace();
  return Rect(0, 0, space.max_x() * env.length_scale,
              space.max_y() * env.length_scale);
}

void PrintHeader(const std::string& table, const std::string& query_text,
                 const BenchEnv& env) {
  std::printf("=================================================================\n");
  std::printf("%s\n", table.c_str());
  std::printf("Query: %s\n", query_text.c_str());
  std::printf(
      "Scaled reproduction: scale=%g (counts x%g, space side x%g, rectangle "
      "dims and distances at paper values), 64 reducers (8x8)\n",
      env.scale, env.scale, env.length_scale);
  std::printf(
      "Columns: paper value | modeled cluster time (extrapolated counters) "
      "| in-process wall\n");
  std::printf("=================================================================\n");
}

std::string TimeCell(const Measured& m) {
  if (!m.ran) return "-";
  return StrFormat("%s (wall %.1fs)", FormatHhMm(m.modeled_seconds).c_str(),
                   m.wall_seconds);
}

std::string ReplicationCell(const Measured& m) {
  if (!m.ran) return "-";
  return StrFormat("%s, (%s)", FormatMillions(m.replicated).c_str(),
                   FormatMillions(m.after_replication).c_str());
}

std::string ReplicationCopiesCell(const Measured& m) {
  if (!m.ran) return "-";
  return StrFormat("%s, (%s)", FormatMillions(m.replicated).c_str(),
                   FormatMillions(m.copies).c_str());
}

void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

}  // namespace mwsj::bench
