#include "table_bench.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "common/str_format.h"
#include "datagen/california.h"
#include "datagen/synthetic.h"

namespace mwsj::bench {

namespace {

/// Machine-readable row sink (bench/run_benchmarks.sh --json): when
/// MWSJ_BENCH_JSON names a file, every RunMeasured appends one JSON line
/// to it. Append mode lets the eight table binaries share one file.
FILE* RowSink() {
  static FILE* f = [] {
    const char* path = std::getenv("MWSJ_BENCH_JSON");
    return (path != nullptr && path[0] != '\0') ? std::fopen(path, "a")
                                                : nullptr;
  }();
  return f;
}

/// Table banner of the current binary, for row attribution.
std::string g_current_table;  // NOLINT(runtime/string)

void RecordRow(const BenchEnv& env, Algorithm algorithm, const Measured& m,
               const RunStats& stats) {
  FILE* f = RowSink();
  if (f == nullptr) return;
  int64_t comm_records = 0;
  int64_t comm_bytes = 0;
  int64_t spill_stored = 0;
  int64_t spill_raw = 0;
  int64_t spill_runs = 0;
  int64_t peak_inbox = 0;
  bool spill_active = false;
  for (const JobStats& job : stats.jobs) {
    comm_records += job.intermediate_records;
    comm_bytes += job.intermediate_bytes;
    if (job.spill.active()) {
      spill_active = true;
      spill_stored += job.spill.spilled_stored_bytes;
      spill_raw += job.spill.spilled_raw_bytes;
      spill_runs += job.spill.spilled_runs;
      peak_inbox = std::max(peak_inbox, job.spill.peak_inbox_bytes);
    }
  }
  std::string row = StrFormat(
      "{\"table\": \"%s\", \"algorithm\": \"%s\", \"scale\": %g, "
      "\"wall_seconds\": %.3f, \"modeled_seconds\": %.1f, "
      "\"communication_records\": %lld, \"communication_bytes\": %lld, "
      "\"output_tuples\": %lld",
      g_current_table.c_str(), AlgorithmName(algorithm), env.scale,
      m.wall_seconds, m.modeled_seconds,
      static_cast<long long>(comm_records),
      static_cast<long long>(comm_bytes),
      static_cast<long long>(m.output_tuples));
  if (spill_active) {
    row += StrFormat(
        ", \"spill\": {\"runs\": %lld, \"raw_bytes\": %lld, "
        "\"stored_bytes\": %lld, \"peak_inbox_bytes\": %lld}",
        static_cast<long long>(spill_runs),
        static_cast<long long>(spill_raw),
        static_cast<long long>(spill_stored),
        static_cast<long long>(peak_inbox));
  }
  row += "}\n";
  std::fputs(row.c_str(), f);
  std::fflush(f);
}

}  // namespace

BenchEnv BenchEnv::FromEnvironment(ThreadPool* pool) {
  BenchEnv env;
  env.pool = pool;
  if (const char* s = std::getenv("MWSJ_BENCH_SCALE")) {
    const double parsed = std::atof(s);
    if (parsed > 0 && parsed <= 1.0) env.scale = parsed;
  }
  env.length_scale = std::sqrt(env.scale);
  // Calibration note: reduce CPU measured on this machine stands in for
  // the paper's 3 GHz Xeon blades; cpu_scale rescales it (set via
  // MWSJ_CPU_SCALE if this machine is much faster/slower).
  if (const char* s = std::getenv("MWSJ_CPU_SCALE")) {
    const double parsed = std::atof(s);
    if (parsed > 0) env.model.cpu_scale = parsed;
  }
  return env;
}

BenchEnv BenchEnv::WithRowScale(double factor) const {
  BenchEnv env = *this;
  env.scale = scale * factor;
  env.length_scale = std::sqrt(env.scale);
  return env;
}

int64_t BenchEnv::Count(int64_t paper_count) const {
  return static_cast<int64_t>(
      std::llround(static_cast<double>(paper_count) * scale));
}

double BenchEnv::SpaceLength(double paper_length) const {
  return paper_length * length_scale;
}

Measured RunMeasured(const BenchEnv& env, const Query& query,
                     const std::vector<std::vector<Rect>>& relations,
                     const Rect& space, Algorithm algorithm,
                     bool distinct_ids) {
  RunnerOptions options;
  options.algorithm = algorithm;
  options.grid_rows = 8;  // The paper's 64 reducers (§7.8.1).
  options.grid_cols = 8;
  options.space = space;
  options.distinct_ids = distinct_ids;
  options.count_only = !distinct_ids;
  options.context.pool = env.pool;

  Stopwatch watch;
  StatusOr<JoinRunResult> result = RunSpatialJoin(query, relations, options);
  Measured m;
  if (!result.ok()) {
    std::fprintf(stderr, "bench run failed: %s\n",
                 result.status().ToString().c_str());
    return m;
  }
  m.ran = true;
  m.wall_seconds = watch.ElapsedSeconds();
  m.output_tuples = result.value().num_tuples;

  // Extrapolate counters to paper scale, then model cluster time.
  const double inv = 1.0 / env.scale;
  RunStats extrapolated = result.value().stats;
  for (JobStats& job : extrapolated.jobs) {
    job.map_input_bytes = static_cast<int64_t>(job.map_input_bytes * inv);
    job.intermediate_bytes =
        static_cast<int64_t>(job.intermediate_bytes * inv);
    job.reduce_output_bytes =
        static_cast<int64_t>(job.reduce_output_bytes * inv);
    for (double& s : job.per_reducer_seconds) s *= inv;
  }
  m.modeled_seconds = env.model.RunSeconds(extrapolated);
  m.replicated =
      result.value().stats.UserCounter(kCounterRectanglesReplicated) * inv;
  m.after_replication =
      result.value().stats.UserCounter(kCounterRectanglesAfterReplication) *
      inv;
  m.copies = result.value().stats.UserCounter(kCounterReplicationCopies) * inv;
  RecordRow(env, algorithm, m, result.value().stats);
  return m;
}

Rect ScaledSyntheticSpace(const BenchEnv& env) {
  return Rect(0, 0, env.SpaceLength(100'000), env.SpaceLength(100'000));
}

std::vector<Rect> ScaledSyntheticRelation(const BenchEnv& env,
                                          int64_t paper_count,
                                          double paper_lmax, double paper_bmax,
                                          uint64_t seed) {
  SyntheticParams params;
  params.num_rectangles = env.Count(paper_count);
  params.x_min = 0;
  params.x_max = env.SpaceLength(100'000);
  params.y_min = 0;
  params.y_max = env.SpaceLength(100'000);
  params.l_min = 0;
  params.l_max = paper_lmax;  // Dimensions keep their paper values.
  params.b_min = 0;
  params.b_max = paper_bmax;
  params.seed = seed;
  return GenerateSynthetic(params).value();
}

std::vector<Rect> ClampInto(const std::vector<Rect>& rects,
                            const Rect& space) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    const double l = std::min(r.length(), space.length());
    const double b = std::min(r.breadth(), space.breadth());
    double x = std::clamp(r.x(), space.min_x(), space.max_x() - l);
    double y = std::clamp(r.y(), space.min_y() + b, space.max_y());
    out.push_back(Rect::FromXYLB(x, y, l, b));
  }
  return out;
}

std::vector<Rect> ScaledCaliforniaRoads(const BenchEnv& env,
                                        int64_t paper_count, uint64_t seed,
                                        double sample_p) {
  CaliforniaParams params;
  params.num_roads = paper_count;
  params.seed = seed;
  std::vector<Rect> roads = GenerateCaliforniaRoads(params);
  if (sample_p < 1.0) roads = SampleDataset(roads, sample_p, seed + 17);
  const Rect window = ScaledCaliforniaSpace(env);
  std::vector<Rect> cropped;
  cropped.reserve(static_cast<size_t>(
      static_cast<double>(roads.size()) * env.scale * 1.3));
  for (const Rect& r : roads) {
    if (window.Contains(r)) cropped.push_back(r);
  }
  return cropped;
}

Rect ScaledCaliforniaSpace(const BenchEnv& env) {
  const Rect space = CaliforniaSpace();
  return Rect(0, 0, space.max_x() * env.length_scale,
              space.max_y() * env.length_scale);
}

void PrintHeader(const std::string& table, const std::string& query_text,
                 const BenchEnv& env) {
  g_current_table = table;
  std::printf("=================================================================\n");
  std::printf("%s\n", table.c_str());
  std::printf("Query: %s\n", query_text.c_str());
  std::printf(
      "Scaled reproduction: scale=%g (counts x%g, space side x%g, rectangle "
      "dims and distances at paper values), 64 reducers (8x8)\n",
      env.scale, env.scale, env.length_scale);
  std::printf(
      "Columns: paper value | modeled cluster time (extrapolated counters) "
      "| in-process wall\n");
  std::printf("=================================================================\n");
}

std::string TimeCell(const Measured& m) {
  if (!m.ran) return "-";
  return StrFormat("%s (wall %.1fs)", FormatHhMm(m.modeled_seconds).c_str(),
                   m.wall_seconds);
}

std::string ReplicationCell(const Measured& m) {
  if (!m.ran) return "-";
  return StrFormat("%s, (%s)", FormatMillions(m.replicated).c_str(),
                   FormatMillions(m.after_replication).c_str());
}

std::string ReplicationCopiesCell(const Measured& m) {
  if (!m.ran) return "-";
  return StrFormat("%s, (%s)", FormatMillions(m.replicated).c_str(),
                   FormatMillions(m.copies).c_str());
}

void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

}  // namespace mwsj::bench
