#ifndef MWSJ_BENCH_TABLE_BENCH_H_
#define MWSJ_BENCH_TABLE_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/runner.h"
#include "geometry/rect.h"
#include "mapreduce/cost_model.h"
#include "query/query.h"

namespace mwsj::bench {

/// Shared harness for the table-reproduction benchmarks.
///
/// The paper runs 1-5 million rectangles per relation on a 16-node Hadoop
/// cluster; these binaries run a density-preserving scaled world on one
/// process: counts shrink by `scale`, the coordinate space side shrinks by
/// sqrt(scale), and rectangle dimensions / range distances stay at their
/// paper values. This keeps the spatial density — and therefore the
/// expected number of join partners per rectangle, the size of every
/// intermediate result *relative to its input*, and the per-reducer work
/// per record — identical to the paper's workload, which is what the
/// paper's algorithm comparison hinges on. Two quantities do not survive
/// scaling with the reducer grid fixed at the paper's 8x8: output-tuple
/// counts shrink linearly (reported extrapolated by 1/scale), and the
/// probability that a rectangle crosses a (now smaller) cell boundary is
/// inflated, so C-Rep's replicated fraction is an upper bound on the
/// paper's — still far below All-Replicate's 100%, which preserves the
/// ranking.
///
/// MWSJ_BENCH_SCALE overrides the default scale (e.g. =1 reproduces the
/// full-size world; expect hours, like the paper).
struct BenchEnv {
  double scale = 0.02;
  double length_scale = 0.1414;  // sqrt(scale), cached.
  ThreadPool* pool = nullptr;
  CostModel model;

  static BenchEnv FromEnvironment(ThreadPool* pool);

  /// A copy of this environment with `scale *= factor`. High-selectivity
  /// rows (huge outputs even in the paper) run at a smaller per-row scale
  /// so every bench binary completes in seconds; the row printers show the
  /// effective scale.
  BenchEnv WithRowScale(double factor) const;

  /// Scales a paper-world count (e.g. nI = 2'000'000) to this run.
  int64_t Count(int64_t paper_count) const;
  /// Scales a paper-world space extent (coordinates only — rectangle
  /// dimensions and range distances are used unscaled).
  double SpaceLength(double paper_length) const;
};

/// One algorithm execution on one configuration.
struct Measured {
  bool ran = false;
  double wall_seconds = 0;
  /// Modeled cluster seconds at PAPER scale (counters extrapolated by
  /// 1/scale before applying the cost model).
  double modeled_seconds = 0;
  /// Counters extrapolated to paper scale.
  double replicated = 0;
  double after_replication = 0;  // Projections + copies (Table 2 style).
  double copies = 0;             // Replicated copies only (Table 4 style).
  int64_t output_tuples = 0;
};

/// Runs `algorithm` on the given world using the paper's 8x8 reducer grid.
/// Output tuples are counted, not materialized — unless `distinct_ids` is
/// requested (self-join road triples), which needs the ids.
Measured RunMeasured(const BenchEnv& env, const Query& query,
                     const std::vector<std::vector<Rect>>& relations,
                     const Rect& space, Algorithm algorithm,
                     bool distinct_ids = false);

/// Generates the paper's synthetic relation (§7.8.2 defaults: uniform
/// everything, 100K x 100K space, dims in (0, lmax/bmax)), already scaled
/// into this run's world.
std::vector<Rect> ScaledSyntheticRelation(const BenchEnv& env,
                                          int64_t paper_count,
                                          double paper_lmax, double paper_bmax,
                                          uint64_t seed);

/// The scaled synthetic space matching ScaledSyntheticRelation.
Rect ScaledSyntheticSpace(const BenchEnv& env);

/// California roads, scaled into this run's world by *cropping*: the full
/// `paper_count`-road dataset is generated (optionally Bernoulli-sampled
/// with `sample_p`, as the paper's Tables 7/9 do with p=0.5) and the roads
/// inside the window [0, 63K*sqrt(scale)] x [0, 100K*sqrt(scale)] are
/// kept. Cropping preserves the local clustering and MBB size statistics
/// exactly — contracting positions would compress road corridors and
/// inflate local density.
std::vector<Rect> ScaledCaliforniaRoads(const BenchEnv& env,
                                        int64_t paper_count, uint64_t seed,
                                        double sample_p = 1.0);

/// The scaled California space.
Rect ScaledCaliforniaSpace(const BenchEnv& env);

/// Shifts every rectangle the minimum amount needed to lie inside `space`
/// (dimensions preserved, capped at the space extent). Used after §7.8.6
/// factor-enlargement, which can push border rectangles outside.
std::vector<Rect> ClampInto(const std::vector<Rect>& rects, const Rect& space);

// ---- Table formatting -----------------------------------------------------

/// Prints the bench banner: table name, query, scale, grid.
void PrintHeader(const std::string& table, const std::string& query_text,
                 const BenchEnv& env);

/// Formats a Measured cell as "hh:mm (wall 1.2s)" or "-" when not run.
std::string TimeCell(const Measured& m);

/// Formats the paper's "#replicated, (after replication)" cell from a
/// Measured, in millions at paper scale. The synthetic tables (2, 3, 5,
/// 6, 8) report the total rectangles received by the join round; the
/// California tables (4, 7, 9) report replicated copies only — matching
/// how the paper's respective tables count (see core/records.h).
std::string ReplicationCell(const Measured& m);
std::string ReplicationCopiesCell(const Measured& m);

/// Prints a final free-text note (shape checks, skipped rows).
void PrintNote(const std::string& note);

}  // namespace mwsj::bench

#endif  // MWSJ_BENCH_TABLE_BENCH_H_
