file(REMOVE_RECURSE
  "CMakeFiles/ablation_cascade_order.dir/ablation_cascade_order.cc.o"
  "CMakeFiles/ablation_cascade_order.dir/ablation_cascade_order.cc.o.d"
  "ablation_cascade_order"
  "ablation_cascade_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cascade_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
