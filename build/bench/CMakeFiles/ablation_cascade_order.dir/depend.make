# Empty dependencies file for ablation_cascade_order.
# This may be replaced when dependencies are built.
