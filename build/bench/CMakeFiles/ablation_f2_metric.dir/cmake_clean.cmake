file(REMOVE_RECURSE
  "CMakeFiles/ablation_f2_metric.dir/ablation_f2_metric.cc.o"
  "CMakeFiles/ablation_f2_metric.dir/ablation_f2_metric.cc.o.d"
  "ablation_f2_metric"
  "ablation_f2_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_f2_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
