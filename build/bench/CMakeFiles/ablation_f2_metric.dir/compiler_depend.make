# Empty compiler generated dependencies file for ablation_f2_metric.
# This may be replaced when dependencies are built.
