file(REMOVE_RECURSE
  "CMakeFiles/ablation_grid_size.dir/ablation_grid_size.cc.o"
  "CMakeFiles/ablation_grid_size.dir/ablation_grid_size.cc.o.d"
  "ablation_grid_size"
  "ablation_grid_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grid_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
