file(REMOVE_RECURSE
  "CMakeFiles/micro_localjoin.dir/micro_localjoin.cc.o"
  "CMakeFiles/micro_localjoin.dir/micro_localjoin.cc.o.d"
  "micro_localjoin"
  "micro_localjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_localjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
