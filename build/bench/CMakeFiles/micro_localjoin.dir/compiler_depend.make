# Empty compiler generated dependencies file for micro_localjoin.
# This may be replaced when dependencies are built.
