file(REMOVE_RECURSE
  "CMakeFiles/micro_marking.dir/micro_marking.cc.o"
  "CMakeFiles/micro_marking.dir/micro_marking.cc.o.d"
  "micro_marking"
  "micro_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
