# Empty compiler generated dependencies file for micro_marking.
# This may be replaced when dependencies are built.
