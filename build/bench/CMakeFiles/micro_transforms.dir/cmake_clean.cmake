file(REMOVE_RECURSE
  "CMakeFiles/micro_transforms.dir/micro_transforms.cc.o"
  "CMakeFiles/micro_transforms.dir/micro_transforms.cc.o.d"
  "micro_transforms"
  "micro_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
