# Empty compiler generated dependencies file for micro_transforms.
# This may be replaced when dependencies are built.
