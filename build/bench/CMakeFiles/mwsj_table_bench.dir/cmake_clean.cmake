file(REMOVE_RECURSE
  "CMakeFiles/mwsj_table_bench.dir/table_bench.cc.o"
  "CMakeFiles/mwsj_table_bench.dir/table_bench.cc.o.d"
  "libmwsj_table_bench.a"
  "libmwsj_table_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_table_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
