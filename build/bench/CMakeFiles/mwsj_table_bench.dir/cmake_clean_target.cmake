file(REMOVE_RECURSE
  "libmwsj_table_bench.a"
)
