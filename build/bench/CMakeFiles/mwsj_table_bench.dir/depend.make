# Empty dependencies file for mwsj_table_bench.
# This may be replaced when dependencies are built.
