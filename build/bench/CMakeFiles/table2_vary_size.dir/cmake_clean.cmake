file(REMOVE_RECURSE
  "CMakeFiles/table2_vary_size.dir/table2_vary_size.cc.o"
  "CMakeFiles/table2_vary_size.dir/table2_vary_size.cc.o.d"
  "table2_vary_size"
  "table2_vary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_vary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
