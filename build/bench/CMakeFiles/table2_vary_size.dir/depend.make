# Empty dependencies file for table2_vary_size.
# This may be replaced when dependencies are built.
