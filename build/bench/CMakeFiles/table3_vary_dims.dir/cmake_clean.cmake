file(REMOVE_RECURSE
  "CMakeFiles/table3_vary_dims.dir/table3_vary_dims.cc.o"
  "CMakeFiles/table3_vary_dims.dir/table3_vary_dims.cc.o.d"
  "table3_vary_dims"
  "table3_vary_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_vary_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
