# Empty compiler generated dependencies file for table3_vary_dims.
# This may be replaced when dependencies are built.
