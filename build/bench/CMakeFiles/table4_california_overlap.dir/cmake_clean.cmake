file(REMOVE_RECURSE
  "CMakeFiles/table4_california_overlap.dir/table4_california_overlap.cc.o"
  "CMakeFiles/table4_california_overlap.dir/table4_california_overlap.cc.o.d"
  "table4_california_overlap"
  "table4_california_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_california_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
