# Empty compiler generated dependencies file for table4_california_overlap.
# This may be replaced when dependencies are built.
