# Empty dependencies file for table5_range_vary_size.
# This may be replaced when dependencies are built.
