file(REMOVE_RECURSE
  "CMakeFiles/table6_range_vary_d.dir/table6_range_vary_d.cc.o"
  "CMakeFiles/table6_range_vary_d.dir/table6_range_vary_d.cc.o.d"
  "table6_range_vary_d"
  "table6_range_vary_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_range_vary_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
