# Empty compiler generated dependencies file for table6_range_vary_d.
# This may be replaced when dependencies are built.
