file(REMOVE_RECURSE
  "CMakeFiles/table7_california_range.dir/table7_california_range.cc.o"
  "CMakeFiles/table7_california_range.dir/table7_california_range.cc.o.d"
  "table7_california_range"
  "table7_california_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_california_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
