# Empty compiler generated dependencies file for table7_california_range.
# This may be replaced when dependencies are built.
