file(REMOVE_RECURSE
  "CMakeFiles/table8_hybrid_vary_size.dir/table8_hybrid_vary_size.cc.o"
  "CMakeFiles/table8_hybrid_vary_size.dir/table8_hybrid_vary_size.cc.o.d"
  "table8_hybrid_vary_size"
  "table8_hybrid_vary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_hybrid_vary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
