# Empty compiler generated dependencies file for table8_hybrid_vary_size.
# This may be replaced when dependencies are built.
