file(REMOVE_RECURSE
  "CMakeFiles/table9_california_hybrid.dir/table9_california_hybrid.cc.o"
  "CMakeFiles/table9_california_hybrid.dir/table9_california_hybrid.cc.o.d"
  "table9_california_hybrid"
  "table9_california_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_california_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
