# Empty dependencies file for table9_california_hybrid.
# This may be replaced when dependencies are built.
