file(REMOVE_RECURSE
  "CMakeFiles/city_forest_river.dir/city_forest_river.cpp.o"
  "CMakeFiles/city_forest_river.dir/city_forest_river.cpp.o.d"
  "city_forest_river"
  "city_forest_river.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_forest_river.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
