# Empty compiler generated dependencies file for city_forest_river.
# This may be replaced when dependencies are built.
