file(REMOVE_RECURSE
  "CMakeFiles/facility_range_planning.dir/facility_range_planning.cpp.o"
  "CMakeFiles/facility_range_planning.dir/facility_range_planning.cpp.o.d"
  "facility_range_planning"
  "facility_range_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_range_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
