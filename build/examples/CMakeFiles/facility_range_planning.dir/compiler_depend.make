# Empty compiler generated dependencies file for facility_range_planning.
# This may be replaced when dependencies are built.
