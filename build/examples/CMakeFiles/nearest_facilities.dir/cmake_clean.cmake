file(REMOVE_RECURSE
  "CMakeFiles/nearest_facilities.dir/nearest_facilities.cpp.o"
  "CMakeFiles/nearest_facilities.dir/nearest_facilities.cpp.o.d"
  "nearest_facilities"
  "nearest_facilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearest_facilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
