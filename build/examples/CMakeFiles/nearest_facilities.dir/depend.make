# Empty dependencies file for nearest_facilities.
# This may be replaced when dependencies are built.
