file(REMOVE_RECURSE
  "CMakeFiles/road_network_triples.dir/road_network_triples.cpp.o"
  "CMakeFiles/road_network_triples.dir/road_network_triples.cpp.o.d"
  "road_network_triples"
  "road_network_triples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_triples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
