# Empty dependencies file for road_network_triples.
# This may be replaced when dependencies are built.
