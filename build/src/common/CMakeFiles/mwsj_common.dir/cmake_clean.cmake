file(REMOVE_RECURSE
  "CMakeFiles/mwsj_common.dir/random.cc.o"
  "CMakeFiles/mwsj_common.dir/random.cc.o.d"
  "CMakeFiles/mwsj_common.dir/status.cc.o"
  "CMakeFiles/mwsj_common.dir/status.cc.o.d"
  "CMakeFiles/mwsj_common.dir/str_format.cc.o"
  "CMakeFiles/mwsj_common.dir/str_format.cc.o.d"
  "CMakeFiles/mwsj_common.dir/thread_pool.cc.o"
  "CMakeFiles/mwsj_common.dir/thread_pool.cc.o.d"
  "libmwsj_common.a"
  "libmwsj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
