file(REMOVE_RECURSE
  "libmwsj_common.a"
)
