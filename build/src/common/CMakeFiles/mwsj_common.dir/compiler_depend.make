# Empty compiler generated dependencies file for mwsj_common.
# This may be replaced when dependencies are built.
