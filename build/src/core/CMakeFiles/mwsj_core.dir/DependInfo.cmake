
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/all_replicate.cc" "src/core/CMakeFiles/mwsj_core.dir/all_replicate.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/all_replicate.cc.o.d"
  "/root/repo/src/core/cascade.cc" "src/core/CMakeFiles/mwsj_core.dir/cascade.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/cascade.cc.o.d"
  "/root/repo/src/core/controlled_replicate.cc" "src/core/CMakeFiles/mwsj_core.dir/controlled_replicate.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/controlled_replicate.cc.o.d"
  "/root/repo/src/core/dedup.cc" "src/core/CMakeFiles/mwsj_core.dir/dedup.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/dedup.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/mwsj_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/explain.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/mwsj_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/refinement.cc" "src/core/CMakeFiles/mwsj_core.dir/refinement.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/refinement.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/mwsj_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/runner.cc.o.d"
  "/root/repo/src/core/two_way.cc" "src/core/CMakeFiles/mwsj_core.dir/two_way.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/two_way.cc.o.d"
  "/root/repo/src/core/verification.cc" "src/core/CMakeFiles/mwsj_core.dir/verification.cc.o" "gcc" "src/core/CMakeFiles/mwsj_core.dir/verification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mwsj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mwsj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/mwsj_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/localjoin/CMakeFiles/mwsj_localjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mwsj_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
