file(REMOVE_RECURSE
  "CMakeFiles/mwsj_core.dir/all_replicate.cc.o"
  "CMakeFiles/mwsj_core.dir/all_replicate.cc.o.d"
  "CMakeFiles/mwsj_core.dir/cascade.cc.o"
  "CMakeFiles/mwsj_core.dir/cascade.cc.o.d"
  "CMakeFiles/mwsj_core.dir/controlled_replicate.cc.o"
  "CMakeFiles/mwsj_core.dir/controlled_replicate.cc.o.d"
  "CMakeFiles/mwsj_core.dir/dedup.cc.o"
  "CMakeFiles/mwsj_core.dir/dedup.cc.o.d"
  "CMakeFiles/mwsj_core.dir/explain.cc.o"
  "CMakeFiles/mwsj_core.dir/explain.cc.o.d"
  "CMakeFiles/mwsj_core.dir/optimizer.cc.o"
  "CMakeFiles/mwsj_core.dir/optimizer.cc.o.d"
  "CMakeFiles/mwsj_core.dir/refinement.cc.o"
  "CMakeFiles/mwsj_core.dir/refinement.cc.o.d"
  "CMakeFiles/mwsj_core.dir/runner.cc.o"
  "CMakeFiles/mwsj_core.dir/runner.cc.o.d"
  "CMakeFiles/mwsj_core.dir/two_way.cc.o"
  "CMakeFiles/mwsj_core.dir/two_way.cc.o.d"
  "CMakeFiles/mwsj_core.dir/verification.cc.o"
  "CMakeFiles/mwsj_core.dir/verification.cc.o.d"
  "libmwsj_core.a"
  "libmwsj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
