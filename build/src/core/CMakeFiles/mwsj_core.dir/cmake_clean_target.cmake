file(REMOVE_RECURSE
  "libmwsj_core.a"
)
