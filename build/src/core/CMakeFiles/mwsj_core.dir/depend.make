# Empty dependencies file for mwsj_core.
# This may be replaced when dependencies are built.
