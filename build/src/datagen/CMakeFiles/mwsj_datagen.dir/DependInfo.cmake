
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/california.cc" "src/datagen/CMakeFiles/mwsj_datagen.dir/california.cc.o" "gcc" "src/datagen/CMakeFiles/mwsj_datagen.dir/california.cc.o.d"
  "/root/repo/src/datagen/distributions.cc" "src/datagen/CMakeFiles/mwsj_datagen.dir/distributions.cc.o" "gcc" "src/datagen/CMakeFiles/mwsj_datagen.dir/distributions.cc.o.d"
  "/root/repo/src/datagen/polygons.cc" "src/datagen/CMakeFiles/mwsj_datagen.dir/polygons.cc.o" "gcc" "src/datagen/CMakeFiles/mwsj_datagen.dir/polygons.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/mwsj_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/mwsj_datagen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mwsj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mwsj_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
