file(REMOVE_RECURSE
  "CMakeFiles/mwsj_datagen.dir/california.cc.o"
  "CMakeFiles/mwsj_datagen.dir/california.cc.o.d"
  "CMakeFiles/mwsj_datagen.dir/distributions.cc.o"
  "CMakeFiles/mwsj_datagen.dir/distributions.cc.o.d"
  "CMakeFiles/mwsj_datagen.dir/polygons.cc.o"
  "CMakeFiles/mwsj_datagen.dir/polygons.cc.o.d"
  "CMakeFiles/mwsj_datagen.dir/synthetic.cc.o"
  "CMakeFiles/mwsj_datagen.dir/synthetic.cc.o.d"
  "libmwsj_datagen.a"
  "libmwsj_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
