file(REMOVE_RECURSE
  "libmwsj_datagen.a"
)
