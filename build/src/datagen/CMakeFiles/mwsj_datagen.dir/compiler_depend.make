# Empty compiler generated dependencies file for mwsj_datagen.
# This may be replaced when dependencies are built.
