file(REMOVE_RECURSE
  "CMakeFiles/mwsj_geometry.dir/polygon.cc.o"
  "CMakeFiles/mwsj_geometry.dir/polygon.cc.o.d"
  "CMakeFiles/mwsj_geometry.dir/rect.cc.o"
  "CMakeFiles/mwsj_geometry.dir/rect.cc.o.d"
  "libmwsj_geometry.a"
  "libmwsj_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
