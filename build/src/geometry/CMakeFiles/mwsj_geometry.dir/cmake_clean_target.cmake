file(REMOVE_RECURSE
  "libmwsj_geometry.a"
)
