# Empty dependencies file for mwsj_geometry.
# This may be replaced when dependencies are built.
