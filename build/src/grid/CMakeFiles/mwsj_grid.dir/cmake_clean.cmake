file(REMOVE_RECURSE
  "CMakeFiles/mwsj_grid.dir/grid_partition.cc.o"
  "CMakeFiles/mwsj_grid.dir/grid_partition.cc.o.d"
  "CMakeFiles/mwsj_grid.dir/transform.cc.o"
  "CMakeFiles/mwsj_grid.dir/transform.cc.o.d"
  "libmwsj_grid.a"
  "libmwsj_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
