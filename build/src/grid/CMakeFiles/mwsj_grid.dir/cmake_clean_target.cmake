file(REMOVE_RECURSE
  "libmwsj_grid.a"
)
