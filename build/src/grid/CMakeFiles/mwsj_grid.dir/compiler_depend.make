# Empty compiler generated dependencies file for mwsj_grid.
# This may be replaced when dependencies are built.
