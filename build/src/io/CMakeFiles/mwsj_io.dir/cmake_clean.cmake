file(REMOVE_RECURSE
  "CMakeFiles/mwsj_io.dir/dataset_io.cc.o"
  "CMakeFiles/mwsj_io.dir/dataset_io.cc.o.d"
  "CMakeFiles/mwsj_io.dir/wkt.cc.o"
  "CMakeFiles/mwsj_io.dir/wkt.cc.o.d"
  "libmwsj_io.a"
  "libmwsj_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
