file(REMOVE_RECURSE
  "libmwsj_io.a"
)
