# Empty compiler generated dependencies file for mwsj_io.
# This may be replaced when dependencies are built.
