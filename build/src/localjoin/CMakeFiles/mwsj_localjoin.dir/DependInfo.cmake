
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localjoin/brute_force.cc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/brute_force.cc.o" "gcc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/brute_force.cc.o.d"
  "/root/repo/src/localjoin/multiway.cc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/multiway.cc.o" "gcc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/multiway.cc.o.d"
  "/root/repo/src/localjoin/plane_sweep.cc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/plane_sweep.cc.o" "gcc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/plane_sweep.cc.o.d"
  "/root/repo/src/localjoin/rtree.cc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/rtree.cc.o" "gcc" "src/localjoin/CMakeFiles/mwsj_localjoin.dir/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mwsj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mwsj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mwsj_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
