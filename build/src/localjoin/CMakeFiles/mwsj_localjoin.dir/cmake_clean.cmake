file(REMOVE_RECURSE
  "CMakeFiles/mwsj_localjoin.dir/brute_force.cc.o"
  "CMakeFiles/mwsj_localjoin.dir/brute_force.cc.o.d"
  "CMakeFiles/mwsj_localjoin.dir/multiway.cc.o"
  "CMakeFiles/mwsj_localjoin.dir/multiway.cc.o.d"
  "CMakeFiles/mwsj_localjoin.dir/plane_sweep.cc.o"
  "CMakeFiles/mwsj_localjoin.dir/plane_sweep.cc.o.d"
  "CMakeFiles/mwsj_localjoin.dir/rtree.cc.o"
  "CMakeFiles/mwsj_localjoin.dir/rtree.cc.o.d"
  "libmwsj_localjoin.a"
  "libmwsj_localjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_localjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
