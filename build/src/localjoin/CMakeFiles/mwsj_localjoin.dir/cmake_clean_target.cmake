file(REMOVE_RECURSE
  "libmwsj_localjoin.a"
)
