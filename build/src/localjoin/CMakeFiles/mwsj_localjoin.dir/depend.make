# Empty dependencies file for mwsj_localjoin.
# This may be replaced when dependencies are built.
