
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/cost_model.cc" "src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/cost_model.cc.o" "gcc" "src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/cost_model.cc.o.d"
  "/root/repo/src/mapreduce/counters.cc" "src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/counters.cc.o" "gcc" "src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/counters.cc.o.d"
  "/root/repo/src/mapreduce/stats_json.cc" "src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/stats_json.cc.o" "gcc" "src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/stats_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mwsj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
