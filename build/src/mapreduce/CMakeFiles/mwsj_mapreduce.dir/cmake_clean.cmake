file(REMOVE_RECURSE
  "CMakeFiles/mwsj_mapreduce.dir/cost_model.cc.o"
  "CMakeFiles/mwsj_mapreduce.dir/cost_model.cc.o.d"
  "CMakeFiles/mwsj_mapreduce.dir/counters.cc.o"
  "CMakeFiles/mwsj_mapreduce.dir/counters.cc.o.d"
  "CMakeFiles/mwsj_mapreduce.dir/stats_json.cc.o"
  "CMakeFiles/mwsj_mapreduce.dir/stats_json.cc.o.d"
  "libmwsj_mapreduce.a"
  "libmwsj_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
