file(REMOVE_RECURSE
  "libmwsj_mapreduce.a"
)
