# Empty compiler generated dependencies file for mwsj_mapreduce.
# This may be replaced when dependencies are built.
