file(REMOVE_RECURSE
  "CMakeFiles/mwsj_queries.dir/containment.cc.o"
  "CMakeFiles/mwsj_queries.dir/containment.cc.o.d"
  "CMakeFiles/mwsj_queries.dir/knn.cc.o"
  "CMakeFiles/mwsj_queries.dir/knn.cc.o.d"
  "libmwsj_queries.a"
  "libmwsj_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
