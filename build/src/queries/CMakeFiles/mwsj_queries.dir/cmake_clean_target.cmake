file(REMOVE_RECURSE
  "libmwsj_queries.a"
)
