# Empty compiler generated dependencies file for mwsj_queries.
# This may be replaced when dependencies are built.
