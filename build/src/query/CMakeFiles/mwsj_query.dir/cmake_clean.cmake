file(REMOVE_RECURSE
  "CMakeFiles/mwsj_query.dir/bounds.cc.o"
  "CMakeFiles/mwsj_query.dir/bounds.cc.o.d"
  "CMakeFiles/mwsj_query.dir/parser.cc.o"
  "CMakeFiles/mwsj_query.dir/parser.cc.o.d"
  "CMakeFiles/mwsj_query.dir/query.cc.o"
  "CMakeFiles/mwsj_query.dir/query.cc.o.d"
  "libmwsj_query.a"
  "libmwsj_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
