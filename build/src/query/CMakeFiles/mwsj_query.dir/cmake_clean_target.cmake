file(REMOVE_RECURSE
  "libmwsj_query.a"
)
