# Empty dependencies file for mwsj_query.
# This may be replaced when dependencies are built.
