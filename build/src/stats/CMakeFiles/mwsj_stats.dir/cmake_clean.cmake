file(REMOVE_RECURSE
  "CMakeFiles/mwsj_stats.dir/grid_histogram.cc.o"
  "CMakeFiles/mwsj_stats.dir/grid_histogram.cc.o.d"
  "libmwsj_stats.a"
  "libmwsj_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
