file(REMOVE_RECURSE
  "libmwsj_stats.a"
)
