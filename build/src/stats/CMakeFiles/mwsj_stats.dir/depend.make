# Empty dependencies file for mwsj_stats.
# This may be replaced when dependencies are built.
