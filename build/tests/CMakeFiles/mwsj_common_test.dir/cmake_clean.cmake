file(REMOVE_RECURSE
  "CMakeFiles/mwsj_common_test.dir/common/random_test.cc.o"
  "CMakeFiles/mwsj_common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/mwsj_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/mwsj_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/mwsj_common_test.dir/common/str_format_test.cc.o"
  "CMakeFiles/mwsj_common_test.dir/common/str_format_test.cc.o.d"
  "CMakeFiles/mwsj_common_test.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/mwsj_common_test.dir/common/thread_pool_test.cc.o.d"
  "mwsj_common_test"
  "mwsj_common_test.pdb"
  "mwsj_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
