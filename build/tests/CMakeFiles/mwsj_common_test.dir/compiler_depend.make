# Empty compiler generated dependencies file for mwsj_common_test.
# This may be replaced when dependencies are built.
