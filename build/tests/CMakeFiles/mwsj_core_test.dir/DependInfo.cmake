
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/crep_marking_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/crep_marking_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/crep_marking_test.cc.o.d"
  "/root/repo/tests/core/crepl_metric_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/crepl_metric_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/crepl_metric_test.cc.o.d"
  "/root/repo/tests/core/dedup_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/dedup_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/dedup_test.cc.o.d"
  "/root/repo/tests/core/equivalence_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/equivalence_test.cc.o.d"
  "/root/repo/tests/core/explain_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/explain_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/explain_test.cc.o.d"
  "/root/repo/tests/core/marking_oracle_property_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/marking_oracle_property_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/marking_oracle_property_test.cc.o.d"
  "/root/repo/tests/core/optimizer_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/optimizer_test.cc.o.d"
  "/root/repo/tests/core/refinement_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/refinement_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/refinement_test.cc.o.d"
  "/root/repo/tests/core/runner_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/runner_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/runner_test.cc.o.d"
  "/root/repo/tests/core/two_way_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/two_way_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/two_way_test.cc.o.d"
  "/root/repo/tests/core/verification_test.cc" "tests/CMakeFiles/mwsj_core_test.dir/core/verification_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_core_test.dir/core/verification_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mwsj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mwsj_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mwsj_io.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/mwsj_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mwsj_stats.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/mwsj_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/localjoin/CMakeFiles/mwsj_localjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/mwsj_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mwsj_query.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mwsj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mwsj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
