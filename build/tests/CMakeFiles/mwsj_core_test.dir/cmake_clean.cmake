file(REMOVE_RECURSE
  "CMakeFiles/mwsj_core_test.dir/core/crep_marking_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/crep_marking_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/crepl_metric_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/crepl_metric_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/dedup_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/dedup_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/equivalence_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/equivalence_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/explain_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/explain_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/marking_oracle_property_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/marking_oracle_property_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/optimizer_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/optimizer_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/refinement_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/refinement_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/runner_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/runner_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/two_way_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/two_way_test.cc.o.d"
  "CMakeFiles/mwsj_core_test.dir/core/verification_test.cc.o"
  "CMakeFiles/mwsj_core_test.dir/core/verification_test.cc.o.d"
  "mwsj_core_test"
  "mwsj_core_test.pdb"
  "mwsj_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
