# Empty dependencies file for mwsj_core_test.
# This may be replaced when dependencies are built.
