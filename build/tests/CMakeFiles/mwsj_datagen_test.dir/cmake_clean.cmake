file(REMOVE_RECURSE
  "CMakeFiles/mwsj_datagen_test.dir/datagen/california_test.cc.o"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/california_test.cc.o.d"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/distributions_test.cc.o"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/distributions_test.cc.o.d"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/polygons_test.cc.o"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/polygons_test.cc.o.d"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/synthetic_test.cc.o"
  "CMakeFiles/mwsj_datagen_test.dir/datagen/synthetic_test.cc.o.d"
  "mwsj_datagen_test"
  "mwsj_datagen_test.pdb"
  "mwsj_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
