# Empty compiler generated dependencies file for mwsj_datagen_test.
# This may be replaced when dependencies are built.
