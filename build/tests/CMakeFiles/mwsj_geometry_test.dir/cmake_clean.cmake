file(REMOVE_RECURSE
  "CMakeFiles/mwsj_geometry_test.dir/geometry/geometry_property_test.cc.o"
  "CMakeFiles/mwsj_geometry_test.dir/geometry/geometry_property_test.cc.o.d"
  "CMakeFiles/mwsj_geometry_test.dir/geometry/polygon_test.cc.o"
  "CMakeFiles/mwsj_geometry_test.dir/geometry/polygon_test.cc.o.d"
  "CMakeFiles/mwsj_geometry_test.dir/geometry/rect_test.cc.o"
  "CMakeFiles/mwsj_geometry_test.dir/geometry/rect_test.cc.o.d"
  "mwsj_geometry_test"
  "mwsj_geometry_test.pdb"
  "mwsj_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
