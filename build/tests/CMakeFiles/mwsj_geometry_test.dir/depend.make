# Empty dependencies file for mwsj_geometry_test.
# This may be replaced when dependencies are built.
