file(REMOVE_RECURSE
  "CMakeFiles/mwsj_grid_test.dir/grid/grid_partition_test.cc.o"
  "CMakeFiles/mwsj_grid_test.dir/grid/grid_partition_test.cc.o.d"
  "CMakeFiles/mwsj_grid_test.dir/grid/grid_property_test.cc.o"
  "CMakeFiles/mwsj_grid_test.dir/grid/grid_property_test.cc.o.d"
  "CMakeFiles/mwsj_grid_test.dir/grid/transform_test.cc.o"
  "CMakeFiles/mwsj_grid_test.dir/grid/transform_test.cc.o.d"
  "mwsj_grid_test"
  "mwsj_grid_test.pdb"
  "mwsj_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
