# Empty compiler generated dependencies file for mwsj_grid_test.
# This may be replaced when dependencies are built.
