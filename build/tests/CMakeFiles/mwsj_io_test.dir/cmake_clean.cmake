file(REMOVE_RECURSE
  "CMakeFiles/mwsj_io_test.dir/io/dataset_io_test.cc.o"
  "CMakeFiles/mwsj_io_test.dir/io/dataset_io_test.cc.o.d"
  "CMakeFiles/mwsj_io_test.dir/io/wkt_test.cc.o"
  "CMakeFiles/mwsj_io_test.dir/io/wkt_test.cc.o.d"
  "mwsj_io_test"
  "mwsj_io_test.pdb"
  "mwsj_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
