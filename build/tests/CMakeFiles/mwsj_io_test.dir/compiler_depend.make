# Empty compiler generated dependencies file for mwsj_io_test.
# This may be replaced when dependencies are built.
