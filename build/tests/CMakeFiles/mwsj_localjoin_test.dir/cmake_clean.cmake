file(REMOVE_RECURSE
  "CMakeFiles/mwsj_localjoin_test.dir/localjoin/multiway_test.cc.o"
  "CMakeFiles/mwsj_localjoin_test.dir/localjoin/multiway_test.cc.o.d"
  "CMakeFiles/mwsj_localjoin_test.dir/localjoin/plane_sweep_test.cc.o"
  "CMakeFiles/mwsj_localjoin_test.dir/localjoin/plane_sweep_test.cc.o.d"
  "CMakeFiles/mwsj_localjoin_test.dir/localjoin/rtree_test.cc.o"
  "CMakeFiles/mwsj_localjoin_test.dir/localjoin/rtree_test.cc.o.d"
  "mwsj_localjoin_test"
  "mwsj_localjoin_test.pdb"
  "mwsj_localjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_localjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
