# Empty dependencies file for mwsj_localjoin_test.
# This may be replaced when dependencies are built.
