file(REMOVE_RECURSE
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/cost_model_test.cc.o"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/cost_model_test.cc.o.d"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/dfs_test.cc.o"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/dfs_test.cc.o.d"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/engine_test.cc.o"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/engine_test.cc.o.d"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/stats_json_test.cc.o"
  "CMakeFiles/mwsj_mapreduce_test.dir/mapreduce/stats_json_test.cc.o.d"
  "mwsj_mapreduce_test"
  "mwsj_mapreduce_test.pdb"
  "mwsj_mapreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_mapreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
