# Empty dependencies file for mwsj_mapreduce_test.
# This may be replaced when dependencies are built.
