file(REMOVE_RECURSE
  "CMakeFiles/mwsj_queries_test.dir/queries/containment_test.cc.o"
  "CMakeFiles/mwsj_queries_test.dir/queries/containment_test.cc.o.d"
  "CMakeFiles/mwsj_queries_test.dir/queries/knn_test.cc.o"
  "CMakeFiles/mwsj_queries_test.dir/queries/knn_test.cc.o.d"
  "mwsj_queries_test"
  "mwsj_queries_test.pdb"
  "mwsj_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
