# Empty compiler generated dependencies file for mwsj_queries_test.
# This may be replaced when dependencies are built.
