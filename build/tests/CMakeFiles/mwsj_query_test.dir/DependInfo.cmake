
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/bounds_test.cc" "tests/CMakeFiles/mwsj_query_test.dir/query/bounds_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_query_test.dir/query/bounds_test.cc.o.d"
  "/root/repo/tests/query/parser_test.cc" "tests/CMakeFiles/mwsj_query_test.dir/query/parser_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_query_test.dir/query/parser_test.cc.o.d"
  "/root/repo/tests/query/query_test.cc" "tests/CMakeFiles/mwsj_query_test.dir/query/query_test.cc.o" "gcc" "tests/CMakeFiles/mwsj_query_test.dir/query/query_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mwsj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/mwsj_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mwsj_io.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/mwsj_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mwsj_stats.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/mwsj_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/localjoin/CMakeFiles/mwsj_localjoin.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/mwsj_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/mwsj_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mwsj_query.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mwsj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mwsj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
