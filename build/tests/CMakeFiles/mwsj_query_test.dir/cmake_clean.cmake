file(REMOVE_RECURSE
  "CMakeFiles/mwsj_query_test.dir/query/bounds_test.cc.o"
  "CMakeFiles/mwsj_query_test.dir/query/bounds_test.cc.o.d"
  "CMakeFiles/mwsj_query_test.dir/query/parser_test.cc.o"
  "CMakeFiles/mwsj_query_test.dir/query/parser_test.cc.o.d"
  "CMakeFiles/mwsj_query_test.dir/query/query_test.cc.o"
  "CMakeFiles/mwsj_query_test.dir/query/query_test.cc.o.d"
  "mwsj_query_test"
  "mwsj_query_test.pdb"
  "mwsj_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
