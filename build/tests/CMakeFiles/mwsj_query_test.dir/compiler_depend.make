# Empty compiler generated dependencies file for mwsj_query_test.
# This may be replaced when dependencies are built.
