file(REMOVE_RECURSE
  "CMakeFiles/mwsj_stats_test.dir/stats/grid_histogram_test.cc.o"
  "CMakeFiles/mwsj_stats_test.dir/stats/grid_histogram_test.cc.o.d"
  "mwsj_stats_test"
  "mwsj_stats_test.pdb"
  "mwsj_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
