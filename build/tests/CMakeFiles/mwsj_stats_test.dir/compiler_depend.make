# Empty compiler generated dependencies file for mwsj_stats_test.
# This may be replaced when dependencies are built.
