file(REMOVE_RECURSE
  "CMakeFiles/mwsj_testing.dir/testing/world.cc.o"
  "CMakeFiles/mwsj_testing.dir/testing/world.cc.o.d"
  "libmwsj_testing.a"
  "libmwsj_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
