file(REMOVE_RECURSE
  "libmwsj_testing.a"
)
