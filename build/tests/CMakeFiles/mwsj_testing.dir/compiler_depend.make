# Empty compiler generated dependencies file for mwsj_testing.
# This may be replaced when dependencies are built.
