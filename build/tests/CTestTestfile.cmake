# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mwsj_common_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_grid_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_datagen_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_query_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_localjoin_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_io_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_queries_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_stats_test[1]_include.cmake")
include("/root/repo/build/tests/mwsj_core_test[1]_include.cmake")
