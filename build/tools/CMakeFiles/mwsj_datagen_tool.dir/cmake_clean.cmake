file(REMOVE_RECURSE
  "CMakeFiles/mwsj_datagen_tool.dir/mwsj_datagen.cc.o"
  "CMakeFiles/mwsj_datagen_tool.dir/mwsj_datagen.cc.o.d"
  "mwsj_datagen"
  "mwsj_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_datagen_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
