# Empty compiler generated dependencies file for mwsj_datagen_tool.
# This may be replaced when dependencies are built.
