file(REMOVE_RECURSE
  "CMakeFiles/mwsj_join.dir/mwsj_join.cc.o"
  "CMakeFiles/mwsj_join.dir/mwsj_join.cc.o.d"
  "mwsj_join"
  "mwsj_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsj_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
