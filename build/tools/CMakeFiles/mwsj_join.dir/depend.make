# Empty dependencies file for mwsj_join.
# This may be replaced when dependencies are built.
