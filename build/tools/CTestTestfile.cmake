# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline_smoke "/usr/bin/cmake" "-DDATAGEN=/root/repo/build/tools/mwsj_datagen" "-DJOIN=/root/repo/build/tools/mwsj_join" "-DWORKDIR=/root/repo/build/tools/smoke" "-P" "/root/repo/tools/pipeline_smoke.cmake")
set_tests_properties(tools_pipeline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
