// The paper's §1 motivating query — "find all cities adjacent to a forest
// and overlapping with a river" — run as a full filter-and-refine pipeline
// over true polygon geometries (§1.1): the distributed join evaluates the
// MBR filter step with Controlled-Replicate, and the refinement step
// re-checks candidates against the exact polygon predicates.
//
//   $ ./examples/city_forest_river

#include <cstdio>

#include "core/refinement.h"
#include "datagen/polygons.h"

int main() {
  constexpr double kSpace = 4000;

  // Cities: compact convex footprints. Forests: concave blobs. Rivers:
  // long thin corridors. All from the polygon dataset generators.
  mwsj::PolygonDatasetParams params;
  params.space = mwsj::Rect(60, 60, kSpace - 60, kSpace - 60);
  params.min_radius = 12;
  params.max_radius = 45;

  params.count = 600;
  params.seed = 1;
  const std::vector<mwsj::Polygon> cities =
      mwsj::GenerateConvexFootprints(params);
  params.count = 250;
  params.seed = 2;
  params.max_radius = 75;
  const std::vector<mwsj::Polygon> forests =
      mwsj::GenerateConcaveBlobs(params);
  params.count = 120;
  params.seed = 3;
  const std::vector<mwsj::Polygon> rivers = mwsj::GenerateCorridors(params);

  const std::vector<std::vector<mwsj::Polygon>> relations = {cities, forests,
                                                             rivers};

  // "adjacent to a forest" = within 25 units; "overlap with a river" = Ov.
  mwsj::QueryBuilder qb;
  const int city = qb.AddRelation("city");
  const int forest = qb.AddRelation("forest");
  const int river = qb.AddRelation("river");
  qb.AddRange(city, forest, 25.0).AddOverlap(city, river);
  const mwsj::Query query = qb.Build().value();
  std::printf("query: %s\n", query.ToString().c_str());

  mwsj::RunnerOptions options;
  options.algorithm = mwsj::Algorithm::kControlledReplicateInLimit;
  options.grid_rows = 8;
  options.grid_cols = 8;
  const auto result = mwsj::RunFilterRefineJoin(query, relations, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("filter step (MBRs):   %lld candidate tuples\n",
              static_cast<long long>(result.value().candidate_tuples));
  std::printf("refine step (exact):  %zu true matches\n",
              result.value().tuples.size());
  if (result.value().candidate_tuples > 0) {
    std::printf("filter precision:     %.1f%%\n",
                100.0 * static_cast<double>(result.value().tuples.size()) /
                    static_cast<double>(result.value().candidate_tuples));
  }
  for (size_t i = 0; i < result.value().tuples.size() && i < 5; ++i) {
    const mwsj::IdTuple& t = result.value().tuples[i];
    std::printf("  city %lld near forest %lld, crossing river %lld\n",
                static_cast<long long>(t[0]), static_cast<long long>(t[1]),
                static_cast<long long>(t[2]));
  }
  return 0;
}
