// Facility planning with a star-shaped hybrid query: find (site, highway,
// supplier, substation) combinations where a candidate site overlaps a
// highway corridor, lies within 150 units of a supplier, and within 300
// units of a power substation. Demonstrates general join graphs (a star,
// not a chain), per-edge distances, and the C-Rep-L replication bounds
// derived from the join graph.
//
//   $ ./examples/facility_range_planning

#include <cstdio>

#include "core/runner.h"
#include "datagen/synthetic.h"
#include "query/bounds.h"

namespace {

std::vector<mwsj::Rect> Dataset(int64_t n, double lmax, double bmax,
                                uint64_t seed) {
  mwsj::SyntheticParams params;
  params.num_rectangles = n;
  params.x_max = params.y_max = 20'000;
  params.l_max = lmax;
  params.b_max = bmax;
  params.seed = seed;
  return mwsj::GenerateSynthetic(params).value();
}

}  // namespace

int main() {
  // Sites are small parcels; highways are long and thin; suppliers and
  // substations are mid-sized footprints.
  const std::vector<std::vector<mwsj::Rect>> relations = {
      Dataset(5000, 40, 40, 11),    // site
      Dataset(400, 2500, 25, 22),   // highway
      Dataset(800, 120, 120, 33),   // supplier
      Dataset(300, 80, 80, 44),     // substation
  };

  mwsj::QueryBuilder qb;
  const int site = qb.AddRelation("site");
  const int highway = qb.AddRelation("highway");
  const int supplier = qb.AddRelation("supplier");
  const int substation = qb.AddRelation("substation");
  qb.AddOverlap(site, highway)
      .AddRange(site, supplier, 150)
      .AddRange(site, substation, 300);
  const mwsj::Query query = qb.Build().value();
  std::printf("query: %s\n", query.ToString().c_str());

  // The per-relation replication bounds C-Rep-L derives from the join
  // graph and the datasets' diagonal upper bounds (§7.9/§8, generalized).
  std::vector<double> diagonals;
  for (const auto& relation : relations) {
    diagonals.push_back(mwsj::MaxDiagonal(relation));
  }
  const std::vector<double> bounds =
      mwsj::ComputeReplicationBounds(query, diagonals);
  for (int r = 0; r < query.num_relations(); ++r) {
    std::printf("  %-11s d_max %7.1f -> replication bound %7.1f\n",
                query.relation_names()[static_cast<size_t>(r)].c_str(),
                diagonals[static_cast<size_t>(r)],
                bounds[static_cast<size_t>(r)]);
  }

  mwsj::RunnerOptions options;
  options.algorithm = mwsj::Algorithm::kControlledReplicateInLimit;
  options.grid_rows = 8;
  options.grid_cols = 8;
  const auto result = mwsj::RunSpatialJoin(query, relations, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("feasible combinations: %lld\n",
              static_cast<long long>(result.value().num_tuples));
  for (size_t i = 0; i < result.value().tuples.size() && i < 5; ++i) {
    const mwsj::IdTuple& t = result.value().tuples[i];
    std::printf("  site %lld on highway %lld, supplier %lld, substation %lld\n",
                static_cast<long long>(t[0]), static_cast<long long>(t[1]),
                static_cast<long long>(t[2]), static_cast<long long>(t[3]));
  }
  std::printf(
      "replication: %lld rectangles marked, %lld copies shipped\n",
      static_cast<long long>(result.value().stats.UserCounter(
          mwsj::kCounterRectanglesReplicated)),
      static_cast<long long>(result.value().stats.UserCounter(
          mwsj::kCounterReplicationCopies)));
  return 0;
}
