// Beyond joins: the paper's §10 future-work queries on the same substrate.
// Given a city's incident locations (points) and facility footprints
// (rectangles), find for each incident (a) the 3 nearest fire stations
// (kNN query) and (b) the district polygon-MBB containing it (containment
// query).
//
//   $ ./examples/nearest_facilities

#include <cstdio>

#include "common/random.h"
#include "queries/containment.h"
#include "queries/knn.h"

int main() {
  constexpr double kCity = 10'000;
  mwsj::Rng rng(99);

  // 25 fire stations scattered across the city.
  std::vector<mwsj::Rect> stations;
  for (int i = 0; i < 25; ++i) {
    stations.push_back(mwsj::Rect::FromXYLB(rng.Uniform(0, kCity - 80),
                                            rng.Uniform(80, kCity), 80, 80));
  }
  // A 10x10 block of district footprints tiling the city.
  std::vector<mwsj::Rect> districts;
  for (int row = 0; row < 10; ++row) {
    for (int col = 0; col < 10; ++col) {
      districts.push_back(mwsj::Rect::FromXYLB(col * 1000.0,
                                               (row + 1) * 1000.0, 1000, 1000));
    }
  }
  // 5000 incident locations.
  std::vector<mwsj::Point> incidents;
  for (int i = 0; i < 5000; ++i) {
    incidents.push_back(
        mwsj::Point{rng.Uniform(0, kCity), rng.Uniform(0, kCity)});
  }

  const mwsj::GridPartition grid =
      mwsj::GridPartition::Create(mwsj::Rect(0, 0, kCity, kCity), 8, 8)
          .value();

  const auto knn = mwsj::KnnJoin(grid, incidents, stations, 3);
  if (!knn.ok()) {
    std::fprintf(stderr, "knn error: %s\n", knn.status().ToString().c_str());
    return 1;
  }
  const auto containment = mwsj::ContainmentJoin(grid, incidents, districts);
  if (!containment.ok()) {
    std::fprintf(stderr, "containment error: %s\n",
                 containment.status().ToString().c_str());
    return 1;
  }

  double avg_first = 0;
  for (const auto& nn : knn.value().neighbors) {
    avg_first += nn.empty() ? 0 : nn[0].distance;
  }
  std::printf("incidents: %zu, stations: %zu, districts: %zu\n",
              incidents.size(), stations.size(), districts.size());
  std::printf("average distance to the nearest station: %.0f\n",
              avg_first / static_cast<double>(incidents.size()));
  std::printf("district assignments found: %zu\n",
              containment.value().pairs.size());

  const auto& first = knn.value().neighbors[0];
  std::printf("incident 0 at (%.0f, %.0f):\n", incidents[0].x, incidents[0].y);
  for (const mwsj::KnnNeighbor& n : first) {
    std::printf("  station %lld at distance %.0f\n",
                static_cast<long long>(n.rect_id), n.distance);
  }
  int64_t knn_shuffle = 0;
  for (const mwsj::JobStats& job : knn.value().stats.jobs) {
    knn_shuffle += job.intermediate_records;
  }
  std::printf("kNN ran %zu map-reduce rounds, %lld records shuffled\n",
              knn.value().stats.jobs.size(),
              static_cast<long long>(knn_shuffle));
  return 0;
}
