// Quickstart: the smallest end-to-end use of the library.
//
// Builds a three-way overlap query from its textual form, generates two
// small synthetic datasets plus one shared one, runs Controlled-Replicate
// on a 4x4 reducer grid, and prints the output tuples and the run's
// map-reduce statistics.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/runner.h"
#include "datagen/synthetic.h"
#include "query/parser.h"

int main() {
  // 1. The query: A overlaps B, and B is within distance 40 of C.
  const mwsj::StatusOr<mwsj::Query> query =
      mwsj::ParseQuery("A OV B AND B RA(40) C");
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n", query.value().ToString().c_str());

  // 2. Three rectangle datasets in a 1000 x 1000 space.
  mwsj::SyntheticParams params;
  params.num_rectangles = 400;
  params.x_max = params.y_max = 1000;
  params.l_max = params.b_max = 30;
  std::vector<std::vector<mwsj::Rect>> relations;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    params.seed = seed;
    relations.push_back(mwsj::GenerateSynthetic(params).value());
  }

  // 3. Run the join with the paper's Controlled-Replicate algorithm.
  mwsj::RunnerOptions options;
  options.algorithm = mwsj::Algorithm::kControlledReplicate;
  options.grid_rows = 4;
  options.grid_cols = 4;
  const mwsj::StatusOr<mwsj::JoinRunResult> result =
      mwsj::RunSpatialJoin(query.value(), relations, options);
  if (!result.ok()) {
    std::fprintf(stderr, "join error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the output and the cost profile.
  std::printf("output tuples: %lld\n",
              static_cast<long long>(result.value().num_tuples));
  for (size_t i = 0; i < result.value().tuples.size() && i < 5; ++i) {
    const mwsj::IdTuple& t = result.value().tuples[i];
    std::printf("  (A=%lld, B=%lld, C=%lld)\n", static_cast<long long>(t[0]),
                static_cast<long long>(t[1]), static_cast<long long>(t[2]));
  }
  for (const mwsj::JobStats& job : result.value().stats.jobs) {
    std::printf(
        "job %-18s shuffled %lld records (%lld bytes), max reducer load "
        "%lld\n",
        job.job_name.c_str(),
        static_cast<long long>(job.intermediate_records),
        static_cast<long long>(job.intermediate_bytes),
        static_cast<long long>(job.MaxReducerRecords()));
  }
  std::printf(
      "rectangles marked for replication: %lld\n",
      static_cast<long long>(result.value().stats.UserCounter(
          mwsj::kCounterRectanglesReplicated)));
  return 0;
}
