// Road-network analysis on the (synthetic) California road dataset: find
// connected road triples rd1-rd2-rd3 — the paper's Q2s self-join — and
// compare what each algorithm pays to compute them.
//
//   $ ./examples/road_network_triples

#include <cstdio>

#include "common/stopwatch.h"
#include "core/runner.h"
#include "datagen/california.h"
#include "datagen/synthetic.h"

int main() {
  // A 40K-road slice of the California generator keeps this example quick.
  mwsj::CaliforniaParams params;
  params.num_roads = 2'092'079;
  std::vector<mwsj::Rect> all_roads = mwsj::GenerateCaliforniaRoads(params);
  // Crop a window (a metro area) rather than sampling, preserving local
  // road density.
  const mwsj::Rect window(0, 0, 9000, 14000);
  std::vector<mwsj::Rect> roads;
  for (const mwsj::Rect& r : all_roads) {
    if (window.Contains(r)) roads.push_back(r);
  }
  std::printf("roads in window: %zu\n", roads.size());

  // Self-join: the same dataset plays all three roles.
  mwsj::QueryBuilder qb;
  const int a = qb.AddRelation("rd1");
  const int b = qb.AddRelation("rd2");
  const int c = qb.AddRelation("rd3");
  qb.AddOverlap(a, b).AddOverlap(b, c);
  const mwsj::Query query = qb.Build().value();
  const std::vector<std::vector<mwsj::Rect>> data = {roads, roads, roads};

  int64_t crep_triples = -1;
  for (const mwsj::Algorithm algorithm :
       {mwsj::Algorithm::kTwoWayCascade, mwsj::Algorithm::kAllReplicate,
        mwsj::Algorithm::kControlledReplicate,
        mwsj::Algorithm::kControlledReplicateInLimit}) {
    mwsj::RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 8;
    options.grid_cols = 8;
    options.space = window;
    options.distinct_ids = true;  // A road triple should be three roads.
    mwsj::Stopwatch watch;
    const auto result = mwsj::RunSpatialJoin(query, data, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", AlgorithmName(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    if (crep_triples < 0) crep_triples = result.value().num_tuples;
    std::printf(
        "%-14s %8.2fs  %9lld triples  %12lld records shuffled  "
        "(%lld rectangles replicated)\n",
        AlgorithmName(algorithm), watch.ElapsedSeconds(),
        static_cast<long long>(result.value().num_tuples),
        static_cast<long long>(
            result.value().stats.TotalIntermediateRecords()),
        static_cast<long long>(result.value().stats.UserCounter(
            mwsj::kCounterRectanglesReplicated)));
  }
  return 0;
}
