#ifndef MWSJ_COMMON_EFFECTS_H_
#define MWSJ_COMMON_EFFECTS_H_

/// Effect annotations consumed by tools/mwsj_check.py (DESIGN.md §2.15).
///
/// Each macro expands to a `[[clang::annotate("mwsj::<effect>")]]` attribute
/// under Clang and to nothing under other compilers, so the annotations have
/// zero runtime cost and do not constrain the GCC build. They declare the
/// *effect contract* of a function; the analyzer propagates the contracts
/// over the whole-program call graph built from compile_commands.json:
///
///   MWSJ_ALLOC_FREE     The function must not transitively reach
///                       operator new / malloc / growing-container calls.
///                       Function-granular successor of the PR-5
///                       `// mwsj-lint: alloc-free` file marker, enforcing
///                       the PR-3 `allocs_per_probe == 0` kernel contract.
///   MWSJ_DETERMINISTIC  Every path from the function into Emitter::Emit
///                       must avoid unordered-container iteration,
///                       pointer-valued ordering, and RNG outside common/ —
///                       the static form of the PR-1 plane-sweep tie-break
///                       bug class (byte-identical emit streams).
///   MWSJ_BLOCKING       The function may block (Dfs I/O under a mutex,
///                       CondVar waits, pool joins). Must be unreachable
///                       from map/reduce inner loops (any MWSJ_ALLOC_FREE
///                       or MWSJ_DETERMINISTIC function) except through an
///                       MWSJ_BLOCKING_OK entry point.
///   MWSJ_BLOCKING_OK    A sanctioned blocking entry point (spill-flush
///                       staging, job orchestration). The blocking-reach
///                       traversal stops here: callees may block.
///
/// Annotations go on the declaration, before the return type:
///
///   MWSJ_ALLOC_FREE void CollectOverlapping(..., QueryScratch* scratch);
///
/// Lambdas cannot carry attributes; hoist hot lambda bodies into named
/// functions (see queries/knn_mr.cc) — which is also what makes them unit
/// testable. Violations are suppressed per-site with a justified comment:
///
///   // mwsj-check: allow(alloc-free-reach): caller-owned scratch push_back.
///
/// See tools/mwsj_check_rules.md for the rule table.

#if defined(__clang__)
#define MWSJ_ALLOC_FREE [[clang::annotate("mwsj::alloc_free")]]
#define MWSJ_DETERMINISTIC [[clang::annotate("mwsj::deterministic")]]
#define MWSJ_BLOCKING [[clang::annotate("mwsj::blocking")]]
#define MWSJ_BLOCKING_OK [[clang::annotate("mwsj::blocking_ok")]]
#else
#define MWSJ_ALLOC_FREE
#define MWSJ_DETERMINISTIC
#define MWSJ_BLOCKING
#define MWSJ_BLOCKING_OK
#endif

#endif  // MWSJ_COMMON_EFFECTS_H_
