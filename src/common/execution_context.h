#ifndef MWSJ_COMMON_EXECUTION_CONTEXT_H_
#define MWSJ_COMMON_EXECUTION_CONTEXT_H_

#include <string>

namespace mwsj {

class ThreadPool;
class Tracer;

/// Everything an algorithm needs from its execution environment, bundled
/// so a run threads one value through engine, algorithms, and tools
/// instead of loose `ThreadPool*` parameters:
///
///   * `pool`   — optional worker pool shared across all phases of a run;
///                null means synchronous single-threaded execution;
///   * `tracer` — optional span tracer (common/trace.h); null disables
///                instrumentation at a single pointer test per span;
///   * `label`  — run-scoped metadata attached to top-level trace spans
///                (e.g. the algorithm name or a tool-run identifier).
///
/// The context is a cheap value type holding non-owning pointers; the
/// caller keeps pool and tracer alive for the duration of the run.
struct ExecutionContext {
  ThreadPool* pool = nullptr;
  Tracer* tracer = nullptr;
  std::string label;

  ExecutionContext() = default;
  /// Explicit so a raw `ThreadPool*` (or nullptr) passed to a function
  /// overloaded on ThreadPool*/ExecutionContext stays unambiguous.
  explicit ExecutionContext(ThreadPool* pool, Tracer* tracer = nullptr)
      : pool(pool), tracer(tracer) {}
};

}  // namespace mwsj

#endif  // MWSJ_COMMON_EXECUTION_CONTEXT_H_
