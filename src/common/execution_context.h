#ifndef MWSJ_COMMON_EXECUTION_CONTEXT_H_
#define MWSJ_COMMON_EXECUTION_CONTEXT_H_

#include <cstdint>
#include <string>

namespace mwsj {

class Dfs;
class FaultPlan;
struct RetryPolicy;
class ThreadPool;
class Tracer;

/// Per-run execution knobs consulted by the map-reduce engine. Kept apart
/// from the pointer bundle below so a scheduler can clamp them per job
/// without touching the environment wiring.
struct ExecutionOptions {
  /// Byte budget for the engine's in-memory shuffle state (the per-chunk ×
  /// per-reducer bucket matrix). 0 means "inherit the MWSJ_SHUFFLE_BUDGET
  /// environment override, else unlimited" — today's fully in-memory
  /// behavior. -1 means explicitly unlimited (ignore the environment).
  /// A positive budget turns on spill mode: every mapper chunk sorts its
  /// buckets by key, chunks whose output exceeds budget/num_chunks flush
  /// their buckets as columnar-compressed sorted runs, and reducer inboxes
  /// are rebuilt by a k-way loser-tree merge. Output is byte-identical to
  /// the unlimited path (mapreduce/spill.h, DESIGN.md §2.13).
  int64_t shuffle_memory_budget = 0;
};

/// Everything an algorithm needs from its execution environment, bundled
/// so a run threads one value through engine, algorithms, and tools
/// instead of loose `ThreadPool*` parameters:
///
///   * `pool`   — optional worker pool shared across all phases of a run;
///                null means synchronous single-threaded execution;
///   * `tracer` — optional span tracer (common/trace.h); null disables
///                instrumentation at a single pointer test per span;
///   * `label`  — run-scoped metadata attached to top-level trace spans
///                (e.g. the algorithm name or a tool-run identifier);
///   * `faults` — optional fault-injection plan (mapreduce/fault.h); null
///                (or an empty plan) runs every task attempt fault-free;
///   * `retry`  — retry/backoff/straggler policy consulted only when an
///                attempt faults; null uses the engine's built-in default;
///   * `dfs`    — optional distributed-file-system model; when set, each
///                job commits its reduce output as `<job>/part-<r>` files
///                through attempt-scoped staging;
///   * `job_id` — scheduler-assigned id when several jobs share one pool
///                (core/scheduler.h); -1 means a standalone run. When set,
///                trace spans, JobStats, engine error messages, and DFS
///                part paths carry the id so concurrent jobs stay
///                attributable;
///   * `options` — value knobs (shuffle memory budget) the engine reads
///                per run; see ExecutionOptions.
///
/// The context is a cheap value type holding non-owning pointers; the
/// caller keeps pool and tracer alive for the duration of the run.
struct ExecutionContext {
  ThreadPool* pool = nullptr;
  Tracer* tracer = nullptr;
  std::string label;
  const FaultPlan* faults = nullptr;
  const RetryPolicy* retry = nullptr;
  Dfs* dfs = nullptr;
  int64_t job_id = -1;
  ExecutionOptions options;

  ExecutionContext() = default;
  /// Explicit so a raw `ThreadPool*` (or nullptr) passed to a function
  /// overloaded on ThreadPool*/ExecutionContext stays unambiguous.
  explicit ExecutionContext(ThreadPool* pool, Tracer* tracer = nullptr)
      : pool(pool), tracer(tracer) {}
};

}  // namespace mwsj

#endif  // MWSJ_COMMON_EXECUTION_CONTEXT_H_
