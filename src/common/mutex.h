#ifndef MWSJ_COMMON_MUTEX_H_
#define MWSJ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/effects.h"
#include "common/thread_annotations.h"

namespace mwsj {

/// Annotated drop-in replacements for `std::mutex` / `std::lock_guard` /
/// `std::condition_variable`, giving Clang's `-Wthread-safety` analysis the
/// capability attributes the standard types lack. Zero-overhead: every
/// member is an inline forward to the wrapped std type.
///
/// `Mutex` is BasicLockable (lock/unlock/try_lock), so it also works with
/// `std::unique_lock` and `std::condition_variable_any` — but prefer
/// `MutexLock` and `CondVar`, which keep the analysis informed; an
/// unannotated `std::unique_lock<Mutex>` makes the analysis lose track of
/// the critical section.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over `Mutex`; the analysis treats the guard's
/// scope as the region where the mutex is held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable usable with `Mutex`. `Wait` takes the mutex the
/// caller holds (enforced by `REQUIRES`); as with `std::condition_variable`
/// the predicate must be re-checked in a loop around the wait, and that
/// explicit `while (!pred) cv.Wait(mu);` shape — rather than the
/// `wait(lock, lambda)` overload — is what lets the analysis verify the
/// predicate's guarded reads.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups are possible; loop on the predicate.
  /// MWSJ_BLOCKING: unbounded wait — must stay out of map/reduce inner
  /// loops (tools/mwsj_check.py blocking-reach).
  MWSJ_BLOCKING void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's MutexLock keeps ownership.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mwsj

#endif  // MWSJ_COMMON_MUTEX_H_
