#include "common/random.h"

#include <cmath>

namespace mwsj {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used only to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Gaussian() {
  // Box-Muller; draws until the uniform is strictly positive so the log is
  // finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace mwsj
