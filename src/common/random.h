#ifndef MWSJ_COMMON_RANDOM_H_
#define MWSJ_COMMON_RANDOM_H_

#include <cstdint>

namespace mwsj {

/// Deterministic, seedable PRNG (xoshiro256**). Used everywhere instead of
/// <random> engines so that datasets, shuffles, and property tests are
/// reproducible across platforms and standard-library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace mwsj

#endif  // MWSJ_COMMON_RANDOM_H_
