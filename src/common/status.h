#ifndef MWSJ_COMMON_STATUS_H_
#define MWSJ_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace mwsj {

/// Error categories used across the library. Modeled after the
/// Status idiom common in database engines: no exceptions on the
/// hot path, explicit propagation at module boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// A cheap, copyable success-or-error value. `Status::OK()` carries no
/// allocation; error statuses carry a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logging and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns the enum name of `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A value-or-error result. Callers must check `ok()` before `value()`.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl.
      : repr_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl.
      : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    // Leaked-singleton OK value: a function-local static Status would have
    // a non-trivial destructor (static-destruction-order hazard), and
    // get_if keeps this warning-free where std::get's throwing path
    // confuses GCC's uninitialized-value analysis.
    static const Status& kOk = *new Status();
    const Status* error = std::get_if<Status>(&repr_);
    return error != nullptr ? *error : kOk;
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define MWSJ_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::mwsj::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace mwsj

#endif  // MWSJ_COMMON_STATUS_H_
