#include "common/str_format.h"

#include <cmath>

namespace mwsj {

std::string FormatHhMm(double seconds) {
  if (seconds < 0) seconds = 0;
  const long total_minutes = std::lround(seconds / 60.0);
  const long hh = total_minutes / 60;
  const long mm = total_minutes % 60;
  return StrFormat("%02ld:%02ld", hh, mm);
}

std::string FormatMillions(double count) {
  const double millions = count / 1e6;
  if (millions >= 100.0) return StrFormat("%.0fm", millions);
  if (millions >= 1.0) return StrFormat("%.1fm", millions);
  return StrFormat("%.2fm", millions);
}

}  // namespace mwsj
