#ifndef MWSJ_COMMON_STR_FORMAT_H_
#define MWSJ_COMMON_STR_FORMAT_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace mwsj {

/// printf-style formatting into a std::string. Kept out-of-line-free and
/// tiny on purpose; the benches use it heavily for table rows.
inline std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

/// Formats a duration in seconds as the paper's "hh:mm" column format
/// (rounded to the nearest minute, minimum "00:00").
std::string FormatHhMm(double seconds);

/// Formats a count like 64'300'000 as "64.3m", 3'900 as "0.0m"-avoiding
/// human-readable millions with one decimal, mirroring the paper's
/// "(in millions)" columns.
std::string FormatMillions(double count);

}  // namespace mwsj

#endif  // MWSJ_COMMON_STR_FORMAT_H_
