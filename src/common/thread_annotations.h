#ifndef MWSJ_COMMON_THREAD_ANNOTATIONS_H_
#define MWSJ_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (-Wthread-safety).
///
/// The macros attach lock-discipline contracts to data and functions so the
/// *compiler* rejects races the chaos/TSan suite could only hope to catch
/// dynamically: which mutex guards which field (`GUARDED_BY`), which locks a
/// function needs held (`REQUIRES`), acquires (`ACQUIRE`), releases
/// (`RELEASE`), or must not hold (`EXCLUDES`). They expand to Clang
/// `capability` attributes under Clang and to nothing under GCC/MSVC, so the
/// annotated code builds everywhere while CI's Clang job builds the library
/// with `-Wthread-safety -Werror=thread-safety`.
///
/// The standard library's mutex types carry no capability attributes (with
/// libstdc++ the analysis cannot see through `std::mutex` /
/// `std::lock_guard` at all), so annotated code must use the `mwsj::Mutex` /
/// `mwsj::MutexLock` / `mwsj::CondVar` wrappers from common/mutex.h —
/// they are the capability-bearing types these macros are written against.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define MWSJ_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MWSJ_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) MWSJ_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type whose lifetime equals a critical section.
#define SCOPED_CAPABILITY MWSJ_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field `x` may only be read/written while holding the named mutex.
#define GUARDED_BY(x) MWSJ_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field: the *pointed-to* data is protected by the named mutex.
#define PT_GUARDED_BY(x) MWSJ_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The caller must hold the named mutexes (exclusively) to call this.
#define REQUIRES(...) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The caller must hold the named mutexes at least shared.
#define REQUIRES_SHARED(...) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// This function acquires the named mutexes and does not release them.
#define ACQUIRE(...) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// This function releases the named mutexes (which must be held on entry).
#define RELEASE(...) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// This function acquires the named mutexes iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// The caller must NOT hold the named mutexes (deadlock prevention for
/// functions that acquire them internally).
#define EXCLUDES(...) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Returns a reference to the mutex guarding this object.
#define RETURN_CAPABILITY(x) \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only for code
/// whose locking pattern the analysis cannot express, with a comment why.
#define NO_THREAD_SAFETY_ANALYSIS \
  MWSJ_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MWSJ_COMMON_THREAD_ANNOTATIONS_H_
