#include "common/thread_pool.h"

#include <utility>

namespace mwsj {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->Wait();
}

}  // namespace mwsj
