#include "common/thread_pool.h"

#include <utility>

namespace mwsj {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Per-call completion state. The old implementation waited with
  // ThreadPool::Wait(), which blocks until the *whole pool* drains; with
  // several jobs interleaved on one pool that would make every batch wait
  // on every other job's tasks (and livelock if another job keeps
  // submitting). Each batch instead counts down its own `remaining`.
  struct BatchState {
    Mutex mu;
    CondVar done;
    size_t remaining GUARDED_BY(mu);
  };
  BatchState state;
  {
    MutexLock lock(&state.mu);
    state.remaining = n;
  }
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([i, &fn, &state] {
      fn(i);
      // Notify while holding the lock: `state` lives on the caller's
      // stack, and a caller woken spuriously after the count hits zero
      // would otherwise destroy it before the NotifyAll.
      MutexLock lock(&state.mu);
      if (--state.remaining == 0) state.done.NotifyAll();
    });
  }
  MutexLock lock(&state.mu);
  while (state.remaining != 0) state.done.Wait(state.mu);
}

}  // namespace mwsj
