#ifndef MWSJ_COMMON_THREAD_POOL_H_
#define MWSJ_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/effects.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mwsj {

/// A fixed-size worker pool. The pool is shared by every job the scheduler
/// admits: map/shuffle/reduce tasks from concurrent jobs interleave in one
/// FIFO queue, and each fork-join batch tracks its own completion (see
/// ParallelFor) instead of draining the whole pool. The pool is
/// intentionally minimal — no futures, no priorities.
///
/// Lock discipline (compile-time checked under Clang `-Wthread-safety`):
/// `mu_` guards the queue and the in-flight/shutdown state; workers take it
/// only to pop/account, never while running a task.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` selects
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() EXCLUDES(mu_);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished — *pool-wide*, across
  /// all submitters. With several concurrent jobs on one pool this waits
  /// for everyone's tasks, so per-batch code must use ParallelFor (which
  /// tracks its own completion) instead.
  MWSJ_BLOCKING void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // Queued + currently-running tasks.
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // Written only in the constructor.
};

/// Runs `fn(i)` for i in [0, n) across the pool and waits for completion of
/// *this call's* tasks only. Completion is tracked per call (not via
/// ThreadPool::Wait), so concurrent callers sharing one pool — the
/// scheduler's interleaved jobs — neither wait on each other's tasks nor
/// starve. A null pool (or n <= 1) runs inline on the calling thread.
MWSJ_BLOCKING void ParallelFor(ThreadPool* pool, size_t n,
                               const std::function<void(size_t)>& fn);

}  // namespace mwsj

#endif  // MWSJ_COMMON_THREAD_POOL_H_
