#include "common/trace.h"

#include <atomic>
#include <fstream>

#include "common/mutex.h"
#include "common/str_format.h"

namespace mwsj {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// One thread's cached (tracer id -> buffer) bindings. Tracer ids are
// process-unique and never reused, so an entry for a destroyed tracer can
// never be matched again — stale pointers are dead weight, not dangling
// derefs. The vector stays tiny (one entry per tracer this thread ever
// emitted into) and the lookup is a linear scan of a few elements.
struct TlsBinding {
  uint64_t tracer_id;
  void* buffer;
};
thread_local std::vector<TlsBinding> t_bindings;

std::string EscapeJsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(bool enabled)
    : enabled_(enabled),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  for (const TlsBinding& b : t_bindings) {
    if (b.tracer_id == id_) return static_cast<ThreadBuffer*>(b.buffer);
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buffer.get();
  {
    MutexLock lock(&mu_);
    raw->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(buffer));
  }
  t_bindings.push_back(TlsBinding{id_, raw});
  return raw;
}

void Tracer::BeginSpan(std::string_view name, std::string_view category) {
  if (!enabled_) return;
  const double ts = NowMicros();
  ThreadBuffer* buffer = BufferForThisThread();
  buffer->events.push_back(
      Event{'B', ts, std::string(name), std::string(category), {}});
  buffer->committed.store(static_cast<int64_t>(buffer->events.size()),
                          std::memory_order_release);
}

void Tracer::EndSpan(std::string_view args_json) {
  if (!enabled_) return;
  const double ts = NowMicros();
  ThreadBuffer* buffer = BufferForThisThread();
  buffer->events.push_back(Event{'E', ts, {}, {}, std::string(args_json)});
  buffer->committed.store(static_cast<int64_t>(buffer->events.size()),
                          std::memory_order_release);
}

void Tracer::Instant(std::string_view name, std::string_view category,
                     std::string_view args_json) {
  if (!enabled_) return;
  const double ts = NowMicros();
  ThreadBuffer* buffer = BufferForThisThread();
  buffer->events.push_back(Event{'i', ts, std::string(name),
                                 std::string(category),
                                 std::string(args_json)});
  buffer->committed.store(static_cast<int64_t>(buffer->events.size()),
                          std::memory_order_release);
}

int64_t Tracer::event_count() const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& buffer : buffers_) {
    // The atomic count, not events.size(): emitting threads append to their
    // buffers without holding mu_, so reading the vector here would race.
    total += buffer->committed.load(std::memory_order_acquire);
  }
  return total;
}

std::string Tracer::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers_) {
    for (const Event& e : buffer->events) {
      if (!first) out += ",\n ";
      first = false;
      out += StrFormat("{\"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, "
                       "\"tid\": %d",
                       e.phase, e.ts_us, buffer->tid);
      if (!e.name.empty()) {
        out += StrFormat(", \"name\": \"%s\"",
                         EscapeJsonString(e.name).c_str());
      }
      if (!e.category.empty()) {
        out += StrFormat(", \"cat\": \"%s\"",
                         EscapeJsonString(e.category).c_str());
      }
      if (e.phase == 'i') out += ", \"s\": \"t\"";  // Thread-scoped instant.
      if (!e.args.empty()) out += StrFormat(", \"args\": {%s}", e.args.c_str());
      out += "}";
    }
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open trace file: " + path);
  out << ToJson() << "\n";
  if (!out) return Status::Internal("failed writing trace file: " + path);
  return Status::OK();
}

void TraceSpan::AddArg(std::string_view key, int64_t value) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ", ";
  args_ += StrFormat("\"%s\": %lld", EscapeJsonString(key).c_str(),
                     static_cast<long long>(value));
}

void TraceSpan::AddArg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ", ";
  args_ += StrFormat("\"%s\": %.6f", EscapeJsonString(key).c_str(), value);
}

}  // namespace mwsj
