#ifndef MWSJ_COMMON_TRACE_H_
#define MWSJ_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mwsj {

/// A low-overhead span/event tracer producing Chrome `trace_event` JSON
/// (loadable in chrome://tracing or https://ui.perfetto.dev).
///
/// Design constraints, in order:
///   * near-zero cost when no tracer is attached (`TraceSpan` with a null
///     tracer is a pointer test) or when the tracer is disabled (one
///     predicted branch, no allocation);
///   * thread-safe emission without contention: every emitting thread owns
///     a private event buffer, registered once under a mutex on the
///     thread's first event and appended to lock-free afterwards — pool
///     workers recording per-chunk/per-reducer spans never share cachelines;
///   * monotonic timestamps (steady clock, microseconds since the tracer's
///     construction), so spans from different threads interleave correctly.
///
/// Spans are recorded as Chrome "B"/"E" phase-event pairs. Because a span
/// begins and ends on the same thread (RAII via `TraceSpan`), the B/E
/// events of each thread form a properly nested sequence, which is what
/// the Chrome trace format requires per `tid`.
///
/// Export (`ToJson` / `WriteJson`) must not run concurrently with
/// emission; call it after the traced run has completed.
class Tracer {
 public:
  /// A disabled tracer records nothing and exports an empty event list;
  /// it exists so benches can measure the disabled-path overhead.
  explicit Tracer(bool enabled = true);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Opens a span on the calling thread. Pair with EndSpan on the same
  /// thread; prefer the RAII `TraceSpan` wrapper. `name` and `category`
  /// are copied. No-op when disabled.
  void BeginSpan(std::string_view name, std::string_view category);

  /// Closes the most recently opened span of the calling thread.
  /// `args_json` is an optional JSON object *body* (no braces), e.g.
  /// `"records": 12, "cell": 3`, attached to the closing event.
  void EndSpan(std::string_view args_json = {});

  /// Records a zero-duration instant event on the calling thread.
  void Instant(std::string_view name, std::string_view category,
               std::string_view args_json = {});

  /// Total events recorded so far across all threads. Safe to call while
  /// other threads are emitting: sums each buffer's atomically published
  /// committed-event count instead of touching the (unsynchronized) event
  /// vectors. Takes the registry lock; intended for tests, not hot paths.
  int64_t event_count() const EXCLUDES(mu_);

  /// Serializes every recorded event as a Chrome trace JSON document:
  /// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Deterministic for
  /// a deterministic event sequence (events grouped by tid in registration
  /// order, each thread's events in emission order).
  std::string ToJson() const EXCLUDES(mu_);

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const EXCLUDES(mu_);

 private:
  struct Event {
    char phase;  // 'B', 'E', or 'i'.
    double ts_us;
    std::string name;      // Empty for 'E' (closes the innermost span).
    std::string category;  // Empty for 'E'.
    std::string args;      // JSON object body, may be empty.
  };
  struct ThreadBuffer {
    int tid = 0;
    /// Appended only by the owning thread; read by export after quiescence.
    std::vector<Event> events;
    /// Count of fully constructed events, published with release by the
    /// owning thread after each append so event_count() can read it (with
    /// acquire) concurrently with emission.
    std::atomic<int64_t> committed{0};
  };

  ThreadBuffer* BufferForThisThread() EXCLUDES(mu_);
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const bool enabled_;
  const uint64_t id_;  // Process-unique, never reused: keys the TLS cache.
  const std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mu_;  // Guards buffers_ (registration and export).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
};

/// RAII span: begins on construction, ends on destruction. Null or
/// disabled tracer makes every member a no-op, so instrumented code needs
/// no `if (tracer)` guards.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name, std::string_view category)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->BeginSpan(name, category);
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Closes the span now instead of at scope exit (e.g. to exclude
  /// trailing bookkeeping from the measured interval). Idempotent; AddArg
  /// after End is a no-op.
  void End() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(args_);
      tracer_ = nullptr;
    }
  }

  /// Attaches `"key": value` to the span's closing event. No-op when the
  /// span is not recording (callers can skip building expensive values by
  /// checking recording() first).
  void AddArg(std::string_view key, int64_t value);
  void AddArg(std::string_view key, double value);

  bool recording() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;  // Null when not recording (or after End()).
  std::string args_;
};

}  // namespace mwsj

#endif  // MWSJ_COMMON_TRACE_H_
