#include "core/all_replicate.h"

#include "common/trace.h"
#include "core/dedup.h"
#include "grid/transform.h"
#include "mapreduce/engine.h"

namespace mwsj {

StatusOr<JoinRunResult> AllReplicateJoin(
    const Query& query, const GridPartition& grid,
    const std::vector<std::vector<Rect>>& relations, bool count_only,
    const ExecutionContext& ctx) {
  Tracer* const tracer = ctx.tracer;
  TraceSpan algo_span(tracer, "all_replicate", "algorithm");
  algo_span.AddArg("relations", static_cast<int64_t>(query.num_relations()));
  algo_span.AddArg("cells", static_cast<int64_t>(grid.num_cells()));

  std::vector<RelRect> input;
  {
    size_t total = 0;
    for (const auto& rel : relations) total += rel.size();
    input.reserve(total);
  }
  for (size_t r = 0; r < relations.size(); ++r) {
    for (size_t i = 0; i < relations[r].size(); ++i) {
      input.push_back(RelRect{relations[r][i], static_cast<int64_t>(i),
                              static_cast<int32_t>(r)});
    }
  }

  using Job = MapReduceJob<RelRect, CellId, RelRect, IdTuple>;
  Job job("all_replicate", grid.num_cells());
  job.set_partition([](const CellId& c) { return static_cast<int>(c); });

  job.set_map([&grid](const RelRect& r, Job::Emitter& emit) {
    std::vector<CellId> cells;
    ReplicateF1Cells(grid, r.rect, &cells);
    for (CellId c : cells) emit.Emit(c, r);
  });

  const int m = query.num_relations();
  job.set_reduce([&grid, &query, m, count_only, tracer](
                     const CellId& cell, std::span<const RelRect> values,
                     Job::OutEmitter& out) {
    TraceSpan local_span(tracer, "local_join", "task");
    local_span.AddArg("cell", static_cast<int64_t>(cell));
    local_span.AddArg("records", static_cast<int64_t>(values.size()));
    std::vector<std::vector<LocalRect>> per_relation(
        static_cast<size_t>(m));
    for (const RelRect& v : values) {
      per_relation[static_cast<size_t>(v.relation)].push_back(
          LocalRect{v.rect, v.id});
    }
    std::vector<std::span<const LocalRect>> spans;
    spans.reserve(per_relation.size());
    for (const auto& rel : per_relation) {
      spans.emplace_back(rel.data(), rel.size());
    }
    MultiwayLocalJoin local(query, std::move(spans));
    std::vector<const Rect*> member_rects(static_cast<size_t>(m));
    local.Execute([&](const std::vector<const LocalRect*>& members) {
      for (int r = 0; r < m; ++r) {
        member_rects[static_cast<size_t>(r)] =
            &members[static_cast<size_t>(r)]->rect;
      }
      if (!OwnsTuple(grid, cell, member_rects)) return;
      if (count_only) {
        // Attempt-scoped counter (not a captured atomic): a reduce attempt
        // re-executed under fault injection must not double-count.
        out.IncrementCounter(kCounterTuplesCounted, 1);
        return;
      }
      IdTuple ids(static_cast<size_t>(m));
      for (int r = 0; r < m; ++r) {
        ids[static_cast<size_t>(r)] = members[static_cast<size_t>(r)]->id;
      }
      out.Emit(std::move(ids));
    });
  });

  JoinRunResult result;
  const TransformCounters transform_before = SnapshotTransformCounters();
  const DedupCounters dedup_before = SnapshotDedupCounters();
  JobStats stats = job.Run(std::span<const RelRect>(input), &result.tuples, ctx);
  const TransformCounters transform_delta =
      TransformCountersDelta(transform_before, SnapshotTransformCounters());
  const DedupCounters dedup_delta =
      DedupCountersDelta(dedup_before, SnapshotDedupCounters());
  algo_span.AddArg("replicate_f1_calls", transform_delta.replicate_f1_calls);
  algo_span.AddArg("dedup_tuple_checks", dedup_delta.tuple_checks);
  algo_span.AddArg("dedup_owned", dedup_delta.owned);
  stats.user_counters[kCounterRectanglesReplicated] =
      static_cast<int64_t>(input.size());
  // The paper's "number of rectangles after replication" (§7.8.3) counts
  // rectangles received by reducers in the join round — here, every f1
  // copy, i.e. the job's intermediate records.
  stats.user_counters[kCounterRectanglesAfterReplication] =
      stats.intermediate_records;
  stats.user_counters[kCounterReplicationCopies] = stats.intermediate_records;
  result.num_tuples = count_only
                          ? stats.user_counters[kCounterTuplesCounted]
                          : static_cast<int64_t>(result.tuples.size());
  if (count_only) {
    // Keep the cost model honest: counted tuples would still have been
    // written by a real job.
    stats.reduce_output_records = result.num_tuples;
    stats.reduce_output_bytes =
        result.num_tuples * (8 * (query.num_relations() + 1));
  }
  result.stats.Add(std::move(stats));
  {
    TraceSpan sort_span(tracer, "sort_tuples", "stage");
    SortTuples(&result.tuples);
  }
  algo_span.AddArg("output_tuples", result.num_tuples);
  return result;
}

}  // namespace mwsj
