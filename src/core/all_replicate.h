#ifndef MWSJ_CORE_ALL_REPLICATE_H_
#define MWSJ_CORE_ALL_REPLICATE_H_

#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "core/records.h"
#include "grid/grid_partition.h"
#include "query/query.h"

namespace mwsj {

/// The All-Replicate baseline (§6.1): a single map-reduce job that
/// replicates *every* rectangle to all fourth-quadrant reducers with f1 and
/// computes the multi-way join at each reducer, deduplicated with the §6.2
/// reference-point rule. Correct but communication-heavy — each rectangle
/// is shipped to O(cells) reducers whether or not it can contribute to any
/// output tuple, which is exactly the redundancy Controlled-Replicate
/// removes.
/// `count_only` suppresses tuple materialization (JoinRunResult::tuples
/// stays empty; num_tuples is still exact).
StatusOr<JoinRunResult> AllReplicateJoin(
    const Query& query, const GridPartition& grid,
    const std::vector<std::vector<Rect>>& relations, bool count_only = false,
    const ExecutionContext& ctx = ExecutionContext());

}  // namespace mwsj

#endif  // MWSJ_CORE_ALL_REPLICATE_H_
