#include "core/cascade.h"

#include <algorithm>

#include "common/str_format.h"
#include "common/trace.h"
#include "core/dedup.h"
#include "grid/transform.h"
#include "localjoin/rtree.h"
#include "mapreduce/engine.h"

namespace mwsj {

namespace {

// One record of a cascade step's input: either an intermediate tuple
// (components aligned with the bound-relation prefix) or a candidate
// rectangle of the incoming relation (single component).
struct CascadeRecord {
  std::vector<LocalRect> components;
  bool is_tuple = false;
};

// Approximate serialized size: ids + one (rect, id) per component.
int64_t CascadeRecordBytes(const CascadeRecord& r) {
  return 8 + static_cast<int64_t>(r.components.size()) * 40;
}

// Default order: breadth-first from relation 0. Guaranteed to exist and
// cover all relations because the query graph is connected.
std::vector<int> DefaultOrder(const Query& query) {
  std::vector<int> order = {0};
  std::vector<bool> bound(static_cast<size_t>(query.num_relations()), false);
  bound[0] = true;
  for (size_t k = 0; k < order.size(); ++k) {
    for (int ci : query.ConditionsOf(order[k])) {
      const JoinCondition& c = query.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == order[k]) ? c.right : c.left;
      if (!bound[static_cast<size_t>(other)]) {
        bound[static_cast<size_t>(other)] = true;
        order.push_back(other);
      }
    }
  }
  return order;
}

Status ValidateOrder(const Query& query, const std::vector<int>& order) {
  const int m = query.num_relations();
  if (static_cast<int>(order.size()) != m) {
    return Status::InvalidArgument("join_order must list every relation");
  }
  std::vector<bool> seen(static_cast<size_t>(m), false);
  for (size_t k = 0; k < order.size(); ++k) {
    const int r = order[k];
    if (r < 0 || r >= m || seen[static_cast<size_t>(r)]) {
      return Status::InvalidArgument("join_order must be a permutation");
    }
    seen[static_cast<size_t>(r)] = true;
    if (k == 0) continue;
    bool connected = false;
    for (int ci : query.ConditionsOf(r)) {
      const JoinCondition& c = query.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == r) ? c.right : c.left;
      for (size_t j = 0; j < k; ++j) {
        if (order[j] == other) connected = true;
      }
    }
    if (!connected) {
      return Status::InvalidArgument(StrFormat(
          "join_order: relation %d has no condition to an earlier relation",
          r));
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<JoinRunResult> CascadeJoin(
    const Query& query, const GridPartition& grid,
    const std::vector<std::vector<Rect>>& relations,
    std::vector<int> join_order, bool count_only, const ExecutionContext& ctx) {
  if (join_order.empty()) join_order = DefaultOrder(query);
  MWSJ_RETURN_IF_ERROR(ValidateOrder(query, join_order));

  Tracer* const tracer = ctx.tracer;
  TraceSpan algo_span(tracer, "cascade", "algorithm");
  algo_span.AddArg("relations", static_cast<int64_t>(query.num_relations()));
  algo_span.AddArg("steps", static_cast<int64_t>(join_order.size() - 1));

  JoinRunResult result;

  // position_of[r] = slot of relation r in a tuple's component list.
  std::vector<int> position_of(static_cast<size_t>(query.num_relations()), -1);
  position_of[static_cast<size_t>(join_order[0])] = 0;

  // Seed: the first relation as single-component tuples.
  std::vector<CascadeRecord> tuples;
  tuples.reserve(relations[static_cast<size_t>(join_order[0])].size());
  {
    TraceSpan seed_span(tracer, "cascade_seed", "stage");
    seed_span.AddArg(
        "records",
        static_cast<int64_t>(relations[static_cast<size_t>(join_order[0])]
                                 .size()));
    const auto& first = relations[static_cast<size_t>(join_order[0])];
    for (size_t i = 0; i < first.size(); ++i) {
      CascadeRecord rec;
      rec.is_tuple = true;
      rec.components.push_back(LocalRect{first[i], static_cast<int64_t>(i)});
      tuples.push_back(std::move(rec));
    }
  }

  int64_t counted = 0;
  for (size_t step = 1; step < join_order.size(); ++step) {
    const int incoming = join_order[step];
    TraceSpan step_span(tracer, StrFormat("cascade_step_%zu", step), "stage");
    step_span.AddArg("incoming_relation", static_cast<int64_t>(incoming));
    // The final step may count matches instead of materializing them.
    const bool count_this_step =
        count_only && step + 1 == join_order.size();

    // Conditions connecting the incoming relation to bound relations; the
    // first is the anchor that drives routing and duplicate avoidance.
    struct Link {
      const JoinCondition* condition;
      int bound_position;
    };
    std::vector<Link> links;
    for (int ci : query.ConditionsOf(incoming)) {
      const JoinCondition& c = query.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == incoming) ? c.right : c.left;
      if (position_of[static_cast<size_t>(other)] >= 0) {
        links.push_back(Link{&c, position_of[static_cast<size_t>(other)]});
      }
    }
    // ValidateOrder guarantees links is non-empty.
    const Link anchor = links[0];
    const Predicate anchor_pred = anchor.condition->predicate;
    const double anchor_d =
        anchor_pred.is_range() ? anchor_pred.distance() : 0.0;

    // Assemble job input: current tuples + incoming relation records.
    std::vector<CascadeRecord> input;
    const auto& incoming_data = relations[static_cast<size_t>(incoming)];
    input.reserve(tuples.size() + incoming_data.size());
    int64_t input_bytes = 0;
    for (CascadeRecord& t : tuples) {
      input_bytes += CascadeRecordBytes(t);
      input.push_back(std::move(t));
    }
    tuples.clear();
    for (size_t i = 0; i < incoming_data.size(); ++i) {
      CascadeRecord rec;
      rec.is_tuple = false;
      rec.components.push_back(
          LocalRect{incoming_data[i], static_cast<int64_t>(i)});
      input_bytes += CascadeRecordBytes(rec);
      input.push_back(std::move(rec));
    }

    using Job = MapReduceJob<CascadeRecord, CellId, CascadeRecord,
                             CascadeRecord>;
    Job job(StrFormat("cascade_step_%zu_join_%s", step,
                      query.relation_names()[static_cast<size_t>(incoming)]
                          .c_str()),
            grid.num_cells());
    job.set_partition([](const CellId& c) { return static_cast<int>(c); });
    job.set_value_size(CascadeRecordBytes);

    job.set_map([&grid, anchor, anchor_pred, anchor_d](
                    const CascadeRecord& rec, Job::Emitter& emit) {
      std::vector<CellId> cells;
      if (rec.is_tuple) {
        const Rect& route_by =
            rec.components[static_cast<size_t>(anchor.bound_position)].rect;
        if (anchor_pred.is_range()) {
          EnlargedSplitCells(grid, route_by, anchor_d, &cells);
        } else {
          SplitCells(grid, route_by, &cells);
        }
      } else {
        SplitCells(grid, rec.components[0].rect, &cells);
      }
      for (CellId c : cells) emit.Emit(c, rec);
    });

    job.set_reduce([&grid, &links, anchor, anchor_pred, anchor_d,
                    count_this_step](
                       const CellId& cell,
                       std::span<const CascadeRecord> values,
                       Job::OutEmitter& out) {
      std::vector<const CascadeRecord*> local_tuples;
      std::vector<const CascadeRecord*> candidates;
      std::vector<Rect> candidate_rects;
      for (const CascadeRecord& v : values) {
        if (v.is_tuple) {
          local_tuples.push_back(&v);
        } else {
          candidates.push_back(&v);
          candidate_rects.push_back(v.components[0].rect);
        }
      }
      if (local_tuples.empty() || candidates.empty()) return;
      const RTree tree(candidate_rects);

      RTree::QueryScratch scratch;
      std::vector<int32_t> matches;
      for (const CascadeRecord* t : local_tuples) {
        const Rect& anchor_rect =
            t->components[static_cast<size_t>(anchor.bound_position)].rect;
        matches.clear();
        if (anchor_pred.is_overlap()) {
          tree.CollectOverlapping(anchor_rect, &scratch, &matches);
        } else {
          tree.CollectWithinDistance(anchor_rect, anchor_d, &scratch,
                                     &matches);
        }
        for (int32_t mi : matches) {
          const CascadeRecord* cand = candidates[static_cast<size_t>(mi)];
          const Rect& cand_rect = cand->components[0].rect;
          // Duplicate avoidance on the anchor pair (§5.2 / §5.3).
          const bool owns =
              anchor_pred.is_overlap()
                  ? OwnsOverlapPair(grid, cell, anchor_rect, cand_rect)
                  : OwnsRangePair(grid, cell, anchor_rect, cand_rect,
                                  anchor_d);
          if (!owns) continue;
          // Residual conditions to other bound relations.
          bool ok = true;
          for (size_t li = 1; li < links.size(); ++li) {
            const Rect& other =
                t->components[static_cast<size_t>(links[li].bound_position)]
                    .rect;
            if (!links[li].condition->predicate.Evaluate(cand_rect, other)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          if (count_this_step) {
            // Attempt-scoped counter (not a captured atomic): a reduce
            // attempt re-executed under fault injection must not
            // double-count its tuples.
            out.IncrementCounter(kCounterTuplesCounted, 1);
            continue;
          }
          CascadeRecord merged;
          merged.is_tuple = true;
          merged.components = t->components;
          merged.components.push_back(cand->components[0]);
          out.Emit(std::move(merged));
        }
      }
    });

    std::vector<CascadeRecord> next;
    const TransformCounters transform_before = SnapshotTransformCounters();
    const DedupCounters dedup_before = SnapshotDedupCounters();
    JobStats stats = job.Run(std::span<const CascadeRecord>(input), &next, ctx);
    const TransformCounters transform_delta =
        TransformCountersDelta(transform_before, SnapshotTransformCounters());
    const DedupCounters dedup_delta =
        DedupCountersDelta(dedup_before, SnapshotDedupCounters());
    step_span.AddArg("split_calls", transform_delta.split_calls);
    step_span.AddArg("enlarged_split_calls",
                     transform_delta.enlarged_split_calls);
    step_span.AddArg("dedup_pair_checks",
                     dedup_delta.pair_checks + dedup_delta.range_pair_checks);
    step_span.AddArg("dedup_owned", dedup_delta.owned);
    step_span.AddArg("output_records",
                     static_cast<int64_t>(next.size()));
    // Engine charges sizeof(In/Out) per record; replace with the real
    // variable-length accounting. In count-only mode the final step's
    // counted tuples still represent output a real job would write.
    stats.map_input_bytes = input_bytes;
    if (count_this_step) {
      counted = stats.user_counters[kCounterTuplesCounted];
      stats.reduce_output_records = counted;
    }
    stats.reduce_output_bytes =
        stats.reduce_output_records * (8 + 40 * static_cast<int64_t>(step + 1));
    result.stats.Add(std::move(stats));

    position_of[static_cast<size_t>(incoming)] = static_cast<int>(step);
    tuples = std::move(next);
  }

  if (count_only) {
    result.num_tuples = counted;
    algo_span.AddArg("output_tuples", result.num_tuples);
    return result;
  }
  // Convert to relation-ordered id tuples.
  TraceSpan finalize_span(tracer, "cascade_finalize", "stage");
  result.tuples.reserve(tuples.size());
  for (const CascadeRecord& t : tuples) {
    IdTuple ids(static_cast<size_t>(query.num_relations()), -1);
    for (int r = 0; r < query.num_relations(); ++r) {
      ids[static_cast<size_t>(r)] =
          t.components[static_cast<size_t>(position_of[static_cast<size_t>(r)])]
              .id;
    }
    result.tuples.push_back(std::move(ids));
  }
  SortTuples(&result.tuples);
  result.num_tuples = static_cast<int64_t>(result.tuples.size());
  finalize_span.End();
  algo_span.AddArg("output_tuples", result.num_tuples);
  return result;
}

}  // namespace mwsj
