#ifndef MWSJ_CORE_CASCADE_H_
#define MWSJ_CORE_CASCADE_H_

#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "core/records.h"
#include "grid/grid_partition.h"
#include "query/query.h"

namespace mwsj {

/// The 2-way Cascade baseline (§6.1): the multi-way join runs as a series
/// of 2-way map-reduce joins, each joining the accumulated intermediate
/// tuple set with the next relation. Every step re-reads the previous
/// step's (growing) output and re-writes a larger one — exactly the
/// read/write amplification the paper criticizes in §6.4 and that the cost
/// model charges per job.
///
/// Each step routes an intermediate tuple by the component that the step's
/// anchor condition joins (Split for overlap, enlarged-Split for range);
/// the incoming relation is Split. The §5 pair duplicate-avoidance rule is
/// applied to the anchor pair, and every other query condition between the
/// new relation and already-bound relations is checked in the same reduce.
///
/// `join_order` optionally overrides the relation evaluation order; it must
/// be a permutation of all relations in which every relation (after the
/// first) is connected by a query condition to an earlier one. An empty
/// order selects a breadth-first order from relation 0 (the paper assumes
/// "the optimal order", footnote 1; benches can sweep orders).
/// `count_only` counts the final join output without materializing it
/// (intermediate results are still fully materialized — they are the point
/// of this baseline).
StatusOr<JoinRunResult> CascadeJoin(
    const Query& query, const GridPartition& grid,
    const std::vector<std::vector<Rect>>& relations,
    std::vector<int> join_order = {}, bool count_only = false,
    const ExecutionContext& ctx = ExecutionContext());

}  // namespace mwsj

#endif  // MWSJ_CORE_CASCADE_H_
