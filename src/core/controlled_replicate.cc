#include "core/controlled_replicate.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/trace.h"
#include "core/dedup.h"
#include "localjoin/rtree.h"
#include "mapreduce/engine.h"
#include "query/bounds.h"

namespace mwsj {

namespace {

// ---------------------------------------------------------------------------
// Round-1 marking.
// ---------------------------------------------------------------------------

// Distance from `r` (inside cell `cell`) to the nearest *other* cell.
// Zero when the rectangle extends beyond (or touches nothing — strictly
// crosses) the closed cell; otherwise the smallest gap to a side of the
// cell that has a neighbor. Infinity on a 1x1 grid, where no foreign cell
// exists.
double ForeignCellDistance(const GridPartition& grid, CellId cell,
                           const Rect& cell_rect, const Rect& r) {
  if (!cell_rect.Contains(r)) return 0;
  double best = std::numeric_limits<double>::infinity();
  const int row = grid.RowOf(cell);
  const int col = grid.ColOf(cell);
  if (col > 0) best = std::min(best, r.min_x() - cell_rect.min_x());
  if (col < grid.cols() - 1) best = std::min(best, cell_rect.max_x() - r.max_x());
  if (row > 0) best = std::min(best, cell_rect.max_y() - r.max_y());
  if (row < grid.rows() - 1) best = std::min(best, r.min_y() - cell_rect.min_y());
  return best;
}

// Evaluates the witness-set search of conditions C1-C3 for one cell.
class MarkingOracle {
 public:
  MarkingOracle(const Query& query, const GridPartition& grid, CellId cell,
                const std::vector<std::vector<LocalRect>>& rects)
      : query_(query),
        grid_(grid),
        cell_(cell),
        cell_rect_(grid.CellRect(cell)),
        rects_(rects) {
    const size_t m = static_cast<size_t>(query.num_relations());
    crossing_.resize(m);
    foreign_dist_.resize(m);
    trees_.resize(m);
    candidate_buffers_.resize(m);
    for (size_t r = 0; r < m; ++r) {
      const auto& list = rects_[r];
      crossing_[r].resize(list.size());
      foreign_dist_[r].resize(list.size());
      std::vector<Rect> geo;
      geo.reserve(list.size());
      for (size_t i = 0; i < list.size(); ++i) {
        // A rectangle contained in the closed cell cannot meet any
        // rectangle that is disjoint from the closed cell, so "crosses the
        // boundary" is implemented as "not contained in the closed cell" —
        // equivalent to the paper's condition for every configuration that
        // can produce output, and never replicating more.
        crossing_[r][i] = !cell_rect_.Contains(list[i].rect);
        foreign_dist_[r][i] =
            ForeignCellDistance(grid_, cell_, cell_rect_, list[i].rect);
        geo.push_back(list[i].rect);
      }
      trees_[r] = std::make_unique<RTree>(geo);
    }
  }

  /// True when some rectangle-set containing rects_[rel][idx] satisfies
  /// C1-C3 at this cell.
  bool IsMarked(int rel, size_t idx) {
    const int m = query_.num_relations();
    const uint32_t full = (1u << m) - 1;
    // Subsets containing `rel`, excluding the full set (C3 would fail: a
    // connected graph leaves no inside/outside condition).
    for (uint32_t subset = 1; subset < full; ++subset) {
      if ((subset & (1u << rel)) == 0) continue;
      if (WitnessInSubset(subset, rel, idx)) return true;
    }
    return false;
  }

 private:
  // Per-subset facts, computed once per cell and shared across every
  // marking decision at that cell: the C2 boundary requirements of each
  // subset relation, and the indices of its C2-eligible rectangles.
  struct SubsetInfo {
    // Indexed by relation; empty vectors for relations outside the subset.
    std::vector<std::vector<const Predicate*>> requirements;
    std::vector<std::vector<int32_t>> eligible;
  };

  const SubsetInfo& GetSubsetInfo(uint32_t subset) {
    auto it = subset_cache_.find(subset);
    if (it != subset_cache_.end()) return it->second;
    SubsetInfo info;
    const size_t m = static_cast<size_t>(query_.num_relations());
    info.requirements.resize(m);
    info.eligible.resize(m);
    for (int r = 0; r < static_cast<int>(m); ++r) {
      if ((subset & (1u << r)) == 0) continue;
      for (int ci : query_.ConditionsOf(r)) {
        const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
        const int other = (c.left == r) ? c.right : c.left;
        if ((subset & (1u << other)) == 0) {
          info.requirements[static_cast<size_t>(r)].push_back(&c.predicate);
        }
      }
      const auto& reqs = info.requirements[static_cast<size_t>(r)];
      auto& elig = info.eligible[static_cast<size_t>(r)];
      for (size_t i = 0; i < rects_[static_cast<size_t>(r)].size(); ++i) {
        if (Eligible(r, i, reqs)) elig.push_back(static_cast<int32_t>(i));
      }
    }
    return subset_cache_.emplace(subset, std::move(info)).first->second;
  }

  // C2 eligibility of rects_[r][i] under the given boundary requirements.
  bool Eligible(int r, size_t i,
                const std::vector<const Predicate*>& requirements) const {
    for (const Predicate* p : requirements) {
      if (p->is_overlap()) {
        if (!crossing_[static_cast<size_t>(r)][i]) return false;
      } else {
        if (!(foreign_dist_[static_cast<size_t>(r)][i] <= p->distance())) {
          return false;
        }
      }
    }
    return true;
  }

  // Induced conditions of `subset` with both endpoints assigned are
  // checked as relations bind. Returns true when a full eligible,
  // consistent assignment over the subset's relations exists with
  // rects_[fixed_rel][fixed_idx] pinned.
  bool WitnessInSubset(uint32_t subset, int fixed_rel, size_t fixed_idx) {
    // Relations of the subset, fixed relation first; remaining relations
    // ordered so each is probed through an induced condition to an
    // already-ordered relation when one exists (disconnected induced
    // components fall back to full scans).
    std::vector<int> members;
    members.push_back(fixed_rel);
    for (int r = 0; r < query_.num_relations(); ++r) {
      if (r != fixed_rel && (subset & (1u << r))) members.push_back(r);
    }
    // Greedy ordering by connectivity.
    for (size_t k = 1; k < members.size(); ++k) {
      size_t pick = k;
      for (size_t j = k; j < members.size(); ++j) {
        bool connected = false;
        for (int ci : query_.ConditionsOf(members[j])) {
          const JoinCondition& c =
              query_.conditions()[static_cast<size_t>(ci)];
          const int other = (c.left == members[j]) ? c.right : c.left;
          if ((subset & (1u << other)) == 0) continue;
          for (size_t t = 0; t < k; ++t) {
            if (members[t] == other) connected = true;
          }
        }
        if (connected) {
          pick = j;
          break;
        }
      }
      std::swap(members[k], members[pick]);
    }

    const SubsetInfo& info = GetSubsetInfo(subset);
    if (!Eligible(fixed_rel, fixed_idx,
                  info.requirements[static_cast<size_t>(fixed_rel)])) {
      return false;
    }

    std::vector<int64_t> assigned(static_cast<size_t>(query_.num_relations()),
                                  -1);
    assigned[static_cast<size_t>(fixed_rel)] =
        static_cast<int64_t>(fixed_idx);
    return Bind(subset, members, info, 1, assigned);
  }

  bool ConsistentWithAssigned(uint32_t subset, int r, size_t i,
                              const std::vector<int64_t>& assigned) const {
    const Rect& rect = rects_[static_cast<size_t>(r)][i].rect;
    for (int ci : query_.ConditionsOf(r)) {
      const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == r) ? c.right : c.left;
      if ((subset & (1u << other)) == 0) continue;
      const int64_t oi = assigned[static_cast<size_t>(other)];
      if (oi < 0) continue;
      const Rect& other_rect =
          rects_[static_cast<size_t>(other)][static_cast<size_t>(oi)].rect;
      if (!c.predicate.Evaluate(rect, other_rect)) return false;
    }
    return true;
  }

  bool Bind(uint32_t subset, const std::vector<int>& members,
            const SubsetInfo& info, size_t depth,
            std::vector<int64_t>& assigned) {
    if (depth == members.size()) return true;
    const int r = members[depth];

    // Probe through an induced condition to an assigned relation if any.
    const JoinCondition* anchor = nullptr;
    const Rect* anchor_rect = nullptr;
    for (int ci : query_.ConditionsOf(r)) {
      const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == r) ? c.right : c.left;
      if ((subset & (1u << other)) == 0) continue;
      const int64_t oi = assigned[static_cast<size_t>(other)];
      if (oi < 0) continue;
      anchor = &c;
      anchor_rect =
          &rects_[static_cast<size_t>(other)][static_cast<size_t>(oi)].rect;
      break;
    }

    auto try_index = [&](size_t i) {
      if (!Eligible(r, i, info.requirements[static_cast<size_t>(r)])) {
        return false;
      }
      if (!ConsistentWithAssigned(subset, r, i, assigned)) return false;
      assigned[static_cast<size_t>(r)] = static_cast<int64_t>(i);
      const bool found = Bind(subset, members, info, depth + 1, assigned);
      assigned[static_cast<size_t>(r)] = -1;
      return found;
    };

    if (anchor != nullptr) {
      // Per-depth candidate buffer: the recursion below re-enters Bind, so
      // a single shared list would be clobbered mid-iteration.
      std::vector<int32_t>& candidates = candidate_buffers_[depth];
      candidates.clear();
      if (anchor->predicate.is_overlap()) {
        trees_[static_cast<size_t>(r)]->CollectOverlapping(
            *anchor_rect, &rtree_scratch_, &candidates);
      } else {
        trees_[static_cast<size_t>(r)]->CollectWithinDistance(
            *anchor_rect, anchor->predicate.distance(), &rtree_scratch_,
            &candidates);
      }
      for (int32_t i : candidates) {
        if (try_index(static_cast<size_t>(i))) return true;
      }
      return false;
    }
    // No assigned neighbor: scan only the subset-eligible rectangles (for
    // induced components disconnected from the fixed relation, the first
    // eligible rectangle typically succeeds immediately).
    for (int32_t i : info.eligible[static_cast<size_t>(r)]) {
      if (try_index(static_cast<size_t>(i))) return true;
    }
    return false;
  }

  const Query& query_;
  const GridPartition& grid_;
  const CellId cell_;
  const Rect cell_rect_;
  const std::vector<std::vector<LocalRect>>& rects_;
  std::vector<std::vector<char>> crossing_;
  std::vector<std::vector<double>> foreign_dist_;
  std::vector<std::unique_ptr<RTree>> trees_;
  std::unordered_map<uint32_t, SubsetInfo> subset_cache_;
  // Probe state reused across every marking decision at this cell. The
  // traversal stack is shared by all depths (a probe completes before the
  // recursion descends); candidate lists are per-depth.
  RTree::QueryScratch rtree_scratch_;
  std::vector<std::vector<int32_t>> candidate_buffers_;
};

}  // namespace

std::vector<std::vector<int64_t>> MarkRectanglesForCell(
    const Query& query, const GridPartition& grid, CellId cell,
    const std::vector<std::vector<LocalRect>>& cell_rects) {
  MarkingOracle oracle(query, grid, cell, cell_rects);
  std::vector<std::vector<int64_t>> marked(cell_rects.size());
  for (size_t r = 0; r < cell_rects.size(); ++r) {
    for (size_t i = 0; i < cell_rects[r].size(); ++i) {
      if (grid.CellOfRect(cell_rects[r][i].rect) != cell) continue;
      if (oracle.IsMarked(static_cast<int>(r), i)) {
        marked[r].push_back(cell_rects[r][i].id);
      }
    }
  }
  return marked;
}

StatusOr<JoinRunResult> ControlledReplicateJoin(
    const Query& query, const GridPartition& grid,
    const std::vector<std::vector<Rect>>& relations,
    const ControlledReplicateOptions& options, const ExecutionContext& ctx) {
  const int m = query.num_relations();
  if (m > 20) {
    return Status::InvalidArgument(
        "Controlled-Replicate supports at most 20 relations (the marking "
        "search enumerates relation subsets)");
  }

  Tracer* const tracer = ctx.tracer;
  TraceSpan algo_span(tracer, options.limit_replication ? "crepl" : "crep",
                      "algorithm");
  algo_span.AddArg("relations", static_cast<int64_t>(m));
  algo_span.AddArg("cells", static_cast<int64_t>(grid.num_cells()));

  JoinRunResult result;

  // Round-1 marking is a resident artifact when a catalog and base key are
  // attached: the marking depends only on (query, grid, datasets) — all
  // pinned by the key — and never on the limit options, so C-Rep and
  // C-Rep-L jobs over the same inputs share one artifact. On a hit the
  // input assembly and the whole split+mark round are skipped.
  const std::string round1_key =
      options.catalog != nullptr && !options.artifact_key.empty()
          ? options.artifact_key + "|crep_round1"
          : std::string();
  std::shared_ptr<const std::vector<MarkedRect>> marked_shared;
  if (!round1_key.empty()) {
    marked_shared = options.catalog->Get<std::vector<MarkedRect>>(round1_key);
    if (marked_shared != nullptr) {
      ++result.stats.catalog_hits;
    } else {
      ++result.stats.catalog_misses;
    }
  }

  // Per-relation replication bounds for C-Rep-L, from the data's diagonal
  // upper bounds and the join graph (§7.9, §8, footnote 3).
  std::vector<double> limit_bounds;
  std::vector<RelRect> input;
  {
    TraceSpan setup_span(tracer, "crep_setup", "stage");
    if (options.limit_replication) {
      std::vector<double> diagonals(static_cast<size_t>(m), 0.0);
      for (int r = 0; r < m; ++r) {
        for (const Rect& rect : relations[static_cast<size_t>(r)]) {
          diagonals[static_cast<size_t>(r)] =
              std::max(diagonals[static_cast<size_t>(r)], rect.Diagonal());
        }
      }
      limit_bounds = ComputeReplicationBounds(query, diagonals);
    }

    if (marked_shared == nullptr) {
      {
        size_t total = 0;
        for (const auto& rel : relations) total += rel.size();
        input.reserve(total);
      }
      for (size_t r = 0; r < relations.size(); ++r) {
        for (size_t i = 0; i < relations[r].size(); ++i) {
          input.push_back(RelRect{relations[r][i], static_cast<int64_t>(i),
                                  static_cast<int32_t>(r)});
        }
      }
    }
    setup_span.AddArg("input_records", static_cast<int64_t>(input.size()));
  }

  // -------------------------------------------------------------------
  // Round 1: split everything; reducers mark the rectangles that start in
  // their cell and must be replicated.
  // -------------------------------------------------------------------
  using Round1 = MapReduceJob<RelRect, CellId, RelRect, MarkedRect>;
  Round1 round1("crep_round1_mark", grid.num_cells());
  round1.set_partition([](const CellId& c) { return static_cast<int>(c); });
  round1.set_map([&grid](const RelRect& r, Round1::Emitter& emit) {
    std::vector<CellId> cells;
    SplitCells(grid, r.rect, &cells);
    for (CellId c : cells) emit.Emit(c, r);
  });
  round1.set_reduce([&grid, &query, m](const CellId& cell,
                                       std::span<const RelRect> values,
                                       Round1::OutEmitter& out) {
    std::vector<std::vector<LocalRect>> per_relation(static_cast<size_t>(m));
    for (const RelRect& v : values) {
      per_relation[static_cast<size_t>(v.relation)].push_back(
          LocalRect{v.rect, v.id});
    }
    const std::vector<std::vector<int64_t>> marked_ids =
        MarkRectanglesForCell(query, grid, cell, per_relation);
    std::vector<std::unordered_set<int64_t>> marked(static_cast<size_t>(m));
    for (size_t r = 0; r < marked_ids.size(); ++r) {
      marked[r].insert(marked_ids[r].begin(), marked_ids[r].end());
    }
    // Emit each rectangle exactly once, from its start cell.
    for (const RelRect& v : values) {
      if (grid.CellOfRect(v.rect) != cell) continue;
      out.Emit(MarkedRect{v.rect, v.id, v.relation,
                          marked[static_cast<size_t>(v.relation)].count(
                              v.id) > 0});
    }
  });

  {
    TraceSpan round_span(tracer, "crep_round1", "stage");
    if (marked_shared != nullptr) {
      // Resident marking: the round is a lookup, not a job.
      round_span.AddArg("cached", int64_t{1});
      int64_t marked_count = 0;
      for (const MarkedRect& r : *marked_shared) {
        marked_count += r.marked ? 1 : 0;
      }
      round_span.AddArg("marked_records", marked_count);
    } else {
      std::vector<MarkedRect> marked_rects;
      const TransformCounters before = SnapshotTransformCounters();
      result.stats.Add(
          round1.Run(std::span<const RelRect>(input), &marked_rects, ctx));
      const TransformCounters delta =
          TransformCountersDelta(before, SnapshotTransformCounters());
      round_span.AddArg("split_calls", delta.split_calls);
      int64_t marked_count = 0;
      for (const MarkedRect& r : marked_rects) {
        marked_count += r.marked ? 1 : 0;
      }
      round_span.AddArg("marked_records", marked_count);
      auto built = std::make_shared<const std::vector<MarkedRect>>(
          std::move(marked_rects));
      // First-wins Put: a concurrent identical job may have stored the
      // artifact already; every consumer then shares the resident copy.
      marked_shared =
          round1_key.empty()
              ? built
              : options.catalog->Put<std::vector<MarkedRect>>(round1_key,
                                                              built);
    }
  }

  // -------------------------------------------------------------------
  // Round 2: replicate marked / project unmarked; join; §6.2 dedup.
  // -------------------------------------------------------------------
  using Round2 = MapReduceJob<MarkedRect, CellId, RelRect, IdTuple>;
  Round2 round2(options.limit_replication ? "crepl_round2_join"
                                          : "crep_round2_join",
                grid.num_cells());
  round2.set_partition([](const CellId& c) { return static_cast<int>(c); });

  const bool limit = options.limit_replication;
  const DistanceMetric metric = options.limit_metric;
  // Replication tallies go through the emitter's attempt-local counters,
  // not captured atomics: a re-executed map attempt under fault injection
  // would double-count an atomic, while discarded-attempt emitter deltas
  // are dropped with the attempt.
  round2.set_map([&grid, &limit_bounds, limit, metric](
                     const MarkedRect& r, Round2::Emitter& emit) {
    const RelRect payload{r.rect, r.id, r.relation};
    if (!r.marked) {
      emit.Emit(ProjectCell(grid, r.rect), payload);
      return;
    }
    std::vector<CellId> cells;
    if (limit) {
      ReplicateF2Cells(grid, r.rect,
                       limit_bounds[static_cast<size_t>(r.relation)], metric,
                       &cells);
    } else {
      ReplicateF1Cells(grid, r.rect, &cells);
    }
    emit.IncrementCounter(kCounterRectanglesReplicated, 1);
    emit.IncrementCounter(kCounterReplicationCopies,
                          static_cast<int64_t>(cells.size()));
    for (CellId c : cells) emit.Emit(c, payload);
  });

  const bool count_only = options.count_only;
  round2.set_reduce([&grid, &query, m, count_only, tracer](
                        const CellId& cell, std::span<const RelRect> values,
                        Round2::OutEmitter& out) {
    TraceSpan local_span(tracer, "local_join", "task");
    local_span.AddArg("cell", static_cast<int64_t>(cell));
    local_span.AddArg("records", static_cast<int64_t>(values.size()));
    std::vector<std::vector<LocalRect>> per_relation(static_cast<size_t>(m));
    for (const RelRect& v : values) {
      per_relation[static_cast<size_t>(v.relation)].push_back(
          LocalRect{v.rect, v.id});
    }
    std::vector<std::span<const LocalRect>> spans;
    spans.reserve(per_relation.size());
    for (const auto& rel : per_relation) {
      spans.emplace_back(rel.data(), rel.size());
    }
    MultiwayLocalJoin local(query, std::move(spans));
    std::vector<const Rect*> member_rects(static_cast<size_t>(m));
    local.Execute([&](const std::vector<const LocalRect*>& members) {
      for (int r = 0; r < m; ++r) {
        member_rects[static_cast<size_t>(r)] =
            &members[static_cast<size_t>(r)]->rect;
      }
      if (!OwnsTuple(grid, cell, member_rects)) return;
      if (count_only) {
        out.IncrementCounter(kCounterTuplesCounted, 1);
        return;
      }
      IdTuple ids(static_cast<size_t>(m));
      for (int r = 0; r < m; ++r) {
        ids[static_cast<size_t>(r)] = members[static_cast<size_t>(r)]->id;
      }
      out.Emit(std::move(ids));
    });
  });

  TraceSpan round2_span(tracer, "crep_round2", "stage");
  const TransformCounters transform_before = SnapshotTransformCounters();
  const DedupCounters dedup_before = SnapshotDedupCounters();
  JobStats round2_stats = round2.Run(
      std::span<const MarkedRect>(*marked_shared), &result.tuples, ctx);
  const TransformCounters transform_delta =
      TransformCountersDelta(transform_before, SnapshotTransformCounters());
  const DedupCounters dedup_delta =
      DedupCountersDelta(dedup_before, SnapshotDedupCounters());
  round2_span.AddArg("project_calls", transform_delta.project_calls);
  round2_span.AddArg("replicate_f1_calls", transform_delta.replicate_f1_calls);
  round2_span.AddArg("replicate_f2_calls", transform_delta.replicate_f2_calls);
  round2_span.AddArg("dedup_tuple_checks", dedup_delta.tuple_checks);
  round2_span.AddArg("dedup_owned", dedup_delta.owned);
  round2_span.End();
  // Unmarked rectangles never touch the replicated/copies counters, so
  // make them explicit zeros for stable stats output.
  round2_stats.user_counters.try_emplace(kCounterRectanglesReplicated, 0);
  round2_stats.user_counters.try_emplace(kCounterReplicationCopies, 0);
  // The paper's "number of rectangles after replication" (§7.8.3) counts
  // rectangles received by the join round's reducers — the round-2
  // intermediate records: one copy per projected rectangle plus every
  // replicated copy (this is what makes Table 2's C-Rep column ~= nI plus
  // a small replication overhead).
  round2_stats.user_counters[kCounterRectanglesAfterReplication] =
      round2_stats.intermediate_records;
  result.num_tuples = count_only
                          ? round2_stats.user_counters[kCounterTuplesCounted]
                          : static_cast<int64_t>(result.tuples.size());
  if (count_only) {
    // Keep the cost model honest: counted tuples would still have been
    // written by a real job.
    round2_stats.reduce_output_records = result.num_tuples;
    round2_stats.reduce_output_bytes = result.num_tuples * (8 * (m + 1));
  }
  result.stats.Add(std::move(round2_stats));

  {
    TraceSpan sort_span(tracer, "sort_tuples", "stage");
    sort_span.AddArg("tuples", static_cast<int64_t>(result.tuples.size()));
    SortTuples(&result.tuples);
  }
  algo_span.AddArg("output_tuples", result.num_tuples);
  return result;
}

}  // namespace mwsj
