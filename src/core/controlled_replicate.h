#ifndef MWSJ_CORE_CONTROLLED_REPLICATE_H_
#define MWSJ_CORE_CONTROLLED_REPLICATE_H_

#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "core/dataset_catalog.h"
#include "core/records.h"
#include "grid/grid_partition.h"
#include "grid/transform.h"
#include "query/query.h"

namespace mwsj {

/// Options for the Controlled-Replicate family.
struct ControlledReplicateOptions {
  /// false → C-Rep (§7): marked rectangles replicate with f1 to the entire
  /// fourth quadrant. true → C-Rep-L (§7.9, §8): marked rectangles
  /// replicate with f2 only to fourth-quadrant cells within the
  /// per-relation distance bound derived from the join graph and the
  /// datasets' diagonal upper bounds (query/bounds.h).
  bool limit_replication = false;

  /// Cell-distance metric for the f2 test when limit_replication is set.
  /// kChebyshev is the provably safe variant (the §7.9/§8 path bounds
  /// constrain each axis separately); kEuclidean is the paper's literal f2
  /// and can miss corner cells — kept for fidelity experiments.
  DistanceMetric limit_metric = DistanceMetric::kChebyshev;

  /// Count output tuples without materializing them (see JoinRunResult).
  bool count_only = false;

  /// Optional resident-artifact catalog plus the base key covering the
  /// canonical query, the dataset epochs, and the grid (composed by
  /// ExecuteSpatialJoin). When both are set, the round-1 marking output —
  /// which depends only on those inputs, never on the limit options — is
  /// reused across jobs: a repeat query skips the whole split+mark round,
  /// and C-Rep / C-Rep-L share one artifact. Empty key disables reuse.
  DatasetCatalog* catalog = nullptr;
  std::string artifact_key;
};

/// The Controlled-Replicate framework (§7, §8, §9): two map-reduce rounds.
///
/// Round 1 splits every relation; each reducer c decides, for the
/// rectangles *starting* in c, whether they must be replicated, by testing
/// the existence of a rectangle-set satisfying the paper's conditions:
///
///   C1  the set is consistent with its relation-set (§7.3);
///   C2  for every query condition joining a relation inside the set to a
///       relation outside it, the inside rectangle crosses the cell
///       boundary (overlap edges, §7.4) or some foreign cell lies within
///       the edge's distance d (range edges, §8) — hybrid queries apply
///       the per-edge test (§9);
///   C3  at least one such inside/outside condition exists;
///   C4  maximality — an efficiency clause only: the union over maximal
///       sets equals the union over all sets satisfying C1–C3, which is
///       what the implementation computes (a rectangle is marked iff SOME
///       witness set containing it satisfies C1–C3).
///
/// Round 2 replicates marked rectangles (f1, or bounded f2 for C-Rep-L),
/// projects unmarked ones, computes the local multi-way join at each
/// reducer, and emits a tuple only at the cell owning its §6.2 reference
/// point (u_r.x, u_l.y).
///
/// Correctness of the round-2 dedup under this routing (proved here since
/// the paper leaves it implicit):
///  * every *replicated* member reaches the owner cell: the reference
///    point dominates each member's start point (x ≥, y ≤), so the owner
///    cell lies in the fourth quadrant of each member's start cell, and —
///    for C-Rep-L — within the per-axis path bound of query/bounds.h;
///  * every *unmarked* member starts in the owner cell itself: if some
///    tuple member did not overlap the start cell of an unmarked member u,
///    the members overlapping that cell would form a witness set
///    satisfying C1–C3 (the inside endpoint of any inside/outside edge
///    must cross to meet its partner), contradicting u being unmarked;
///    hence all members overlap u's start cell, which forces (i) every
///    member's start cell to weakly precede it in both axes and (ii) all
///    unmarked members to share one start cell c0, and places the
///    reference point inside c0 — given the left/above boundary-point
///    ownership convention of GridPartition::CellOfPoint.
StatusOr<JoinRunResult> ControlledReplicateJoin(
    const Query& query, const GridPartition& grid,
    const std::vector<std::vector<Rect>>& relations,
    const ControlledReplicateOptions& options = {},
    const ExecutionContext& ctx = ExecutionContext());

/// Round-1 marking decision, exposed for unit tests that replay the
/// paper's §7.7 walkthrough: given the rectangles split onto cell `cell`,
/// returns the ids (per relation) of the rectangles C-Rep marks for
/// replication among those starting in `cell`.
///
/// `cell_rects[r]` holds the rectangles of relation r received by this
/// reducer. The result is index-aligned with `cell_rects`.
std::vector<std::vector<int64_t>> MarkRectanglesForCell(
    const Query& query, const GridPartition& grid, CellId cell,
    const std::vector<std::vector<LocalRect>>& cell_rects);

}  // namespace mwsj

#endif  // MWSJ_CORE_CONTROLLED_REPLICATE_H_
