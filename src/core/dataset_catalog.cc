#include "core/dataset_catalog.h"

#include <utility>

#include "common/str_format.h"

namespace mwsj {

int64_t DatasetCatalog::PutDataset(
    const std::string& name, std::shared_ptr<const std::vector<Rect>> data) {
  MutexLock lock(&mu_);
  auto [it, inserted] = datasets_.try_emplace(name);
  if (!inserted) {
    ++it->second.epoch;
    EvictArtifactsOf(name);
  }
  it->second.data = std::move(data);
  return it->second.epoch;
}

void DatasetCatalog::EvictArtifactsOf(const std::string& name) {
  // Every key derived from this dataset embeds its length-prefixed
  // "N:name@epoch" token (bundle keys and the scheduler's base artifact
  // key both render data_key), and at bump time every resident mention
  // refers to a superseded epoch — so dropping keys containing the token
  // frees exactly the stale bundles, grids, and round-1 markings. A
  // token false positive (another name whose rendering happens to embed
  // this token) only over-evicts: a safe miss, never a wrong hit. A job
  // still running against the old epoch may re-publish a stale artifact
  // afterwards; it is unreachable (new data_keys carry the new epoch)
  // and the next bump sweeps it.
  const std::string token = StrFormat("%zu:", name.size()) + name + "@";
  for (auto it = artifacts_.begin(); it != artifacts_.end();) {
    if (it->first.find(token) != std::string::npos) {
      it = artifacts_.erase(it);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

int64_t DatasetCatalog::PutDataset(const std::string& name,
                                   std::vector<Rect> data) {
  return PutDataset(
      name, std::make_shared<const std::vector<Rect>>(std::move(data)));
}

std::shared_ptr<const std::vector<Rect>> DatasetCatalog::GetDataset(
    const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second.data;
}

int64_t DatasetCatalog::EpochOf(const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? -1 : it->second.epoch;
}

StatusOr<DatasetCatalog::RelationBundle> DatasetCatalog::GetRelationBundle(
    const std::vector<std::string>& names) {
  // Resolve every name and its epoch under one lock acquisition so the
  // bundle key and the bundle contents describe the same data versions.
  std::vector<std::shared_ptr<const std::vector<Rect>>> resolved;
  resolved.reserve(names.size());
  std::string data_key = "data[";
  {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < names.size(); ++i) {
      const auto it = datasets_.find(names[i]);
      if (it == datasets_.end()) {
        return Status::NotFound(
            StrFormat("dataset '%s' is not in the catalog", names[i].c_str()));
      }
      resolved.push_back(it->second.data);
      if (i > 0) data_key += ',';
      // Length-prefixed, like Query::CanonicalForm, so names containing
      // the separators cannot forge another bundle's key.
      data_key += StrFormat("%zu:", names[i].size());
      data_key += names[i];
      data_key += StrFormat("@%lld", static_cast<long long>(it->second.epoch));
    }
  }
  data_key += ']';

  RelationBundle bundle;
  bundle.data_key = data_key;
  const std::string bundle_key = "bundle|" + data_key;
  if (auto resident = Get<std::vector<std::vector<Rect>>>(bundle_key)) {
    bundle.relations = std::move(resident);
    bundle.cache_hit = true;
    return bundle;
  }
  // Assemble outside the lock (the copies can be large); Put is
  // first-wins, so a concurrent assembler costs a duplicate copy once but
  // every later consumer shares a single resident bundle.
  auto assembled = std::make_shared<std::vector<std::vector<Rect>>>();
  assembled->reserve(resolved.size());
  for (const auto& data : resolved) assembled->push_back(*data);
  bundle.relations = Put<std::vector<std::vector<Rect>>>(
      bundle_key,
      std::shared_ptr<const std::vector<std::vector<Rect>>>(
          std::move(assembled)));
  bundle.cache_hit = false;
  return bundle;
}

std::vector<std::string> DatasetCatalog::DatasetNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) names.push_back(name);
  return names;
}

std::pair<std::shared_ptr<const void>, const std::type_info*>
DatasetCatalog::GetArtifact(const std::string& key) {
  MutexLock lock(&mu_);
  const auto it = artifacts_.find(key);
  if (it == artifacts_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {nullptr, &typeid(void)};
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return {it->second.value, it->second.type};
}

std::pair<std::shared_ptr<const void>, const std::type_info*>
DatasetCatalog::PutArtifact(const std::string& key,
                            std::shared_ptr<const void> value,
                            const std::type_info* type) {
  MutexLock lock(&mu_);
  auto [it, inserted] = artifacts_.try_emplace(key);
  if (inserted) {
    it->second.value = std::move(value);
    it->second.type = type;
  }
  return {it->second.value, it->second.type};
}

}  // namespace mwsj
