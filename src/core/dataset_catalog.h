#ifndef MWSJ_CORE_DATASET_CATALOG_H_
#define MWSJ_CORE_DATASET_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "geometry/rect.h"

namespace mwsj {

/// Keeps ingested relations and derived partitioning artifacts resident
/// between jobs, so a repeat query skips the work a cold run pays for:
/// assembling per-relation inputs, building the reducer grid, and — for the
/// Controlled-Replicate family — the whole round-1 marking job (the paper's
/// split+mark round), following the map-side-join insight that inputs
/// already partitioned by a prior round should not be re-partitioned.
///
/// Three layers, all first-wins and immutable once stored:
///
///   * **Datasets** — named rectangle sets with a monotonically increasing
///     *epoch*. Re-putting a name bumps its epoch, which changes every key
///     derived from the dataset, so stale artifacts are never served — and
///     the bump *evicts* every resident bundle/artifact whose key
///     references a superseded epoch of the name, so a long-running
///     service with dataset churn does not grow memory without bound.
///   * **Relation bundles** — the `vector<vector<Rect>>` a runner consumes,
///     assembled once per distinct (name@epoch, ...) list and shared by
///     every subsequent job over the same inputs.
///   * **Artifacts** — a typed key→value cache for derived immutable
///     values (grid partitionings, C-Rep round-1 markings). Keys embed the
///     query canonical form, the dataset epochs, and the artifact kind, so
///     a key can never alias across queries, data versions, or types; a
///     type check backs that up at retrieval.
///
/// Thread-safe; all values are shared immutable snapshots, so readers never
/// block each other beyond the map lookup. Global hit/miss counters
/// aggregate across jobs; per-run attribution is the caller's job (the
/// runner counts its own lookups into RunStats).
class DatasetCatalog {
 public:
  DatasetCatalog() = default;
  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Registers (or replaces) dataset `name` and returns its new epoch.
  /// Epochs start at 0 and increase by 1 per Put of the same name.
  int64_t PutDataset(const std::string& name,
                     std::shared_ptr<const std::vector<Rect>> data)
      EXCLUDES(mu_);
  int64_t PutDataset(const std::string& name, std::vector<Rect> data)
      EXCLUDES(mu_);

  /// The current data for `name`, or null when absent.
  std::shared_ptr<const std::vector<Rect>> GetDataset(
      const std::string& name) const EXCLUDES(mu_);

  /// The current epoch of `name`, or -1 when absent.
  int64_t EpochOf(const std::string& name) const EXCLUDES(mu_);

  /// A runner-ready view over the named datasets, in request order.
  struct RelationBundle {
    /// One entry per requested name; shared across jobs, never mutated.
    std::shared_ptr<const std::vector<std::vector<Rect>>> relations;
    /// Epoch-qualified identity of the inputs, in request order:
    /// "data[<len>:<name>@<epoch>,...]". Artifact keys derive from this,
    /// so any dataset replacement invalidates them implicitly.
    std::string data_key;
    /// True when the assembled bundle was already resident.
    bool cache_hit = false;
  };

  /// Assembles (or retrieves) the bundle for `names`. The epochs captured
  /// in `data_key` are the ones the returned data actually has — resolved
  /// atomically, so a concurrent PutDataset cannot tear the bundle.
  /// Returns NotFound when any name is absent.
  StatusOr<RelationBundle> GetRelationBundle(
      const std::vector<std::string>& names) EXCLUDES(mu_);

  /// Retrieves artifact `key`, or null on miss (or on a type mismatch,
  /// which key discipline should make impossible).
  template <typename T>
  std::shared_ptr<const T> Get(const std::string& key) EXCLUDES(mu_) {
    auto [value, type] = GetArtifact(key);
    if (value == nullptr || *type != typeid(T)) return nullptr;
    return std::static_pointer_cast<const T>(value);
  }

  /// Stores artifact `key` first-wins: if a concurrent job already stored
  /// the key, the resident value is returned and `value` is dropped, so
  /// every consumer shares one immutable object.
  template <typename T>
  std::shared_ptr<const T> Put(const std::string& key,
                               std::shared_ptr<const T> value) EXCLUDES(mu_) {
    auto [resident, type] = PutArtifact(
        key, std::static_pointer_cast<const void>(std::move(value)),
        &typeid(T));
    if (*type != typeid(T)) return nullptr;
    return std::static_pointer_cast<const T>(resident);
  }

  /// Datasets currently registered.
  std::vector<std::string> DatasetNames() const EXCLUDES(mu_);

  /// Cross-job reuse totals (bundle + artifact lookups).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Artifacts dropped because a PutDataset superseded an epoch their key
  /// references.
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Dataset {
    std::shared_ptr<const std::vector<Rect>> data;
    int64_t epoch = 0;
  };
  struct Artifact {
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
  };

  std::pair<std::shared_ptr<const void>, const std::type_info*> GetArtifact(
      const std::string& key) EXCLUDES(mu_);
  std::pair<std::shared_ptr<const void>, const std::type_info*> PutArtifact(
      const std::string& key, std::shared_ptr<const void> value,
      const std::type_info* type) EXCLUDES(mu_);

  /// Drops every artifact whose key references `name` (all resident
  /// mentions are of superseded epochs at bump time).
  void EvictArtifactsOf(const std::string& name) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Dataset> datasets_ GUARDED_BY(mu_);
  std::map<std::string, Artifact> artifacts_ GUARDED_BY(mu_);
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace mwsj

#endif  // MWSJ_CORE_DATASET_CATALOG_H_
