#include "core/dedup.h"

#include <algorithm>

namespace mwsj {

bool OwnsOverlapPair(const GridPartition& grid, CellId cell, const Rect& r1,
                     const Rect& r2) {
  const std::optional<Rect> overlap = Intersection(r1, r2);
  if (!overlap.has_value()) return false;
  return grid.CellOfPoint(overlap->start_point()) == cell;
}

bool OwnsRangePair(const GridPartition& grid, CellId cell, const Rect& r1,
                   const Rect& r2, double d) {
  const std::optional<Rect> overlap = Intersection(r1.EnlargeByDistance(d), r2);
  if (!overlap.has_value()) return false;
  return grid.CellOfPoint(overlap->start_point()) == cell;
}

Point MultiwayReferencePoint(std::span<const Rect* const> members) {
  double max_start_x = members[0]->start_point().x;
  double min_start_y = members[0]->start_point().y;
  for (const Rect* r : members.subspan(1)) {
    max_start_x = std::max(max_start_x, r->start_point().x);
    min_start_y = std::min(min_start_y, r->start_point().y);
  }
  return Point{max_start_x, min_start_y};
}

bool OwnsTuple(const GridPartition& grid, CellId cell,
               std::span<const Rect* const> members) {
  return grid.CellOfPoint(MultiwayReferencePoint(members)) == cell;
}

}  // namespace mwsj
