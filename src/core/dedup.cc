// Reference-point dedup kernels: called once per candidate pair/tuple, so
// they must stay free of std::function indirection and heap allocation —
// enforced by tools/mwsj_check.py via the MWSJ_ALLOC_FREE /
// MWSJ_DETERMINISTIC annotations in dedup.h. Shared state is limited to
// relaxed atomics (statistics, not synchronization); there is no lock to
// annotate.
#include "core/dedup.h"

#include <algorithm>
#include <atomic>

namespace mwsj {

namespace {

// Always-on dedup-check tallies (see SnapshotDedupCounters).
// Relaxed: the counts are statistics, not synchronization.
std::atomic<int64_t> g_pair_checks{0};
std::atomic<int64_t> g_range_pair_checks{0};
std::atomic<int64_t> g_tuple_checks{0};
std::atomic<int64_t> g_owned{0};

inline void Bump(std::atomic<int64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

inline bool Tally(bool owns) {
  if (owns) Bump(g_owned);
  return owns;
}

}  // namespace

bool OwnsOverlapPair(const GridPartition& grid, CellId cell, const Rect& r1,
                     const Rect& r2) {
  Bump(g_pair_checks);
  const std::optional<Rect> overlap = Intersection(r1, r2);
  if (!overlap.has_value()) return false;
  return Tally(grid.CellOfPoint(overlap->start_point()) == cell);
}

bool OwnsRangePair(const GridPartition& grid, CellId cell, const Rect& r1,
                   const Rect& r2, double d) {
  Bump(g_range_pair_checks);
  const std::optional<Rect> overlap = Intersection(r1.EnlargeByDistance(d), r2);
  if (!overlap.has_value()) return false;
  return Tally(grid.CellOfPoint(overlap->start_point()) == cell);
}

Point MultiwayReferencePoint(std::span<const Rect* const> members) {
  double max_start_x = members[0]->start_point().x;
  double min_start_y = members[0]->start_point().y;
  for (const Rect* r : members.subspan(1)) {
    max_start_x = std::max(max_start_x, r->start_point().x);
    min_start_y = std::min(min_start_y, r->start_point().y);
  }
  return Point{max_start_x, min_start_y};
}

bool OwnsTuple(const GridPartition& grid, CellId cell,
               std::span<const Rect* const> members) {
  Bump(g_tuple_checks);
  return Tally(grid.CellOfPoint(MultiwayReferencePoint(members)) == cell);
}

DedupCounters SnapshotDedupCounters() {
  DedupCounters c;
  c.pair_checks = g_pair_checks.load(std::memory_order_relaxed);
  c.range_pair_checks = g_range_pair_checks.load(std::memory_order_relaxed);
  c.tuple_checks = g_tuple_checks.load(std::memory_order_relaxed);
  c.owned = g_owned.load(std::memory_order_relaxed);
  return c;
}

DedupCounters DedupCountersDelta(const DedupCounters& before,
                                 const DedupCounters& after) {
  DedupCounters d;
  d.pair_checks = after.pair_checks - before.pair_checks;
  d.range_pair_checks = after.range_pair_checks - before.range_pair_checks;
  d.tuple_checks = after.tuple_checks - before.tuple_checks;
  d.owned = after.owned - before.owned;
  return d;
}

}  // namespace mwsj
