#ifndef MWSJ_CORE_DEDUP_H_
#define MWSJ_CORE_DEDUP_H_

#include <cstdint>
#include <span>

#include "common/effects.h"
#include "geometry/rect.h"
#include "grid/grid_partition.h"

namespace mwsj {

/// Duplicate-avoidance rules. Because rectangles are routed to several
/// reducers, an output tuple can be assembled at several cells; each rule
/// designates exactly one owner cell, chosen so that the owner provably
/// receives every member under the corresponding routing scheme.

/// 2-way overlap rule (§5.2, after [Dittrich & Seeger]): the owner is the
/// cell containing the start point of r1 ∩ r2. Requires Overlaps(r1, r2).
///
/// The ownership checks run once per candidate pair/tuple inside reduce
/// kernels: MWSJ_ALLOC_FREE (pure arithmetic, no scratch) and
/// MWSJ_DETERMINISTIC (the same tuple must pick the same owner cell on
/// every platform, or dedup drops/duplicates output).
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC bool OwnsOverlapPair(
    const GridPartition& grid, CellId cell, const Rect& r1, const Rect& r2);

/// 2-way range rule (§5.3): the owner is the cell containing the start
/// point of r1^e(d) ∩ r2, where r1 is the replicated side and r2 the split
/// side. Requires the enlarged rectangles to overlap (callers check the
/// range predicate separately — overlap of r1^e(d) with r2 does not imply
/// the Euclidean distance bound, §5.3's counter-example).
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC bool OwnsRangePair(
    const GridPartition& grid, CellId cell, const Rect& r1, const Rect& r2,
    double d);

/// Multi-way reference point (§6.2): (u_r.x, u_l.y) with u_r the member
/// with the largest start-point x and u_l the member with the smallest
/// start-point y.
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC Point
MultiwayReferencePoint(std::span<const Rect* const> members);

/// Multi-way rule: the owner is the cell containing the reference point.
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC bool OwnsTuple(
    const GridPartition& grid, CellId cell,
    std::span<const Rect* const> members);

/// Cumulative process-wide counts of the ownership checks above — one
/// relaxed atomic increment per call, plus how many checks answered "this
/// cell owns it". Same snapshot/delta observability pattern as
/// grid/transform.h's TransformCounters: algorithms snapshot around a
/// reduce pass and attach the deltas to its trace span so the
/// duplicate-avoidance workload is visible next to wall time.
///
/// These are *executed-work* tallies, deliberately not exactly-once:
/// under fault injection a re-executed or speculative task attempt bumps
/// them again, so deltas measure retry amplification, not logical output.
/// Exactly-once quantities belong in JobStats user counters via the
/// engine's attempt-scoped Emitter/OutEmitter counters.
struct DedupCounters {
  int64_t pair_checks = 0;
  int64_t range_pair_checks = 0;
  int64_t tuple_checks = 0;
  int64_t owned = 0;
};

/// Current cumulative counts (relaxed reads).
DedupCounters SnapshotDedupCounters();

/// Per-field difference `after - before` of two snapshots.
DedupCounters DedupCountersDelta(const DedupCounters& before,
                                 const DedupCounters& after);

}  // namespace mwsj

#endif  // MWSJ_CORE_DEDUP_H_
