#include "core/explain.h"

#include <algorithm>
#include <cmath>

#include "common/str_format.h"

namespace mwsj {

namespace {

std::string LoadBar(double fraction, int width = 24) {
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string bar;
  for (int i = 0; i < width; ++i) bar += (i < filled) ? '#' : '.';
  return bar;
}

std::string HumanBytes(double bytes) {
  if (bytes >= 1024.0 * 1024 * 1024) {
    return StrFormat("%.1f GiB", bytes / (1024.0 * 1024 * 1024));
  }
  if (bytes >= 1024.0 * 1024) return StrFormat("%.1f MiB", bytes / (1024.0 * 1024));
  if (bytes >= 1024.0) return StrFormat("%.1f KiB", bytes / 1024.0);
  return StrFormat("%.0f B", bytes);
}

}  // namespace

std::string ExplainRun(const Query& query, const JoinRunResult& result,
                       const CostModel& model) {
  std::string out;
  out += StrFormat("query: %s\n", query.ToString().c_str());
  out += StrFormat("output tuples: %lld\n",
                   static_cast<long long>(result.num_tuples));

  for (size_t j = 0; j < result.stats.jobs.size(); ++j) {
    const JobStats& job = result.stats.jobs[j];
    out += StrFormat("\njob %zu/%zu: %s\n", j + 1, result.stats.jobs.size(),
                     job.job_name.c_str());
    out += StrFormat(
        "  map: %lld records in (%s); shuffle: %lld records (%s)\n",
        static_cast<long long>(job.map_input_records),
        HumanBytes(static_cast<double>(job.map_input_bytes)).c_str(),
        static_cast<long long>(job.intermediate_records),
        HumanBytes(static_cast<double>(job.intermediate_bytes)).c_str());
    out += StrFormat("  reduce: %lld records out across %d reducers\n",
                     static_cast<long long>(job.reduce_output_records),
                     job.num_reducers);
    out += StrFormat(
        "  phase time: map %.3fs (%zu chunks, slowest %.3fs) | "
        "shuffle %.3fs | reduce %.3fs\n",
        job.map_seconds, job.per_chunk_map_seconds.size(),
        job.MaxMapChunkSeconds(), job.shuffle_seconds, job.reduce_seconds);
    if (job.wall_seconds > 0) {
      const double wall = job.wall_seconds;
      out += StrFormat(
          "  phase share: map %s %.0f%% | shuffle %s %.0f%% | "
          "reduce %s %.0f%%\n",
          LoadBar(job.map_seconds / wall, 10).c_str(),
          100.0 * job.map_seconds / wall,
          LoadBar(job.shuffle_seconds / wall, 10).c_str(),
          100.0 * job.shuffle_seconds / wall,
          LoadBar(job.reduce_seconds / wall, 10).c_str(),
          100.0 * job.reduce_seconds / wall);
    }

    if (!job.per_reducer_records.empty()) {
      std::vector<int64_t> loads = job.per_reducer_records;
      std::sort(loads.begin(), loads.end());
      const int64_t min = loads.front();
      const int64_t max = loads.back();
      const int64_t median = loads[loads.size() / 2];
      const double avg = static_cast<double>(job.intermediate_records) /
                         static_cast<double>(loads.size());
      out += StrFormat(
          "  reducer load: min %lld / median %lld / max %lld (skew %.2fx)\n",
          static_cast<long long>(min), static_cast<long long>(median),
          static_cast<long long>(max), avg > 0 ? max / avg : 0.0);
      // A small load histogram across reducer-id order (spatial layout).
      if (max > 0 && loads.size() >= 4) {
        const size_t buckets = std::min<size_t>(8, loads.size());
        out += "  load by reducer range:\n";
        const auto& records = job.per_reducer_records;
        const size_t per_bucket = (records.size() + buckets - 1) / buckets;
        for (size_t b = 0; b < buckets; ++b) {
          int64_t sum = 0;
          size_t count = 0;
          for (size_t r = b * per_bucket;
               r < std::min(records.size(), (b + 1) * per_bucket); ++r) {
            sum += records[r];
            ++count;
          }
          if (count == 0) continue;
          const double bucket_avg =
              static_cast<double>(sum) / static_cast<double>(count);
          out += StrFormat(
              "    [%3zu..%3zu] %s %.0f\n", b * per_bucket,
              std::min(records.size(), (b + 1) * per_bucket) - 1,
              LoadBar(bucket_avg / static_cast<double>(max)).c_str(),
              bucket_avg);
        }
      }
    }
    out += StrFormat("  reduce time: total %.3fs, slowest task %.3fs\n",
                     job.SumReducerSeconds(), job.MaxReducerSeconds());
    if (job.spill.active()) {
      const SpillStats& s = job.spill;
      out += StrFormat(
          "  spill: budget %s | %lld/%zu chunks spilled, %lld runs "
          "(widest merge %lld)\n",
          HumanBytes(static_cast<double>(s.budget_bytes)).c_str(),
          static_cast<long long>(s.spilled_chunks),
          job.per_chunk_map_seconds.size(),
          static_cast<long long>(s.spilled_runs),
          static_cast<long long>(s.merge_runs_max));
      if (s.spilled_runs > 0) {
        out += StrFormat(
            "  spill bytes: %s raw -> %s stored (%.2fx compression)\n",
            HumanBytes(static_cast<double>(s.spilled_raw_bytes)).c_str(),
            HumanBytes(static_cast<double>(s.spilled_stored_bytes)).c_str(),
            s.CompressionRatio());
      }
      out += StrFormat(
          "  peak memory: shuffle resident %s | largest inbox %s\n",
          HumanBytes(static_cast<double>(s.peak_shuffle_bytes)).c_str(),
          HumanBytes(static_cast<double>(s.peak_inbox_bytes)).c_str());
    }
    if (job.AnyFaults()) {
      const PhaseFaultStats& m = job.map_faults;
      const PhaseFaultStats& r = job.reduce_faults;
      out += StrFormat(
          "  faults: map %lld/%lld attempts (%lld retries, %lld "
          "speculative) | reduce %lld/%lld attempts (%lld retries, %lld "
          "speculative)\n",
          static_cast<long long>(m.attempts), static_cast<long long>(m.tasks),
          static_cast<long long>(m.retries),
          static_cast<long long>(m.speculative),
          static_cast<long long>(r.attempts), static_cast<long long>(r.tasks),
          static_cast<long long>(r.retries),
          static_cast<long long>(r.speculative));
      out += StrFormat(
          "  wasted: %lld records (%s) in %.3fs, backoff %.3fs\n",
          static_cast<long long>(m.wasted_records + r.wasted_records),
          HumanBytes(static_cast<double>(m.wasted_bytes + r.wasted_bytes))
              .c_str(),
          m.wasted_seconds + r.wasted_seconds,
          m.backoff_seconds + r.backoff_seconds);
    }
    for (const auto& [name, value] : job.user_counters) {
      out += StrFormat("  counter %s = %lld\n", name.c_str(),
                       static_cast<long long>(value));
    }
  }

  // Derived knn-mr metrics (queries/knn_mr.h): summed across jobs because
  // the exporting rounds are separate engine jobs of one run.
  int64_t knn_points = 0;
  int64_t knn_point_copies = 0;
  int64_t knn_bounded_points = 0;
  int64_t knn_candidates = 0;
  for (const JobStats& job : result.stats.jobs) {
    const auto counter = [&job](const char* name) {
      const auto it = job.user_counters.find(name);
      return it != job.user_counters.end() ? it->second : int64_t{0};
    };
    knn_points += counter(kCounterKnnPoints);
    knn_point_copies += counter(kCounterKnnPointCopies);
    knn_bounded_points += counter(kCounterKnnBoundedPoints);
    knn_candidates += counter(kCounterKnnCandidates);
  }
  if (knn_points > 0) {
    const double points = static_cast<double>(knn_points);
    out += StrFormat(
        "\nknn: replication factor %.2f | candidates/point %.2f | "
        "bound tightness %.0f%% (%lld/%lld points bounded)\n",
        static_cast<double>(knn_point_copies) / points,
        static_cast<double>(knn_candidates) / points,
        100.0 * static_cast<double>(knn_bounded_points) / points,
        static_cast<long long>(knn_bounded_points),
        static_cast<long long>(knn_points));
  }

  out += StrFormat("\ntotal wall time: %.3fs\n",
                   result.stats.total_wall_seconds);
  out += StrFormat("modeled cluster time: %s\n",
                   FormatHhMm(model.RunSeconds(result.stats)).c_str());
  return out;
}

}  // namespace mwsj
