#ifndef MWSJ_CORE_EXPLAIN_H_
#define MWSJ_CORE_EXPLAIN_H_

#include <string>

#include "core/records.h"
#include "mapreduce/cost_model.h"
#include "query/query.h"

namespace mwsj {

/// Renders a human-readable post-run report of a join execution: one block
/// per map-reduce job with record/byte volumes, reducer-load distribution
/// (min / median / max and a load bar), measured reduce time, the
/// replication counters, and the modeled cluster time. Used by
/// `mwsj_join --explain` and handy when tuning grid sizes.
std::string ExplainRun(const Query& query, const JoinRunResult& result,
                       const CostModel& model = {});

}  // namespace mwsj

#endif  // MWSJ_CORE_EXPLAIN_H_
