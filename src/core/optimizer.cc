#include "core/optimizer.h"

#include <algorithm>
#include <limits>

#include "common/random.h"
#include "localjoin/plane_sweep.h"

namespace mwsj {

namespace {

std::vector<Rect> SampleRelation(const std::vector<Rect>& relation,
                                 size_t sample_size, Rng& rng) {
  if (relation.size() <= sample_size) return relation;
  std::vector<Rect> sample;
  sample.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(relation[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(relation.size()) - 1))]);
  }
  return sample;
}

// Estimated cardinality of joining the bound set with `next`, given the
// current cardinality: multiply by |next| and by the selectivity of every
// condition connecting `next` to a bound relation.
double StepCardinality(const Query& query,
                       const std::vector<double>& selectivities,
                       const std::vector<double>& sizes,
                       const std::vector<bool>& bound, int next,
                       double current) {
  double estimate = current * sizes[static_cast<size_t>(next)];
  for (int ci : query.ConditionsOf(next)) {
    const JoinCondition& c = query.conditions()[static_cast<size_t>(ci)];
    const int other = (c.left == next) ? c.right : c.left;
    if (bound[static_cast<size_t>(other)]) {
      estimate *= selectivities[static_cast<size_t>(ci)];
    }
  }
  return estimate;
}

// Exhaustive DFS over connectivity-valid orders, minimizing the sum of
// intermediate cardinalities (the final result's size is order-invariant
// but is included uniformly, so it does not affect the argmin).
struct Enumerator {
  const Query& query;
  const std::vector<double>& selectivities;
  const std::vector<double>& sizes;

  std::vector<int> best_order;
  double best_cost = std::numeric_limits<double>::infinity();

  std::vector<int> order;
  std::vector<bool> bound;

  void Dfs(double cardinality, double cost) {
    const int m = query.num_relations();
    if (static_cast<int>(order.size()) == m) {
      if (cost < best_cost) {
        best_cost = cost;
        best_order = order;
      }
      return;
    }
    if (cost >= best_cost) return;  // Branch and bound.
    for (int r = 0; r < m; ++r) {
      if (bound[static_cast<size_t>(r)]) continue;
      if (!order.empty()) {
        bool connected = false;
        for (int ci : query.ConditionsOf(r)) {
          const JoinCondition& c =
              query.conditions()[static_cast<size_t>(ci)];
          const int other = (c.left == r) ? c.right : c.left;
          if (bound[static_cast<size_t>(other)]) connected = true;
        }
        if (!connected) continue;
      }
      const double next_cardinality =
          order.empty()
              ? sizes[static_cast<size_t>(r)]
              : StepCardinality(query, selectivities, sizes, bound, r,
                                cardinality);
      bound[static_cast<size_t>(r)] = true;
      order.push_back(r);
      // Intermediates are every step's output except the final one.
      const double added =
          static_cast<int>(order.size()) < query.num_relations()
              ? next_cardinality
              : 0;
      Dfs(next_cardinality, cost + added);
      order.pop_back();
      bound[static_cast<size_t>(r)] = false;
    }
  }
};

}  // namespace

std::vector<double> EstimateSelectivities(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const CascadeOrderOptions& options) {
  Rng rng(options.seed);
  std::vector<std::vector<Rect>> samples;
  samples.reserve(relations.size());
  for (const auto& relation : relations) {
    samples.push_back(SampleRelation(relation, options.sample_size, rng));
  }

  std::vector<double> selectivities;
  selectivities.reserve(query.conditions().size());
  for (const JoinCondition& c : query.conditions()) {
    const auto& left = samples[static_cast<size_t>(c.left)];
    const auto& right = samples[static_cast<size_t>(c.right)];
    if (left.empty() || right.empty()) {
      selectivities.push_back(0);
      continue;
    }
    int64_t matches = 0;
    PlaneSweepJoin(left, right, c.predicate,
                   [&matches](int32_t, int32_t) { ++matches; });
    // Laplace-style smoothing keeps estimates positive so the optimizer
    // can still rank orders when a sample sees no matches.
    selectivities.push_back(
        (static_cast<double>(matches) + 0.5) /
        (static_cast<double>(left.size()) * static_cast<double>(right.size())));
  }
  return selectivities;
}

std::vector<int> OptimizeCascadeOrder(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const CascadeOrderOptions& options) {
  const int m = query.num_relations();
  const std::vector<double> selectivities =
      EstimateSelectivities(query, relations, options);
  std::vector<double> sizes;
  sizes.reserve(relations.size());
  for (const auto& relation : relations) {
    sizes.push_back(static_cast<double>(relation.size()));
  }

  if (m <= 9) {
    Enumerator e{query, selectivities, sizes, {}, /*best_cost=*/
                 std::numeric_limits<double>::infinity(),
                 {},
                 std::vector<bool>(static_cast<size_t>(m), false)};
    e.Dfs(0, 0);
    return e.best_order;
  }

  // Greedy fallback for very wide queries: start from the smallest
  // relation and repeatedly add the connected relation with the cheapest
  // step.
  std::vector<bool> bound(static_cast<size_t>(m), false);
  std::vector<int> order;
  int first = 0;
  for (int r = 1; r < m; ++r) {
    if (sizes[static_cast<size_t>(r)] < sizes[static_cast<size_t>(first)]) {
      first = r;
    }
  }
  order.push_back(first);
  bound[static_cast<size_t>(first)] = true;
  double cardinality = sizes[static_cast<size_t>(first)];
  while (static_cast<int>(order.size()) < m) {
    int best = -1;
    double best_estimate = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      if (bound[static_cast<size_t>(r)]) continue;
      bool connected = false;
      for (int ci : query.ConditionsOf(r)) {
        const JoinCondition& c = query.conditions()[static_cast<size_t>(ci)];
        const int other = (c.left == r) ? c.right : c.left;
        if (bound[static_cast<size_t>(other)]) connected = true;
      }
      if (!connected) continue;
      const double estimate = StepCardinality(query, selectivities, sizes,
                                              bound, r, cardinality);
      if (estimate < best_estimate) {
        best_estimate = estimate;
        best = r;
      }
    }
    order.push_back(best);
    bound[static_cast<size_t>(best)] = true;
    cardinality = best_estimate;
  }
  return order;
}

}  // namespace mwsj
