#ifndef MWSJ_CORE_OPTIMIZER_H_
#define MWSJ_CORE_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "query/query.h"

namespace mwsj {

/// Options for the sampling-based cascade-order optimizer.
struct CascadeOrderOptions {
  /// Rectangles sampled per relation for selectivity estimation.
  size_t sample_size = 2000;
  uint64_t seed = 1;
};

/// Per-condition join selectivities estimated from uniform samples:
/// result[i] estimates P(predicate_i holds) for a random rectangle pair of
/// the condition's relations.
std::vector<double> EstimateSelectivities(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const CascadeOrderOptions& options = {});

/// Chooses the 2-way Cascade evaluation order (see CascadeJoin) that
/// minimizes the estimated total intermediate-result cardinality — the
/// quantity §6.4 identifies as Cascade's cost driver. The paper assumes
/// the optimal order is known (footnote 1); this automates the choice by
/// estimating per-condition selectivities from samples and enumerating
/// every connectivity-valid order (the paper's queries have 3-4 relations,
/// so exhaustive enumeration is exact and cheap; beyond 9 relations a
/// greedy fallback is used).
///
/// The returned order is always valid input for CascadeJoin /
/// RunnerOptions::cascade_order.
std::vector<int> OptimizeCascadeOrder(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const CascadeOrderOptions& options = {});

}  // namespace mwsj

#endif  // MWSJ_CORE_OPTIMIZER_H_
