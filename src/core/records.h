#ifndef MWSJ_CORE_RECORDS_H_
#define MWSJ_CORE_RECORDS_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "io/colcodec.h"
#include "localjoin/brute_force.h"  // IdTuple
#include "localjoin/multiway.h"     // LocalRect
#include "mapreduce/counters.h"
#include "mapreduce/spill.h"

namespace mwsj {

/// A rectangle tagged with its dataset identity — the record type the
/// spatial map-reduce jobs read and shuffle. `relation` indexes the query's
/// relation list; `id` identifies the rectangle within its relation
/// (benches and tests use the position in the input vector).
struct RelRect {
  Rect rect;
  int64_t id = 0;
  int32_t relation = 0;
};

/// Round-1 output of Controlled-Replicate (§7.1): every input rectangle,
/// exactly once, carrying the replication decision flag.
struct MarkedRect {
  Rect rect;
  int64_t id = 0;
  int32_t relation = 0;
  bool marked = false;
};

/// Columnar spill layouts (mapreduce/spill.h) for the shuffled rectangle
/// records: the four coordinates map through the bijective ordered-bits
/// transform (sorted streams delta-pack tightly), id and relation through
/// the sign-biasing key map. Scatter/Gather are exact inverses, so spilled
/// runs decode bit-for-bit — the engine's byte-identity guarantee rests on
/// that.
template <>
struct spill::SpillColumns<RelRect> {
  static constexpr bool enabled = true;
  static constexpr size_t kNumColumns = 6;
  static void Scatter(const RelRect& v, uint64_t* cols) {
    cols[0] = colcodec::OrderedBitsFromDouble(v.rect.min_x());
    cols[1] = colcodec::OrderedBitsFromDouble(v.rect.min_y());
    cols[2] = colcodec::OrderedBitsFromDouble(v.rect.max_x());
    cols[3] = colcodec::OrderedBitsFromDouble(v.rect.max_y());
    cols[4] = spill::KeyToU64(v.id);
    cols[5] = spill::KeyToU64(v.relation);
  }
  static RelRect Gather(const uint64_t* cols) {
    RelRect v;
    v.rect = Rect(colcodec::DoubleFromOrderedBits(cols[0]),
                  colcodec::DoubleFromOrderedBits(cols[1]),
                  colcodec::DoubleFromOrderedBits(cols[2]),
                  colcodec::DoubleFromOrderedBits(cols[3]));
    v.id = spill::KeyFromU64<int64_t>(cols[4]);
    v.relation = spill::KeyFromU64<int32_t>(cols[5]);
    return v;
  }
};

template <>
struct spill::SpillColumns<MarkedRect> {
  static constexpr bool enabled = true;
  static constexpr size_t kNumColumns = 7;
  static void Scatter(const MarkedRect& v, uint64_t* cols) {
    cols[0] = colcodec::OrderedBitsFromDouble(v.rect.min_x());
    cols[1] = colcodec::OrderedBitsFromDouble(v.rect.min_y());
    cols[2] = colcodec::OrderedBitsFromDouble(v.rect.max_x());
    cols[3] = colcodec::OrderedBitsFromDouble(v.rect.max_y());
    cols[4] = spill::KeyToU64(v.id);
    cols[5] = spill::KeyToU64(v.relation);
    cols[6] = v.marked ? 1 : 0;
  }
  static MarkedRect Gather(const uint64_t* cols) {
    MarkedRect v;
    v.rect = Rect(colcodec::DoubleFromOrderedBits(cols[0]),
                  colcodec::DoubleFromOrderedBits(cols[1]),
                  colcodec::DoubleFromOrderedBits(cols[2]),
                  colcodec::DoubleFromOrderedBits(cols[3]));
    v.id = spill::KeyFromU64<int64_t>(cols[4]);
    v.relation = spill::KeyFromU64<int32_t>(cols[5]);
    v.marked = cols[6] != 0;
    return v;
  }
};

/// Result of running a multi-way join end to end: the output tuples (one
/// id per relation, in relation order, lexicographically sorted) plus the
/// per-job statistics of the run. Runs started with `count_only` leave
/// `tuples` empty and report only `num_tuples` — benchmarks over
/// high-selectivity configurations use this to avoid materializing
/// hundreds of millions of ids.
struct JoinRunResult {
  std::vector<IdTuple> tuples;
  int64_t num_tuples = 0;  // == tuples.size() unless count_only.
  RunStats stats;
};

/// Names of the user counters the algorithms export, mirroring the paper's
/// reported metrics (§7.8.3). The paper's "number of rectangles after
/// replication" is not used consistently across its tables — Table 2's
/// values can only be the *total* rectangles received by the join round's
/// reducers (projections + copies), while Table 4's can only be the
/// replicated *copies* alone — so both are exported:
///   * kCounterRectanglesReplicated: rectangles marked for replication;
///   * kCounterRectanglesAfterReplication: all rectangles received by the
///     join round (projected once + every replicated copy);
///   * kCounterReplicationCopies: copies produced for marked rectangles
///     only.
/// All counters are incremented through the engine's attempt-scoped
/// Emitter/OutEmitter, so re-executed task attempts under fault injection
/// never double-count them.
inline constexpr char kCounterRectanglesReplicated[] = "rectangles_replicated";
inline constexpr char kCounterRectanglesAfterReplication[] =
    "rectangles_after_replication";
inline constexpr char kCounterReplicationCopies[] = "replication_copies";
/// Result tuples found by a count_only run (the reduce side counts instead
/// of emitting; see JoinRunResult::num_tuples).
inline constexpr char kCounterTuplesCounted[] = "tuples_counted";

/// Exactly-once user counters of the distributed kNN join
/// (queries/knn_mr.h), defined here so core's explain/stats rendering can
/// derive its headline metrics without depending on the queries library:
/// replication factor = point_copies / points, candidates per point =
/// candidates / points, bound tightness = bounded_points / points.
inline constexpr char kCounterKnnPoints[] = "knn_points";
inline constexpr char kCounterKnnPointCopies[] = "knn_point_copies";
inline constexpr char kCounterKnnRectCopies[] = "knn_rect_copies";
inline constexpr char kCounterKnnBoundedPoints[] = "knn_bounded_points";
inline constexpr char kCounterKnnUnboundedPoints[] = "knn_unbounded_points";
inline constexpr char kCounterKnnCandidates[] = "knn_candidates";
inline constexpr char kCounterKnnBoundedCells[] = "knn_cells_bounded";
inline constexpr char kCounterKnnUnboundedCells[] = "knn_cells_unbounded";

}  // namespace mwsj

#endif  // MWSJ_CORE_RECORDS_H_
