#include "core/refinement.h"

namespace mwsj {

namespace {

bool TupleMatches(const Query& query,
                  const std::vector<std::vector<Polygon>>& relations,
                  const IdTuple& tuple) {
  for (const JoinCondition& c : query.conditions()) {
    const Polygon& a =
        relations[static_cast<size_t>(c.left)]
                 [static_cast<size_t>(tuple[static_cast<size_t>(c.left)])];
    const Polygon& b =
        relations[static_cast<size_t>(c.right)]
                 [static_cast<size_t>(tuple[static_cast<size_t>(c.right)])];
    if (c.predicate.is_overlap()) {
      if (!a.Intersects(b)) return false;
    } else {
      if (a.MinDistanceTo(b) > c.predicate.distance()) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<IdTuple> RefineTuples(
    const Query& query, const std::vector<std::vector<Polygon>>& relations,
    const std::vector<IdTuple>& candidates) {
  std::vector<IdTuple> out;
  out.reserve(candidates.size());
  for (const IdTuple& tuple : candidates) {
    if (TupleMatches(query, relations, tuple)) out.push_back(tuple);
  }
  return out;
}

StatusOr<FilterRefineResult> RunFilterRefineJoin(
    const Query& query, const std::vector<std::vector<Polygon>>& relations,
    const RunnerOptions& options) {
  std::vector<std::vector<Rect>> mbrs(relations.size());
  for (size_t r = 0; r < relations.size(); ++r) {
    mbrs[r].reserve(relations[r].size());
    for (const Polygon& p : relations[r]) mbrs[r].push_back(p.Mbr());
  }
  StatusOr<JoinRunResult> filtered = RunSpatialJoin(query, mbrs, options);
  if (!filtered.ok()) return filtered.status();

  FilterRefineResult result;
  result.candidate_tuples =
      static_cast<int64_t>(filtered.value().tuples.size());
  result.stats = std::move(filtered.value().stats);
  result.tuples = RefineTuples(query, relations, filtered.value().tuples);
  return result;
}

}  // namespace mwsj
