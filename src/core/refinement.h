#ifndef MWSJ_CORE_REFINEMENT_H_
#define MWSJ_CORE_REFINEMENT_H_

#include <vector>

#include "common/status.h"
#include "core/records.h"
#include "core/runner.h"
#include "geometry/polygon.h"
#include "query/query.h"

namespace mwsj {

/// The filter-and-refine pipeline of §1.1 for true polygon datasets.
///
/// The core algorithms evaluate the join on MBRs only (the *filter* step);
/// MBR agreement is necessary but not sufficient for the real geometries.
/// `RefineTuples` re-checks each candidate tuple against the exact polygon
/// predicates (edge intersection for overlap, exact boundary distance for
/// range) and keeps only true matches.
std::vector<IdTuple> RefineTuples(
    const Query& query, const std::vector<std::vector<Polygon>>& relations,
    const std::vector<IdTuple>& candidates);

/// Statistics of a filter+refine run: how selective the filter step was.
struct FilterRefineResult {
  std::vector<IdTuple> tuples;   // True polygon-level matches.
  int64_t candidate_tuples = 0;  // MBR-level matches from the filter step.
  RunStats stats;                // Map-reduce statistics of the filter step.
};

/// Runs the full pipeline: computes MBRs, executes the distributed filter
/// join with `options`, then refines. This is the entry point applications
/// with non-rectangular spatial objects use (see examples/).
StatusOr<FilterRefineResult> RunFilterRefineJoin(
    const Query& query, const std::vector<std::vector<Polygon>>& relations,
    const RunnerOptions& options);

}  // namespace mwsj

#endif  // MWSJ_CORE_REFINEMENT_H_
