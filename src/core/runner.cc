#include "core/runner.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/str_format.h"
#include "common/trace.h"
#include "core/all_replicate.h"
#include "core/cascade.h"
#include "core/controlled_replicate.h"
#include "core/optimizer.h"
#include "core/scheduler.h"
#include "localjoin/brute_force.h"
#include "query/bounds.h"

namespace mwsj {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kBruteForce:
      return "BruteForce";
    case Algorithm::kTwoWayCascade:
      return "2-way Cascade";
    case Algorithm::kAllReplicate:
      return "All-Replicate";
    case Algorithm::kControlledReplicate:
      return "C-Rep";
    case Algorithm::kControlledReplicateInLimit:
      return "C-Rep-L";
  }
  return "Unknown";
}

Rect ComputeBoundingSpace(const std::vector<std::vector<Rect>>& relations) {
  bool first = true;
  Rect space;
  for (const auto& relation : relations) {
    for (const Rect& r : relation) {
      space = first ? r : Rect::Union(space, r);
      first = false;
    }
  }
  if (first) return Rect(0, 0, 1, 1);  // No data: any non-empty space works.
  // Grow degenerate extents so the grid has positive cell sizes.
  if (space.length() <= 0 || space.breadth() <= 0) {
    space = Rect(space.min_x(), space.min_y() - 1, space.max_x() + 1,
                 space.max_y());
  }
  return space;
}

StatusOr<GridAcquisition> AcquireGrid(
    const std::vector<std::vector<Rect>>& relations, const Rect& space,
    const RunnerOptions& options, const ExecutionContext& ctx) {
  GridAcquisition out;
  // With a catalog and a base key, the grid is a resident artifact: the
  // key extends the base (canonical query + dataset epochs) with every
  // input the grid construction reads, so a hit is always byte-equivalent
  // to rebuilding. Equi-depth grids depend on the data only through the
  // datasets already pinned by the base key's epochs.
  if (options.catalog != nullptr && !options.artifact_key.empty()) {
    out.grid_key = options.artifact_key +
                   StrFormat("|grid[%dx%d,p%d,space %.17g %.17g %.17g %.17g]",
                             options.grid_rows, options.grid_cols,
                             static_cast<int>(options.partitioning),
                             space.min_x(), space.min_y(), space.max_x(),
                             space.max_y());
  }
  TraceSpan grid_span(ctx.tracer, "grid_build", "stage");
  if (!out.grid_key.empty()) {
    out.grid = options.catalog->Get<GridPartition>(out.grid_key);
    if (out.grid != nullptr) {
      ++out.catalog_hits;
      grid_span.AddArg("cached", int64_t{1});
    } else {
      ++out.catalog_misses;
    }
  }
  if (out.grid == nullptr) {
    StatusOr<GridPartition> grid = Status::Internal("unreachable");
    if (options.partitioning == Partitioning::kEquiDepth) {
      // Sample start points across all relations (bounded, round-robin).
      std::vector<Rect> sample;
      constexpr size_t kMaxSample = 20'000;
      size_t total = 0;
      for (const auto& rel : relations) total += rel.size();
      const size_t stride = std::max<size_t>(1, total / kMaxSample);
      size_t i = 0;
      for (const auto& rel : relations) {
        for (const Rect& r : rel) {
          if (i++ % stride == 0) sample.push_back(r);
        }
      }
      grid = GridPartition::CreateEquiDepth(space, options.grid_rows,
                                            options.grid_cols, sample);
    } else {
      grid = GridPartition::Create(space, options.grid_rows, options.grid_cols);
    }
    if (!grid.ok()) return grid.status();
    out.grid = std::make_shared<const GridPartition>(std::move(grid.value()));
    if (!out.grid_key.empty()) {
      // First-wins: a concurrent identical job may have stored it already.
      out.grid = options.catalog->Put<GridPartition>(out.grid_key, out.grid);
    }
  }
  grid_span.AddArg("rows", static_cast<int64_t>(options.grid_rows));
  grid_span.AddArg("cols", static_cast<int64_t>(options.grid_cols));
  grid_span.End();
  return out;
}

namespace {

void FilterDistinctIds(std::vector<IdTuple>* tuples) {
  tuples->erase(std::remove_if(tuples->begin(), tuples->end(),
                               [](const IdTuple& t) {
                                 for (size_t i = 0; i < t.size(); ++i) {
                                   for (size_t j = i + 1; j < t.size(); ++j) {
                                     if (t[i] == t[j]) return true;
                                   }
                                 }
                                 return false;
                               }),
                tuples->end());
}

}  // namespace

StatusOr<JoinRunResult> ExecuteSpatialJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const RunnerOptions& options) {
  if (static_cast<int>(relations.size()) != query.num_relations()) {
    return Status::InvalidArgument(
        StrFormat("query has %d relations but %zu datasets were supplied",
                  query.num_relations(), relations.size()));
  }

  const Rect space = options.space.value_or(ComputeBoundingSpace(relations));
  // Reject range distances / data extents that would overflow the grid
  // transforms (EnlargeByDistance to ±inf routes a rectangle to no cell,
  // silently dropping its join results).
  if (Status bounds_ok = ValidateQueryBounds(query, space); !bounds_ok.ok()) {
    return bounds_ok;
  }
  if (options.space.has_value()) {
    for (size_t r = 0; r < relations.size(); ++r) {
      for (const Rect& rect : relations[r]) {
        if (!space.Contains(rect)) {
          return Status::InvalidArgument(StrFormat(
              "relation %zu contains a rectangle outside the declared space",
              r));
        }
      }
    }
  }
  ExecutionContext ctx = options.context;
  if (ctx.label.empty()) ctx.label = AlgorithmName(options.algorithm);

  TraceSpan run_span(ctx.tracer, ctx.label, "run");
  if (ctx.job_id >= 0) run_span.AddArg("job", ctx.job_id);

  StatusOr<GridAcquisition> acquired =
      AcquireGrid(relations, space, options, ctx);
  if (!acquired.ok()) return acquired.status();
  const int64_t catalog_hits = acquired.value().catalog_hits;
  const int64_t catalog_misses = acquired.value().catalog_misses;
  const std::string& grid_key = acquired.value().grid_key;
  const GridPartition& grid_ref = *acquired.value().grid;

  if (options.count_only && options.distinct_ids) {
    return Status::InvalidArgument(
        "count_only cannot be combined with distinct_ids (the filter needs "
        "materialized tuples)");
  }

  StatusOr<JoinRunResult> result = Status::Internal("unreachable");
  switch (options.algorithm) {
    case Algorithm::kBruteForce: {
      JoinRunResult r;
      r.tuples = BruteForceJoin(query, relations);
      r.num_tuples = static_cast<int64_t>(r.tuples.size());
      if (options.count_only) r.tuples.clear();
      result = std::move(r);
      break;
    }
    case Algorithm::kTwoWayCascade: {
      std::vector<int> order = options.cascade_order;
      if (order.empty() && options.optimize_cascade_order) {
        order = OptimizeCascadeOrder(query, relations);
      }
      result = CascadeJoin(query, grid_ref, relations, std::move(order),
                           options.count_only, ctx);
      break;
    }
    case Algorithm::kAllReplicate:
      result = AllReplicateJoin(query, grid_ref, relations,
                                options.count_only, ctx);
      break;
    case Algorithm::kControlledReplicate: {
      ControlledReplicateOptions crep;
      crep.limit_replication = false;
      crep.count_only = options.count_only;
      crep.catalog = options.catalog;
      crep.artifact_key = grid_key;
      result = ControlledReplicateJoin(query, grid_ref, relations, crep, ctx);
      break;
    }
    case Algorithm::kControlledReplicateInLimit: {
      ControlledReplicateOptions crep;
      crep.limit_replication = true;
      crep.limit_metric = options.limit_metric;
      crep.count_only = options.count_only;
      crep.catalog = options.catalog;
      crep.artifact_key = grid_key;
      result = ControlledReplicateJoin(query, grid_ref, relations, crep, ctx);
      break;
    }
  }
  if (!result.ok()) return result.status();

  if (options.distinct_ids) {
    FilterDistinctIds(&result.value().tuples);
    result.value().num_tuples =
        static_cast<int64_t>(result.value().tuples.size());
  }
  result.value().stats.catalog_hits += catalog_hits;
  result.value().stats.catalog_misses += catalog_misses;
  return result;
}

StatusOr<JoinRunResult> RunSpatialJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const RunnerOptions& options) {
  // Honest submit + wait: an inline scheduler borrowing the caller's
  // pool/tracer, one job borrowing the caller's relations and running on
  // this thread — no driver thread is created or joined, so a tight loop
  // of blocking joins pays nothing over the pre-scheduler API. tag_job_id
  // is off so traces, stats, and DFS paths stay byte-identical to it too.
  SchedulerOptions sched_options;
  sched_options.pool = options.context.pool;
  sched_options.tracer = options.context.tracer;
  sched_options.catalog = options.catalog;
  sched_options.max_in_flight = 1;
  sched_options.max_queued = 1;
  sched_options.inline_execution = true;
  JobScheduler scheduler(sched_options);

  JobSpec spec;
  spec.query = query;
  spec.borrowed_relations = &relations;
  spec.options = options;
  spec.tag_job_id = false;
  StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
  if (!handle.ok()) return handle.status();
  return handle.value().Take();
}

}  // namespace mwsj
