#ifndef MWSJ_CORE_RUNNER_H_
#define MWSJ_CORE_RUNNER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "core/dataset_catalog.h"
#include "core/records.h"
#include "grid/grid_partition.h"
#include "grid/transform.h"
#include "query/query.h"

namespace mwsj {

/// The algorithms this library implements, in the paper's terminology.
enum class Algorithm {
  kBruteForce,            // single-machine reference, no map-reduce
  kTwoWayCascade,         // §6.1 baseline: series of 2-way MR joins
  kAllReplicate,          // §6.1 baseline: replicate everything, one job
  kControlledReplicate,   // §7/§8/§9: C-Rep, two MR rounds
  kControlledReplicateInLimit,  // §7.9/§8: C-Rep-L, bounded replication
};

const char* AlgorithmName(Algorithm a);

/// How the reducer grid's boundary positions are chosen.
enum class Partitioning {
  kUniform,    // Equal-sized cells — the paper's setup.
  kEquiDepth,  // Boundaries at data quantiles: balances reducer input
               // under spatial skew (extension; see GridPartition).
};

/// End-to-end configuration for RunSpatialJoin.
struct RunnerOptions {
  Algorithm algorithm = Algorithm::kControlledReplicate;

  /// Reducer grid (the paper's experiments use 8x8 = 64 reducers).
  int grid_rows = 8;
  int grid_cols = 8;

  /// Boundary placement; kEquiDepth samples the input start points.
  Partitioning partitioning = Partitioning::kUniform;

  /// The partitioned space. Unset → the bounding box of all input data.
  std::optional<Rect> space;

  /// C-Rep-L cell-distance metric (see ControlledReplicateOptions).
  DistanceMetric limit_metric = DistanceMetric::kChebyshev;

  /// Drop output tuples binding the same rectangle id in several roles.
  /// Convenience for self-joins: "road triples" normally should not list
  /// one road twice. Incompatible with count_only.
  bool distinct_ids = false;

  /// Count output tuples without materializing them (see JoinRunResult).
  bool count_only = false;

  /// Cascade evaluation order override (see CascadeJoin).
  std::vector<int> cascade_order;

  /// When the order is not overridden, pick it with the sampling-based
  /// optimizer (core/optimizer.h) instead of the default breadth-first
  /// order from relation 0.
  bool optimize_cascade_order = false;

  /// Execution environment shared across phases: worker pool (null =
  /// synchronous), optional tracer, a run label for top-level spans, and
  /// the fault-injection plan / retry policy / DFS model every engine job
  /// of the run executes under (mapreduce/fault.h, mapreduce/dfs.h) —
  /// `mwsj_join --faults=SPEC` plugs in here. `context.job_id` is set by
  /// the JobScheduler for submitted jobs.
  ExecutionContext context;

  /// Optional resident-artifact catalog (core/dataset_catalog.h). With a
  /// non-empty `artifact_key`, the run reuses (or stores) its reducer
  /// grid and — for the C-Rep family — the round-1 marking under keys
  /// derived from it, and counts the lookups into RunStats
  /// catalog_hits/catalog_misses.
  DatasetCatalog* catalog = nullptr;

  /// Base cache key identifying (canonical query, dataset epochs, and the
  /// canonical-rank-to-position binding) — normally composed by the
  /// JobScheduler from Query::CanonicalKey(), the catalog bundle's
  /// data_key, and Query::CanonicalRanks(). Empty disables artifact reuse
  /// even when a catalog is attached (inline relations have no sound key).
  std::string artifact_key;
};

/// Runs the multi-way spatial join `query` over `relations` (one rectangle
/// dataset per query relation, ids = vector positions) with the selected
/// algorithm, and returns the duplicate-free output tuples plus run
/// statistics. All algorithms produce identical tuple sets; they differ in
/// cost profile.
///
/// Self-joins: register the same dataset once per role in the query and
/// pass it once per role here (datasets are taken by const reference, so
/// no copy is needed at the call site beyond the vector of vectors).
///
/// Since the scheduler redesign this is a *compatibility wrapper*: it
/// spins up a single-slot JobScheduler on `options.context`'s pool/tracer,
/// submits one job borrowing `relations`, and blocks on its handle —
/// submit + wait, nothing more. Results, statuses, fault semantics, and
/// every produced artifact (traces, stats_json, DFS paths) are identical
/// to the pre-scheduler behavior. Deprecated for new multi-job callers:
/// construct a JobScheduler (core/scheduler.h) and Submit() instead.
StatusOr<JoinRunResult> RunSpatialJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const RunnerOptions& options);

/// The execution pipeline behind every scheduled job: validates the query
/// against the datasets and the declared space, builds (or retrieves from
/// the catalog) the reducer grid, dispatches to the selected algorithm,
/// and post-processes the tuples — synchronously, on the calling thread,
/// with all parallelism coming from `options.context.pool`. The
/// JobScheduler's drivers call this; everything else goes through
/// RunSpatialJoin or the scheduler.
StatusOr<JoinRunResult> ExecuteSpatialJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    const RunnerOptions& options);

/// Smallest rectangle containing every rectangle of every relation —
/// the default partitioned space.
Rect ComputeBoundingSpace(const std::vector<std::vector<Rect>>& relations);

/// A reducer grid resolved against the catalog: the grid itself, the
/// extended artifact key it is (or would be) resident under, and the
/// catalog lookup tallies to fold into RunStats. `grid_key` is empty when
/// artifact reuse is disabled (no catalog or empty base key).
struct GridAcquisition {
  std::shared_ptr<const GridPartition> grid;
  std::string grid_key;
  int64_t catalog_hits = 0;
  int64_t catalog_misses = 0;
};

/// The grid-resolution step of the execution pipeline, shared by
/// ExecuteSpatialJoin and the query workloads that run outside the
/// Algorithm enum (e.g. queries/knn_mr.h): extends `options.artifact_key`
/// with every input the grid construction reads (geometry, partitioning
/// mode, space), retrieves a resident grid from the catalog or builds one
/// (equi-depth grids sample the relations' start points), and stores the
/// fresh grid first-wins. Records a "grid_build" trace span on
/// `ctx.tracer`, exactly as the pre-factored pipeline did.
StatusOr<GridAcquisition> AcquireGrid(
    const std::vector<std::vector<Rect>>& relations, const Rect& space,
    const RunnerOptions& options, const ExecutionContext& ctx);

}  // namespace mwsj

#endif  // MWSJ_CORE_RUNNER_H_
