#include "core/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/str_format.h"

namespace mwsj {

const char* JobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

bool IsTerminal(JobState s) {
  return s == JobState::kSucceeded || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

}  // namespace

JobState JobHandle::status() const {
  MutexLock lock(&job_->mu);
  return job_->state;
}

const StatusOr<JoinRunResult>& JobHandle::Wait() const {
  MutexLock lock(&job_->mu);
  while (!IsTerminal(job_->state)) job_->done.Wait(job_->mu);
  // Terminal results are never written again, so handing out a reference
  // after unlocking is safe.
  return job_->result;
}

StatusOr<JoinRunResult> JobHandle::Take() {
  MutexLock lock(&job_->mu);
  while (!IsTerminal(job_->state)) job_->done.Wait(job_->mu);
  StatusOr<JoinRunResult> out = std::move(job_->result);
  job_->result = Status::FailedPrecondition("job result was already taken");
  return out;
}

bool JobHandle::Cancel() {
  MutexLock lock(&job_->mu);
  if (job_->state != JobState::kQueued) return false;
  // The job stays in the scheduler's queue; the driver that eventually
  // pops it sees the terminal state and skips execution.
  job_->state = JobState::kCancelled;
  job_->result = Status::FailedPrecondition("job was cancelled while queued");
  job_->done.NotifyAll();
  return true;
}

JobScheduler::JobScheduler(const SchedulerOptions& options)
    : options_(options) {
  options_.max_in_flight = std::max(1, options_.max_in_flight);
  options_.max_queued = std::max(1, options_.max_queued);
  if (options_.inline_execution) return;  // Jobs run on Submit's thread.
  drivers_.reserve(static_cast<size_t>(options_.max_in_flight));
  for (int i = 0; i < options_.max_in_flight; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  // Drivers drain the queue before exiting, so every accepted job reaches
  // a terminal state and every handle's Wait() returns.
  for (auto& d : drivers_) d.join();
}

StatusOr<JobHandle> JobScheduler::Submit(JobSpec spec) {
  if (!spec.query.has_value()) {
    return Status::InvalidArgument("JobSpec has no query");
  }
  const bool has_names = !spec.dataset_names.empty();
  const bool has_inline = !spec.relations.empty();
  const bool has_borrowed = spec.borrowed_relations != nullptr;
  if ((has_names && (has_inline || has_borrowed)) ||
      (has_inline && has_borrowed)) {
    return Status::InvalidArgument(
        "JobSpec must use exactly one input source (dataset_names, "
        "relations, or borrowed_relations)");
  }
  if (has_names) {
    DatasetCatalog* catalog = spec.options.catalog != nullptr
                                  ? spec.options.catalog
                                  : options_.catalog;
    if (catalog == nullptr) {
      return Status::FailedPrecondition(
          "JobSpec names catalog datasets but no DatasetCatalog is "
          "configured");
    }
    if (static_cast<int>(spec.dataset_names.size()) !=
        spec.query->num_relations()) {
      return Status::InvalidArgument(StrFormat(
          "query has %d relations but %zu dataset names were supplied",
          spec.query->num_relations(), spec.dataset_names.size()));
    }
  }

  auto job = std::make_shared<scheduler_internal::Job>();
  job->spec = std::move(spec);
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::FailedPrecondition(
          "the scheduler is shutting down and admits no new jobs");
    }
    if (!options_.inline_execution &&
        static_cast<int>(queue_.size()) >= options_.max_queued) {
      ++counters_.rejected;
      return Status::FailedPrecondition(
          StrFormat("admission queue is full (%d jobs queued); retry after "
                    "in-flight jobs finish",
                    options_.max_queued));
    }
    job->id = next_id_++;
    if (!options_.inline_execution) queue_.push_back(job);
    ++counters_.submitted;
  }
  if (options_.inline_execution) {
    // Run to a terminal state on this thread; the handle returned is
    // already resolved, so Wait()/Take() never block.
    RunJob(job.get());
    return JobHandle(std::move(job));
  }
  work_available_.NotifyOne();
  return JobHandle(std::move(job));
}

void JobScheduler::Drain() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || running_ != 0) idle_.Wait(mu_);
}

JobScheduler::Counters JobScheduler::counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

void JobScheduler::DriverLoop() {
  for (;;) {
    std::shared_ptr<scheduler_internal::Job> job;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    RunJob(job.get());
    {
      MutexLock lock(&mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.NotifyAll();
    }
  }
}

void JobScheduler::RunJob(scheduler_internal::Job* job) {
  {
    MutexLock lock(&job->mu);
    if (job->state == JobState::kCancelled) {
      MutexLock sched_lock(&mu_);
      ++counters_.cancelled;
      return;
    }
    job->state = JobState::kRunning;
  }

  // The per-job options inherit the scheduler's shared wiring; the spec's
  // own label/faults/retry/dfs stay job-scoped.
  RunnerOptions options = job->spec.options;
  options.context.pool = options_.pool;
  options.context.tracer = options_.tracer;
  options.context.job_id = job->spec.tag_job_id ? job->id : -1;
  if (options.catalog == nullptr) options.catalog = options_.catalog;
  if (options_.shuffle_memory_budget > 0) {
    // Concurrent jobs share the process budget: each in-flight slot gets
    // an equal slice, and a job keeps its own budget only when stricter.
    const int slots =
        options_.inline_execution ? 1 : std::max(1, options_.max_in_flight);
    const int64_t share = std::max<int64_t>(
        int64_t{1}, options_.shuffle_memory_budget / slots);
    int64_t& job_budget = options.context.options.shuffle_memory_budget;
    if (job_budget <= 0 || job_budget > share) job_budget = share;
  }

  StatusOr<JoinRunResult> result = Status::Internal("job produced no result");
  const std::vector<std::vector<Rect>>* relations = nullptr;
  // Keeps a catalog bundle alive across the run.
  std::shared_ptr<const std::vector<std::vector<Rect>>> bundle_data;
  int64_t bundle_hits = 0;
  int64_t bundle_misses = 0;
  if (!job->spec.dataset_names.empty()) {
    StatusOr<DatasetCatalog::RelationBundle> bundle =
        options.catalog->GetRelationBundle(job->spec.dataset_names);
    if (!bundle.ok()) {
      result = bundle.status();
    } else {
      bundle_data = bundle.value().relations;
      relations = bundle_data.get();
      (bundle.value().cache_hit ? bundle_hits : bundle_misses) += 1;
      // Base artifact key: canonical query form + epoch-qualified inputs
      // + the canonical-rank-to-position permutation. The canonical form
      // relabels relations and forgets which position each rank came
      // from, while the data list is positional — without the permutation
      // two structurally different submissions (or two self-join
      // spellings over one dataset) could render the same form and data
      // list yet bind the datasets to different join roles, serving one
      // job's grid / C-Rep round-1 marking to the other. Equal keys imply
      // positionally identical (query, data): never a false hit.
      std::string perm = "perm[";
      const std::vector<int> ranks = job->spec.query->CanonicalRanks();
      for (size_t i = 0; i < ranks.size(); ++i) {
        if (i > 0) perm += ',';
        perm += StrFormat("%d", ranks[i]);
      }
      perm += ']';
      options.artifact_key = job->spec.query->CanonicalKey() + "|" +
                             bundle.value().data_key + "|" + perm;
    }
  } else {
    relations = job->spec.borrowed_relations != nullptr
                    ? job->spec.borrowed_relations
                    : &job->spec.relations;
  }
  if (relations != nullptr) {
    result = job->spec.execute != nullptr
                 ? job->spec.execute(*job->spec.query, *relations, options)
                 : ExecuteSpatialJoin(*job->spec.query, *relations, options);
    if (result.ok()) {
      result.value().stats.catalog_hits += bundle_hits;
      result.value().stats.catalog_misses += bundle_misses;
    }
  }

  const bool ok = result.ok();
  // Tally before resolving: Wait() returns the instant `done` fires, and a
  // caller reading counters() right after must already see this job.
  {
    MutexLock lock(&mu_);
    if (ok) {
      ++counters_.succeeded;
    } else {
      ++counters_.failed;
    }
  }
  {
    MutexLock lock(&job->mu);
    job->result = std::move(result);
    job->state = ok ? JobState::kSucceeded : JobState::kFailed;
    job->done.NotifyAll();
  }
}

}  // namespace mwsj
