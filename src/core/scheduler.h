#ifndef MWSJ_CORE_SCHEDULER_H_
#define MWSJ_CORE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/execution_context.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dataset_catalog.h"
#include "core/records.h"
#include "core/runner.h"
#include "query/query.h"

namespace mwsj {

class JobScheduler;

/// Configuration of a JobScheduler.
struct SchedulerOptions {
  /// Worker pool shared by every admitted job's map/shuffle/reduce tasks;
  /// null runs each job's tasks inline on its driver thread (jobs still
  /// execute concurrently, their engine phases just don't fan out).
  ThreadPool* pool = nullptr;

  /// Optional tracer shared by all jobs; every span a scheduled job
  /// records carries a "job" arg with the submission id.
  Tracer* tracer = nullptr;

  /// Optional resident catalog. Jobs naming catalog datasets resolve
  /// their inputs here, and repeat queries reuse grid / round-1 artifacts.
  DatasetCatalog* catalog = nullptr;

  /// Jobs executing concurrently (= driver threads). Admission control:
  /// job m+1 waits queued until a driver frees up.
  int max_in_flight = 2;

  /// Bound of the admission queue (jobs accepted but not yet running).
  /// Submit rejects with FailedPrecondition beyond this — backpressure
  /// instead of unbounded memory growth.
  int max_queued = 64;

  /// Process-wide shuffle memory budget in bytes, shared by concurrent
  /// jobs (0 = none). Each job the scheduler runs gets its budget clamped
  /// to budget / max_in_flight (the whole budget under inline_execution),
  /// so jobs in flight together cannot jointly exceed the process budget;
  /// a job's own smaller explicit budget is kept. See
  /// ExecutionOptions::shuffle_memory_budget for per-job semantics.
  int64_t shuffle_memory_budget = 0;

  /// Run each submission to a terminal state on the Submit caller's
  /// thread instead of on driver threads. No threads are spawned and the
  /// admission queue is never used (at most one job exists at a time, so
  /// max_in_flight/max_queued are moot). The blocking compatibility
  /// wrapper uses this so callers running joins in a tight loop don't pay
  /// a thread create/join per call; execution is otherwise identical.
  bool inline_execution = false;
};

/// One join-job submission. Exactly one input source must be set:
///
///   * `dataset_names` — one catalog dataset per query relation, resolved
///     against the scheduler's DatasetCatalog at execution time (the
///     service path: inputs stay resident, repeat queries skip ingest);
///   * `relations`     — inline datasets owned by the spec;
///   * `borrowed_relations` — non-owning view; the caller must keep the
///     data alive until the job reaches a terminal state (this is how the
///     blocking compatibility wrapper submits without copying).
struct JobSpec {
  /// The query to run. (Optional only because Query is builder-created
  /// and has no default constructor; Submit rejects an empty spec.)
  std::optional<Query> query;

  std::vector<std::string> dataset_names;
  std::vector<std::vector<Rect>> relations;
  const std::vector<std::vector<Rect>>* borrowed_relations = nullptr;

  /// Algorithm, grid, and per-job execution knobs. `options.context.pool`,
  /// `.tracer`, and `.job_id` are overwritten by the scheduler (the pool
  /// and tracer are scheduler-owned); `.label`, `.faults`, `.retry`, and
  /// `.dfs` are honored per job, so fault plans and DFS models stay
  /// job-scoped.
  RunnerOptions options;

  /// When false the job runs with `job_id = -1`: no "job" span args, no
  /// stats_json "job_id", no DFS path prefix. Only the blocking
  /// compatibility wrapper uses this, to keep pre-scheduler callers'
  /// artifacts byte-identical.
  bool tag_job_id = true;

  /// Workload override: when set, the driver invokes this instead of
  /// ExecuteSpatialJoin, with the same resolved inputs and fully composed
  /// options (scheduler-owned pool/tracer/job_id, clamped shuffle budget,
  /// catalog artifact_key for dataset-name submissions). This is how
  /// workloads outside the Algorithm enum — e.g. the distributed kNN join
  /// in queries/knn_mr.h, which the core library cannot name without
  /// inverting the queries→core dependency — flow through Submit and
  /// still inherit admission control, tracing, and artifact reuse.
  /// `query` is still required (it carries the relation count and the
  /// canonical artifact key); `options.algorithm` is ignored.
  std::function<StatusOr<JoinRunResult>(
      const Query& query, const std::vector<std::vector<Rect>>& relations,
      const RunnerOptions& options)>
      execute;
};

/// Lifecycle of a submission. Queued and Running are transient;
/// Succeeded/Failed/Cancelled are terminal.
enum class JobState {
  kQueued,     // accepted, waiting for a driver slot (FIFO)
  kRunning,    // executing on a driver
  kSucceeded,  // terminal; result() holds the JoinRunResult
  kFailed,     // terminal; result() holds the error status
  kCancelled,  // terminal; cancelled before a driver picked it up
};

const char* JobStateName(JobState s);

namespace scheduler_internal {

/// Shared record of one submission; the scheduler's queue and every
/// JobHandle copy point at the same Job, so handles stay valid after the
/// scheduler drains (or is destroyed).
struct Job {
  int64_t id = 0;
  JobSpec spec;

  Mutex mu;
  CondVar done;
  JobState state GUARDED_BY(mu) = JobState::kQueued;
  StatusOr<JoinRunResult> result GUARDED_BY(mu) =
      Status::Internal("job has not finished");
};

}  // namespace scheduler_internal

/// Caller's view of one submission. Cheap to copy (shared state);
/// thread-safe.
class JobHandle {
 public:
  int64_t id() const { return job_->id; }

  /// Current lifecycle state.
  JobState status() const;

  /// Blocks until the job is terminal, then returns its result: the
  /// JoinRunResult on success, the failure status otherwise (a cancelled
  /// job fails with FailedPrecondition). The reference stays valid for
  /// the life of the handle — terminal results are immutable — unless
  /// Take() is called.
  const StatusOr<JoinRunResult>& Wait() const;

  /// Like Wait(), but moves the result out (valid once). The blocking
  /// wrapper uses this to return without copying the tuple set.
  StatusOr<JoinRunResult> Take();

  /// Cancels the job iff it is still queued. Returns true when this call
  /// cancelled it; false when it already started running or is terminal
  /// (a running job is never interrupted — its output would otherwise not
  /// be byte-identical to a serial run).
  bool Cancel();

 private:
  friend class JobScheduler;
  explicit JobHandle(std::shared_ptr<scheduler_internal::Job> job)
      : job_(std::move(job)) {}

  std::shared_ptr<scheduler_internal::Job> job_;
};

/// The scheduler core: owns the shared pool/tracer/catalog wiring and a
/// fixed set of driver threads, admits jobs FIFO into a bounded queue, and
/// runs up to `max_in_flight` of them concurrently — their engine tasks
/// interleaved on the one shared ThreadPool (ParallelFor tracks per-call
/// completion, so concurrent jobs never wait on each other's tasks).
/// With `inline_execution` there are no drivers at all: Submit runs the
/// job on the calling thread and returns a terminal handle.
///
/// Each job executes exactly the blocking pipeline (ExecuteSpatialJoin),
/// so per-job output is byte-identical to a serial run, fault semantics
/// stay exactly-once, and the zero-fault fast path is untouched; isolation
/// across jobs comes from per-job ids in spans/stats/DFS paths, not from
/// changed execution.
///
/// Destruction drains: every accepted job still runs to a terminal state
/// before the destructor returns (cancel first for a fast exit).
class JobScheduler {
 public:
  explicit JobScheduler(const SchedulerOptions& options);
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;
  ~JobScheduler();

  /// Admits a job. Returns InvalidArgument for a malformed spec (no
  /// query, several input sources, dataset-name count mismatch),
  /// FailedPrecondition when the admission queue is full or the
  /// spec names datasets but no catalog is configured. Job ids are
  /// assigned in admission order starting at 1.
  StatusOr<JobHandle> Submit(JobSpec spec) EXCLUDES(mu_);

  /// Blocks until every admitted job is terminal.
  void Drain() EXCLUDES(mu_);

  /// Lifetime totals, for tests and service dashboards.
  struct Counters {
    int64_t submitted = 0;  // accepted by Submit
    int64_t rejected = 0;   // refused by admission control
    int64_t succeeded = 0;
    int64_t failed = 0;
    int64_t cancelled = 0;
  };
  Counters counters() const EXCLUDES(mu_);

  const SchedulerOptions& options() const { return options_; }

 private:
  void DriverLoop() EXCLUDES(mu_);
  void RunJob(scheduler_internal::Job* job);

  SchedulerOptions options_;
  mutable Mutex mu_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::shared_ptr<scheduler_internal::Job>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  int64_t next_id_ GUARDED_BY(mu_) = 1;
  int running_ GUARDED_BY(mu_) = 0;
  Counters counters_ GUARDED_BY(mu_);
  std::vector<std::thread> drivers_;  // Written only in the constructor.
};

}  // namespace mwsj

#endif  // MWSJ_CORE_SCHEDULER_H_
