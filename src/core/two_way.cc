#include "core/two_way.h"

#include <algorithm>

#include "common/trace.h"
#include "core/dedup.h"
#include "grid/transform.h"
#include "localjoin/plane_sweep.h"
#include "mapreduce/engine.h"

namespace mwsj {

TwoWayJoinOutcome TwoWaySpatialJoin(const GridPartition& grid,
                                    const Predicate& predicate,
                                    std::span<const LocalRect> left,
                                    std::span<const LocalRect> right,
                                    const ExecutionContext& ctx) {
  Tracer* const tracer = ctx.tracer;
  TraceSpan algo_span(tracer, "two_way_join", "algorithm");
  algo_span.AddArg("left_records", static_cast<int64_t>(left.size()));
  algo_span.AddArg("right_records", static_cast<int64_t>(right.size()));

  // Input records reuse RelRect with `relation` as the side tag.
  std::vector<RelRect> input;
  input.reserve(left.size() + right.size());
  for (const LocalRect& lr : left) input.push_back(RelRect{lr.rect, lr.id, 0});
  for (const LocalRect& lr : right) input.push_back(RelRect{lr.rect, lr.id, 1});

  using Job = MapReduceJob<RelRect, CellId, RelRect,
                           std::pair<int64_t, int64_t>>;
  Job job("two_way_join", grid.num_cells());
  job.set_partition([](const CellId& c) { return static_cast<int>(c); });

  const double d = predicate.is_range() ? predicate.distance() : 0.0;
  job.set_map([&grid, &predicate, d](const RelRect& r, Job::Emitter& emit) {
    std::vector<CellId> cells;
    if (r.relation == 0 && predicate.is_range()) {
      EnlargedSplitCells(grid, r.rect, d, &cells);
    } else {
      SplitCells(grid, r.rect, &cells);
    }
    for (CellId c : cells) emit.Emit(c, r);
  });

  job.set_reduce([&grid, &predicate, d](const CellId& cell,
                                        std::span<const RelRect> values,
                                        Job::OutEmitter& out) {
    std::vector<Rect> left_rects, right_rects;
    std::vector<int64_t> left_ids, right_ids;
    for (const RelRect& v : values) {
      if (v.relation == 0) {
        left_rects.push_back(v.rect);
        left_ids.push_back(v.id);
      } else {
        right_rects.push_back(v.rect);
        right_ids.push_back(v.id);
      }
    }
    PlaneSweepJoin(left_rects, right_rects, predicate,
                   [&](int32_t i, int32_t j) {
                     const Rect& l = left_rects[static_cast<size_t>(i)];
                     const Rect& r = right_rects[static_cast<size_t>(j)];
                     const bool owns =
                         predicate.is_overlap()
                             ? OwnsOverlapPair(grid, cell, l, r)
                             : OwnsRangePair(grid, cell, l, r, d);
                     if (owns) {
                       out.Emit({left_ids[static_cast<size_t>(i)],
                                 right_ids[static_cast<size_t>(j)]});
                     }
                   });
  });

  TwoWayJoinOutcome outcome;
  outcome.stats = job.Run(std::span<const RelRect>(input), &outcome.pairs, ctx);
  std::sort(outcome.pairs.begin(), outcome.pairs.end());
  algo_span.AddArg("output_pairs", static_cast<int64_t>(outcome.pairs.size()));
  return outcome;
}

}  // namespace mwsj
