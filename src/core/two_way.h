#ifndef MWSJ_CORE_TWO_WAY_H_
#define MWSJ_CORE_TWO_WAY_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "core/records.h"
#include "grid/grid_partition.h"
#include "query/predicate.h"

namespace mwsj {

/// Result of a single 2-way spatial join map-reduce job.
struct TwoWayJoinOutcome {
  /// (left id, right id) pairs satisfying the predicate, duplicate-free.
  std::vector<std::pair<int64_t, int64_t>> pairs;
  JobStats stats;
};

/// The 2-way spatial join of §5, as one map-reduce job over `grid`.
///
/// Overlap predicate (§5.2): both sides are Split; the cell containing the
/// start point of the overlap area emits the pair.
///
/// Range predicate (§5.3): the left side is routed to every cell
/// overlapping its rectangle enlarged by d, the right side is Split; the
/// cell containing the start point of (left^e(d) ∩ right) emits the pair
/// after confirming the exact Euclidean distance (enlarged-overlap alone is
/// only a necessary condition — the paper's r2' counter-example).
TwoWayJoinOutcome TwoWaySpatialJoin(
    const GridPartition& grid, const Predicate& predicate,
    std::span<const LocalRect> left, std::span<const LocalRect> right,
    const ExecutionContext& ctx = ExecutionContext());

}  // namespace mwsj

#endif  // MWSJ_CORE_TWO_WAY_H_
