#include "core/verification.h"

#include <algorithm>

#include "common/str_format.h"

namespace mwsj {

Status VerifyJoinResult(const Query& query,
                        const std::vector<std::vector<Rect>>& relations,
                        const std::vector<IdTuple>& tuples) {
  const size_t m = static_cast<size_t>(query.num_relations());
  if (relations.size() != m) {
    return Status::InvalidArgument("relation count does not match the query");
  }

  for (size_t t = 0; t < tuples.size(); ++t) {
    const IdTuple& tuple = tuples[t];
    if (tuple.size() != m) {
      return Status::FailedPrecondition(
          StrFormat("tuple %zu has %zu components, query has %zu relations",
                    t, tuple.size(), m));
    }
    for (size_t r = 0; r < m; ++r) {
      if (tuple[r] < 0 ||
          tuple[r] >= static_cast<int64_t>(relations[r].size())) {
        return Status::FailedPrecondition(
            StrFormat("tuple %zu references id %lld outside relation %zu "
                      "(size %zu)",
                      t, static_cast<long long>(tuple[r]), r,
                      relations[r].size()));
      }
    }
    for (const JoinCondition& c : query.conditions()) {
      const Rect& left =
          relations[static_cast<size_t>(c.left)]
                   [static_cast<size_t>(tuple[static_cast<size_t>(c.left)])];
      const Rect& right =
          relations[static_cast<size_t>(c.right)]
                   [static_cast<size_t>(tuple[static_cast<size_t>(c.right)])];
      if (!c.predicate.Evaluate(left, right)) {
        return Status::FailedPrecondition(StrFormat(
            "tuple %zu violates condition %s between relations %d and %d", t,
            c.predicate.ToString().c_str(), c.left, c.right));
      }
    }
  }

  // Duplicate-freedom.
  std::vector<const IdTuple*> sorted;
  sorted.reserve(tuples.size());
  for (const IdTuple& tuple : tuples) sorted.push_back(&tuple);
  std::sort(sorted.begin(), sorted.end(),
            [](const IdTuple* a, const IdTuple* b) { return *a < *b; });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (*sorted[i] == *sorted[i - 1]) {
      return Status::FailedPrecondition(
          "result contains a duplicate tuple (duplicate-avoidance failed)");
    }
  }
  return Status::OK();
}

}  // namespace mwsj
