#ifndef MWSJ_CORE_VERIFICATION_H_
#define MWSJ_CORE_VERIFICATION_H_

#include <vector>

#include "common/status.h"
#include "core/records.h"
#include "query/query.h"

namespace mwsj {

/// Post-hoc validation of a join result against the query and its inputs.
/// Used by tests and by `mwsj_join --verify`; the checks are independent
/// of any algorithm implementation:
///
///  * every tuple references valid ids;
///  * every tuple satisfies every query condition (soundness);
///  * no tuple appears twice (duplicate-freedom — the §5.2/§6.2 rules'
///    promise);
///  * optionally, completeness against an expected tuple count.
///
/// Returns OK or FailedPrecondition with a description of the first
/// violation.
Status VerifyJoinResult(const Query& query,
                        const std::vector<std::vector<Rect>>& relations,
                        const std::vector<IdTuple>& tuples);

}  // namespace mwsj

#endif  // MWSJ_CORE_VERIFICATION_H_
