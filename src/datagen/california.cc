#include "datagen/california.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace mwsj {

namespace {

constexpr double kXMax = 63'000;
constexpr double kYMax = 100'000;
constexpr double kMaxLength = 2285;
constexpr double kMaxBreadth = 1344;

// Bucket probabilities and shapes of the road-extent mixture, calibrated
// to the published statistics (avg l=18/b=8, 97% < 100, 99% < 1000).
constexpr double kArterialProb = 0.012;   // extent in [100, 1000)
constexpr double kHighwayProb = 0.004;    // extent in [1000, 2285]
constexpr double kLocalMeanExtent = 15.0;  // truncated-exponential mean

// Log-uniform sample in [lo, hi].
double LogUniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
}

double SampleExtent(Rng& rng) {
  const double bucket = rng.NextDouble();
  if (bucket < kHighwayProb) return LogUniform(rng, 1000, kMaxLength);
  if (bucket < kHighwayProb + kArterialProb) return LogUniform(rng, 100, 1000);
  // Local street: 1 + Exp(mean kLocalMeanExtent), truncated below 99.
  double e;
  do {
    double u = rng.NextDouble();
    while (u <= 0) u = rng.NextDouble();
    e = 1.0 - kLocalMeanExtent * std::log(u);
  } while (e >= 99);
  return e;
}

}  // namespace

Rect CaliforniaSpace() { return Rect(0, 0, kXMax, kYMax); }

std::vector<Rect> GenerateCaliforniaRoads(const CaliforniaParams& params) {
  Rng rng(params.seed);

  // Population hubs that corridors connect.
  constexpr int kNumHubs = 256;
  std::vector<Point> hubs;
  hubs.reserve(kNumHubs);
  for (int i = 0; i < kNumHubs; ++i) {
    hubs.push_back(Point{rng.Uniform(0, kXMax), rng.Uniform(0, kYMax)});
  }

  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(params.num_roads));
  Point cursor = hubs[0];
  for (int64_t i = 0; i < params.num_roads; ++i) {
    // Polyline continuation: mostly small steps from the previous road
    // segment; occasionally the walk teleports to a hub (a new polyline).
    if (rng.Bernoulli(0.004)) {
      cursor = hubs[static_cast<size_t>(rng.UniformInt(0, kNumHubs - 1))];
    } else {
      cursor.x += rng.Gaussian(0, 400);
      cursor.y += rng.Gaussian(0, 400);
      cursor.x = std::clamp(cursor.x, 0.0, kXMax);
      cursor.y = std::clamp(cursor.y, 0.0, kYMax);
    }

    const double extent = SampleExtent(rng);
    const double bearing = rng.Uniform(0, M_PI / 2);
    // North-south corridors dominate in the flattened projection; the 0.45
    // breadth factor reproduces the published 18-vs-8 length/breadth skew.
    double l = std::clamp(extent * std::cos(bearing), 1.0, kMaxLength);
    double b = std::clamp(extent * std::sin(bearing) * 0.45, 1.0, kMaxBreadth);

    // Anchor the MBB at the cursor, nudged to stay inside the space.
    const double x = std::clamp(cursor.x, 0.0, kXMax - l);
    const double y = std::clamp(cursor.y, b, kYMax);
    out.push_back(Rect::FromXYLB(x, y, l, b));
  }
  return out;
}

}  // namespace mwsj
