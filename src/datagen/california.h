#ifndef MWSJ_DATAGEN_CALIFORNIA_H_
#define MWSJ_DATAGEN_CALIFORNIA_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"

namespace mwsj {

/// Synthetic stand-in for the paper's real-life California Road dataset
/// (§7.8.2).
///
/// The paper derives 2,092,079 road MBBs from Census 2000 TIGER/Line shape
/// files, flattened with Openmap into x:[0, 63K], y:[0, 100K], and reports:
/// average MBB length 18 and breadth 8; minimum dimensions 1; maximum
/// length 2285 and breadth 1344; 97% of MBBs with both dimensions < 100;
/// 99% with both < 1000.
///
/// We cannot redistribute TIGER/Line here, so this generator synthesizes a
/// dataset matching every published statistic:
///  * MBB extents come from a three-bucket log-mixture (local streets /
///    arterials / highways) split across the axes by a random road bearing,
///    calibrated to the published averages, maxima, and percentiles
///    (verified by tests/datagen/california_test.cc);
///  * positions follow a hub-and-corridor process — most roads continue a
///    short random walk from the previous road (polyline continuation),
///    with occasional jumps to one of a few hundred population hubs — which
///    reproduces the strong spatial clustering of a road network.
/// The join algorithms only observe MBB geometry, so matching the size
/// distribution and clustering reproduces the selectivity and replication
/// behaviour that drive the paper's Tables 4, 7 and 9.
struct CaliforniaParams {
  /// Number of road MBBs. The paper's full dataset has 2,092,079; benches
  /// default to a scaled-down count.
  int64_t num_roads = 2'092'079;
  uint64_t seed = 2000;  // Census 2000 vintage.
};

/// Space the flattened dataset lives in: x in [0, 63K], y in [0, 100K]
/// (aspect ratio 0.63, as published).
Rect CaliforniaSpace();

std::vector<Rect> GenerateCaliforniaRoads(const CaliforniaParams& params);

}  // namespace mwsj

#endif  // MWSJ_DATAGEN_CALIFORNIA_H_
