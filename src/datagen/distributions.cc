#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

namespace mwsj {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "Uniform";
    case Distribution::kGaussian:
      return "Gaussian";
    case Distribution::kClustered:
      return "Clustered";
  }
  return "Unknown";
}

double SampleInRange(Rng& rng, Distribution d, double lo, double hi,
                     uint64_t cluster_seed) {
  switch (d) {
    case Distribution::kUniform:
      return rng.Uniform(lo, hi);
    case Distribution::kGaussian: {
      const double mean = (lo + hi) / 2;
      const double sd = (hi - lo) / 6;
      return std::clamp(rng.Gaussian(mean, sd), lo, hi);
    }
    case Distribution::kClustered: {
      // 16 focal points derived deterministically from the cluster seed;
      // 85% of samples fall near a focal point, the rest are uniform.
      if (rng.Bernoulli(0.15)) return rng.Uniform(lo, hi);
      Rng focal_rng(cluster_seed * 1000003ULL + 17);
      const int which = static_cast<int>(rng.UniformInt(0, 15));
      double focus = lo;
      for (int i = 0; i <= which; ++i) focus = focal_rng.Uniform(lo, hi);
      const double sd = (hi - lo) / 40;
      return std::clamp(rng.Gaussian(focus, sd), lo, hi);
    }
  }
  return lo;
}

}  // namespace mwsj
