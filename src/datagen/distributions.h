#ifndef MWSJ_DATAGEN_DISTRIBUTIONS_H_
#define MWSJ_DATAGEN_DISTRIBUTIONS_H_

#include <string>

#include "common/random.h"

namespace mwsj {

/// Value distributions selectable for each synthetic-data parameter
/// (the paper's dX, dY, dL, dB knobs, §7.8.2).
enum class Distribution {
  kUniform,
  /// Truncated Gaussian centered on the range midpoint (stddev = range/6).
  kGaussian,
  /// Clustered: values concentrate around a few random focal points,
  /// approximating real-world spatial skew.
  kClustered,
};

const char* DistributionName(Distribution d);

/// Samples a value in [lo, hi] under `d`. For kClustered the caller supplies
/// a stable `cluster_seed` so that repeated samples share focal points.
double SampleInRange(Rng& rng, Distribution d, double lo, double hi,
                     uint64_t cluster_seed = 0);

}  // namespace mwsj

#endif  // MWSJ_DATAGEN_DISTRIBUTIONS_H_
