#include "datagen/polygons.h"

#include <algorithm>
#include <cmath>

namespace mwsj {

namespace {

// A center placed so that a shape of extent `radius` stays inside space.
Point SafeCenter(Rng& rng, const Rect& space, double radius) {
  return Point{rng.Uniform(space.min_x() + radius, space.max_x() - radius),
               rng.Uniform(space.min_y() + radius, space.max_y() - radius)};
}

}  // namespace

std::vector<Polygon> GenerateConvexFootprints(const PolygonDatasetParams& p) {
  Rng rng(p.seed);
  std::vector<Polygon> out;
  out.reserve(static_cast<size_t>(p.count));
  for (int64_t i = 0; i < p.count; ++i) {
    const double radius = rng.Uniform(p.min_radius, p.max_radius);
    const int sides = static_cast<int>(rng.UniformInt(5, 9));
    out.push_back(Polygon::RegularNGon(SafeCenter(rng, p.space, radius),
                                       radius, sides, rng.Uniform(0, 1)));
  }
  return out;
}

std::vector<Polygon> GenerateConcaveBlobs(const PolygonDatasetParams& p) {
  Rng rng(p.seed);
  std::vector<Polygon> out;
  out.reserve(static_cast<size_t>(p.count));
  for (int64_t i = 0; i < p.count; ++i) {
    const double radius = rng.Uniform(p.min_radius, p.max_radius);
    const Point center = SafeCenter(rng, p.space, radius);
    const int arms = static_cast<int>(rng.UniformInt(8, 14));
    std::vector<Point> verts;
    verts.reserve(static_cast<size_t>(arms));
    for (int a = 0; a < arms; ++a) {
      const double angle = 2 * M_PI * a / arms;
      // Alternate long and short arms for concavity.
      const double r = rng.Uniform(0.35 * radius, radius);
      verts.push_back(Point{center.x + r * std::cos(angle),
                            center.y + r * std::sin(angle)});
    }
    out.push_back(Polygon(std::move(verts)));
  }
  return out;
}

std::vector<Polygon> GenerateCorridors(const PolygonDatasetParams& p) {
  Rng rng(p.seed);
  std::vector<Polygon> out;
  out.reserve(static_cast<size_t>(p.count));
  for (int64_t i = 0; i < p.count; ++i) {
    const double length = rng.Uniform(4 * p.min_radius, 8 * p.max_radius);
    const double width = rng.Uniform(0.1 * p.min_radius, 0.5 * p.min_radius);
    const double angle = rng.Uniform(0, M_PI);
    const double reach =
        std::max(std::abs(std::cos(angle)), std::abs(std::sin(angle))) *
            length / 2 + width;
    const Point c = SafeCenter(rng, p.space, reach);
    const double dx = std::cos(angle) * length / 2;
    const double dy = std::sin(angle) * length / 2;
    const double nx = -std::sin(angle) * width;
    const double ny = std::cos(angle) * width;
    out.push_back(Polygon({{c.x - dx + nx, c.y - dy + ny},
                           {c.x - dx - nx, c.y - dy - ny},
                           {c.x + dx - nx, c.y + dy - ny},
                           {c.x + dx + nx, c.y + dy + ny}}));
  }
  return out;
}

}  // namespace mwsj
