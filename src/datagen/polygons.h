#ifndef MWSJ_DATAGEN_POLYGONS_H_
#define MWSJ_DATAGEN_POLYGONS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geometry/polygon.h"

namespace mwsj {

/// Synthetic polygon datasets for the filter-and-refine pipeline (§1.1).
/// Three families mirroring the paper's motivating query ("cities adjacent
/// to a forest and overlapping with a river"):
///
///  * compact convex footprints (regular n-gons with jittered radius) —
///    cities, buildings;
///  * irregular star-shaped blobs (concave) — forests, lakes;
///  * long thin corridors (quadrilateral strips) — rivers, roads.
///
/// All polygons stay inside `space`; generation is deterministic per seed.

struct PolygonDatasetParams {
  int64_t count = 0;
  Rect space = Rect(0, 0, 1000, 1000);
  /// Rough object radius range (for corridors: length/width scale).
  double min_radius = 5;
  double max_radius = 40;
  uint64_t seed = 1;
};

std::vector<Polygon> GenerateConvexFootprints(const PolygonDatasetParams& p);
std::vector<Polygon> GenerateConcaveBlobs(const PolygonDatasetParams& p);
std::vector<Polygon> GenerateCorridors(const PolygonDatasetParams& p);

}  // namespace mwsj

#endif  // MWSJ_DATAGEN_POLYGONS_H_
