#include "datagen/synthetic.h"

#include <algorithm>

#include "common/str_format.h"

namespace mwsj {

Status SyntheticParams::Validate() const {
  if (num_rectangles < 0) {
    return Status::InvalidArgument("num_rectangles must be non-negative");
  }
  if (x_min >= x_max || y_min >= y_max) {
    return Status::InvalidArgument("coordinate ranges must be non-empty");
  }
  if (l_min < 0 || b_min < 0 || l_min > l_max || b_min > b_max) {
    return Status::InvalidArgument("dimension ranges must be ordered and "
                                   "non-negative");
  }
  if (l_max > x_max - x_min || b_max > y_max - y_min) {
    return Status::InvalidArgument(
        "maximum dimensions cannot exceed the coordinate space");
  }
  return Status::OK();
}

StatusOr<std::vector<Rect>> GenerateSynthetic(const SyntheticParams& params) {
  MWSJ_RETURN_IF_ERROR(params.Validate());
  Rng rng(params.seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(params.num_rectangles));
  for (int64_t i = 0; i < params.num_rectangles; ++i) {
    const double l =
        SampleInRange(rng, params.dist_l, params.l_min, params.l_max,
                      params.seed + 1);
    const double b =
        SampleInRange(rng, params.dist_b, params.b_min, params.b_max,
                      params.seed + 2);
    // Start point so that the rectangle stays inside the space: x in
    // [x_min, x_max - l], y (the top edge) in [y_min + b, y_max].
    const double x = SampleInRange(rng, params.dist_x, params.x_min,
                                   params.x_max - l, params.seed + 3);
    const double y = SampleInRange(rng, params.dist_y, params.y_min + b,
                                   params.y_max, params.seed + 4);
    out.push_back(Rect::FromXYLB(x, y, l, b));
  }
  return out;
}

std::vector<Rect> SampleDataset(const std::vector<Rect>& data, double p,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(static_cast<double>(data.size()) * p * 1.1));
  for (const Rect& r : data) {
    if (rng.Bernoulli(p)) out.push_back(r);
  }
  return out;
}

std::vector<Rect> EnlargeDataset(const std::vector<Rect>& data, double k) {
  std::vector<Rect> out;
  out.reserve(data.size());
  for (const Rect& r : data) out.push_back(r.EnlargeByFactor(k));
  return out;
}

double MaxDiagonal(const std::vector<Rect>& data) {
  double best = 0;
  for (const Rect& r : data) best = std::max(best, r.Diagonal());
  return best;
}

}  // namespace mwsj
