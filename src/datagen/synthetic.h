#ifndef MWSJ_DATAGEN_SYNTHETIC_H_
#define MWSJ_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "datagen/distributions.h"
#include "geometry/rect.h"

namespace mwsj {

/// Parameters of the paper's synthetic rectangle generator (§7.8.2):
/// (a) number of rectangles nI, (b) distribution of start-point x and y
/// (dX, dY), (c) distribution of length and breadth (dL, dB), (d) the
/// coordinate ranges, (e) length/breadth ranges. Every rectangle lies
/// entirely within the coordinate space.
struct SyntheticParams {
  int64_t num_rectangles = 0;  // nI
  Distribution dist_x = Distribution::kUniform;
  Distribution dist_y = Distribution::kUniform;
  Distribution dist_l = Distribution::kUniform;
  Distribution dist_b = Distribution::kUniform;
  double x_min = 0, x_max = 100'000;  // (x_min, x_max)
  double y_min = 0, y_max = 100'000;  // (y_min, y_max)
  double l_min = 0, l_max = 100;      // (l_min, l_max)
  double b_min = 0, b_max = 100;      // (b_min, b_max)
  uint64_t seed = 1;

  /// The paper's Table 2/3/5/6/8 setup: everything Uniform over a
  /// 100K x 100K space, dimensions in (0, 100).
  static SyntheticParams PaperDefaults(int64_t n, uint64_t seed) {
    SyntheticParams p;
    p.num_rectangles = n;
    p.seed = seed;
    return p;
  }

  Status Validate() const;
};

/// Generates the dataset. Dimensions are sampled first; start points are
/// then sampled so the whole rectangle stays inside the space.
StatusOr<std::vector<Rect>> GenerateSynthetic(const SyntheticParams& params);

/// Uniformly samples each rectangle with probability `p` (the paper's
/// "sampled with probability 0.5" California experiments, §8.1).
std::vector<Rect> SampleDataset(const std::vector<Rect>& data, double p,
                                uint64_t seed);

/// Enlarges every rectangle by factor `k` about its center (§7.8.6).
std::vector<Rect> EnlargeDataset(const std::vector<Rect>& data, double k);

/// Largest diagonal in the dataset — the d_max bound consumed by C-Rep-L.
double MaxDiagonal(const std::vector<Rect>& data);

}  // namespace mwsj

#endif  // MWSJ_DATAGEN_SYNTHETIC_H_
