#ifndef MWSJ_GEOMETRY_POINT_H_
#define MWSJ_GEOMETRY_POINT_H_

#include <cmath>

namespace mwsj {

/// A 2D point. The coordinate system follows the paper: x grows to the
/// right, y grows upward, and a rectangle's *start point* is its top-left
/// vertex (minimum x, maximum y).
struct Point {
  double x = 0;
  double y = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace mwsj

#endif  // MWSJ_GEOMETRY_POINT_H_
