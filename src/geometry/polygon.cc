#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mwsj {

namespace {

// Sign of the cross product (b - a) x (c - a); 0 means collinear.
int Orientation(const Point& a, const Point& b, const Point& c) {
  const double v = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  return Orientation(a, b, p) == 0 && p.x >= std::min(a.x, b.x) &&
         p.x <= std::max(a.x, b.x) && p.y >= std::min(a.y, b.y) &&
         p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  const int o1 = Orientation(a1, a2, b1);
  const int o2 = Orientation(a1, a2, b2);
  const int o3 = Orientation(b1, b2, a1);
  const int o4 = Orientation(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(a1, a2, b1)) return true;
  if (o2 == 0 && OnSegment(a1, a2, b2)) return true;
  if (o3 == 0 && OnSegment(b1, b2, a1)) return true;
  if (o4 == 0 && OnSegment(b1, b2, a2)) return true;
  return false;
}

double SegmentPointDistance(const Point& a1, const Point& a2, const Point& p) {
  const double dx = a2.x - a1.x;
  const double dy = a2.y - a1.y;
  const double len_sq = dx * dx + dy * dy;
  if (len_sq == 0) return Distance(a1, p);
  double t = ((p.x - a1.x) * dx + (p.y - a1.y) * dy) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(Point{a1.x + t * dx, a1.y + t * dy}, p);
}

double SegmentSegmentDistance(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2) {
  if (SegmentsIntersect(a1, a2, b1, b2)) return 0;
  return std::min({SegmentPointDistance(a1, a2, b1),
                   SegmentPointDistance(a1, a2, b2),
                   SegmentPointDistance(b1, b2, a1),
                   SegmentPointDistance(b1, b2, a2)});
}

Polygon Polygon::RegularNGon(const Point& center, double radius, int n,
                             double rotation_radians) {
  std::vector<Point> verts;
  verts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = rotation_radians + 2 * M_PI * i / n;
    verts.push_back(
        Point{center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
  }
  return Polygon(std::move(verts));
}

Rect Polygon::Mbr() const {
  if (vertices_.empty()) return Rect();
  double min_x = vertices_[0].x, max_x = vertices_[0].x;
  double min_y = vertices_[0].y, max_y = vertices_[0].y;
  for (const Point& p : vertices_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  return Rect(min_x, min_y, max_x, max_y);
}

bool Polygon::Contains(const Point& p) const {
  const size_t n = vertices_.size();
  if (n < 3) return false;
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[j];
    const Point& b = vertices_[i];
    if (OnSegment(a, b, p)) return true;  // Boundary counts as inside.
    if ((b.y > p.y) != (a.y > p.y)) {
      const double x_cross = (a.x - b.x) * (p.y - b.y) / (a.y - b.y) + b.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::Intersects(const Polygon& other) const {
  const size_t n = vertices_.size();
  const size_t m = other.vertices_.size();
  if (n == 0 || m == 0) return false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    for (size_t k = 0, l = m - 1; k < m; l = k++) {
      if (SegmentsIntersect(vertices_[j], vertices_[i], other.vertices_[l],
                            other.vertices_[k])) {
        return true;
      }
    }
  }
  // No edge crossings: intersection only if one contains the other.
  return Contains(other.vertices_[0]) || other.Contains(vertices_[0]);
}

double Polygon::MinDistanceTo(const Polygon& other) const {
  if (Intersects(other)) return 0;
  double best = std::numeric_limits<double>::infinity();
  const size_t n = vertices_.size();
  const size_t m = other.vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    for (size_t k = 0, l = m - 1; k < m; l = k++) {
      best = std::min(best,
                      SegmentSegmentDistance(vertices_[j], vertices_[i],
                                             other.vertices_[l],
                                             other.vertices_[k]));
    }
  }
  return best;
}

}  // namespace mwsj
