#ifndef MWSJ_GEOMETRY_POLYGON_H_
#define MWSJ_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace mwsj {

/// A simple polygon (possibly concave, not self-intersecting), used by the
/// *refinement* step of the filter-and-refine pipeline the paper describes
/// in §1.1: joins run on MBRs (the filter step, this library's core), and
/// candidate tuples are then re-checked against the true geometries.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  /// Regular n-gon helper used by examples and tests.
  static Polygon RegularNGon(const Point& center, double radius, int n,
                             double rotation_radians = 0.0);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }

  /// Minimum bounding rectangle — the MBR fed to the filter step.
  Rect Mbr() const;

  /// True when `p` lies inside or on the boundary (ray casting with
  /// boundary handling).
  bool Contains(const Point& p) const;

  /// Exact overlap test: boundaries intersect, or one contains the other.
  bool Intersects(const Polygon& other) const;

  /// Minimum Euclidean distance between the two polygon boundaries/interiors
  /// (0 when they intersect).
  double MinDistanceTo(const Polygon& other) const;

 private:
  std::vector<Point> vertices_;
};

/// True when segments (a1,a2) and (b1,b2) intersect (inclusive of
/// endpoints and collinear overlap).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// Minimum distance between segment (a1,a2) and point p.
double SegmentPointDistance(const Point& a1, const Point& a2, const Point& p);

/// Minimum distance between two segments.
double SegmentSegmentDistance(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2);

}  // namespace mwsj

#endif  // MWSJ_GEOMETRY_POLYGON_H_
