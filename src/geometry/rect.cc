#include "geometry/rect.h"

#include <algorithm>
#include <cmath>

#include "common/str_format.h"

namespace mwsj {

double Rect::Diagonal() const {
  const double l = length();
  const double b = breadth();
  return std::sqrt(l * l + b * b);
}

Rect Rect::EnlargeByFactor(double k) const {
  const double grow_x = length() * (k - 1) / 2;
  const double grow_y = breadth() * (k - 1) / 2;
  return Rect(min_x_ - grow_x, min_y_ - grow_y, max_x_ + grow_x,
              max_y_ + grow_y);
}

std::string Rect::ToString() const {
  return StrFormat("Rect(x=%g, y=%g, l=%g, b=%g)", x(), y(), length(),
                   breadth());
}

namespace {

// Distance between intervals [a_lo, a_hi] and [b_lo, b_hi] (0 if they
// intersect).
inline double AxisGap(double a_lo, double a_hi, double b_lo, double b_hi) {
  if (a_hi < b_lo) return b_lo - a_hi;
  if (b_hi < a_lo) return a_lo - b_hi;
  return 0;
}

}  // namespace

double MinDistance(const Rect& a, const Rect& b) {
  const double dx = AxisGap(a.min_x(), a.max_x(), b.min_x(), b.max_x());
  const double dy = AxisGap(a.min_y(), a.max_y(), b.min_y(), b.max_y());
  return std::sqrt(dx * dx + dy * dy);
}

double MinDistance(const Rect& r, const Point& p) {
  const double dx = AxisGap(r.min_x(), r.max_x(), p.x, p.x);
  const double dy = AxisGap(r.min_y(), r.max_y(), p.y, p.y);
  return std::sqrt(dx * dx + dy * dy);
}

std::optional<Rect> Intersection(const Rect& a, const Rect& b) {
  if (!Overlaps(a, b)) return std::nullopt;
  return Rect(std::max(a.min_x(), b.min_x()), std::max(a.min_y(), b.min_y()),
              std::min(a.max_x(), b.max_x()), std::min(a.max_y(), b.max_y()));
}

}  // namespace mwsj
