#include "geometry/rect.h"

#include <algorithm>
#include <cmath>

#include "common/str_format.h"

namespace mwsj {

double Rect::Diagonal() const {
  const double l = length();
  const double b = breadth();
  return std::sqrt(l * l + b * b);
}

bool Rect::IsFinite() const {
  return std::isfinite(min_x_) && std::isfinite(min_y_) &&
         std::isfinite(max_x_) && std::isfinite(max_y_);
}

Rect Rect::EnlargeByFactor(double k) const {
  const double grow_x = length() * (k - 1) / 2;
  const double grow_y = breadth() * (k - 1) / 2;
  return Rect(min_x_ - grow_x, min_y_ - grow_y, max_x_ + grow_x,
              max_y_ + grow_y);
}

std::string Rect::ToString() const {
  return StrFormat("Rect(x=%g, y=%g, l=%g, b=%g)", x(), y(), length(),
                   breadth());
}

namespace {

// Distance between intervals [a_lo, a_hi] and [b_lo, b_hi] (0 if they
// intersect).
inline double AxisGap(double a_lo, double a_hi, double b_lo, double b_hi) {
  if (a_hi < b_lo) return b_lo - a_hi;
  if (b_hi < a_lo) return a_lo - b_hi;
  return 0;
}

}  // namespace

double MinDistanceSquared(const Rect& a, const Rect& b) {
  const double dx = AxisGap(a.min_x(), a.max_x(), b.min_x(), b.max_x());
  const double dy = AxisGap(a.min_y(), a.max_y(), b.min_y(), b.max_y());
  return dx * dx + dy * dy;
}

double MinDistanceSquared(const Rect& r, const Point& p) {
  const double dx = AxisGap(r.min_x(), r.max_x(), p.x, p.x);
  const double dy = AxisGap(r.min_y(), r.max_y(), p.y, p.y);
  return dx * dx + dy * dy;
}

double MinDistance(const Rect& a, const Rect& b) {
  // hypot, not sqrt(MinDistanceSquared): gaps beyond ~1.34e154 overflow the
  // squared form to inf, and callers (kNN ordering, the huge-d fallback in
  // WithinDistance) need the true magnitude at any representable distance.
  const double dx = AxisGap(a.min_x(), a.max_x(), b.min_x(), b.max_x());
  const double dy = AxisGap(a.min_y(), a.max_y(), b.min_y(), b.max_y());
  return std::hypot(dx, dy);
}

double MinDistance(const Rect& r, const Point& p) {
  const double dx = AxisGap(r.min_x(), r.max_x(), p.x, p.x);
  const double dy = AxisGap(r.min_y(), r.max_y(), p.y, p.y);
  return std::hypot(dx, dy);
}

bool WithinDistance(const Rect& a, const Rect& b, double d) {
  if (d < 0) return false;
  const double d_sq = d * d;
  if (!std::isfinite(d_sq)) {
    // d·d overflowed (d > ~1.34e154): the squared comparison would read
    // inf <= inf for any real gap beyond ~1.34e154 and overclaim. At these
    // magnitudes no representable tie exists, so the sqrt form is safe.
    return MinDistance(a, b) <= d;
  }
  return MinDistanceSquared(a, b) <= d_sq;
}

std::optional<Rect> Intersection(const Rect& a, const Rect& b) {
  if (!Overlaps(a, b)) return std::nullopt;
  return Rect(std::max(a.min_x(), b.min_x()), std::max(a.min_y(), b.min_y()),
              std::min(a.max_x(), b.max_x()), std::min(a.max_y(), b.max_y()));
}

}  // namespace mwsj
