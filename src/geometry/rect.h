#ifndef MWSJ_GEOMETRY_RECT_H_
#define MWSJ_GEOMETRY_RECT_H_

#include <optional>
#include <string>

#include "geometry/point.h"

namespace mwsj {

/// An axis-aligned rectangle (an MBR in the paper's object model, §1.1).
///
/// The paper represents a rectangle as (x, y, l, b): (x, y) is the top-left
/// vertex — the *start point* — and the rectangle extends l units to the
/// right and b units downward. Internally we store the four edge
/// coordinates, which makes every predicate branch-free; `FromXYLB` and the
/// paper-view accessors translate to and from the paper's notation.
///
/// Rectangles are closed sets: two rectangles that share only a boundary
/// point overlap, and a degenerate rectangle (l == 0 or b == 0) is a valid
/// segment/point MBR. This matches the filter-step semantics where false
/// positives are acceptable and false negatives are not.
class Rect {
 public:
  Rect() = default;
  Rect(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  /// Builds a rectangle from the paper's (x, y, l, b) notation:
  /// top-left vertex (x, y), length l (along +x), breadth b (along -y).
  static Rect FromXYLB(double x, double y, double l, double b) {
    return Rect(x, y - b, x + l, y);
  }

  /// Builds the (degenerate) rectangle covering a single point.
  static Rect FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  /// The paper's start point: the top-left vertex (min x, max y).
  Point start_point() const { return Point{min_x_, max_y_}; }

  /// The paper's (x, y, l, b) view.
  double x() const { return min_x_; }
  double y() const { return max_y_; }
  double length() const { return max_x_ - min_x_; }
  double breadth() const { return max_y_ - min_y_; }

  Point center() const {
    return Point{(min_x_ + max_x_) / 2, (min_y_ + max_y_) / 2};
  }

  double Area() const { return length() * breadth(); }

  /// Length of the rectangle's diagonal; the paper's d_max bounds
  /// (§7.9, §8) are stated in terms of this quantity.
  double Diagonal() const;

  /// True when the rectangle's extents are ordered (min <= max on both
  /// axes). Degenerate (zero-area) rectangles are valid. A rectangle with
  /// any NaN coordinate is invalid (every comparison on NaN is false).
  bool IsValid() const { return min_x_ <= max_x_ && min_y_ <= max_y_; }

  /// True when all four coordinates are finite (no NaN, no ±inf). The
  /// branch-free predicates silently return false on NaN and the grid
  /// transforms overflow on inf, so ingest rejects non-finite rectangles.
  bool IsFinite() const;

  bool Contains(const Point& p) const {
    return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
  }

  bool Contains(const Rect& other) const {
    return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
           other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
  }

  /// Grows the rectangle by `d` on every side — the paper's r^e(d)
  /// (§5.3): top-left moves to (x - d, y + d), bottom-right to
  /// (x + d, y - d). The enlarged rectangle contains every point within
  /// L-infinity distance d, a superset of the Euclidean d-ball, so routing
  /// through it never loses range-join candidates.
  Rect EnlargeByDistance(double d) const {
    return Rect(min_x_ - d, min_y_ - d, max_x_ + d, max_y_ + d);
  }

  /// Scales length and breadth by factor `k` about the center — the
  /// paper's "enlarging a rectangle by factor k" used to densify the
  /// California road data (§7.8.6).
  Rect EnlargeByFactor(double k) const;

  /// Smallest rectangle covering both inputs.
  static Rect Union(const Rect& a, const Rect& b) {
    return Rect(a.min_x_ < b.min_x_ ? a.min_x_ : b.min_x_,
                a.min_y_ < b.min_y_ ? a.min_y_ : b.min_y_,
                a.max_x_ > b.max_x_ ? a.max_x_ : b.max_x_,
                a.max_y_ > b.max_y_ ? a.max_y_ : b.max_y_);
  }

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }

 private:
  double min_x_ = 0;
  double min_y_ = 0;
  double max_x_ = 0;
  double max_y_ = 0;
};

/// True when the closed rectangles share at least one point — the paper's
/// Overlap(r1, r2) predicate.
inline bool Overlaps(const Rect& a, const Rect& b) {
  return a.min_x() <= b.max_x() && b.min_x() <= a.max_x() &&
         a.min_y() <= b.max_y() && b.min_y() <= a.max_y();
}

/// Squared minimum Euclidean distance between the closed rectangles (0 when
/// they overlap). This is the primitive the hot-path predicates compare
/// against: dx² + dy² and d² are each a single rounding away from exact, so
/// rectangles at exactly distance d compare equal — the sqrt in MinDistance
/// can round the boundary either way (sqrt(fl(d·d)) ≠ d for many doubles).
double MinDistanceSquared(const Rect& a, const Rect& b);

/// Squared minimum Euclidean distance from rectangle `r` to point `p`.
double MinDistanceSquared(const Rect& r, const Point& p);

/// Minimum Euclidean distance between the closed rectangles (0 when they
/// overlap). Use for ordering (kNN); predicates compare the squared form.
double MinDistance(const Rect& a, const Rect& b);

/// Minimum Euclidean distance from rectangle `r` to point `p`.
double MinDistance(const Rect& r, const Point& p);

/// The paper's Range(r1, r2, d) predicate: true when some point of r1 is
/// within distance d of some point of r2, i.e. MinDistance <= d.
///
/// Compares MinDistanceSquared against d·d so exact-distance-d ties are
/// decided without a sqrt (which both misrounds the boundary and costs a
/// hard-to-pipeline instruction on the filter hot path). A negative d can
/// match nothing; d so large that d·d overflows falls back to the sqrt
/// form, where the magnitudes make boundary rounding moot.
bool WithinDistance(const Rect& a, const Rect& b, double d);

/// Intersection rectangle, or nullopt when the rectangles do not overlap.
/// The intersection of touching rectangles is a degenerate rectangle whose
/// start point drives duplicate avoidance (§5.2).
std::optional<Rect> Intersection(const Rect& a, const Rect& b);

}  // namespace mwsj

#endif  // MWSJ_GEOMETRY_RECT_H_
