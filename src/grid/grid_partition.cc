#include "grid/grid_partition.h"

#include <algorithm>
#include <cmath>

#include "common/str_format.h"

namespace mwsj {

namespace {

std::vector<double> EvenBounds(double lo, double hi, int n) {
  std::vector<double> bounds(static_cast<size_t>(n) + 1);
  const double width = (hi - lo) / n;
  for (int i = 0; i <= n; ++i) bounds[static_cast<size_t>(i)] = lo + i * width;
  bounds.back() = hi;  // Exact upper edge.
  return bounds;
}

// Interior boundaries at the quantiles of `values` (sorted in place),
// repaired to be strictly increasing within (lo, hi).
std::vector<double> QuantileBounds(double lo, double hi, int n,
                                   std::vector<double>& values) {
  if (values.size() < static_cast<size_t>(n) * 4) return EvenBounds(lo, hi, n);
  std::sort(values.begin(), values.end());
  std::vector<double> bounds(static_cast<size_t>(n) + 1);
  bounds[0] = lo;
  bounds[static_cast<size_t>(n)] = hi;
  for (int i = 1; i < n; ++i) {
    const size_t pos = values.size() * static_cast<size_t>(i) /
                       static_cast<size_t>(n);
    bounds[static_cast<size_t>(i)] = values[pos];
  }
  // Repair ties and out-of-range quantiles: enforce a minimal cell extent.
  const double min_gap = (hi - lo) / (n * 1024.0);
  bool ok = true;
  for (int i = 1; i <= n; ++i) {
    if (bounds[static_cast<size_t>(i)] <
        bounds[static_cast<size_t>(i - 1)] + min_gap) {
      bounds[static_cast<size_t>(i)] =
          bounds[static_cast<size_t>(i - 1)] + min_gap;
    }
  }
  if (bounds[static_cast<size_t>(n) - 1] >= hi) ok = false;
  bounds[static_cast<size_t>(n)] = hi;
  return ok ? bounds : EvenBounds(lo, hi, n);
}

bool StrictlyIncreasing(const std::vector<double>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (!(v[i] > v[i - 1])) return false;
  }
  return true;
}

}  // namespace

GridPartition::GridPartition(std::vector<double> x_bounds,
                             std::vector<double> y_bounds)
    : space_(x_bounds.front(), y_bounds.front(), x_bounds.back(),
             y_bounds.back()),
      rows_(static_cast<int>(y_bounds.size()) - 1),
      cols_(static_cast<int>(x_bounds.size()) - 1),
      x_bounds_(std::move(x_bounds)),
      y_bounds_(std::move(y_bounds)) {
  auto even = [](const std::vector<double>& b) {
    const double width = (b.back() - b.front()) / (static_cast<double>(b.size()) - 1);
    for (size_t i = 1; i + 1 < b.size(); ++i) {
      if (std::abs(b[i] - (b.front() + width * static_cast<double>(i))) >
          1e-9 * (b.back() - b.front())) {
        return false;
      }
    }
    return true;
  };
  uniform_ = even(x_bounds_) && even(y_bounds_);
}

StatusOr<GridPartition> GridPartition::Create(const Rect& space, int rows,
                                              int cols) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("grid dimensions must be positive, got %dx%d", rows, cols));
  }
  if (!space.IsValid() || space.length() <= 0 || space.breadth() <= 0) {
    return Status::InvalidArgument("partitioned space must have positive area");
  }
  return GridPartition(EvenBounds(space.min_x(), space.max_x(), cols),
                       EvenBounds(space.min_y(), space.max_y(), rows));
}

StatusOr<GridPartition> GridPartition::CreateSquare(const Rect& space,
                                                    int num_reducers) {
  const int side = static_cast<int>(std::lround(std::sqrt(num_reducers)));
  if (side <= 0 || side * side != num_reducers) {
    return Status::InvalidArgument(
        StrFormat("num_reducers must be a perfect square, got %d",
                  num_reducers));
  }
  return Create(space, side, side);
}

StatusOr<GridPartition> GridPartition::CreateRectilinear(
    std::vector<double> x_bounds, std::vector<double> y_bounds) {
  if (x_bounds.size() < 2 || y_bounds.size() < 2) {
    return Status::InvalidArgument(
        "boundary vectors need at least two entries (the space edges)");
  }
  if (!StrictlyIncreasing(x_bounds) || !StrictlyIncreasing(y_bounds)) {
    return Status::InvalidArgument(
        "boundary positions must be strictly increasing");
  }
  return GridPartition(std::move(x_bounds), std::move(y_bounds));
}

StatusOr<GridPartition> GridPartition::CreateEquiDepth(
    const Rect& space, int rows, int cols, std::span<const Rect> sample) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("grid dimensions must be positive, got %dx%d", rows, cols));
  }
  if (!space.IsValid() || space.length() <= 0 || space.breadth() <= 0) {
    return Status::InvalidArgument("partitioned space must have positive area");
  }
  std::vector<double> xs, ys;
  xs.reserve(sample.size());
  ys.reserve(sample.size());
  for (const Rect& r : sample) {
    const Point p = r.start_point();
    if (space.Contains(p)) {
      xs.push_back(p.x);
      ys.push_back(p.y);
    }
  }
  return GridPartition(QuantileBounds(space.min_x(), space.max_x(), cols, xs),
                       QuantileBounds(space.min_y(), space.max_y(), rows, ys));
}

Rect GridPartition::CellRect(CellId id) const {
  const int col = ColOf(id);
  const int slab = rows_ - 1 - RowOf(id);  // Bottom-up index into y_bounds_.
  return Rect(x_bounds_[static_cast<size_t>(col)],
              y_bounds_[static_cast<size_t>(slab)],
              x_bounds_[static_cast<size_t>(col) + 1],
              y_bounds_[static_cast<size_t>(slab) + 1]);
}

CellId GridPartition::CellOfPoint(const Point& p) const {
  // Boundary x belongs to the LEFT cell, boundary y to the cell ABOVE (see
  // the class comment for why this tie-break is load-bearing).
  const auto x_it =
      std::lower_bound(x_bounds_.begin(), x_bounds_.end(), p.x);
  int col = static_cast<int>(x_it - x_bounds_.begin()) - 1;
  col = std::clamp(col, 0, cols_ - 1);

  const auto y_it =
      std::upper_bound(y_bounds_.begin(), y_bounds_.end(), p.y);
  int slab = static_cast<int>(y_it - y_bounds_.begin()) - 1;
  slab = std::clamp(slab, 0, rows_ - 1);
  return CellIdOf(rows_ - 1 - slab, col);
}

GridPartition::CellRange GridPartition::CellsOverlapping(const Rect& r) const {
  // Closed-cell semantics: a rectangle edge lying exactly on a grid line
  // touches the cells on both sides.
  const auto lo_it =
      std::lower_bound(x_bounds_.begin(), x_bounds_.end(), r.min_x());
  const int col_lo = std::clamp(
      static_cast<int>(lo_it - x_bounds_.begin()) - 1, 0, cols_ - 1);
  const auto hi_it =
      std::upper_bound(x_bounds_.begin(), x_bounds_.end(), r.max_x());
  const int col_hi = std::clamp(
      static_cast<int>(hi_it - x_bounds_.begin()) - 1, 0, cols_ - 1);

  const auto slab_lo_it =
      std::lower_bound(y_bounds_.begin(), y_bounds_.end(), r.min_y());
  const int slab_lo = std::clamp(
      static_cast<int>(slab_lo_it - y_bounds_.begin()) - 1, 0, rows_ - 1);
  const auto slab_hi_it =
      std::upper_bound(y_bounds_.begin(), y_bounds_.end(), r.max_y());
  const int slab_hi = std::clamp(
      static_cast<int>(slab_hi_it - y_bounds_.begin()) - 1, 0, rows_ - 1);

  return CellRange{rows_ - 1 - slab_hi, rows_ - 1 - slab_lo, col_lo, col_hi};
}

std::string GridPartition::ToString() const {
  return StrFormat("GridPartition(%dx%d%s over %s)", rows_, cols_,
                   uniform_ ? "" : ", rectilinear",
                   space_.ToString().c_str());
}

}  // namespace mwsj
