#ifndef MWSJ_GRID_GRID_PARTITION_H_
#define MWSJ_GRID_GRID_PARTITION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"

namespace mwsj {

/// Identifier of a partition-cell. Cells are numbered row-major starting at
/// 0 from the top-left cell (the paper numbers the same layout 1-based;
/// tests that replay the paper's figures add 1).
using CellId = int32_t;

/// The rectilinear partitioning of §4: the 2D space [x0, xn) x [y0, yn) is
/// divided into a rows x cols grid of disjoint partition-cells —
/// "partition-cells in each row have the same breadth and partition-cells
/// in each column have the same length", i.e. the grid lines are shared
/// but their spacing may be non-uniform. Each cell doubles as a reducer in
/// the map-reduce jobs (§5.1), so the number of cells is the number of
/// reducers.
///
/// `Create`/`CreateSquare` build the paper's equally-spaced grid;
/// `CreateRectilinear` accepts arbitrary boundary positions, and
/// `CreateEquiDepth` derives them from a data sample so that each column
/// (and each row) receives roughly the same number of rectangle start
/// points — a load-balancing extension for skewed datasets like road
/// networks.
///
/// Ownership convention (for operations that must assign a *unique* cell,
/// like Project and the duplicate-avoidance reference point): a point on a
/// vertical boundary belongs to the cell on its LEFT, a point on a
/// horizontal boundary to the cell ABOVE (border cells absorb the space
/// edges). This is the tie-break under which the §6.2 duplicate-avoidance
/// proof closes even when start points lie exactly on grid lines: the
/// reference point (u_r.x, u_l.y) then provably lands in the start cell of
/// every projected (unmarked) member — see the correctness notes in
/// core/controlled_replicate.h. A rectangle's start cell still overlaps
/// the rectangle under this convention, because cells are closed sets.
/// Geometric operations (Split, cell distance) treat cells as closed
/// rectangles, exactly as the paper's "at least one point in common".
class GridPartition {
 public:
  /// Builds an equally-spaced rows x cols grid over `space`. Returns
  /// InvalidArgument for non-positive dimensions or an empty space.
  static StatusOr<GridPartition> Create(const Rect& space, int rows, int cols);

  /// Builds the paper's default square grid with `num_reducers` cells
  /// (§5.1: x and y axes divided into sqrt(k) partitions each).
  /// `num_reducers` must be a perfect square.
  static StatusOr<GridPartition> CreateSquare(const Rect& space,
                                              int num_reducers);

  /// Builds a grid from explicit boundary positions. `x_bounds` has
  /// cols+1 strictly increasing values (the vertical grid lines including
  /// both space edges); `y_bounds` has rows+1 strictly increasing values
  /// (the horizontal lines, bottom edge first).
  static StatusOr<GridPartition> CreateRectilinear(
      std::vector<double> x_bounds, std::vector<double> y_bounds);

  /// Builds a rows x cols grid over `space` whose boundary positions are
  /// the column/row quantiles of the sample's start points, so reducer
  /// input is balanced under spatial skew. Falls back to equal spacing
  /// when the sample is too small; quantile ties (heavily duplicated
  /// coordinates) collapse to equal spacing locally.
  static StatusOr<GridPartition> CreateEquiDepth(const Rect& space, int rows,
                                                 int cols,
                                                 std::span<const Rect> sample);

  const Rect& space() const { return space_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_cells() const { return rows_ * cols_; }
  /// True when every cell has the same dimensions.
  bool is_uniform() const { return uniform_; }

  CellId CellIdOf(int row, int col) const { return row * cols_ + col; }
  int RowOf(CellId id) const { return id / cols_; }
  int ColOf(CellId id) const { return id % cols_; }

  /// The closed rectangle covered by cell `id`.
  Rect CellRect(CellId id) const;

  /// The unique cell owning point `p` (see ownership convention above).
  /// Points outside the space clamp to the nearest border cell.
  CellId CellOfPoint(const Point& p) const;

  /// The paper's "cell of a rectangle" c_u: the cell owning the start
  /// point (top-left vertex) of `r`.
  CellId CellOfRect(const Rect& r) const { return CellOfPoint(r.start_point()); }

  /// Row/col index ranges (inclusive) of cells that share at least one
  /// point with `r`, i.e. the Split target set.
  struct CellRange {
    int row_lo;
    int row_hi;
    int col_lo;
    int col_hi;
  };
  CellRange CellsOverlapping(const Rect& r) const;

  /// Minimum Euclidean distance between (closed) cell `id` and rectangle
  /// `r` — the paper's dist(c, r) of equation (2).
  double DistanceToCell(CellId id, const Rect& r) const {
    return MinDistance(CellRect(id), r);
  }

  /// True when `cell` lies in the fourth quadrant with respect to `anchor`
  /// (§4): cell.x >= anchor.x and cell.y <= anchor.y, i.e. same-or-greater
  /// column and same-or-greater row.
  bool InFourthQuadrant(CellId cell, CellId anchor) const {
    return ColOf(cell) >= ColOf(anchor) && RowOf(cell) >= RowOf(anchor);
  }

  std::string ToString() const;

 private:
  GridPartition(std::vector<double> x_bounds, std::vector<double> y_bounds);

  Rect space_;
  int rows_ = 0;
  int cols_ = 0;
  bool uniform_ = true;
  // Vertical grid lines, ascending: x_bounds_[0] = space min_x,
  // x_bounds_[cols] = space max_x.
  std::vector<double> x_bounds_;
  // Horizontal grid lines, ascending: y_bounds_[0] = space min_y,
  // y_bounds_[rows] = space max_y. Row r (counted from the top) spans
  // [y_bounds_[rows - 1 - r], y_bounds_[rows - r]].
  std::vector<double> y_bounds_;
};

}  // namespace mwsj

#endif  // MWSJ_GRID_GRID_PARTITION_H_
