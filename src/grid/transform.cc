// Cell-transform kernels: one call per input rectangle per round. Output
// cells append into caller-owned vectors; no naked new/malloc, no
// std::function — enforced by tools/mwsj_check.py via the MWSJ_ALLOC_FREE /
// MWSJ_DETERMINISTIC annotations in transform.h. Shared state is limited
// to relaxed atomics (statistics, not synchronization); there is no lock
// to annotate.
#include "grid/transform.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace mwsj {

namespace {

// Distance between intervals [a_lo, a_hi] and [b_lo, b_hi].
inline double AxisGap(double a_lo, double a_hi, double b_lo, double b_hi) {
  if (a_hi < b_lo) return b_lo - a_hi;
  if (b_hi < a_lo) return a_lo - b_hi;
  return 0;
}

// Always-on transform call tallies (see SnapshotTransformCounters).
// Relaxed: the counts are statistics, not synchronization.
std::atomic<int64_t> g_project_calls{0};
std::atomic<int64_t> g_split_calls{0};
std::atomic<int64_t> g_replicate_f1_calls{0};
std::atomic<int64_t> g_replicate_f2_calls{0};
std::atomic<int64_t> g_enlarged_split_calls{0};

inline void Bump(std::atomic<int64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

double CellRectDistance(const GridPartition& grid, CellId cell, const Rect& r,
                        DistanceMetric metric) {
  const Rect c = grid.CellRect(cell);
  const double dx = AxisGap(c.min_x(), c.max_x(), r.min_x(), r.max_x());
  const double dy = AxisGap(c.min_y(), c.max_y(), r.min_y(), r.max_y());
  if (metric == DistanceMetric::kEuclidean) return std::sqrt(dx * dx + dy * dy);
  return std::max(dx, dy);
}

double CellRectMaxMinDistance(const GridPartition& grid, CellId cell,
                              const Rect& r) {
  const Rect c = grid.CellRect(cell);
  // Worst-case per-axis gap from a point of the cell interval to the
  // rectangle interval: max over x in [c_lo, c_hi] of
  // max(0, r_lo - x, x - r_hi) = max(0, r_lo - c_lo, c_hi - r_hi).
  const double gx =
      std::max({0.0, r.min_x() - c.min_x(), c.max_x() - r.max_x()});
  const double gy =
      std::max({0.0, r.min_y() - c.min_y(), c.max_y() - r.max_y()});
  // hypot, like MinDistance, to stay overflow-safe for huge coordinates.
  return std::hypot(gx, gy);
}

CellId ProjectCell(const GridPartition& grid, const Rect& u) {
  Bump(g_project_calls);
  return grid.CellOfRect(u);
}

void SplitCells(const GridPartition& grid, const Rect& u,
                std::vector<CellId>* out) {
  Bump(g_split_calls);
  const auto range = grid.CellsOverlapping(u);
  for (int row = range.row_lo; row <= range.row_hi; ++row) {
    for (int col = range.col_lo; col <= range.col_hi; ++col) {
      // mwsj-check: allow(alloc-free-reach): caller-owned cell buffer,
      // cleared and reused across records; growth amortizes to zero.
      out->push_back(grid.CellIdOf(row, col));
    }
  }
}

void ReplicateF1Cells(const GridPartition& grid, const Rect& u,
                      std::vector<CellId>* out) {
  Bump(g_replicate_f1_calls);
  const CellId anchor = grid.CellOfRect(u);
  const int row0 = grid.RowOf(anchor);
  const int col0 = grid.ColOf(anchor);
  for (int row = row0; row < grid.rows(); ++row) {
    for (int col = col0; col < grid.cols(); ++col) {
      // mwsj-check: allow(alloc-free-reach): caller-owned reused buffer.
      out->push_back(grid.CellIdOf(row, col));
    }
  }
}

int64_t CountReplicateF1Cells(const GridPartition& grid, const Rect& u) {
  const CellId anchor = grid.CellOfRect(u);
  const int64_t rows = grid.rows() - grid.RowOf(anchor);
  const int64_t cols = grid.cols() - grid.ColOf(anchor);
  return rows * cols;
}

void ReplicateF2Cells(const GridPartition& grid, const Rect& u, double d,
                      DistanceMetric metric, std::vector<CellId>* out) {
  Bump(g_replicate_f2_calls);
  const CellId anchor = grid.CellOfRect(u);
  const int row0 = grid.RowOf(anchor);
  const int col0 = grid.ColOf(anchor);
  for (int row = row0; row < grid.rows(); ++row) {
    // Within one row, distance grows monotonically with the column once the
    // cell is strictly right of the rectangle, so we can stop early.
    bool row_had_match = false;
    for (int col = col0; col < grid.cols(); ++col) {
      const CellId cell = grid.CellIdOf(row, col);
      if (CellRectDistance(grid, cell, u, metric) <= d) {
        // mwsj-check: allow(alloc-free-reach): caller-owned reused buffer.
        out->push_back(cell);
        row_had_match = true;
      } else if (row_had_match) {
        break;
      }
    }
    // Distance also grows monotonically with the row below the rectangle;
    // if this row produced nothing, deeper rows cannot either.
    if (!row_had_match) break;
  }
}

void EnlargedSplitCells(const GridPartition& grid, const Rect& u, double d,
                        std::vector<CellId>* out) {
  Bump(g_enlarged_split_calls);
  SplitCells(grid, u.EnlargeByDistance(d), out);
}

TransformCounters SnapshotTransformCounters() {
  TransformCounters c;
  c.project_calls = g_project_calls.load(std::memory_order_relaxed);
  c.split_calls = g_split_calls.load(std::memory_order_relaxed);
  c.replicate_f1_calls = g_replicate_f1_calls.load(std::memory_order_relaxed);
  c.replicate_f2_calls = g_replicate_f2_calls.load(std::memory_order_relaxed);
  c.enlarged_split_calls =
      g_enlarged_split_calls.load(std::memory_order_relaxed);
  return c;
}

TransformCounters TransformCountersDelta(const TransformCounters& before,
                                         const TransformCounters& after) {
  TransformCounters d;
  d.project_calls = after.project_calls - before.project_calls;
  d.split_calls = after.split_calls - before.split_calls;
  d.replicate_f1_calls = after.replicate_f1_calls - before.replicate_f1_calls;
  d.replicate_f2_calls = after.replicate_f2_calls - before.replicate_f2_calls;
  d.enlarged_split_calls =
      after.enlarged_split_calls - before.enlarged_split_calls;
  return d;
}

}  // namespace mwsj
