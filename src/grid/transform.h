#ifndef MWSJ_GRID_TRANSFORM_H_
#define MWSJ_GRID_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "common/effects.h"
#include "geometry/rect.h"
#include "grid/grid_partition.h"

namespace mwsj {

/// Metric used by the f2 replication function's cell-distance test.
///
/// The paper states f2 with the Euclidean dist(c, u) <= d (§4). For
/// C-Rep-L, the replication extent must also cover the duplicate-avoidance
/// cell of every output tuple; the per-axis (Chebyshev / L-infinity) test is
/// the provably safe variant because the §7.9/§8 path bounds constrain each
/// axis separately (see query/bounds.h). Both are provided; algorithms
/// default to the safe one and benches may select the paper's.
enum class DistanceMetric {
  kEuclidean,
  kChebyshev,
};

/// Minimum distance between cell `cell` and rectangle `r` under `metric`.
double CellRectDistance(const GridPartition& grid, CellId cell, const Rect& r,
                        DistanceMetric metric);

/// Maximum over the points p of (closed) cell `cell` of the minimum
/// Euclidean distance from p to rectangle `r` — the MaxMinDistance bound
/// of the distributed kNN join's round 1 (queries/knn_mr.h): any k rects
/// with the k smallest MaxMinDistance values are within that k-th value of
/// *every* point of the cell, so it upper-bounds each in-cell point's true
/// k-th neighbor distance. Exact (not an estimate): over a box domain the
/// two axis gaps attain their maxima independently, so the maximizing
/// point is a cell corner and the value is the hypotenuse of the per-axis
/// worst-case gaps.
double CellRectMaxMinDistance(const GridPartition& grid, CellId cell,
                              const Rect& r);

/// Project(u, C) — §4: the single cell containing the start point of `u`.
///
/// The transforms below run once per input rectangle per round inside map
/// functions: MWSJ_ALLOC_FREE (cells append into a caller-owned, reused
/// vector) and MWSJ_DETERMINISTIC (row-major cell order feeds the emit
/// stream; tools/mwsj_check.py enforces both transitively).
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC CellId ProjectCell(
    const GridPartition& grid, const Rect& u);

/// Split(u, C) — §4: every cell sharing at least one point with `u`,
/// appended to `*out` in row-major order.
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC void SplitCells(const GridPartition& grid,
                                                   const Rect& u,
                                                   std::vector<CellId>* out);

/// Replicate(u, C, f1) — §4: every cell in the fourth quadrant with respect
/// to `u` (cells right of / below the start cell of `u`, inclusive),
/// appended to `*out` in row-major order.
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC void ReplicateF1Cells(
    const GridPartition& grid, const Rect& u, std::vector<CellId>* out);

/// Replicate(u, C, f2) — §4: the f1 cells that are additionally within
/// distance `d` of `u` under `metric`, appended to `*out`.
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC void ReplicateF2Cells(
    const GridPartition& grid, const Rect& u, double d, DistanceMetric metric,
    std::vector<CellId>* out);

/// Cells overlapping the rectangle enlarged by `d` — the routing used for
/// the replicated side of a 2-way range join (§5.3).
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC void EnlargedSplitCells(
    const GridPartition& grid, const Rect& u, double d,
    std::vector<CellId>* out);

/// Number of cells f1 would produce, without materializing them.
int64_t CountReplicateF1Cells(const GridPartition& grid, const Rect& u);

/// Cumulative process-wide call counts of the transform operations above,
/// one relaxed atomic increment per call — cheap enough to stay always-on.
/// Observability support: algorithms snapshot these around a map-reduce
/// job and attach the per-pass deltas (`TransformCountersDelta`) to the
/// job's trace span, making the grid-transform activity of each pass
/// visible alongside its wall time. Under concurrent *independent* joins
/// in one process the deltas blend both runs; within one run (the only
/// case the tracer reports) they are exact.
///
/// These are *executed-work* tallies, deliberately not exactly-once:
/// under fault injection a re-executed or speculative task attempt bumps
/// them again, so deltas measure retry amplification, not logical output.
/// Exactly-once quantities belong in JobStats user counters via the
/// engine's attempt-scoped Emitter/OutEmitter counters.
struct TransformCounters {
  int64_t project_calls = 0;
  int64_t split_calls = 0;
  int64_t replicate_f1_calls = 0;
  int64_t replicate_f2_calls = 0;
  int64_t enlarged_split_calls = 0;
};

/// Current cumulative counts (relaxed reads).
TransformCounters SnapshotTransformCounters();

/// Per-field difference `after - before` of two snapshots.
TransformCounters TransformCountersDelta(const TransformCounters& before,
                                         const TransformCounters& after);

}  // namespace mwsj

#endif  // MWSJ_GRID_TRANSFORM_H_
