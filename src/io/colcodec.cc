// mwsj-lint: spill-budgeted
//
// Block codec implementation. The delta/zigzag transforms dispatch through
// the SIMD kernel table; the bitpack below is deliberately shared scalar
// code (one u128 accumulator, LSB-first) so encoded bytes are identical
// under every ISA — the spill parity suite pins that.
#include "io/colcodec.h"

#include <algorithm>

#include "simd/simd.h"

namespace mwsj::colcodec {

namespace {

// Per-block scratch is bounded by kBlockRows, so nothing here grows with
// column length.
constexpr size_t kBlockHeaderBytes = 1 + 8;

inline uint64_t WidthMask(int width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

inline int BitWidth(uint64_t mask) {
  return mask == 0 ? 0 : 64 - __builtin_clzll(mask);
}

void AppendU64Le(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t ReadU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// LSB-first bitpack of n values at `width` bits each. The u128 accumulator
// never overflows: at most 7 carried bits + 64 new ones.
void PackBits(const uint64_t* vals, size_t n, int width,
              std::vector<uint8_t>* out) {
  if (width == 0) return;
  const uint64_t mask = WidthMask(width);
  unsigned __int128 acc = 0;
  int bits = 0;
  for (size_t i = 0; i < n; ++i) {
    acc |= static_cast<unsigned __int128>(vals[i] & mask) << bits;
    bits += width;
    while (bits >= 8) {
      out->push_back(static_cast<uint8_t>(acc & 0xff));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out->push_back(static_cast<uint8_t>(acc & 0xff));
}

void UnpackBits(const uint8_t* data, size_t n, int width, uint64_t* out) {
  const uint64_t mask = WidthMask(width);
  unsigned __int128 acc = 0;
  int bits = 0;
  size_t p = 0;
  for (size_t i = 0; i < n; ++i) {
    while (bits < width) {
      acc |= static_cast<unsigned __int128>(data[p++]) << bits;
      bits += 8;
    }
    out[i] = static_cast<uint64_t>(acc) & mask;
    acc >>= width;
    bits -= width;
  }
}

inline size_t PackedBytes(size_t n, int width) {
  return (n * static_cast<size_t>(width) + 7) / 8;
}

// Decodes one block of `count` values starting at data[pos]; returns the
// bytes consumed or 0 on truncation.
size_t DecodeBlock(const uint8_t* data, size_t size, size_t pos, size_t count,
                   uint64_t* out) {
  if (pos + kBlockHeaderBytes > size) return 0;
  const int width = data[pos];
  if (width > 64) return 0;
  const uint64_t base = ReadU64Le(data + pos + 1);
  const size_t packed = PackedBytes(count - 1, width);
  if (pos + kBlockHeaderBytes + packed > size) return 0;
  uint64_t deltas[kBlockRows];
  if (width == 0) {
    for (size_t i = 0; i + 1 < count; ++i) deltas[i] = 0;
  } else {
    UnpackBits(data + pos + kBlockHeaderBytes, count - 1, width, deltas);
  }
  simd::ActiveKernels().delta_zigzag_decode(deltas, count, base, out);
  return kBlockHeaderBytes + packed;
}

}  // namespace

size_t EncodeColumn(const uint64_t* vals, size_t n, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  // Worst case (64-bit deltas, incompressible data): one header plus
  // 8 bytes per delta for each block. Reserving the ceiling keeps the
  // encode loop's appends allocation-bounded up front.
  const size_t num_blocks = (n + kBlockRows - 1) / kBlockRows;
  out->reserve(start + num_blocks * kBlockHeaderBytes + n * 8);
  uint64_t deltas[kBlockRows];
  for (size_t pos = 0; pos < n; pos += kBlockRows) {
    const size_t count = std::min(kBlockRows, n - pos);
    const uint64_t or_mask =
        simd::ActiveKernels().delta_zigzag_encode(vals + pos, count, deltas);
    const int width = BitWidth(or_mask);
    out->push_back(static_cast<uint8_t>(width));
    AppendU64Le(vals[pos], out);
    PackBits(deltas, count - 1, width, out);
  }
  return out->size() - start;
}

size_t DecodeColumn(const uint8_t* data, size_t size, size_t n,
                    uint64_t* out) {
  size_t pos = 0;
  for (size_t done = 0; done < n;) {
    const size_t count = std::min(kBlockRows, n - done);
    const size_t used = DecodeBlock(data, size, pos, count, out + done);
    if (used == 0) return 0;
    pos += used;
    done += count;
  }
  return pos;
}

size_t ColumnCursor::NextBlock(uint64_t* out) {
  if (remaining_ == 0) return 0;
  const size_t count = std::min(kBlockRows, remaining_);
  const size_t used = DecodeBlock(data_, size_, pos_, count, out);
  if (used == 0) {
    remaining_ = 0;  // Malformed input: poison the cursor.
    return 0;
  }
  pos_ += used;
  remaining_ -= count;
  return count;
}

void EncodeFrame(const uint64_t* const* columns, size_t cols, size_t rows,
                 std::vector<uint8_t>* out) {
  out->reserve(out->size() + 4 + 8 + cols * 8);  // Frame header.
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(cols >> (8 * i)));
  }
  AppendU64Le(rows, out);
  const size_t lengths_at = out->size();
  for (size_t c = 0; c < cols; ++c) AppendU64Le(0, out);
  for (size_t c = 0; c < cols; ++c) {
    const size_t len = EncodeColumn(columns[c], rows, out);
    // Back-patch the column's byte length now that it is known.
    for (int i = 0; i < 8; ++i) {
      (*out)[lengths_at + c * 8 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(static_cast<uint64_t>(len) >> (8 * i));
    }
  }
}

bool FrameReader::Init(const uint8_t* data, size_t size) {
  rows_ = 0;
  cursors_.clear();
  if (size < 12) return false;
  uint32_t cols = 0;
  for (int i = 0; i < 4; ++i) cols |= static_cast<uint32_t>(data[i]) << (8 * i);
  const uint64_t rows = ReadU64Le(data + 4);
  const size_t header = 12 + static_cast<size_t>(cols) * 8;
  if (size < header) return false;
  size_t offset = header;
  std::vector<ColumnCursor> cursors;
  cursors.reserve(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    const uint64_t len = ReadU64Le(data + 12 + static_cast<size_t>(c) * 8);
    if (len > size - offset) return false;
    cursors.emplace_back(data + offset, static_cast<size_t>(len),
                         static_cast<size_t>(rows));
    offset += static_cast<size_t>(len);
  }
  if (offset != size) return false;
  rows_ = static_cast<size_t>(rows);
  cursors_ = std::move(cursors);
  return true;
}

size_t FrameReader::NextBlock(uint64_t* out) {
  if (cursors_.empty()) return 0;
  size_t count = 0;
  for (size_t c = 0; c < cursors_.size(); ++c) {
    const size_t got = cursors_[c].NextBlock(out + c * kBlockRows);
    if (c == 0) {
      count = got;
    } else if (got != count) {
      return 0;  // Columns out of sync: malformed frame.
    }
  }
  return count;
}

}  // namespace mwsj::colcodec
