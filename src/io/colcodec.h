#ifndef MWSJ_IO_COLCODEC_H_
#define MWSJ_IO_COLCODEC_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/effects.h"

namespace mwsj::colcodec {

/// Lightweight columnar codec for spilled rectangle streams (DESIGN.md
/// §2.13). A column is a u64 array; it is encoded in independent blocks of
/// `kBlockRows` values, each framed as
///
///   [1B bit-width w][8B first value, little-endian]
///   [ceil((count-1) * w / 8) bytes of LSB-first bitpacked zigzag deltas]
///
/// The delta + zigzag transform runs through the runtime-dispatched SIMD
/// kernels (simd::KernelTable::delta_zigzag_*); the bitpack itself is
/// shared scalar code, so the encoded bytes are identical under every ISA.
/// Sorted-key columns and the order-preserving double mapping below make
/// deltas small, which is where the compression comes from.

inline constexpr size_t kBlockRows = 256;

/// Bijective order-preserving map between doubles and u64 keys:
/// x < y  ⇔  Bits(x) < Bits(y) for all non-NaN doubles, and
/// DoubleFromOrderedBits(OrderedBitsFromDouble(x)) == x bit-for-bit —
/// including -0.0. This deliberately differs from simd::OrderedKeyFromDouble,
/// which canonicalizes -0.0 to +0.0 for comparator semantics and is
/// therefore lossy; spilled coordinates must round-trip exactly.
inline uint64_t OrderedBitsFromDouble(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return (bits >> 63) ? ~bits : (bits | (uint64_t{1} << 63));
}

inline double DoubleFromOrderedBits(uint64_t key) {
  const uint64_t bits =
      (key >> 63) ? (key ^ (uint64_t{1} << 63)) : ~key;
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

/// Appends the encoding of vals[0..n) to *out. Returns the bytes appended.
/// n == 0 appends nothing. MWSJ_DETERMINISTIC: encoded bytes are pinned
/// identical across ISAs by the spill parity suite.
MWSJ_DETERMINISTIC size_t EncodeColumn(const uint64_t* vals, size_t n,
                                       std::vector<uint8_t>* out);

/// Decodes exactly `n` values from `data` into `out`. Returns the bytes
/// consumed, or 0 when `data`/`size` does not hold a well-formed encoding
/// of n values (truncated or oversized blocks).
MWSJ_DETERMINISTIC size_t DecodeColumn(const uint8_t* data, size_t size,
                                       size_t n, uint64_t* out);

/// Streaming block-at-a-time decoder over one encoded column; the spill
/// merge holds one cursor per run so at most kBlockRows decoded values per
/// column are resident at once.
class ColumnCursor {
 public:
  ColumnCursor() = default;
  ColumnCursor(const uint8_t* data, size_t size, size_t rows)
      : data_(data), size_(size), remaining_(rows) {}

  size_t rows_remaining() const { return remaining_; }

  /// Decodes the next block (up to kBlockRows values) into `out`, which
  /// must hold kBlockRows entries. Returns the decoded count; 0 when the
  /// column is exhausted or the input is malformed. MWSJ_ALLOC_FREE: runs
  /// once per block inside the k-way merge; decodes into caller storage.
  MWSJ_ALLOC_FREE size_t NextBlock(uint64_t* out);

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  size_t remaining_ = 0;
};

/// A frame bundles `cols` parallel columns of `rows` values each — one
/// spilled sorted run. Layout: [u32 cols][u64 rows][u64 byte-length × cols]
/// [column payloads]. All integers little-endian.
MWSJ_DETERMINISTIC void EncodeFrame(const uint64_t* const* columns,
                                    size_t cols, size_t rows,
                                    std::vector<uint8_t>* out);

/// Row-synchronized streaming reader over a frame: NextBlock advances every
/// column by the same count, so callers reassemble whole records.
class FrameReader {
 public:
  /// Parses the header; false on malformed input (bad sizes). Keeps a
  /// non-owning view of `data`.
  bool Init(const uint8_t* data, size_t size);

  size_t rows() const { return rows_; }
  size_t cols() const { return cursors_.size(); }

  /// Decodes the next up-to-kBlockRows rows of every column into `out`,
  /// column-major with stride kBlockRows (column c's values land at
  /// out[c * kBlockRows ...]). `out` must hold cols() * kBlockRows entries.
  /// Returns the row count; 0 at end of frame or on malformed payload.
  /// MWSJ_ALLOC_FREE: advances the per-column cursors into caller storage.
  MWSJ_ALLOC_FREE size_t NextBlock(uint64_t* out);

 private:
  size_t rows_ = 0;
  std::vector<ColumnCursor> cursors_;
};

}  // namespace mwsj::colcodec

#endif  // MWSJ_IO_COLCODEC_H_
