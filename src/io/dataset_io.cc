#include "io/dataset_io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/str_format.h"

namespace mwsj {

namespace {

constexpr char kBinaryMagic[6] = {'M', 'W', 'S', 'J', 'R', '1'};

bool HasCsvExtension(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

}  // namespace

Status WriteRectsCsv(const std::string& path, const std::vector<Rect>& rects) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << "x,y,l,b\n";
  for (const Rect& r : rects) {
    out << StrFormat("%.17g,%.17g,%.17g,%.17g\n", r.x(), r.y(), r.length(),
                     r.breadth());
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<std::vector<Rect>> ReadRectsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("'" + path + "' is empty");
  }
  // Strip an optional UTF-8 BOM and trailing CR.
  if (line.size() >= 3 && line.compare(0, 3, "\xEF\xBB\xBF") == 0) {
    line.erase(0, 3);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != "x,y,l,b") {
    return Status::InvalidArgument(
        "'" + path + "': expected header 'x,y,l,b', got '" + line + "'");
  }
  std::vector<Rect> rects;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    double x, y, l, b;
    char trailing;
    const int fields =
        std::sscanf(line.c_str(), "%lf,%lf,%lf,%lf%c", &x, &y, &l, &b,
                    &trailing);
    if (fields != 4) {
      return Status::InvalidArgument(StrFormat(
          "'%s' line %zu: expected 'x,y,l,b' numbers", path.c_str(),
          line_number));
    }
    // NaN passes every branch-free predicate comparison as false, so an
    // unvalidated NaN rectangle silently drops join results instead of
    // failing; reject non-finite fields (and dimensions that only turn
    // non-finite after the corner arithmetic) at parse time.
    if (!std::isfinite(x) || !std::isfinite(y) || !std::isfinite(l) ||
        !std::isfinite(b)) {
      return Status::InvalidArgument(StrFormat(
          "'%s' line %zu: non-finite coordinate (NaN or inf)", path.c_str(),
          line_number));
    }
    if (l < 0 || b < 0) {
      return Status::InvalidArgument(StrFormat(
          "'%s' line %zu: negative dimensions", path.c_str(), line_number));
    }
    const Rect r = Rect::FromXYLB(x, y, l, b);
    if (!r.IsFinite() || !r.IsValid()) {
      return Status::InvalidArgument(StrFormat(
          "'%s' line %zu: corners overflow to a non-finite or inverted "
          "rectangle", path.c_str(), line_number));
    }
    rects.push_back(r);
  }
  return rects;
}

Status WriteRectsBinary(const std::string& path,
                        const std::vector<Rect>& rects) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const uint64_t count = rects.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Rect& r : rects) {
    const double fields[4] = {r.min_x(), r.min_y(), r.max_x(), r.max_y()};
    out.write(reinterpret_cast<const char*>(fields), sizeof(fields));
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

StatusOr<std::vector<Rect>> ReadRectsBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not an mwsj binary dataset");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) return Status::InvalidArgument("'" + path + "': truncated header");
  std::vector<Rect> rects;
  rects.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    double fields[4];
    in.read(reinterpret_cast<char*>(fields), sizeof(fields));
    if (!in) {
      return Status::InvalidArgument(StrFormat(
          "'%s': truncated at record %llu of %llu", path.c_str(),
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(count)));
    }
    const Rect r(fields[0], fields[1], fields[2], fields[3]);
    if (!r.IsFinite()) {
      return Status::InvalidArgument(StrFormat(
          "'%s': record %llu has a non-finite coordinate (NaN or inf)",
          path.c_str(), static_cast<unsigned long long>(i)));
    }
    if (!r.IsValid()) {
      return Status::InvalidArgument(StrFormat(
          "'%s': record %llu is not a valid rectangle (min > max)",
          path.c_str(), static_cast<unsigned long long>(i)));
    }
    rects.push_back(r);
  }
  return rects;
}

StatusOr<std::vector<Rect>> ReadRects(const std::string& path) {
  if (HasCsvExtension(path)) return ReadRectsCsv(path);
  return ReadRectsBinary(path);
}

Status WriteRects(const std::string& path, const std::vector<Rect>& rects) {
  if (HasCsvExtension(path)) return WriteRectsCsv(path, rects);
  return WriteRectsBinary(path, rects);
}

Status WriteTuplesCsv(const std::string& path,
                      const std::vector<std::string>& relation_names,
                      const std::vector<IdTuple>& tuples) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  for (size_t i = 0; i < relation_names.size(); ++i) {
    if (i > 0) out << ',';
    out << relation_names[i];
  }
  out << '\n';
  for (const IdTuple& t : tuples) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) out << ',';
      out << t[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace mwsj
