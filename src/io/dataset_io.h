#ifndef MWSJ_IO_DATASET_IO_H_
#define MWSJ_IO_DATASET_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "localjoin/brute_force.h"  // IdTuple

namespace mwsj {

/// Dataset (de)serialization in two formats:
///
///  * CSV, one rectangle per line in the paper's (x, y, l, b) notation
///    with a `x,y,l,b` header — human-readable interchange;
///  * a binary format (magic "MWSJR1", record count, packed doubles) —
///    compact and fast for large datasets.
///
/// `ReadRects` dispatches on the file extension: `.csv` reads CSV,
/// anything else reads binary.

Status WriteRectsCsv(const std::string& path, const std::vector<Rect>& rects);
StatusOr<std::vector<Rect>> ReadRectsCsv(const std::string& path);

Status WriteRectsBinary(const std::string& path,
                        const std::vector<Rect>& rects);
StatusOr<std::vector<Rect>> ReadRectsBinary(const std::string& path);

StatusOr<std::vector<Rect>> ReadRects(const std::string& path);
Status WriteRects(const std::string& path, const std::vector<Rect>& rects);

/// Writes join output tuples as CSV: a header naming the relations, then
/// one comma-separated id row per tuple.
Status WriteTuplesCsv(const std::string& path,
                      const std::vector<std::string>& relation_names,
                      const std::vector<IdTuple>& tuples);

}  // namespace mwsj

#endif  // MWSJ_IO_DATASET_IO_H_
