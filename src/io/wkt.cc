#include "io/wkt.h"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/str_format.h"

namespace mwsj {

namespace {

void SkipSpace(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
}

bool ConsumeKeyword(std::string_view text, size_t* pos,
                    std::string_view keyword) {
  SkipSpace(text, pos);
  if (text.size() - *pos < keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[*pos + i])) !=
        keyword[i]) {
      return false;
    }
  }
  *pos += keyword.size();
  return true;
}

bool ConsumeChar(std::string_view text, size_t* pos, char c) {
  SkipSpace(text, pos);
  if (*pos >= text.size() || text[*pos] != c) return false;
  ++*pos;
  return true;
}

bool ParseNumber(std::string_view text, size_t* pos, double* out) {
  SkipSpace(text, pos);
  const std::string rest(text.substr(*pos));
  char* end = nullptr;
  *out = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return false;
  *pos += static_cast<size_t>(end - rest.c_str());
  return true;
}

}  // namespace

StatusOr<Polygon> ParseWktPolygon(std::string_view text) {
  size_t pos = 0;
  if (!ConsumeKeyword(text, &pos, "POLYGON")) {
    return Status::InvalidArgument("expected POLYGON keyword");
  }
  if (!ConsumeChar(text, &pos, '(') || !ConsumeChar(text, &pos, '(')) {
    return Status::InvalidArgument("expected '((' after POLYGON");
  }
  std::vector<Point> vertices;
  for (;;) {
    double x, y;
    if (!ParseNumber(text, &pos, &x) || !ParseNumber(text, &pos, &y)) {
      return Status::InvalidArgument(
          StrFormat("expected 'x y' coordinates at offset %zu", pos));
    }
    vertices.push_back(Point{x, y});
    if (ConsumeChar(text, &pos, ',')) continue;
    break;
  }
  if (!ConsumeChar(text, &pos, ')') || !ConsumeChar(text, &pos, ')')) {
    return Status::InvalidArgument("expected '))' closing the ring");
  }
  SkipSpace(text, &pos);
  if (pos != text.size()) {
    return Status::InvalidArgument(
        StrFormat("trailing characters at offset %zu", pos));
  }
  // Drop the WKT closing vertex if present.
  if (vertices.size() >= 2 && vertices.front() == vertices.back()) {
    vertices.pop_back();
  }
  if (vertices.size() < 3) {
    return Status::InvalidArgument("a polygon ring needs at least 3 vertices");
  }
  return Polygon(std::move(vertices));
}

std::string ToWkt(const Polygon& polygon) {
  std::string out = "POLYGON ((";
  for (const Point& p : polygon.vertices()) {
    out += StrFormat("%.17g %.17g, ", p.x, p.y);
  }
  // Close the ring on the first vertex.
  if (!polygon.vertices().empty()) {
    const Point& first = polygon.vertices().front();
    out += StrFormat("%.17g %.17g", first.x, first.y);
  }
  out += "))";
  return out;
}

StatusOr<std::vector<Polygon>> ReadPolygonsWkt(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::vector<Polygon> polygons;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t start = 0;
    SkipSpace(line, &start);
    if (start == line.size() || line[start] == '#') continue;
    StatusOr<Polygon> polygon = ParseWktPolygon(line);
    if (!polygon.ok()) {
      return Status::InvalidArgument(
          StrFormat("'%s' line %zu: %s", path.c_str(), line_number,
                    polygon.status().message().c_str()));
    }
    polygons.push_back(std::move(polygon).value());
  }
  return polygons;
}

Status WritePolygonsWkt(const std::string& path,
                        const std::vector<Polygon>& polygons) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  for (const Polygon& p : polygons) out << ToWkt(p) << '\n';
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace mwsj
