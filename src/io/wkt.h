#ifndef MWSJ_IO_WKT_H_
#define MWSJ_IO_WKT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geometry/polygon.h"

namespace mwsj {

/// Well-Known-Text support for the polygon refinement pipeline (§1.1).
/// The subset implemented is `POLYGON ((x y, x y, ...))` — single outer
/// ring, no holes — which covers the interchange needs of the examples and
/// the refine step. Rings may or may not repeat the first vertex at the
/// end (the closing vertex is dropped on read and written on write, per
/// WKT convention).

/// Parses one POLYGON text. Case-insensitive keyword, flexible whitespace.
StatusOr<Polygon> ParseWktPolygon(std::string_view text);

/// Serializes a polygon as WKT (closing vertex repeated).
std::string ToWkt(const Polygon& polygon);

/// Reads a file with one WKT polygon per line (blank lines and lines
/// starting with '#' are skipped).
StatusOr<std::vector<Polygon>> ReadPolygonsWkt(const std::string& path);

/// Writes one WKT polygon per line.
Status WritePolygonsWkt(const std::string& path,
                        const std::vector<Polygon>& polygons);

}  // namespace mwsj

#endif  // MWSJ_IO_WKT_H_
