#include "localjoin/brute_force.h"

#include <algorithm>
#include <cmath>

#include "simd/simd.h"

namespace mwsj {

namespace {

// True when the condition can be evaluated by a batch kernel: overlap
// always, range only while d·d stays finite (the kernels compare squared
// distances; Predicate::Evaluate handles negative/huge d itself).
bool Batchable(const JoinCondition& c) {
  if (c.predicate.is_overlap()) return true;
  const double d = c.predicate.distance();
  return d >= 0 && std::isfinite(d * d);
}

void Recurse(const Query& query,
             const std::vector<std::vector<Rect>>& relations,
             const std::vector<simd::SoaRects>& soas, size_t depth,
             std::vector<int64_t>& ids, std::vector<const Rect*>& chosen,
             std::vector<std::vector<uint32_t>>& match_scratch,
             std::vector<IdTuple>* out) {
  const size_t m = static_cast<size_t>(query.num_relations());
  if (depth == m) {
    out->push_back(ids);
    return;
  }
  const auto& relation = relations[depth];

  // Prefilter: the first condition joining `depth` to an already-chosen
  // relation runs as one batch-kernel call over the relation's SoA mirror,
  // shrinking the candidate loop; the remaining conditions stay scalar.
  int batched_ci = -1;
  for (size_t ci = 0; ci < query.conditions().size(); ++ci) {
    const JoinCondition& c = query.conditions()[ci];
    const size_t l = static_cast<size_t>(c.left);
    const size_t r = static_cast<size_t>(c.right);
    const bool connects =
        (l == depth && r < depth) || (r == depth && l < depth);
    if (connects && Batchable(c)) {
      batched_ci = static_cast<int>(ci);
      break;
    }
  }

  const uint32_t* candidates = nullptr;
  size_t num_candidates = relation.size();
  if (batched_ci >= 0) {
    const JoinCondition& c =
        query.conditions()[static_cast<size_t>(batched_ci)];
    const size_t other = static_cast<size_t>(c.left) == depth
                             ? static_cast<size_t>(c.right)
                             : static_cast<size_t>(c.left);
    const Rect& q = *chosen[other];
    const simd::SoaRects& soa = soas[depth];
    std::vector<uint32_t>& matches = match_scratch[depth];
    if (matches.size() < soa.size()) matches.resize(soa.size());
    const simd::KernelTable& kernels = simd::ActiveKernels();
    const double d = c.predicate.distance();
    num_candidates =
        c.predicate.is_overlap()
            ? kernels.overlap_filter(soa.min_x.data(), soa.min_y.data(),
                                     soa.max_x.data(), soa.max_y.data(),
                                     soa.size(), q.min_x(), q.min_y(),
                                     q.max_x(), q.max_y(), matches.data())
            : kernels.within_filter(soa.min_x.data(), soa.min_y.data(),
                                    soa.max_x.data(), soa.max_y.data(),
                                    soa.size(), q.min_x(), q.min_y(),
                                    q.max_x(), q.max_y(), d * d,
                                    matches.data());
    candidates = matches.data();
  }

  for (size_t t = 0; t < num_candidates; ++t) {
    const size_t i = candidates != nullptr ? candidates[t] : t;
    const Rect& candidate = relation[i];
    bool ok = true;
    for (size_t ci = 0; ci < query.conditions().size(); ++ci) {
      if (static_cast<int>(ci) == batched_ci) continue;  // Already passed.
      const JoinCondition& c = query.conditions()[ci];
      const size_t l = static_cast<size_t>(c.left);
      const size_t r = static_cast<size_t>(c.right);
      // Check conditions whose later endpoint is `depth` (the other one is
      // already chosen).
      const Rect* other = nullptr;
      if (l == depth && r < depth) other = chosen[r];
      if (r == depth && l < depth) other = chosen[l];
      if (other != nullptr && !c.predicate.Evaluate(candidate, *other)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ids[depth] = static_cast<int64_t>(i);
    chosen[depth] = &candidate;
    Recurse(query, relations, soas, depth + 1, ids, chosen, match_scratch,
            out);
    chosen[depth] = nullptr;
  }
}

}  // namespace

std::vector<IdTuple> BruteForceJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations) {
  std::vector<IdTuple> out;
  const size_t m = static_cast<size_t>(query.num_relations());
  for (const auto& relation : relations) {
    if (relation.empty()) return out;
  }
  std::vector<simd::SoaRects> soas(m);
  for (size_t d = 0; d < m; ++d) {
    soas[d].Reserve(relations[d].size());
    for (const Rect& r : relations[d]) {
      soas[d].PushBack(r.min_x(), r.min_y(), r.max_x(), r.max_y());
    }
  }
  std::vector<int64_t> ids(m, -1);
  std::vector<const Rect*> chosen(m, nullptr);
  std::vector<std::vector<uint32_t>> match_scratch(m);
  Recurse(query, relations, soas, 0, ids, chosen, match_scratch, &out);
  SortTuples(&out);
  return out;
}

void SortTuples(std::vector<IdTuple>* tuples) {
  std::sort(tuples->begin(), tuples->end());
}

}  // namespace mwsj
