#include "localjoin/brute_force.h"

#include <algorithm>

namespace mwsj {

namespace {

void Recurse(const Query& query,
             const std::vector<std::vector<Rect>>& relations, size_t depth,
             std::vector<int64_t>& ids, std::vector<const Rect*>& chosen,
             std::vector<IdTuple>* out) {
  const size_t m = static_cast<size_t>(query.num_relations());
  if (depth == m) {
    out->push_back(ids);
    return;
  }
  const auto& relation = relations[depth];
  for (size_t i = 0; i < relation.size(); ++i) {
    const Rect& candidate = relation[i];
    bool ok = true;
    for (const JoinCondition& c : query.conditions()) {
      const size_t l = static_cast<size_t>(c.left);
      const size_t r = static_cast<size_t>(c.right);
      // Check conditions whose later endpoint is `depth` (the other one is
      // already chosen).
      const Rect* other = nullptr;
      if (l == depth && r < depth) other = chosen[r];
      if (r == depth && l < depth) other = chosen[l];
      if (other != nullptr && !c.predicate.Evaluate(candidate, *other)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    ids[depth] = static_cast<int64_t>(i);
    chosen[depth] = &candidate;
    Recurse(query, relations, depth + 1, ids, chosen, out);
    chosen[depth] = nullptr;
  }
}

}  // namespace

std::vector<IdTuple> BruteForceJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations) {
  std::vector<IdTuple> out;
  const size_t m = static_cast<size_t>(query.num_relations());
  for (const auto& relation : relations) {
    if (relation.empty()) return out;
  }
  std::vector<int64_t> ids(m, -1);
  std::vector<const Rect*> chosen(m, nullptr);
  Recurse(query, relations, 0, ids, chosen, &out);
  SortTuples(&out);
  return out;
}

void SortTuples(std::vector<IdTuple>* tuples) {
  std::sort(tuples->begin(), tuples->end());
}

}  // namespace mwsj
