#ifndef MWSJ_LOCALJOIN_BRUTE_FORCE_H_
#define MWSJ_LOCALJOIN_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"
#include "query/query.h"

namespace mwsj {

/// An output tuple of a multi-way join: one rectangle id per query
/// relation, index-aligned with Query::relation_names().
using IdTuple = std::vector<int64_t>;

/// Reference evaluator: computes the complete multi-way join output by
/// plain backtracking over the full datasets, with no grid, no map-reduce,
/// and no shared code with the distributed algorithms. The equivalence
/// test suite treats this as ground truth.
///
/// `relations[r]` is the full dataset of query relation r; rectangle ids
/// are positions in the vector. Returns the tuples sorted
/// lexicographically (deterministic for comparisons).
std::vector<IdTuple> BruteForceJoin(
    const Query& query, const std::vector<std::vector<Rect>>& relations);

/// Sorts tuples lexicographically in place — canonical form for comparing
/// algorithm outputs.
void SortTuples(std::vector<IdTuple>* tuples);

}  // namespace mwsj

#endif  // MWSJ_LOCALJOIN_BRUTE_FORCE_H_
