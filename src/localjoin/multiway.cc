// The multiway binding recursion is the innermost loop of every reducer:
// emits are templated (no std::function per candidate) and probes reuse
// BindScratch. Build-time code below may allocate; the probe path is held
// allocation-free by tools/mwsj_check.py alloc-free-reach rooted at the
// MWSJ_ALLOC_FREE Execute annotation in multiway.h.
#include "localjoin/multiway.h"

#include <algorithm>
#include <limits>

namespace mwsj {

MultiwayLocalJoin::MultiwayLocalJoin(
    const Query& query, std::vector<std::span<const LocalRect>> relations)
    : query_(query), relations_(std::move(relations)) {
  const int m = query_.num_relations();
  rects_.resize(static_cast<size_t>(m));
  trees_.resize(static_cast<size_t>(m));

  // Plan the binding order greedily: start from the smallest relation,
  // then repeatedly bind the smallest relation connected to the bound set.
  // Ties break toward the lowest relation index (strict < over ascending
  // r), keeping the plan platform-deterministic. The query graph is
  // connected (Query invariant), so this covers all relations.
  std::vector<bool> bound(static_cast<size_t>(m), false);
  int first = 0;
  for (int r = 1; r < m; ++r) {
    if (relations_[static_cast<size_t>(r)].size() <
        relations_[static_cast<size_t>(first)].size()) {
      first = r;
    }
  }
  order_.push_back(first);
  anchor_relation_.push_back(-1);
  anchor_condition_.push_back(-1);
  bound[static_cast<size_t>(first)] = true;

  while (static_cast<int>(order_.size()) < m) {
    int best = -1;
    int best_condition = -1;
    int best_anchor = -1;
    size_t best_size = std::numeric_limits<size_t>::max();
    for (int r = 0; r < m; ++r) {
      if (bound[static_cast<size_t>(r)]) continue;
      for (int ci : query_.ConditionsOf(r)) {
        const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
        const int other = (c.left == r) ? c.right : c.left;
        if (!bound[static_cast<size_t>(other)]) continue;
        if (relations_[static_cast<size_t>(r)].size() < best_size) {
          best = r;
          best_condition = ci;
          best_anchor = other;
          best_size = relations_[static_cast<size_t>(r)].size();
        }
        break;  // One bound-connected condition suffices for the anchor.
      }
    }
    order_.push_back(best);
    anchor_relation_.push_back(best_anchor);
    anchor_condition_.push_back(best_condition);
    bound[static_cast<size_t>(best)] = true;
  }

  // Residual conditions checked at each depth: both endpoints bound, and
  // the condition is not the depth's anchor.
  check_conditions_.resize(order_.size());
  std::fill(bound.begin(), bound.end(), false);
  for (size_t k = 0; k < order_.size(); ++k) {
    const int r = order_[k];
    bound[static_cast<size_t>(r)] = true;
    for (int ci : query_.ConditionsOf(r)) {
      if (ci == anchor_condition_[k]) continue;
      const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == r) ? c.right : c.left;
      if (bound[static_cast<size_t>(other)]) check_conditions_[k].push_back(ci);
    }
  }

  // Index every relation probed at depth > 0, unless it is small enough
  // that a linear scan beats building (and probing) a tree; small ones get
  // an SoA mirror so the scan is one batch-kernel call per probe.
  small_soa_.resize(static_cast<size_t>(m));
  for (size_t k = 1; k < order_.size(); ++k) {
    const int r = order_[k];
    if (relations_[static_cast<size_t>(r)].size() < kLinearScanThreshold) {
      auto& soa = small_soa_[static_cast<size_t>(r)];
      soa.Reserve(relations_[static_cast<size_t>(r)].size());
      for (const LocalRect& lr : relations_[static_cast<size_t>(r)]) {
        soa.PushBack(lr.rect.min_x(), lr.rect.min_y(), lr.rect.max_x(),
                     lr.rect.max_y());
      }
      continue;
    }
    auto& rects = rects_[static_cast<size_t>(r)];
    rects.reserve(relations_[static_cast<size_t>(r)].size());
    for (const LocalRect& lr : relations_[static_cast<size_t>(r)]) {
      rects.push_back(lr.rect);
    }
    trees_[static_cast<size_t>(r)] = std::make_unique<RTree>(rects);
  }
}

}  // namespace mwsj
