#ifndef MWSJ_LOCALJOIN_MULTIWAY_H_
#define MWSJ_LOCALJOIN_MULTIWAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "geometry/rect.h"
#include "localjoin/rtree.h"
#include "query/query.h"

namespace mwsj {

/// A rectangle held by a reducer: geometry plus the global id used to
/// assemble output tuples.
struct LocalRect {
  Rect rect;
  int64_t id = 0;
};

/// Computes, within one reducer, every full assignment of rectangles (one
/// per query relation) that satisfies all join conditions. This is the
/// "compute the join" step every algorithm's final reduce phase runs
/// (§6.1, §7.1); the caller applies its duplicate-avoidance filter in the
/// emit callback.
///
/// Strategy: index each relation with an STR R-tree, bind relations along
/// the join graph starting from the smallest relation, probe the next
/// relation's tree through one connecting condition, and verify the
/// remaining conditions against already-bound rectangles before recursing.
class MultiwayLocalJoin {
 public:
  /// `relations[r]` holds the rectangles of query relation r present at
  /// this reducer. The spans must outlive the object.
  MultiwayLocalJoin(const Query& query,
                    std::vector<std::span<const LocalRect>> relations);

  /// `emit` receives one pointer per relation (indexed by relation). The
  /// pointers are only valid during the callback.
  using EmitFn = std::function<void(const std::vector<const LocalRect*>&)>;
  void Execute(const EmitFn& emit) const;

 private:
  void Bind(size_t depth, std::vector<const LocalRect*>& assignment,
            const EmitFn& emit) const;

  const Query& query_;
  std::vector<std::span<const LocalRect>> relations_;
  std::vector<std::vector<Rect>> rects_;  // Per relation, index-aligned.
  std::vector<std::unique_ptr<RTree>> trees_;

  // Binding plan: order_[k] is the relation bound at depth k; for k > 0,
  // anchor_condition_[k] connects it to the already-bound
  // anchor_relation_[k], and check_conditions_[k] lists the other
  // conditions whose endpoints are both bound once depth k binds.
  std::vector<int> order_;
  std::vector<int> anchor_relation_;
  std::vector<int> anchor_condition_;
  std::vector<std::vector<int>> check_conditions_;
};

}  // namespace mwsj

#endif  // MWSJ_LOCALJOIN_MULTIWAY_H_
