#ifndef MWSJ_LOCALJOIN_MULTIWAY_H_
#define MWSJ_LOCALJOIN_MULTIWAY_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/effects.h"
#include "geometry/rect.h"
#include "localjoin/rtree.h"
#include "query/query.h"
#include "simd/simd.h"

namespace mwsj {

/// A rectangle held by a reducer: geometry plus the global id used to
/// assemble output tuples.
struct LocalRect {
  Rect rect;
  int64_t id = 0;
};

/// Computes, within one reducer, every full assignment of rectangles (one
/// per query relation) that satisfies all join conditions. This is the
/// "compute the join" step every algorithm's final reduce phase runs
/// (§6.1, §7.1); the caller applies its duplicate-avoidance filter in the
/// emit callback.
///
/// Strategy: index each relation with an STR R-tree, bind relations along
/// the join graph starting from the smallest relation, probe the next
/// relation's tree through one connecting condition, and verify the
/// remaining conditions against already-bound rectangles before recursing.
/// Relations smaller than kLinearScanThreshold are probed by a linear scan
/// instead — cheaper than building a tree, and allocation-free.
class MultiwayLocalJoin {
 public:
  /// `relations[r]` holds the rectangles of query relation r present at
  /// this reducer. The spans must outlive the object.
  MultiwayLocalJoin(const Query& query,
                    std::vector<std::span<const LocalRect>> relations);

  /// Type-erased emit signature, kept for call sites that store the
  /// callback; Execute itself is templated so lambdas dispatch statically
  /// in the recursion (no std::function call per candidate).
  // mwsj-lint: allow(hot-path-std-function) -- type-erased storage for
  // callers that hold a callback; never invoked inside the Bind recursion.
  using EmitFn = std::function<void(const std::vector<const LocalRect*>&)>;

  /// Runs the join. `emit` receives one pointer per relation (indexed by
  /// relation); the pointers are only valid during the callback. All
  /// per-depth buffers live in a scratch owned by this call, so the steady
  /// state allocates only when a depth's candidate list outgrows its
  /// previous high-water mark.
  ///
  /// MWSJ_ALLOC_FREE: the binding recursion is every reducer's innermost
  /// loop; per-candidate work must not allocate (bench/micro_localjoin.cc
  /// pins allocs_per_probe == 0). MWSJ_DETERMINISTIC: candidate visit order
  /// — and therefore the emit stream — is part of the byte-identity
  /// contract across platforms and kernel ISAs.
  template <typename Emit>
  MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC void Execute(const Emit& emit) const {
    for (const auto& relation : relations_) {
      if (relation.empty()) return;  // No full assignment can exist.
    }
    BindScratch scratch;
    // mwsj-check: allow(alloc-free-reach): once-per-Execute scratch setup,
    // not per-candidate work; the recursion below reuses these buffers.
    scratch.assignment.assign(static_cast<size_t>(query_.num_relations()),
                              nullptr);
    // mwsj-check: allow(alloc-free-reach): same once-per-Execute setup.
    scratch.candidates.resize(order_.size());
    Bind(0, scratch, emit);
  }

  /// The planned binding order (order_[k] is the relation bound at depth
  /// k): smallest relation first, then greedily the smallest relation
  /// connected to the bound set, ties broken by lowest relation index so
  /// the plan is platform-deterministic. Exposed for tests and EXPLAIN.
  const std::vector<int>& binding_order() const { return order_; }

  /// Relations below this size are probed by linear scan instead of an
  /// R-tree: build cost exceeds the probe savings, and the scan touches
  /// one contiguous array.
  static constexpr size_t kLinearScanThreshold = 8;

 private:
  /// Reusable per-Execute buffers: the assignment under construction, one
  /// candidate list per depth (a single shared list would be clobbered by
  /// the recursion), and the R-tree traversal stack (probes complete
  /// before recursing, so one stack serves all depths).
  struct BindScratch {
    std::vector<const LocalRect*> assignment;
    std::vector<std::vector<int32_t>> candidates;
    RTree::QueryScratch rtree;
  };

  template <typename Emit>
  void Bind(size_t depth, BindScratch& scratch, const Emit& emit) const {
    if (depth == order_.size()) {
      emit(scratch.assignment);
      return;
    }
    const int r = order_[depth];
    const auto relation = relations_[static_cast<size_t>(r)];

    auto try_candidate = [&](const LocalRect& candidate) {
      for (int ci : check_conditions_[depth]) {
        const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
        const int other = (c.left == r) ? c.right : c.left;
        const LocalRect* bound_rect =
            scratch.assignment[static_cast<size_t>(other)];
        if (!c.predicate.Evaluate(candidate.rect, bound_rect->rect)) return;
      }
      scratch.assignment[static_cast<size_t>(r)] = &candidate;
      Bind(depth + 1, scratch, emit);
      scratch.assignment[static_cast<size_t>(r)] = nullptr;
    };

    if (depth == 0) {
      for (const LocalRect& candidate : relation) try_candidate(candidate);
      return;
    }

    const JoinCondition& anchor =
        query_.conditions()[static_cast<size_t>(anchor_condition_[depth])];
    const LocalRect* anchor_rect =
        scratch.assignment[static_cast<size_t>(anchor_relation_[depth])];
    const RTree* tree = trees_[static_cast<size_t>(r)].get();
    if (tree == nullptr) {
      // Small relation: no tree was built; one batch-kernel call tests the
      // anchor condition against the whole relation's SoA mirror. Matches
      // come back in ascending index order — the order the scalar loop
      // visited.
      const simd::SoaRects& soa = small_soa_[static_cast<size_t>(r)];
      const Rect& q = anchor_rect->rect;
      const double d = anchor.predicate.distance();
      const double d_sq = d * d;
      if (!anchor.predicate.is_overlap() &&
          !(d >= 0 && std::isfinite(d_sq))) {
        // Degenerate distance (negative, or d·d overflows): scalar
        // evaluation carries the exact semantics.
        for (const LocalRect& candidate : relation) {
          if (anchor.predicate.Evaluate(candidate.rect, q)) {
            try_candidate(candidate);
          }
        }
        return;
      }
      std::vector<int32_t>& candidates = scratch.candidates[depth];
      if (candidates.size() < soa.size()) {
        // mwsj-check: allow(alloc-free-reach): grows to the relation's
        // high-water size once, then every probe reuses the buffer.
        candidates.resize(soa.size());
      }
      // int32_t and uint32_t may alias (signed/unsigned of one type), and
      // the indices stay below the relation size, far under 2^31.
      uint32_t* out = reinterpret_cast<uint32_t*>(candidates.data());
      const simd::KernelTable& kernels = simd::ActiveKernels();
      const size_t hits =
          anchor.predicate.is_overlap()
              ? kernels.overlap_filter(soa.min_x.data(), soa.min_y.data(),
                                       soa.max_x.data(), soa.max_y.data(),
                                       soa.size(), q.min_x(), q.min_y(),
                                       q.max_x(), q.max_y(), out)
              : kernels.within_filter(soa.min_x.data(), soa.min_y.data(),
                                      soa.max_x.data(), soa.max_y.data(),
                                      soa.size(), q.min_x(), q.min_y(),
                                      q.max_x(), q.max_y(), d_sq, out);
      for (size_t t = 0; t < hits; ++t) {
        try_candidate(relation[out[t]]);
      }
      return;
    }
    std::vector<int32_t>& candidates = scratch.candidates[depth];
    candidates.clear();
    if (anchor.predicate.is_overlap()) {
      tree->CollectOverlapping(anchor_rect->rect, &scratch.rtree, &candidates);
    } else {
      tree->CollectWithinDistance(anchor_rect->rect,
                                  anchor.predicate.distance(), &scratch.rtree,
                                  &candidates);
    }
    for (int32_t idx : candidates) {
      try_candidate(relation[static_cast<size_t>(idx)]);
    }
  }

  const Query& query_;
  std::vector<std::span<const LocalRect>> relations_;
  std::vector<std::vector<Rect>> rects_;  // Per relation, index-aligned.
  std::vector<std::unique_ptr<RTree>> trees_;
  // SoA mirrors of the small (tree-less) relations probed at depth > 0,
  // consumed by the batch anchor filter in Bind.
  std::vector<simd::SoaRects> small_soa_;

  // Binding plan: order_[k] is the relation bound at depth k; for k > 0,
  // anchor_condition_[k] connects it to the already-bound
  // anchor_relation_[k], and check_conditions_[k] lists the other
  // conditions whose endpoints are both bound once depth k binds.
  std::vector<int> order_;
  std::vector<int> anchor_relation_;
  std::vector<int> anchor_condition_;
  std::vector<std::vector<int>> check_conditions_;
};

}  // namespace mwsj

#endif  // MWSJ_LOCALJOIN_MULTIWAY_H_
