#include "localjoin/plane_sweep.h"

#include <algorithm>

namespace mwsj {

namespace {

struct Event {
  double min_x;
  int32_t index;
  bool from_a;
};

}  // namespace

void PlaneSweepJoin(const std::vector<Rect>& a, const std::vector<Rect>& b,
                    const Predicate& predicate,
                    const std::function<void(int32_t, int32_t)>& emit) {
  const double d = predicate.is_range() ? predicate.distance() : 0.0;

  std::vector<Event> events;
  events.reserve(a.size() + b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    events.push_back(Event{a[i].min_x(), static_cast<int32_t>(i), true});
  }
  for (size_t j = 0; j < b.size(); ++j) {
    events.push_back(Event{b[j].min_x(), static_cast<int32_t>(j), false});
  }
  // Tie-break equal sweep positions (common on grid-aligned data) so the
  // emit order is fully specified instead of platform-dependent: b-side
  // events first, then by index within each side.
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    if (x.min_x != y.min_x) return x.min_x < y.min_x;
    if (x.from_a != y.from_a) return x.from_a < y.from_a;
    return x.index < y.index;
  });

  // Active rectangles from each side, pruned lazily: an active rectangle
  // dies once the sweep line passes max_x + d.
  std::vector<int32_t> active_a;
  std::vector<int32_t> active_b;

  auto prune = [&](std::vector<int32_t>* active, const std::vector<Rect>& src,
                   double line) {
    size_t w = 0;
    for (size_t i = 0; i < active->size(); ++i) {
      if (src[static_cast<size_t>((*active)[i])].max_x() + d >= line) {
        (*active)[w++] = (*active)[i];
      }
    }
    active->resize(w);
  };

  for (const Event& e : events) {
    prune(&active_a, a, e.min_x);
    prune(&active_b, b, e.min_x);
    if (e.from_a) {
      const Rect& ra = a[static_cast<size_t>(e.index)];
      for (int32_t j : active_b) {
        if (predicate.Evaluate(ra, b[static_cast<size_t>(j)])) {
          emit(e.index, j);
        }
      }
      active_a.push_back(e.index);
    } else {
      const Rect& rb = b[static_cast<size_t>(e.index)];
      for (int32_t i : active_a) {
        if (predicate.Evaluate(a[static_cast<size_t>(i)], rb)) {
          emit(i, e.index);
        }
      }
      active_b.push_back(e.index);
    }
  }
}

}  // namespace mwsj
