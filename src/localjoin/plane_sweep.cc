#include "localjoin/plane_sweep.h"

#include <algorithm>
#include <cstdint>

#include "simd/simd.h"

namespace mwsj {

namespace {

// Sweep events encoded for the batch key-sort: the sort key is the
// order-preserving u64 image of min_x (with -0.0 canonicalized, so equal
// sweep positions share a key exactly as the double comparator saw them),
// and the payload packs (from_a, index) with the side in the top bit —
// b-side (bit clear) sorts before a-side, then by index, reproducing the
// old comparator's tie-break. Payloads are unique, so the sorted order is
// fully specified.
constexpr uint32_t kFromABit = uint32_t{1} << 31;

}  // namespace

void PlaneSweepJoin(const std::vector<Rect>& a, const std::vector<Rect>& b,
                    const Predicate& predicate,
                    const std::function<void(int32_t, int32_t)>& emit) {
  const double d = predicate.is_range() ? predicate.distance() : 0.0;

  const size_t num_events = a.size() + b.size();
  std::vector<uint64_t> keys;
  std::vector<uint32_t> payloads;
  keys.reserve(num_events);
  payloads.reserve(num_events);
  for (size_t i = 0; i < a.size(); ++i) {
    keys.push_back(simd::OrderedKeyFromDouble(a[i].min_x()));
    payloads.push_back(kFromABit | static_cast<uint32_t>(i));
  }
  for (size_t j = 0; j < b.size(); ++j) {
    keys.push_back(simd::OrderedKeyFromDouble(b[j].min_x()));
    payloads.push_back(static_cast<uint32_t>(j));
  }
  simd::ActiveKernels().sort_key_idx(keys.data(), payloads.data(),
                                     num_events);

  // Active rectangles from each side, pruned lazily: an active rectangle
  // dies once the sweep line passes max_x + d.
  std::vector<int32_t> active_a;
  std::vector<int32_t> active_b;

  auto prune = [&](std::vector<int32_t>* active, const std::vector<Rect>& src,
                   double line) {
    size_t w = 0;
    for (size_t i = 0; i < active->size(); ++i) {
      if (src[static_cast<size_t>((*active)[i])].max_x() + d >= line) {
        (*active)[w++] = (*active)[i];
      }
    }
    active->resize(w);
  };

  for (size_t e = 0; e < num_events; ++e) {
    const bool from_a = (payloads[e] & kFromABit) != 0;
    const int32_t index = static_cast<int32_t>(payloads[e] & ~kFromABit);
    // The sweep line reads the rectangle's own min_x, not the key: the
    // key canonicalized -0.0, and pruning must compare real coordinates.
    const double line = from_a ? a[static_cast<size_t>(index)].min_x()
                               : b[static_cast<size_t>(index)].min_x();
    prune(&active_a, a, line);
    prune(&active_b, b, line);
    if (from_a) {
      const Rect& ra = a[static_cast<size_t>(index)];
      for (int32_t j : active_b) {
        if (predicate.Evaluate(ra, b[static_cast<size_t>(j)])) {
          emit(index, j);
        }
      }
      active_a.push_back(index);
    } else {
      const Rect& rb = b[static_cast<size_t>(index)];
      for (int32_t i : active_a) {
        if (predicate.Evaluate(a[static_cast<size_t>(i)], rb)) {
          emit(i, index);
        }
      }
      active_b.push_back(index);
    }
  }
}

}  // namespace mwsj
