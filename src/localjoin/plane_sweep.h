#ifndef MWSJ_LOCALJOIN_PLANE_SWEEP_H_
#define MWSJ_LOCALJOIN_PLANE_SWEEP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/effects.h"
#include "geometry/rect.h"
#include "query/predicate.h"

namespace mwsj {

/// Sort-based plane-sweep join between two rectangle sets: emits every
/// index pair (i, j) with a[i], b[j] satisfying `predicate`. This is the
/// pairwise kernel reducers run in the 2-way joins of §5 — O((n+m)·log +
/// active-list work) instead of the quadratic nested loop.
///
/// For range predicates the sweep window on x is widened by the distance
/// parameter; candidates are confirmed with the exact Euclidean test.
///
/// MWSJ_DETERMINISTIC: pair emission order is fixed by the total event
/// order (unique payload tie-break), so the emit stream is byte-identical
/// across platforms and kernel ISAs.
MWSJ_DETERMINISTIC void PlaneSweepJoin(
    const std::vector<Rect>& a, const std::vector<Rect>& b,
    const Predicate& predicate,
    const std::function<void(int32_t, int32_t)>& emit);

}  // namespace mwsj

#endif  // MWSJ_LOCALJOIN_PLANE_SWEEP_H_
