// R-tree probes run once per candidate rectangle with caller-owned
// QueryScratch; the query path must stay allocation-free (enforced by
// tools/mwsj_check.py alloc-free-reach via the MWSJ_ALLOC_FREE probe
// annotations in rtree.h) and without std::function indirection
// (tools/mwsj_lint.py hot-path-std-function).
#include "localjoin/rtree.h"

#include <algorithm>
#include <cmath>

namespace mwsj {

namespace {

// Sorts `ids` into STR tile order: primary slabs by center x, each slab
// ordered by center y. `group` is the number of entries per tile consumer
// (leaf or parent capacity).
void StrSort(const std::vector<Rect>& rects, std::vector<int32_t>* ids,
             int group) {
  const size_t n = ids->size();
  if (n == 0) return;
  auto center_x = [&](int32_t i) { return rects[static_cast<size_t>(i)].center().x; };
  auto center_y = [&](int32_t i) { return rects[static_cast<size_t>(i)].center().y; };

  std::sort(ids->begin(), ids->end(),
            [&](int32_t a, int32_t b) { return center_x(a) < center_x(b); });

  const size_t num_tiles = (n + static_cast<size_t>(group) - 1) /
                           static_cast<size_t>(group);
  const size_t num_slabs =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_tiles))));
  const size_t slab_size =
      ((num_tiles + num_slabs - 1) / num_slabs) * static_cast<size_t>(group);
  for (size_t lo = 0; lo < n; lo += slab_size) {
    const size_t hi = std::min(n, lo + slab_size);
    std::sort(ids->begin() + static_cast<ptrdiff_t>(lo),
              ids->begin() + static_cast<ptrdiff_t>(hi),
              [&](int32_t a, int32_t b) { return center_y(a) < center_y(b); });
  }
}

}  // namespace

RTree::RTree(const std::vector<Rect>& rects, int leaf_capacity)
    : size_(rects.size()) {
  const size_t n = rects.size();
  if (n == 0) return;
  const int cap = std::max(2, leaf_capacity);

  entries_.resize(n);
  for (size_t i = 0; i < n; ++i) entries_[i] = static_cast<int32_t>(i);
  StrSort(rects, &entries_, cap);

  // Leaf scans read MBRs in leaf order; materialize them contiguously so
  // a probe is a linear pass with no entries_[i] -> rects[entry] chase.
  leaf_rects_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    leaf_rects_.push_back(rects[static_cast<size_t>(entries_[i])]);
  }

  // Level 0: leaves over contiguous entry groups.
  std::vector<std::vector<Node>> levels;
  levels.emplace_back();
  for (size_t lo = 0; lo < n; lo += static_cast<size_t>(cap)) {
    const size_t hi = std::min(n, lo + static_cast<size_t>(cap));
    Node leaf;
    leaf.is_leaf = true;
    leaf.child_begin = static_cast<int32_t>(lo);
    leaf.child_end = static_cast<int32_t>(hi);
    leaf.mbr = leaf_rects_[lo];
    for (size_t i = lo + 1; i < hi; ++i) {
      leaf.mbr = Rect::Union(leaf.mbr, leaf_rects_[i]);
    }
    levels.back().push_back(leaf);
  }

  // Upper levels: STR-pack the previous level's nodes. The previous level
  // is permuted into tile order first so that each parent's children are
  // contiguous.
  while (levels.back().size() > 1) {
    std::vector<Node>& prev = levels.back();
    std::vector<Rect> mbrs;
    mbrs.reserve(prev.size());
    for (const Node& nd : prev) mbrs.push_back(nd.mbr);
    std::vector<int32_t> order(prev.size());
    for (size_t i = 0; i < prev.size(); ++i) order[i] = static_cast<int32_t>(i);
    StrSort(mbrs, &order, cap);
    std::vector<Node> permuted;
    permuted.reserve(prev.size());
    for (int32_t idx : order) permuted.push_back(prev[static_cast<size_t>(idx)]);
    prev = std::move(permuted);

    std::vector<Node> parents;
    for (size_t lo = 0; lo < prev.size(); lo += static_cast<size_t>(cap)) {
      const size_t hi = std::min(prev.size(), lo + static_cast<size_t>(cap));
      Node parent;
      parent.is_leaf = false;
      parent.child_begin = static_cast<int32_t>(lo);
      parent.child_end = static_cast<int32_t>(hi);
      parent.mbr = prev[lo].mbr;
      for (size_t i = lo + 1; i < hi; ++i) {
        parent.mbr = Rect::Union(parent.mbr, prev[i].mbr);
      }
      parents.push_back(parent);
    }
    levels.push_back(std::move(parents));
  }

  // Flatten top-down; children of a level-j node live at the next level's
  // base offset.
  nodes_.clear();
  std::vector<int32_t> level_offset(levels.size(), 0);
  int32_t offset = 0;
  for (size_t j = levels.size(); j-- > 0;) {
    level_offset[j] = offset;
    offset += static_cast<int32_t>(levels[j].size());
  }
  nodes_.resize(static_cast<size_t>(offset));
  for (size_t j = levels.size(); j-- > 0;) {
    for (size_t i = 0; i < levels[j].size(); ++i) {
      Node nd = levels[j][i];
      if (!nd.is_leaf) {
        nd.child_begin += level_offset[j - 1];
        nd.child_end += level_offset[j - 1];
      }
      nodes_[static_cast<size_t>(level_offset[j]) + i] = nd;
    }
  }

  // SoA mirrors for the batch filters: one kernel call covers a node's
  // child slots (leaf entries or child-node MBRs) as a contiguous range.
  leaf_soa_.Reserve(leaf_rects_.size());
  for (const Rect& r : leaf_rects_) {
    leaf_soa_.PushBack(r.min_x(), r.min_y(), r.max_x(), r.max_y());
  }
  node_soa_.Reserve(nodes_.size());
  for (const Node& nd : nodes_) {
    node_soa_.PushBack(nd.mbr.min_x(), nd.mbr.min_y(), nd.mbr.max_x(),
                       nd.mbr.max_y());
  }
}

template <typename Visit>
void RTree::Query(const Rect& probe, double d, QueryScratch* scratch,
                  const Visit& visit) const {
  if (nodes_.empty()) return;
  const bool overlap = d < 0;  // Sentinel from CollectOverlapping.
  const double d_sq = d * d;
  if (!overlap && !std::isfinite(d_sq)) {
    QueryHugeDistance(probe, d, scratch, visit);
    return;
  }
  const simd::KernelTable& kernels = simd::ActiveKernels();
  std::vector<int32_t>& stack = scratch->stack;
  std::vector<uint32_t>& matches = scratch->matches;
  stack.clear();

  // Children are batch-tested before they are pushed, so the root needs
  // its own test. The squared compare is tie-exact and consistent with
  // WithinDistance; for internal MBRs it is also conservative — a node's
  // per-axis gaps never exceed its children's, and fl() of the monotone
  // gap→dx²+dy² pipeline preserves ≤, so no matching child is pruned.
  const Node& root = nodes_[0];
  const bool root_hit = overlap
                            ? Overlaps(root.mbr, probe)
                            : MinDistanceSquared(root.mbr, probe) <= d_sq;
  if (!root_hit) return;
  // mwsj-check: allow(alloc-free-reach): scratch stack capacity reaches
  // tree depth × fanout on the first probes and is reused ever after.
  stack.push_back(0);

  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    const size_t base = static_cast<size_t>(node.child_begin);
    const size_t width =
        static_cast<size_t>(node.child_end - node.child_begin);
    // mwsj-check: allow(alloc-free-reach): grows to the widest node once,
    // then every probe reuses the same buffer (see QueryScratch doc).
    if (matches.size() < width) matches.resize(width);
    const simd::SoaRects& soa = node.is_leaf ? leaf_soa_ : node_soa_;
    const size_t hits =
        overlap ? kernels.overlap_filter(
                      soa.min_x.data() + base, soa.min_y.data() + base,
                      soa.max_x.data() + base, soa.max_y.data() + base,
                      width, probe.min_x(), probe.min_y(), probe.max_x(),
                      probe.max_y(), matches.data())
                : kernels.within_filter(
                      soa.min_x.data() + base, soa.min_y.data() + base,
                      soa.max_x.data() + base, soa.max_y.data() + base,
                      width, probe.min_x(), probe.min_y(), probe.max_x(),
                      probe.max_y(), d_sq, matches.data());
    if (node.is_leaf) {
      // Ascending slot order — the order the scalar leaf scan visited.
      for (size_t t = 0; t < hits; ++t) {
        visit(entries_[base + matches[t]]);
      }
    } else {
      // Push matching children ascending: pops then visit them in the
      // same descending order the filter-on-pop traversal produced.
      for (size_t t = 0; t < hits; ++t) {
        // mwsj-check: allow(alloc-free-reach): amortized scratch stack.
        stack.push_back(static_cast<int32_t>(base + matches[t]));
      }
    }
  }
}

template <typename Visit>
void RTree::QueryHugeDistance(const Rect& probe, double d,
                              QueryScratch* scratch,
                              const Visit& visit) const {
  std::vector<int32_t>& stack = scratch->stack;
  stack.clear();
  // mwsj-check: allow(alloc-free-reach): amortized scratch stack.
  stack.push_back(0);
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    // MinDistance (hypot) never overflows, so `<= d` stays exact where the
    // squared form would collapse to inf <= inf.
    if (!(MinDistance(node.mbr, probe) <= d)) continue;
    if (node.is_leaf) {
      for (int32_t i = node.child_begin; i < node.child_end; ++i) {
        const Rect& r = leaf_rects_[static_cast<size_t>(i)];
        if (MinDistance(r, probe) <= d) visit(entries_[static_cast<size_t>(i)]);
      }
    } else {
      for (int32_t c = node.child_begin; c < node.child_end; ++c) {
        // mwsj-check: allow(alloc-free-reach): amortized scratch stack.
        stack.push_back(c);
      }
    }
  }
}

void RTree::CollectOverlapping(const Rect& query, QueryScratch* scratch,
                               std::vector<int32_t>* out) const {
  // mwsj-check: allow(alloc-free-reach): `out` is the caller's candidate
  // buffer, cleared and reused across probes; growth amortizes to zero.
  Query(query, -1.0, scratch, [out](int32_t i) { out->push_back(i); });
}

void RTree::CollectWithinDistance(const Rect& query, double d,
                                  QueryScratch* scratch,
                                  std::vector<int32_t>* out) const {
  // mwsj-check: allow(alloc-free-reach): caller's reused candidate buffer.
  Query(query, d, scratch, [out](int32_t i) { out->push_back(i); });
}

void RTree::CollectOverlapping(const Rect& query,
                               std::vector<int32_t>* out) const {
  QueryScratch scratch;
  CollectOverlapping(query, &scratch, out);
}

void RTree::CollectWithinDistance(const Rect& query, double d,
                                  std::vector<int32_t>* out) const {
  QueryScratch scratch;
  CollectWithinDistance(query, d, &scratch, out);
}

}  // namespace mwsj
