#ifndef MWSJ_LOCALJOIN_RTREE_H_
#define MWSJ_LOCALJOIN_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/rect.h"

namespace mwsj {

/// A static R-tree over a set of rectangles, bulk-loaded with the
/// Sort-Tile-Recursive (STR) algorithm. Reducers build one per relation to
/// answer the overlap and within-distance probes of the multiway local
/// join; entries are identified by their index in the input vector.
///
/// The tree is immutable after construction — reducers build, probe, and
/// discard, so no insert/delete machinery is carried.
class RTree {
 public:
  /// Builds the tree over `rects` (indices into this vector are the probe
  /// results). An empty input yields an empty tree.
  explicit RTree(const std::vector<Rect>& rects, int leaf_capacity = 16);

  /// Appends to `*out` the indices of all rectangles overlapping `query`.
  void CollectOverlapping(const Rect& query, std::vector<int32_t>* out) const;

  /// Appends to `*out` the indices of all rectangles within Euclidean
  /// distance `d` of `query`.
  void CollectWithinDistance(const Rect& query, double d,
                             std::vector<int32_t>* out) const;

  size_t size() const { return rects_.size(); }

 private:
  struct Node {
    Rect mbr;
    // Children are nodes_[child_begin, child_end) for internal nodes, or
    // entry indices entries_[child_begin, child_end) for leaves.
    int32_t child_begin = 0;
    int32_t child_end = 0;
    bool is_leaf = true;
  };

  template <typename Visit>
  void Query(const Rect& probe, double d, const Visit& visit) const;

  std::vector<Rect> rects_;     // Copies of the input, index-aligned.
  std::vector<int32_t> entries_;  // Leaf entry indices, grouped per leaf.
  std::vector<Node> nodes_;     // nodes_[0] is the root (when non-empty).
};

}  // namespace mwsj

#endif  // MWSJ_LOCALJOIN_RTREE_H_
