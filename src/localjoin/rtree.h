#ifndef MWSJ_LOCALJOIN_RTREE_H_
#define MWSJ_LOCALJOIN_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/effects.h"
#include "geometry/rect.h"
#include "simd/simd.h"

namespace mwsj {

/// A static R-tree over a set of rectangles, bulk-loaded with the
/// Sort-Tile-Recursive (STR) algorithm. Reducers build one per relation to
/// answer the overlap and within-distance probes of the multiway local
/// join; entries are identified by their index in the input vector.
///
/// The tree is immutable after construction — reducers build, probe, and
/// discard, so no insert/delete machinery is carried. Leaf entry MBRs are
/// stored contiguously in leaf order, so a leaf scan is a linear pass over
/// one rectangle array instead of an index chase per entry.
class RTree {
 public:
  /// Reusable traversal state for probe calls. Callers on a hot path own
  /// one scratch and thread it through every probe, so the steady state
  /// performs no heap allocation per query; one scratch may be reused
  /// across probes and across trees, but not concurrently from several
  /// threads.
  struct QueryScratch {
    std::vector<int32_t> stack;
    // Batch-filter output buffer (child slots of one node); sized to the
    // widest node on first use, no allocation afterwards.
    std::vector<uint32_t> matches;
  };

  /// Builds the tree over `rects` (indices into this vector are the probe
  /// results). An empty input yields an empty tree. The input vector is
  /// only read during construction.
  explicit RTree(const std::vector<Rect>& rects, int leaf_capacity = 16);

  /// Appends to `*out` the indices of all rectangles overlapping `query`,
  /// using `*scratch` for the traversal stack. MWSJ_ALLOC_FREE: runs once
  /// per candidate in the multiway probe loop; steady-state traversal uses
  /// only the caller's scratch and output buffers.
  MWSJ_ALLOC_FREE void CollectOverlapping(const Rect& query,
                                          QueryScratch* scratch,
                                          std::vector<int32_t>* out) const;

  /// Appends to `*out` the indices of all rectangles within Euclidean
  /// distance `d` of `query`, using `*scratch` for the traversal stack.
  MWSJ_ALLOC_FREE void CollectWithinDistance(const Rect& query, double d,
                                             QueryScratch* scratch,
                                             std::vector<int32_t>* out) const;

  /// Convenience overloads for one-shot callers; each call allocates a
  /// local traversal stack. Hot paths should hold a QueryScratch instead.
  void CollectOverlapping(const Rect& query, std::vector<int32_t>* out) const;
  void CollectWithinDistance(const Rect& query, double d,
                             std::vector<int32_t>* out) const;

  size_t size() const { return size_; }

 private:
  struct Node {
    Rect mbr;
    // Children are nodes_[child_begin, child_end) for internal nodes, or
    // leaf slots [child_begin, child_end) — indexing both entries_ and
    // leaf_rects_ — for leaves.
    int32_t child_begin = 0;
    int32_t child_end = 0;
    bool is_leaf = true;
  };

  template <typename Visit>
  void Query(const Rect& probe, double d, QueryScratch* scratch,
             const Visit& visit) const;

  /// Scalar traversal for probes whose d·d overflows (kNN's unbounded +inf
  /// pass): the batch kernels compare squared distances, which would read
  /// inf <= inf there.
  template <typename Visit>
  void QueryHugeDistance(const Rect& probe, double d, QueryScratch* scratch,
                         const Visit& visit) const;

  size_t size_ = 0;
  std::vector<int32_t> entries_;  // Leaf entry indices, grouped per leaf.
  std::vector<Rect> leaf_rects_;  // entries_[i]'s MBR, index-aligned.
  std::vector<Node> nodes_;       // nodes_[0] is the root (when non-empty).
  // SoA mirrors of leaf_rects_ and the node MBRs for the batch filters:
  // a probe tests all child slots of a node with one kernel call.
  simd::SoaRects leaf_soa_;
  simd::SoaRects node_soa_;
};

}  // namespace mwsj

#endif  // MWSJ_LOCALJOIN_RTREE_H_
