#include "mapreduce/cost_model.h"

#include <algorithm>

namespace mwsj {

double CostModel::JobSeconds(const JobStats& job) const {
  double seconds = job_startup_seconds;
  seconds += static_cast<double>(job.map_input_bytes) / scan_bytes_per_sec;
  seconds += static_cast<double>(job.intermediate_bytes) / shuffle_bytes_per_sec;

  // Reduce tasks are packed onto `reduce_slots` slots. Perfect packing is
  // sum/slots; the slowest task lower-bounds the phase.
  const double total_cpu = job.SumReducerSeconds() * cpu_scale;
  const double slowest = job.MaxReducerSeconds() * cpu_scale;
  seconds += std::max(total_cpu / reduce_slots, slowest);

  seconds += static_cast<double>(job.reduce_output_bytes) / write_bytes_per_sec;
  return seconds;
}

double CostModel::RunSeconds(const RunStats& run) const {
  double seconds = 0;
  for (const JobStats& job : run.jobs) seconds += JobSeconds(job);
  return seconds;
}

}  // namespace mwsj
