#ifndef MWSJ_MAPREDUCE_COST_MODEL_H_
#define MWSJ_MAPREDUCE_COST_MODEL_H_

#include <string>

#include "mapreduce/counters.h"

namespace mwsj {

/// Converts measured job counters into modeled wall-clock time on a
/// Hadoop-era cluster like the paper's test bed (§7.8.1: 16 cores, Hadoop
/// 0.20.2, 64 reduce processes).
///
/// The model charges, per job:
///   t_job = job_startup
///         + map_input_bytes    / scan_bytes_per_sec
///         + intermediate_bytes / shuffle_bytes_per_sec
///         + reduce_cpu (per-reducer measured CPU, packed onto
///                       `reduce_slots` slots; lower-bounded by the
///                       slowest single reducer)
///         + reduce_output_bytes / write_bytes_per_sec
///
/// Only the reduce CPU term comes from measurement — everything else is
/// linear in counted bytes, which makes the model insensitive to this
/// machine's speed and lets the benches reason about the *shape* of the
/// paper's tables. Constants default to values calibrated so Table 2's
/// first row lands in the paper's order of magnitude; they are plain fields
/// so experiments can re-calibrate.
struct CostModel {
  double job_startup_seconds = 25.0;
  double scan_bytes_per_sec = 96.0 * 1024 * 1024;
  double shuffle_bytes_per_sec = 24.0 * 1024 * 1024;
  double write_bytes_per_sec = 48.0 * 1024 * 1024;
  int reduce_slots = 16;
  /// Our single machine is not the paper's 3 GHz Xeon blade; this scales
  /// measured reduce CPU seconds to the modeled cluster's per-core speed.
  double cpu_scale = 1.0;

  /// Modeled seconds for one job.
  double JobSeconds(const JobStats& job) const;

  /// Modeled seconds for a full run (jobs execute sequentially, like the
  /// paper's chained Hadoop jobs).
  double RunSeconds(const RunStats& run) const;
};

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_COST_MODEL_H_
