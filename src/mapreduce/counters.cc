#include "mapreduce/counters.h"

#include <algorithm>
#include <numeric>

namespace mwsj {

bool PhaseFaultStats::Any() const {
  return retries > 0 || speculative > 0 || wasted_records > 0 ||
         wasted_bytes > 0 || wasted_seconds > 0 || backoff_seconds > 0;
}

void PhaseFaultStats::Add(const PhaseFaultStats& other) {
  tasks += other.tasks;
  attempts += other.attempts;
  retries += other.retries;
  speculative += other.speculative;
  wasted_records += other.wasted_records;
  wasted_bytes += other.wasted_bytes;
  wasted_seconds += other.wasted_seconds;
  backoff_seconds += other.backoff_seconds;
}

double SpillStats::CompressionRatio() const {
  if (spilled_stored_bytes <= 0) return 0;
  return static_cast<double>(spilled_raw_bytes) /
         static_cast<double>(spilled_stored_bytes);
}

void SpillStats::Add(const SpillStats& other) {
  budget_bytes = std::max(budget_bytes, other.budget_bytes);
  spilled_chunks += other.spilled_chunks;
  spilled_runs += other.spilled_runs;
  spilled_raw_bytes += other.spilled_raw_bytes;
  spilled_stored_bytes += other.spilled_stored_bytes;
  flush_retries += other.flush_retries;
  wasted_flush_bytes += other.wasted_flush_bytes;
  peak_shuffle_bytes = std::max(peak_shuffle_bytes, other.peak_shuffle_bytes);
  peak_inbox_bytes = std::max(peak_inbox_bytes, other.peak_inbox_bytes);
  merge_runs_max = std::max(merge_runs_max, other.merge_runs_max);
}

bool JobStats::AnyFaults() const {
  return map_faults.Any() || reduce_faults.Any();
}

int64_t JobStats::MaxReducerRecords() const {
  if (per_reducer_records.empty()) return 0;
  return *std::max_element(per_reducer_records.begin(),
                           per_reducer_records.end());
}

double JobStats::MaxReducerSeconds() const {
  if (per_reducer_seconds.empty()) return 0;
  return *std::max_element(per_reducer_seconds.begin(),
                           per_reducer_seconds.end());
}

double JobStats::SumReducerSeconds() const {
  return std::accumulate(per_reducer_seconds.begin(),
                         per_reducer_seconds.end(), 0.0);
}

double JobStats::MaxMapChunkSeconds() const {
  if (per_chunk_map_seconds.empty()) return 0;
  return *std::max_element(per_chunk_map_seconds.begin(),
                           per_chunk_map_seconds.end());
}

double JobStats::SumMapChunkSeconds() const {
  return std::accumulate(per_chunk_map_seconds.begin(),
                         per_chunk_map_seconds.end(), 0.0);
}

double JobStats::PhaseSeconds() const {
  return map_seconds + shuffle_seconds + reduce_seconds;
}

int64_t RunStats::UserCounter(const std::string& name) const {
  int64_t total = 0;
  for (const JobStats& j : jobs) {
    auto it = j.user_counters.find(name);
    if (it != j.user_counters.end()) total += it->second;
  }
  return total;
}

int64_t RunStats::TotalIntermediateRecords() const {
  int64_t total = 0;
  for (const JobStats& j : jobs) total += j.intermediate_records;
  return total;
}

int64_t RunStats::TotalIntermediateBytes() const {
  int64_t total = 0;
  for (const JobStats& j : jobs) total += j.intermediate_bytes;
  return total;
}

void RunStats::Add(JobStats stats) {
  total_wall_seconds += stats.wall_seconds;
  jobs.push_back(std::move(stats));
}

}  // namespace mwsj
