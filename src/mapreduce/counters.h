#ifndef MWSJ_MAPREDUCE_COUNTERS_H_
#define MWSJ_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mwsj {

/// Statistics of one executed map-reduce job. Every quantity the paper's
/// evaluation reports (intermediate key-value pairs = "rectangles after
/// replication", reducer load, read/write volume) is captured here; the
/// cost model converts them into modeled cluster time.
struct JobStats {
  std::string job_name;

  int64_t map_input_records = 0;
  int64_t map_input_bytes = 0;
  /// Intermediate key-value pairs produced by the map phase — the paper's
  /// primary communication-cost metric (§1).
  int64_t intermediate_records = 0;
  int64_t intermediate_bytes = 0;
  int64_t reduce_output_records = 0;
  int64_t reduce_output_bytes = 0;

  int num_reducers = 0;
  /// Records routed to each reducer; skew drives the modeled reduce time.
  std::vector<int64_t> per_reducer_records;
  /// Measured CPU seconds spent inside each reduce task.
  std::vector<double> per_reducer_seconds;
  /// Measured seconds spent inside each map task (one entry per input
  /// chunk); mapper skew is observable the same way reducer skew is.
  std::vector<double> per_chunk_map_seconds;

  /// Wall time of the three engine phases: map (chunked, parallel),
  /// shuffle (per-reducer bucket merge, parallel), reduce (parallel).
  /// Together they account for essentially all of wall_seconds.
  double map_seconds = 0;
  double shuffle_seconds = 0;
  double reduce_seconds = 0;

  /// End-to-end in-process wall time of the job.
  double wall_seconds = 0;

  /// User-defined counters (e.g. "rectangles_marked" in C-Rep round 1).
  std::map<std::string, int64_t> user_counters;

  int64_t MaxReducerRecords() const;
  double MaxReducerSeconds() const;
  double SumReducerSeconds() const;
  double MaxMapChunkSeconds() const;
  double SumMapChunkSeconds() const;
  /// map + shuffle + reduce — the accounted-for portion of wall_seconds.
  double PhaseSeconds() const;
};

/// Aggregated statistics of a whole algorithm run (one or more MR jobs).
struct RunStats {
  std::vector<JobStats> jobs;

  /// Measured in-process wall time across all jobs.
  double total_wall_seconds = 0;

  /// Sum of user counter `name` across jobs.
  int64_t UserCounter(const std::string& name) const;
  int64_t TotalIntermediateRecords() const;
  int64_t TotalIntermediateBytes() const;

  void Add(JobStats stats);
};

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_COUNTERS_H_
