#ifndef MWSJ_MAPREDUCE_COUNTERS_H_
#define MWSJ_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mwsj {

/// Fault-recovery accounting for one engine phase (map or reduce) of one
/// job. `tasks`/`attempts` are always tracked (attempts == tasks on a
/// clean run); every other field stays zero unless an attempt actually
/// faulted, and the whole block is omitted from stats_json when nothing
/// did. "Wasted" quantities are the work performed by attempts that were
/// later discarded — the retry-amplification cost the chaos suite and
/// BM_EngineFaultRecovery measure.
struct PhaseFaultStats {
  /// Tasks in the phase (chunks for map, reducers for reduce).
  int64_t tasks = 0;
  /// Attempts executed, including the first attempt of every task.
  int64_t attempts = 0;
  /// Attempts beyond the first caused by crash/flaky faults.
  int64_t retries = 0;
  /// Speculative duplicate attempts launched for straggling tasks.
  int64_t speculative = 0;
  /// Records emitted by discarded attempts.
  int64_t wasted_records = 0;
  /// Bytes emitted by discarded attempts.
  int64_t wasted_bytes = 0;
  /// CPU seconds spent inside discarded attempts.
  double wasted_seconds = 0;
  /// Total backoff delay charged before retries (virtual when the retry
  /// policy injects a clock).
  double backoff_seconds = 0;

  bool Any() const;
  void Add(const PhaseFaultStats& other);
};

/// Out-of-core accounting for one job run under a shuffle memory budget
/// (ExecutionOptions::shuffle_memory_budget; DESIGN.md §2.13). All-zero —
/// and omitted from stats_json — when the job ran unbounded.
struct SpillStats {
  /// The effective byte budget the run executed under; 0 = unlimited
  /// (spill mode off, every other field stays zero).
  int64_t budget_bytes = 0;
  /// Mapper chunks whose output exceeded budget/num_chunks and were
  /// flushed to sorted runs.
  int64_t spilled_chunks = 0;
  /// Sorted runs written (one per non-empty bucket of a spilled chunk).
  int64_t spilled_runs = 0;
  /// Intermediate bytes of the spilled buckets before encoding.
  int64_t spilled_raw_bytes = 0;
  /// Bytes committed to the spill store (columnar-compressed where the
  /// record type supports it, raw otherwise).
  int64_t spilled_stored_bytes = 0;
  /// Spill-flush attempts retried under fault injection.
  int64_t flush_retries = 0;
  /// Staged run bytes discarded by failed flush attempts.
  int64_t wasted_flush_bytes = 0;
  /// Shuffle-state bytes resident at the map→reduce barrier: in-memory
  /// buckets of unspilled chunks plus stored bytes of spilled runs.
  /// Deterministic (computed from sizes, not sampled).
  int64_t peak_shuffle_bytes = 0;
  /// Largest single reducer inbox, in intermediate bytes — the reduce-side
  /// working set a concurrent-reducer bound multiplies.
  int64_t peak_inbox_bytes = 0;
  /// Widest k-way merge any reducer performed (number of sources).
  int64_t merge_runs_max = 0;

  bool active() const { return budget_bytes > 0; }
  /// spilled_raw_bytes / spilled_stored_bytes; 0 when nothing spilled.
  double CompressionRatio() const;
  void Add(const SpillStats& other);
};

/// Statistics of one executed map-reduce job. Every quantity the paper's
/// evaluation reports (intermediate key-value pairs = "rectangles after
/// replication", reducer load, read/write volume) is captured here; the
/// cost model converts them into modeled cluster time.
struct JobStats {
  std::string job_name;
  /// Scheduler-assigned id of the submission this job ran under
  /// (core/scheduler.h); -1 for standalone (non-scheduled) runs. Lets a
  /// stats document from a shared pool attribute each MR job to its
  /// submission even when job names repeat across submissions.
  int64_t job_id = -1;

  int64_t map_input_records = 0;
  int64_t map_input_bytes = 0;
  /// Intermediate key-value pairs produced by the map phase — the paper's
  /// primary communication-cost metric (§1).
  int64_t intermediate_records = 0;
  int64_t intermediate_bytes = 0;
  int64_t reduce_output_records = 0;
  int64_t reduce_output_bytes = 0;

  int num_reducers = 0;
  /// Records routed to each reducer; skew drives the modeled reduce time.
  std::vector<int64_t> per_reducer_records;
  /// Measured CPU seconds spent inside each reduce task.
  std::vector<double> per_reducer_seconds;
  /// Measured seconds spent inside each map task (one entry per input
  /// chunk); mapper skew is observable the same way reducer skew is.
  std::vector<double> per_chunk_map_seconds;

  /// Wall time of the three engine phases: map (chunked, parallel),
  /// shuffle (per-reducer bucket merge, parallel), reduce (parallel).
  /// Together they account for essentially all of wall_seconds.
  double map_seconds = 0;
  double shuffle_seconds = 0;
  double reduce_seconds = 0;

  /// End-to-end in-process wall time of the job.
  double wall_seconds = 0;

  /// User-defined counters (e.g. "rectangles_marked" in C-Rep round 1).
  /// Exactly-once under faults: failed attempts' increments are discarded.
  std::map<std::string, int64_t> user_counters;

  /// Fault-recovery accounting per phase; all-zero without a fault plan.
  PhaseFaultStats map_faults;
  PhaseFaultStats reduce_faults;

  /// Out-of-core accounting; all-zero without a shuffle memory budget.
  SpillStats spill;

  /// True when any attempt in the job faulted or was re-executed.
  bool AnyFaults() const;

  int64_t MaxReducerRecords() const;
  double MaxReducerSeconds() const;
  double SumReducerSeconds() const;
  double MaxMapChunkSeconds() const;
  double SumMapChunkSeconds() const;
  /// map + shuffle + reduce — the accounted-for portion of wall_seconds.
  double PhaseSeconds() const;
};

/// Aggregated statistics of a whole algorithm run (one or more MR jobs).
struct RunStats {
  std::vector<JobStats> jobs;

  /// Measured in-process wall time across all jobs.
  double total_wall_seconds = 0;

  /// DatasetCatalog reuse accounting for this run: how many cached
  /// artifacts (grid partitioning, C-Rep round-1 marking, relation
  /// bundles) were found resident vs. built from scratch. Both zero when
  /// the run had no catalog attached.
  int64_t catalog_hits = 0;
  int64_t catalog_misses = 0;

  /// Sum of user counter `name` across jobs.
  int64_t UserCounter(const std::string& name) const;
  int64_t TotalIntermediateRecords() const;
  int64_t TotalIntermediateBytes() const;

  void Add(JobStats stats);
};

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_COUNTERS_H_
