#ifndef MWSJ_MAPREDUCE_DFS_H_
#define MWSJ_MAPREDUCE_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <vector>

#include "common/status.h"

namespace mwsj {

/// A simulated distributed file system.
///
/// The paper's 2-way Cascade baseline pays a "huge reading and writing
/// cost" (§6.4) because every intermediate join result round-trips through
/// HDFS. This class stands in for HDFS: datasets are named, immutable,
/// type-erased record vectors, and every store/load is charged to byte
/// counters that the cost model converts into I/O time. Record payloads are
/// shared, not copied — the accounting, not the data movement, is what the
/// experiments need.
class Dfs {
 public:
  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Stores `records` under `name`, charging `records->size() *
  /// record_bytes` to the write counter. Overwrites any previous dataset of
  /// the same name (the overwrite is charged too — every write costs I/O).
  /// Returns InvalidArgument on a null `records` pointer instead of
  /// crashing the simulated DFS.
  template <typename T>
  Status Write(const std::string& name,
               std::shared_ptr<const std::vector<T>> records,
               int64_t record_bytes = sizeof(T)) {
    if (records == nullptr) {
      return Status::InvalidArgument("null record vector for dataset '" +
                                     name + "'");
    }
    std::lock_guard<std::mutex> lock(mu_);
    Entry e;
    e.data = std::static_pointer_cast<const void>(records);
    e.type = std::type_index(typeid(T));
    e.records = static_cast<int64_t>(records->size());
    e.bytes = e.records * record_bytes;
    bytes_written_ += e.bytes;
    records_written_ += e.records;
    datasets_[name] = std::move(e);
    return Status::OK();
  }

  /// Loads the dataset `name`, charging its size to the read counter.
  /// Returns NotFound / FailedPrecondition on missing name or type
  /// mismatch.
  template <typename T>
  StatusOr<std::shared_ptr<const std::vector<T>>> Read(
      const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("no dataset named '" + name + "'");
    }
    if (it->second.type != std::type_index(typeid(T))) {
      return Status::FailedPrecondition("dataset '" + name +
                                        "' has a different record type");
    }
    bytes_read_ += it->second.bytes;
    records_read_ += it->second.records;
    return std::static_pointer_cast<const std::vector<T>>(it->second.data);
  }

  bool Exists(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return datasets_.count(name) > 0;
  }

  /// Removes a dataset; missing names are a no-op (idempotent cleanup).
  void Remove(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    datasets_.erase(name);
  }

  int64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }
  int64_t bytes_read() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_read_;
  }
  int64_t records_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_written_;
  }
  int64_t records_read() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_read_;
  }

 private:
  struct Entry {
    std::shared_ptr<const void> data;
    std::type_index type = std::type_index(typeid(void));
    int64_t records = 0;
    int64_t bytes = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> datasets_;
  int64_t bytes_written_ = 0;
  int64_t bytes_read_ = 0;
  int64_t records_written_ = 0;
  int64_t records_read_ = 0;
};

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_DFS_H_
