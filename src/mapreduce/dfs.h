#ifndef MWSJ_MAPREDUCE_DFS_H_
#define MWSJ_MAPREDUCE_DFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/effects.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mwsj {

/// A simulated distributed file system.
///
/// The paper's 2-way Cascade baseline pays a "huge reading and writing
/// cost" (§6.4) because every intermediate join result round-trips through
/// HDFS. This class stands in for HDFS: datasets are named, immutable,
/// type-erased record vectors, and every store/load is charged to byte
/// counters that the cost model converts into I/O time. Record payloads are
/// shared, not copied — the accounting, not the data movement, is what the
/// experiments need.
class Dfs {
 public:
  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Stores `records` under `name`, charging `records->size() *
  /// record_bytes` to the write counter. Overwrites any previous dataset of
  /// the same name: the full new size is charged as I/O (every write costs
  /// a transfer), but the *live* counters absorb only the size delta, so
  /// live_bytes()/live_records() stay exact under run recycling — a spill
  /// run overwritten a thousand times occupies its latest size, not the
  /// sum. `total_bytes >= 0` overrides the uniform-record sizing for
  /// datasets whose byte size is not records × constant (e.g. compressed
  /// runs: records = rows, total_bytes = encoded size). Returns
  /// InvalidArgument on a null `records` pointer instead of crashing the
  /// simulated DFS.
  template <typename T>
  MWSJ_BLOCKING Status Write(const std::string& name,
                             std::shared_ptr<const std::vector<T>> records,
                             int64_t record_bytes = sizeof(T),
                             int64_t total_bytes = -1) EXCLUDES(mu_) {
    if (records == nullptr) {
      return Status::InvalidArgument("null record vector for dataset '" +
                                     name + "'");
    }
    MutexLock lock(&mu_);
    Entry e;
    e.data = std::static_pointer_cast<const void>(records);
    e.type = std::type_index(typeid(T));
    e.records = static_cast<int64_t>(records->size());
    e.bytes = total_bytes >= 0 ? total_bytes : e.records * record_bytes;
    InstallLocked(name, std::move(e));
    return Status::OK();
  }

  /// Loads the dataset `name`, charging its size to the read counter.
  /// Returns NotFound / FailedPrecondition on missing name or type
  /// mismatch.
  template <typename T>
  MWSJ_BLOCKING StatusOr<std::shared_ptr<const std::vector<T>>> Read(
      const std::string& name) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("no dataset named '" + name + "'");
    }
    if (it->second.type != std::type_index(typeid(T))) {
      return Status::FailedPrecondition("dataset '" + name +
                                        "' has a different record type");
    }
    bytes_read_ += it->second.bytes;
    records_read_ += it->second.records;
    return std::static_pointer_cast<const std::vector<T>>(it->second.data);
  }

  bool Exists(const std::string& name) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return datasets_.count(name) > 0;
  }

  /// Removes a dataset; missing names are a no-op (idempotent cleanup).
  void Remove(const std::string& name) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) return;
    live_bytes_ -= it->second.bytes;
    live_records_ -= it->second.records;
    datasets_.erase(it);
  }

  int64_t bytes_written() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return bytes_written_;
  }
  int64_t bytes_read() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return bytes_read_;
  }
  int64_t records_written() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return records_written_;
  }
  int64_t records_read() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return records_read_;
  }

  /// Bytes/records of the datasets currently stored, maintained as O(1)
  /// counters by delta: an overwrite adds new − old, a Remove subtracts.
  /// Invariant under attempt staging: a discarded attempt changes neither
  /// these nor bytes_written() — phantom bytes from failed attempts never
  /// appear in any counter (dfs_test.cc checks this, and checks that
  /// overwrite recycling leaves these exactly at the latest sizes).
  int64_t live_bytes() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_bytes_;
  }
  int64_t live_records() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return live_records_;
  }

 private:
  friend class DfsStage;

  struct Entry {
    std::shared_ptr<const void> data;
    std::type_index type = std::type_index(typeid(void));
    int64_t records = 0;
    int64_t bytes = 0;
  };

  /// Installs a staged entry, charging its write cost. Only DfsStage
  /// (i.e. a successful attempt's Commit) reaches this.
  MWSJ_BLOCKING void CommitEntry(const std::string& name, Entry e)
      EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    InstallLocked(name, std::move(e));
  }

  /// Shared install path for Write and CommitEntry: full write cost to the
  /// I/O counters, size *delta* to the live counters on overwrite.
  void InstallLocked(const std::string& name, Entry e) REQUIRES(mu_) {
    bytes_written_ += e.bytes;
    records_written_ += e.records;
    live_bytes_ += e.bytes;
    live_records_ += e.records;
    auto it = datasets_.find(name);
    if (it != datasets_.end()) {
      live_bytes_ -= it->second.bytes;
      live_records_ -= it->second.records;
      it->second = std::move(e);
    } else {
      datasets_.emplace(name, std::move(e));
    }
  }

  mutable Mutex mu_;
  std::map<std::string, Entry> datasets_ GUARDED_BY(mu_);
  int64_t bytes_written_ GUARDED_BY(mu_) = 0;
  int64_t bytes_read_ GUARDED_BY(mu_) = 0;
  int64_t records_written_ GUARDED_BY(mu_) = 0;
  int64_t records_read_ GUARDED_BY(mu_) = 0;
  int64_t live_bytes_ GUARDED_BY(mu_) = 0;
  int64_t live_records_ GUARDED_BY(mu_) = 0;
};

/// Attempt-scoped staging for DFS writes — the OutputCommitter of the
/// simulated file system. A task attempt writes into its stage; nothing
/// touches the Dfs (datasets or byte counters) until `Commit()`. An
/// aborted or destroyed-uncommitted stage discards its writes entirely, so
/// a failed attempt leaves no phantom bytes behind.
class DfsStage {
 public:
  explicit DfsStage(Dfs* dfs) : dfs_(dfs) {}
  DfsStage(const DfsStage&) = delete;
  DfsStage& operator=(const DfsStage&) = delete;
  ~DfsStage() { Abort(); }

  /// Same contract as Dfs::Write, but buffered: the write is charged and
  /// visible only after Commit(). Later staged writes of the same name
  /// shadow earlier ones within the stage.
  template <typename T>
  Status Write(const std::string& name,
               std::shared_ptr<const std::vector<T>> records,
               int64_t record_bytes = sizeof(T), int64_t total_bytes = -1) {
    if (records == nullptr) {
      return Status::InvalidArgument("null record vector for dataset '" +
                                     name + "'");
    }
    Dfs::Entry e;
    e.data = std::static_pointer_cast<const void>(records);
    e.type = std::type_index(typeid(T));
    e.records = static_cast<int64_t>(records->size());
    e.bytes = total_bytes >= 0 ? total_bytes : e.records * record_bytes;
    staged_records_ += e.records;
    staged_bytes_ += e.bytes;
    staged_.emplace_back(name, std::move(e));
    return Status::OK();
  }

  /// Publishes every staged write to the Dfs in write order. The
  /// sanctioned spill-flush exit from map/reduce tasks: blocking-reach
  /// traversals stop here rather than flagging the Dfs locks behind it.
  MWSJ_BLOCKING_OK void Commit() {
    for (auto& [name, e] : staged_) dfs_->CommitEntry(name, std::move(e));
    staged_.clear();
    staged_records_ = 0;
    staged_bytes_ = 0;
  }

  /// Discards every staged write; the Dfs is untouched.
  void Abort() {
    staged_.clear();
    staged_records_ = 0;
    staged_bytes_ = 0;
  }

  int64_t staged_records() const { return staged_records_; }
  int64_t staged_bytes() const { return staged_bytes_; }

 private:
  Dfs* dfs_;
  std::vector<std::pair<std::string, Dfs::Entry>> staged_;
  int64_t staged_records_ = 0;
  int64_t staged_bytes_ = 0;
};

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_DFS_H_
