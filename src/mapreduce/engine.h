#ifndef MWSJ_MAPREDUCE_ENGINE_H_
#define MWSJ_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/effects.h"
#include "common/execution_context.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mapreduce/counters.h"
#include "mapreduce/dfs.h"
#include "mapreduce/spill.h"
#include "simd/simd.h"
#include "mapreduce/fault.h"

namespace mwsj {

namespace engine_internal {

/// Best-effort rendering of a shuffle key for error messages; keys only
/// need ordering and equality, so non-printable types degrade gracefully.
template <typename K>
std::string DescribeKey(const K& key) {
  if constexpr (std::is_arithmetic_v<K>) {
    return std::to_string(key);
  } else if constexpr (std::is_convertible_v<const K&, std::string>) {
    return std::string(key);
  } else {
    return "<unprintable key>";
  }
}

}  // namespace engine_internal

/// In-process map-reduce engine.
///
/// This substrate plays the role Hadoop 0.20.2 plays in the paper (§2,
/// §7.8.1): user code supplies a map function that turns input records into
/// intermediate key-value pairs, the engine shuffles pairs to reducers by a
/// partition function, and a reduce function processes each key group. The
/// engine is deliberately faithful to the paper's cost structure rather than
/// to Hadoop's implementation details:
///
///   * every intermediate pair is counted (and sized) — that is the
///     communication cost the algorithms are designed to minimize;
///   * reducers execute as independent tasks with per-task timing, so
///     reducer skew is observable;
///   * execution is deterministic: mapper outputs are concatenated in input
///     order regardless of thread scheduling, and reducers iterate key
///     groups in key order;
///   * tasks can fail and be re-executed: an `ExecutionContext::faults`
///     plan (mapreduce/fault.h) injects deterministic per-attempt
///     crash/flaky/straggler faults, and the engine retries with bounded
///     exponential backoff while discarding everything a failed attempt
///     produced — emits, user counters, DFS writes — so job output stays
///     byte-identical to a fault-free run (Hadoop's exactly-once task
///     re-execution, with the wasted work accounted in JobStats);
///   * the shuffle is memory-budgeted: a positive
///     `ExecutionContext::options.shuffle_memory_budget` (or the
///     MWSJ_SHUFFLE_BUDGET env override) makes over-budget mapper chunks
///     flush their buckets as sorted, columnar-compressed spill runs and
///     reducers k-way merge them back lazily — same output bytes, bounded
///     resident shuffle memory (DESIGN.md §2.13, JobStats::spill).
///
/// Keys must be totally ordered (operator<) and equality-comparable; keys
/// and values must be movable and default-constructible (the mapper-side
/// scatter builds reducer-major shards in place). The partition and
/// value-size functions run inside mapper tasks and must be thread-safe
/// (in practice: pure functions of the key/value).
template <typename In, typename K, typename V, typename Out>
class MapReduceJob {
 public:
  using PartitionFn = std::function<int(const K&)>;
  using SizeFn = std::function<int64_t(const V&)>;

  /// Collects intermediate pairs from one map invocation, computing each
  /// pair's reducer at emit time. Each map chunk owns one emitter plus its
  /// own byte/record tallies, so mappers never contend on shared state; the
  /// tallies are summed after the map barrier.
  ///
  /// The emitter is scoped to one task *attempt*: counter increments land
  /// in an attempt-local map the engine merges into JobStats only when the
  /// attempt commits, so a crashed or discarded attempt's counts vanish
  /// with its emits (exactly-once under fault injection).
  class Emitter {
   public:
    Emitter(std::vector<std::pair<K, V>>* pairs, std::vector<uint32_t>* route,
            const PartitionFn* partition, const SizeFn* value_size,
            const std::string* job_name, int num_reducers,
            std::map<std::string, int64_t>* counters, int64_t job_id = -1)
        : pairs_(pairs), route_(route), partition_(partition),
          value_size_(value_size), job_name_(job_name),
          num_reducers_(num_reducers), counters_(counters), job_id_(job_id) {}
    /// MWSJ_DETERMINISTIC: the emit stream is the byte-identity contract —
    /// everything transitively feeding it must be order-deterministic.
    MWSJ_DETERMINISTIC void Emit(K key, V value) {
      const int r = (*partition_)(key);
      // An out-of-range partition result would corrupt the counting sort
      // out of bounds; fail fast with the job and key instead. With many
      // scheduled jobs sharing one pool, the same job *name* can be in
      // flight several times over — the id suffix names the offender
      // unambiguously.
      if (r < 0 || r >= num_reducers_) [[unlikely]] {
        const std::string job_suffix =
            job_id_ >= 0 ? " (job #" + std::to_string(job_id_) + ")" : "";
        std::fprintf(stderr,
                     "MapReduceJob '%s': partition function returned %d for "
                     "key %s, outside the valid reducer range [0, %d)%s\n",
                     job_name_->c_str(), r,
                     engine_internal::DescribeKey(key).c_str(), num_reducers_,
                     job_suffix.c_str());
        std::abort();
      }
      bytes_ += (*value_size_)(value);
      // mwsj-check: allow(alloc-free-reach): emit buffers are pre-reserved
      // per attempt and budget-tracked; amortized growth here is the
      // engine's charge, not the allocation-free kernel caller's.
      route_->push_back(static_cast<uint32_t>(r));
      // mwsj-check: allow(alloc-free-reach): same pre-reserved emit buffer.
      pairs_->emplace_back(std::move(key), std::move(value));
    }

    /// Adds to a user counter, attempt-locally: the delta reaches
    /// JobStats.user_counters only if this attempt commits.
    void IncrementCounter(const std::string& name, int64_t delta) {
      (*counters_)[name] += delta;
    }

    int64_t bytes() const { return bytes_; }

   private:
    std::vector<std::pair<K, V>>* pairs_;
    std::vector<uint32_t>* route_;
    const PartitionFn* partition_;
    const SizeFn* value_size_;
    const std::string* job_name_;
    int num_reducers_;
    std::map<std::string, int64_t>* counters_;
    int64_t job_id_ = -1;
    int64_t bytes_ = 0;
  };

  /// Collects output records from one reduce invocation. Attempt-scoped
  /// exactly like Emitter: counter increments are merged only on commit.
  class OutEmitter {
   public:
    OutEmitter(std::vector<Out>* sink, std::map<std::string, int64_t>* counters)
        : sink_(sink), counters_(counters) {}
    /// MWSJ_DETERMINISTIC: reducer output order is part of the
    /// byte-identity contract (see Emitter::Emit).
    MWSJ_DETERMINISTIC void Emit(Out record) {
      // mwsj-check: allow(alloc-free-reach): the output sink is the
      // engine's budgeted buffer; growth is the job's charge, not the
      // reduce kernel's.
      sink_->push_back(std::move(record));
    }

    /// Adds to a user counter, attempt-locally (see Emitter).
    void IncrementCounter(const std::string& name, int64_t delta) {
      (*counters_)[name] += delta;
    }

   private:
    std::vector<Out>* sink_;
    std::map<std::string, int64_t>* counters_;
  };

  using MapFn = std::function<void(const In&, Emitter&)>;
  /// One call per key group, in key order; values arrive in arrival
  /// (chunk-major emit) order. The span points directly into the reducer's
  /// sorted value array — it is valid only for the duration of the call,
  /// and the reduce function must not retain it.
  using ReduceFn = std::function<void(const K&, std::span<const V>, OutEmitter&)>;

  MapReduceJob(std::string name, int num_reducers)
      : name_(std::move(name)), num_reducers_(num_reducers) {}

  MapReduceJob& set_map(MapFn fn) {
    map_ = std::move(fn);
    return *this;
  }
  MapReduceJob& set_reduce(ReduceFn fn) {
    reduce_ = std::move(fn);
    return *this;
  }
  /// Defaults to `std::hash<K> % num_reducers`. The spatial algorithms use
  /// the identity partitioner (key = cell id = reducer id).
  MapReduceJob& set_partition(PartitionFn fn) {
    partition_ = std::move(fn);
    return *this;
  }
  /// Byte size of one intermediate value, for communication accounting.
  /// Defaults to sizeof(V) + sizeof(K).
  MapReduceJob& set_value_size(SizeFn fn) {
    value_size_ = std::move(fn);
    return *this;
  }
  /// Byte size of one input / output record for DFS accounting.
  MapReduceJob& set_record_bytes(int64_t in_bytes, int64_t out_bytes) {
    input_record_bytes_ = in_bytes;
    output_record_bytes_ = out_bytes;
    return *this;
  }

  /// Adds to a user counter visible in the resulting JobStats. Thread-safe,
  /// but NOT attempt-scoped: a map/reduce body calling this directly is
  /// double-counted when its attempt is re-executed under a fault plan.
  /// Task bodies must use Emitter/OutEmitter::IncrementCounter instead;
  /// this method is for driver-side accounting outside task attempts.
  void IncrementCounter(const std::string& name, int64_t delta)
      EXCLUDES(counter_mu_) {
    MutexLock lock(&counter_mu_);
    user_counters_[name] += delta;
  }

  /// Executes the job over `input`, appending reducer output to `*output`.
  /// `ctx.pool` may be null for synchronous single-threaded execution;
  /// `ctx.tracer` (optional) records the job span, the map/shuffle/reduce
  /// phase spans, and one task span per map chunk / shuffle merge /
  /// reduce task. When `ctx.job_id >= 0` (scheduler-submitted runs) every
  /// span carries a "job" arg, JobStats records the id, and DFS part files
  /// are staged under a per-job `job-<id>/` prefix so concurrent jobs with
  /// the same job name never collide.
  ///
  /// MWSJ_BLOCKING_OK: the driver is the one sanctioned blocking scope —
  /// it forks/join task batches, simulates straggler delays, and commits
  /// DFS stages. blocking-reach traversals stop here instead of flagging
  /// the orchestration beneath it.
  MWSJ_BLOCKING_OK JobStats Run(std::span<const In> input,
                                std::vector<Out>* output,
                                const ExecutionContext& ctx =
                                    ExecutionContext());

 private:
  /// Folds a committed attempt's counter deltas into the job counters.
  void MergeCounters(const std::map<std::string, int64_t>& deltas)
      EXCLUDES(counter_mu_) {
    if (deltas.empty()) return;
    MutexLock lock(&counter_mu_);
    for (const auto& [name, delta] : deltas) user_counters_[name] += delta;
  }

  std::string name_;
  int num_reducers_;
  MapFn map_;
  ReduceFn reduce_;
  PartitionFn partition_;
  SizeFn value_size_;
  int64_t input_record_bytes_ = static_cast<int64_t>(sizeof(In));
  int64_t output_record_bytes_ = static_cast<int64_t>(sizeof(Out));

  Mutex counter_mu_;
  std::map<std::string, int64_t> user_counters_ GUARDED_BY(counter_mu_);
};

template <typename In, typename K, typename V, typename Out>
JobStats MapReduceJob<In, K, V, Out>::Run(std::span<const In> input,
                                          std::vector<Out>* output,
                                          const ExecutionContext& ctx) {
  ThreadPool* const pool = ctx.pool;
  Tracer* const tracer = ctx.tracer;
  const int64_t job_id = ctx.job_id;
  // Tags a span with the scheduler-assigned job id, so interleaved task
  // spans from concurrent jobs on one pool stay attributable. Standalone
  // runs (job_id < 0) keep their trace output byte-identical to before.
  auto tag_job = [job_id](TraceSpan& span) {
    if (job_id >= 0) span.AddArg("job", job_id);
  };
  TraceSpan job_span(tracer, name_, "job");
  tag_job(job_span);
  Stopwatch job_watch;
  JobStats stats;
  stats.job_name = name_;
  stats.job_id = job_id;
  stats.num_reducers = num_reducers_;
  stats.map_input_records = static_cast<int64_t>(input.size());
  stats.map_input_bytes = stats.map_input_records * input_record_bytes_;

  // A reused job object starts each run with fresh user counters.
  {
    MutexLock lock(&counter_mu_);
    user_counters_.clear();
  }

  PartitionFn partition = partition_;
  if (!partition) {
    partition = [this](const K& k) {
      return static_cast<int>(std::hash<K>{}(k) % num_reducers_);
    };
  }
  SizeFn value_size = value_size_;
  if (!value_size) {
    value_size = [](const V&) {
      return static_cast<int64_t>(sizeof(V) + sizeof(K));
    };
  }

  // ---- Fault-injection setup. An absent or empty plan collapses to a
  // null pointer so the fault-free hot path costs one branch per task
  // attempt and never touches the retry machinery.
  const FaultPlan* faults = ctx.faults;
  if (faults != nullptr && faults->empty()) faults = nullptr;
  static const RetryPolicy kDefaultRetry;
  const RetryPolicy& retry = ctx.retry != nullptr ? *ctx.retry : kDefaultRetry;
  // Charges (and serves) the backoff delay before retrying a failed
  // attempt. Tests inject a virtual clock via RetryPolicy::sleep.
  auto charge_backoff = [&retry](int attempt, PhaseFaultStats* fs) {
    const double s = BackoffSeconds(retry, attempt);
    fs->backoff_seconds += s;
    if (retry.sleep) {
      retry.sleep(s);
    } else if (s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
  };
  // A task exhausting its retry budget fails the whole job, matching
  // Hadoop's mapred.*.max.attempts behavior; the engine has no partial-
  // output mode, so fail fast like the partition-range check above.
  auto retries_exhausted = [this, &retry, job_id](FaultPhase phase,
                                                  size_t task) {
    const std::string job_suffix =
        job_id >= 0 ? " (job #" + std::to_string(job_id) + ")" : "";
    std::fprintf(stderr,
                 "MapReduceJob '%s': %s task %zu failed %d attempts, "
                 "aborting job%s\n",
                 name_.c_str(), FaultPhaseName(phase), task,
                 retry.max_attempts, job_suffix.c_str());
    std::abort();
  };

  // ---- Out-of-core shuffle setup (DESIGN.md §2.13). A positive budget
  // puts the run in spill mode: every mapper chunk key-sorts its buckets
  // after the counting sort, chunks whose intermediate bytes exceed their
  // budget share flush all buckets as sorted runs, and each reducer k-way
  // merges its bucket column lazily at reduce time. With no budget
  // (default) the run takes the original all-in-memory path, untouched.
  // Spill runs live in an engine-internal DFS, not ctx.dfs: the user's DFS
  // accounts the algorithm's I/O (the paper's communication cost), while
  // spill traffic is an engine implementation detail reported via
  // SpillStats.
  const int64_t shuffle_budget = spill::ResolveShuffleBudget(ctx.options);
  const bool budget_mode = shuffle_budget > 0;
  stats.spill.budget_bytes = shuffle_budget;
  Dfs spill_dfs;
  // Types that can neither be columnar-encoded nor copied into a raw run
  // stay in memory even over budget (best effort — the engine never
  // breaks a job to enforce the budget).
  constexpr bool kCanSpill =
      spill::kEncodable<K, V> || (std::is_copy_constructible_v<K> &&
                                  std::is_copy_constructible_v<V>);

  // ---- Map phase. Input is split into fixed chunks; each chunk partitions
  // its pairs at emit time and finishes its task with a stable local
  // counting sort into a reducer-major shard (the chunk's row of the
  // num_chunks × num_reducers bucket matrix, stored compactly as one
  // vector plus offsets — Hadoop's mapper-side partition/sort/spill). The
  // shuffle below is then a contention-free concatenation, and the overall
  // pair order (chunk-major, emit order within a chunk) is independent of
  // thread scheduling.
  const size_t num_reducers = static_cast<size_t>(num_reducers_);
  const size_t chunk_size =
      std::max<size_t>(1, (input.size() + 63) / 64);
  const size_t num_chunks =
      input.empty() ? 0 : (input.size() + chunk_size - 1) / chunk_size;
  struct MapShard {
    std::vector<std::pair<K, V>> pairs;  // Reducer-major, emit-order stable.
    std::vector<size_t> offsets;         // Bucket r = [offsets[r], offsets[r+1]).
    int64_t records = 0;                 // pairs.size() at commit (pairs may spill).
    int64_t bytes = 0;
    double seconds = 0;
    PhaseFaultStats faults;  // This task's attempt/retry accounting.
    // Budget mode only:
    std::vector<int64_t> bucket_bytes;  // Per-reducer intermediate bytes.
    bool spilled = false;               // Buckets live as spill runs, not pairs.
    int64_t stored_bytes = 0;           // On-disk size of this chunk's runs.
    SpillStats spill;                   // This task's spill accounting.
  };
  std::vector<MapShard> shards(num_chunks);
  const int64_t chunk_budget =
      budget_mode ? spill::ChunkBudget(shuffle_budget, num_chunks) : 0;

  // Budget mode: stable key sort of one bucket, preserving emit order
  // within equal keys — the bucket becomes a sorted run whether it stays
  // in memory or spills, so the reduce-side merge sees only sorted
  // sources.
  auto sort_bucket = [](std::vector<std::pair<K, V>>& pairs, size_t lo,
                        size_t hi) {
    const size_t m = hi - lo;
    if (m < 2) return;
    if constexpr (std::is_integral_v<K> && sizeof(K) <= 8) {
      std::vector<K> keys(m);
      std::vector<uint32_t> idx(m);
      for (size_t i = 0; i < m; ++i) {
        keys[i] = pairs[lo + i].first;
        idx[i] = static_cast<uint32_t>(i);
      }
      simd::StableSortIndexByKey(keys, &idx);
      std::vector<std::pair<K, V>> tmp;
      tmp.reserve(m);
      for (size_t i = 0; i < m; ++i) {
        tmp.push_back(std::move(pairs[lo + idx[i]]));
      }
      std::move(tmp.begin(), tmp.end(), pairs.begin() + lo);
    } else {
      std::stable_sort(
          pairs.begin() + static_cast<ptrdiff_t>(lo),
          pairs.begin() + static_cast<ptrdiff_t>(hi),
          [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
            return a.first < b.first;
          });
    }
  };
  auto spill_run_name = [](size_t c, size_t r) {
    return "spill/chunk-" + std::to_string(c) + "/r-" + std::to_string(r);
  };
  // Budget mode: after a chunk's committing map attempt, sort its buckets
  // and — if the chunk exceeds its budget share — flush them all as
  // sorted runs through an attempt-staged, fault-injectable write
  // (FaultPhase::kSpill, task id = chunk index). Runs are columnar-
  // compressed when (K, V) supports it, raw sorted pair vectors otherwise;
  // either way flushing is non-destructive until the stage commits, so a
  // failed flush attempt retries from intact buckets.
  auto sort_and_maybe_spill = [&](size_t c) {
    MapShard& shard = shards[c];
    if (shard.pairs.empty()) return;
    Stopwatch spill_watch;
    shard.bucket_bytes.assign(num_reducers, 0);
    for (size_t r = 0; r < num_reducers; ++r) {
      for (size_t i = shard.offsets[r]; i < shard.offsets[r + 1]; ++i) {
        shard.bucket_bytes[r] += value_size(shard.pairs[i].second);
      }
      sort_bucket(shard.pairs, shard.offsets[r], shard.offsets[r + 1]);
    }
    if (shard.bytes > chunk_budget && kCanSpill) {
      // Stages runs for the first `bucket_limit` reducers (a flaky flush
      // dies midway through its buckets). Reads the buckets, never moves
      // them.
      auto stage_raw_run = [&](DfsStage& stage, size_t r, size_t lo,
                               size_t hi) {
        if constexpr (std::is_copy_constructible_v<K> &&
                      std::is_copy_constructible_v<V>) {
          auto run = std::make_shared<std::vector<std::pair<K, V>>>(
              shard.pairs.begin() + static_cast<ptrdiff_t>(lo),
              shard.pairs.begin() + static_cast<ptrdiff_t>(hi));
          (void)stage.Write(
              spill_run_name(c, r),
              std::shared_ptr<const std::vector<std::pair<K, V>>>(
                  std::move(run)),
              1, shard.bucket_bytes[r]);
        }
      };
      // Column staging shared by every bucket of every flush attempt below
      // (including flaky-I/O retries and speculative duplicate flushes):
      // grows to the largest bucket once instead of reallocating a
      // bucket-sized vector per EncodeRun call.
      std::vector<uint64_t> encode_scratch;
      auto stage_runs = [&](DfsStage& stage, size_t bucket_limit) {
        int64_t runs = 0;
        for (size_t r = 0; r < bucket_limit; ++r) {
          const size_t lo = shard.offsets[r];
          const size_t hi = shard.offsets[r + 1];
          if (hi == lo) continue;
          if constexpr (spill::kEncodable<K, V>) {
            auto bytes = std::make_shared<std::vector<uint8_t>>();
            spill::EncodeRun(shard.pairs.data() + lo, hi - lo,
                             &encode_scratch, bytes.get());
            const int64_t encoded = static_cast<int64_t>(bytes->size());
            // A tiny run can encode *larger* than its raw bytes (frame and
            // block headers dominate a handful of rows); store whichever
            // representation is smaller. The merge probes the stored type.
            bool use_encoded = true;
            if constexpr (std::is_copy_constructible_v<K> &&
                          std::is_copy_constructible_v<V>) {
              use_encoded = encoded <= shard.bucket_bytes[r];
            }
            if (use_encoded) {
              (void)stage.Write(spill_run_name(c, r),
                                std::shared_ptr<const std::vector<uint8_t>>(
                                    std::move(bytes)),
                                1, encoded);
            } else {
              stage_raw_run(stage, r, lo, hi);
            }
          } else {
            stage_raw_run(stage, r, lo, hi);
          }
          ++runs;
        }
        return runs;
      };
      for (int attempt = 0;; ++attempt) {
        const FaultKind fault =
            faults == nullptr ? FaultKind::kNone
                              : faults->At(FaultPhase::kSpill,
                                           static_cast<int64_t>(c), attempt);
        if (fault == FaultKind::kCrash || fault == FaultKind::kFlakyIo) {
          TraceSpan flush_span(tracer, "spill_flush", "task");
          tag_job(flush_span);
          flush_span.AddArg("chunk", static_cast<int64_t>(c));
          flush_span.AddArg("attempt", static_cast<int64_t>(attempt));
          flush_span.AddArg("failed", int64_t{1});
          if (fault == FaultKind::kFlakyIo) {
            // Flaky flush: half the buckets staged, then the attempt dies;
            // the stage's destructor discards them, so the spill DFS never
            // sees a partial flush.
            DfsStage stage(&spill_dfs);
            (void)stage_runs(stage, num_reducers / 2);
            shard.spill.wasted_flush_bytes += stage.staged_bytes();
          }
          if (attempt + 1 >= retry.max_attempts) {
            retries_exhausted(FaultPhase::kSpill, c);
          }
          ++shard.spill.flush_retries;
          charge_backoff(attempt, &shard.faults);
          continue;
        }
        TraceSpan flush_span(tracer, "spill_flush", "task");
        tag_job(flush_span);
        flush_span.AddArg("chunk", static_cast<int64_t>(c));
        DfsStage stage(&spill_dfs);
        const int64_t runs = stage_runs(stage, num_reducers);
        shard.stored_bytes = stage.staged_bytes();
        stage.Commit();
        shard.spilled = true;
        shard.spill.spilled_chunks = 1;
        shard.spill.spilled_runs = runs;
        shard.spill.spilled_raw_bytes = shard.bytes;
        shard.spill.spilled_stored_bytes = shard.stored_bytes;
        flush_span.AddArg("runs", runs);
        flush_span.AddArg("stored_bytes", shard.stored_bytes);
        if (fault == FaultKind::kSlow) {
          // Straggler flush: the speculative duplicate stages an identical
          // set of runs and is discarded (buckets are still intact — the
          // pairs are released only below).
          DfsStage spec(&spill_dfs);
          (void)stage_runs(spec, num_reducers);
          shard.spill.wasted_flush_bytes += spec.staged_bytes();
        }
        break;
      }
      std::vector<std::pair<K, V>>().swap(shard.pairs);  // Runs own the data now.
    }
    shard.seconds += spill_watch.ElapsedSeconds();
  };

  Stopwatch phase_watch;
  auto run_chunk = [&](size_t c) {
    MapShard& shard = shards[c];
    shard.faults.tasks = 1;
    const size_t lo = c * chunk_size;
    const size_t hi = std::min(input.size(), lo + chunk_size);
    // One attempt over the first `limit` records of the chunk (a flaky
    // attempt dies midway; committing attempts process everything). The
    // attempt's emits and counter deltas live entirely in the caller's
    // buffers, so discarding an attempt is dropping its buffers.
    auto run_attempt = [&](size_t limit, std::vector<std::pair<K, V>>* raw,
                           std::vector<uint32_t>* route,
                           std::map<std::string, int64_t>* counters) {
      // Most maps emit ≥1 pair per record; pre-sizing halves growth moves.
      raw->reserve(hi - lo);
      route->reserve(hi - lo);
      Emitter emitter(raw, route, &partition, &value_size, &name_,
                      num_reducers_, counters, job_id);
      for (size_t i = lo; i < lo + limit; ++i) map_(input[i], emitter);
      return emitter.bytes();
    };
    for (int attempt = 0;; ++attempt) {
      const FaultKind fault =
          faults == nullptr ? FaultKind::kNone
                            : faults->At(FaultPhase::kMap,
                                         static_cast<int64_t>(c), attempt);
      ++shard.faults.attempts;
      if (fault == FaultKind::kCrash || fault == FaultKind::kFlakyIo) {
        TraceSpan attempt_span(tracer, "map_attempt", "task");
        tag_job(attempt_span);
        attempt_span.AddArg("chunk", static_cast<int64_t>(c));
        attempt_span.AddArg("attempt", static_cast<int64_t>(attempt));
        attempt_span.AddArg("failed", int64_t{1});
        Stopwatch attempt_watch;
        if (fault == FaultKind::kFlakyIo) {
          // Flaky I/O: half the input processed, all of it discarded.
          std::vector<std::pair<K, V>> raw;
          std::vector<uint32_t> route;
          std::map<std::string, int64_t> counters;
          shard.faults.wasted_bytes +=
              run_attempt((hi - lo) / 2, &raw, &route, &counters);
          shard.faults.wasted_records += static_cast<int64_t>(raw.size());
        }
        shard.faults.wasted_seconds += attempt_watch.ElapsedSeconds();
        attempt_span.End();
        if (attempt + 1 >= retry.max_attempts) {
          retries_exhausted(FaultPhase::kMap, c);
        }
        ++shard.faults.retries;
        charge_backoff(attempt, &shard.faults);
        continue;
      }
      // Committing attempt (fault-free, or a straggler that still wins).
      TraceSpan chunk_span(tracer, "map_chunk", "task");
      tag_job(chunk_span);
      Stopwatch chunk_watch;
      std::vector<std::pair<K, V>> raw;
      std::vector<uint32_t> route;
      std::map<std::string, int64_t> counters;
      shard.bytes = run_attempt(hi - lo, &raw, &route, &counters);
      chunk_span.AddArg("chunk", static_cast<int64_t>(c));
      chunk_span.AddArg("records", static_cast<int64_t>(raw.size()));
      if (faults != nullptr) {
        chunk_span.AddArg("attempt", static_cast<int64_t>(attempt));
      }
      // Stable counting sort by reducer, preserving emit order per bucket.
      shard.offsets.assign(num_reducers + 1, 0);
      for (const uint32_t r : route) ++shard.offsets[r + 1];
      for (size_t r = 0; r < num_reducers; ++r) {
        shard.offsets[r + 1] += shard.offsets[r];
      }
      std::vector<size_t> cursor(shard.offsets.begin(),
                                 shard.offsets.end() - 1);
      shard.pairs.resize(raw.size());
      for (size_t i = 0; i < raw.size(); ++i) {
        shard.pairs[cursor[route[i]]++] = std::move(raw[i]);
      }
      shard.records = static_cast<int64_t>(shard.pairs.size());
      shard.seconds = chunk_watch.ElapsedSeconds();
      MergeCounters(counters);
      if (fault == FaultKind::kSlow) {
        // Straggler: the attempt exceeded the (virtual) straggler timeout,
        // so a speculative duplicate ran alongside it. The duplicate's
        // identical output is discarded and charged as wasted work.
        TraceSpan spec_span(tracer, "map_attempt", "task");
        tag_job(spec_span);
        spec_span.AddArg("chunk", static_cast<int64_t>(c));
        spec_span.AddArg("attempt", static_cast<int64_t>(attempt + 1));
        spec_span.AddArg("failed", int64_t{1});
        spec_span.AddArg("speculative", int64_t{1});
        Stopwatch spec_watch;
        std::vector<std::pair<K, V>> spec_raw;
        std::vector<uint32_t> spec_route;
        std::map<std::string, int64_t> spec_counters;
        shard.faults.wasted_bytes +=
            run_attempt(hi - lo, &spec_raw, &spec_route, &spec_counters);
        shard.faults.wasted_records += static_cast<int64_t>(spec_raw.size());
        shard.faults.wasted_seconds += spec_watch.ElapsedSeconds();
        ++shard.faults.attempts;
        ++shard.faults.speculative;
      }
      break;
    }
    if (budget_mode) sort_and_maybe_spill(c);
  };
  {
    TraceSpan map_phase(tracer, "map", "phase");
    tag_job(map_phase);
    map_phase.AddArg("chunks", static_cast<int64_t>(num_chunks));
    if (pool != nullptr && num_chunks > 1) {
      ParallelFor(pool, num_chunks, run_chunk);
    } else {
      for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
    }
  }
  stats.per_chunk_map_seconds.resize(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    stats.intermediate_records += shards[c].records;
    stats.intermediate_bytes += shards[c].bytes;
    stats.per_chunk_map_seconds[c] = shards[c].seconds;
    stats.map_faults.Add(shards[c].faults);
    stats.spill.Add(shards[c].spill);
  }
  if (budget_mode) {
    // Peak shuffle residency: intermediate bytes still held in memory
    // after map-side spilling (spilled chunks' bytes live on disk as
    // runs, counted by spilled_stored_bytes instead).
    int64_t resident = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      if (!shards[c].spilled) resident += shards[c].bytes;
    }
    stats.spill.peak_shuffle_bytes = resident;
    // Peak inbox: the largest single reducer's merged inbox — in budget
    // mode that is the unit of resident reduce-side memory, since inboxes
    // are built lazily and released eagerly.
    for (size_t r = 0; r < num_reducers; ++r) {
      int64_t inbox_bytes = 0;
      for (size_t c = 0; c < num_chunks; ++c) {
        if (!shards[c].bucket_bytes.empty()) {
          inbox_bytes += shards[c].bucket_bytes[r];
        }
      }
      stats.spill.peak_inbox_bytes =
          std::max(stats.spill.peak_inbox_bytes, inbox_bytes);
    }
  }
  stats.map_seconds = phase_watch.ElapsedSeconds();

  // ---- Shuffle: each reducer's inbox is the concatenation of its bucket
  // column in chunk order — byte-for-byte the order the former serial
  // routing loop produced — merged in parallel across reducers (distinct
  // reducers move disjoint shard slices, so no synchronization is needed).
  // The inbox is structure-of-arrays: the reduce group-by sorts a compact
  // index permutation over keys[] and hands reduce_ spans directly into a
  // value array, never touching key-value pairs again.
  phase_watch.Reset();
  struct ReducerInbox {
    std::vector<K> keys;
    std::vector<V> values;  // Index-aligned with keys.
  };
  std::vector<ReducerInbox> inbox(num_reducers);
  auto merge_reducer = [&](size_t r) {
    TraceSpan merge_span(tracer, "shuffle_merge", "task");
    tag_job(merge_span);
    size_t total = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      total += shards[c].offsets[r + 1] - shards[c].offsets[r];
    }
    auto& in = inbox[r];
    in.keys.reserve(total);
    in.values.reserve(total);
    for (size_t c = 0; c < num_chunks; ++c) {
      MapShard& shard = shards[c];
      for (size_t i = shard.offsets[r]; i < shard.offsets[r + 1]; ++i) {
        in.keys.push_back(std::move(shard.pairs[i].first));
        in.values.push_back(std::move(shard.pairs[i].second));
      }
    }
    merge_span.AddArg("reducer", static_cast<int64_t>(r));
    merge_span.AddArg("records", static_cast<int64_t>(total));
  };
  stats.per_reducer_records.resize(num_reducers);
  if (!budget_mode) {
    {
      TraceSpan shuffle_phase(tracer, "shuffle", "phase");
      tag_job(shuffle_phase);
      if (pool != nullptr && num_reducers > 1) {
        ParallelFor(pool, num_reducers, merge_reducer);
      } else {
        for (size_t r = 0; r < num_reducers; ++r) merge_reducer(r);
      }
    }
    shards.clear();
    shards.shrink_to_fit();
    for (size_t r = 0; r < num_reducers; ++r) {
      stats.per_reducer_records[r] = static_cast<int64_t>(inbox[r].keys.size());
    }
  } else {
    // Budget mode defers the merge to reduce time: each reducer k-way
    // merges its bucket column (memory buckets + spill runs) just before
    // reducing, so at most one inbox per worker is resident at once. The
    // shuffle phase itself only derives per-reducer record counts from
    // the bucket offsets; shards stay alive through the reduce phase.
    TraceSpan shuffle_phase(tracer, "shuffle", "phase");
    tag_job(shuffle_phase);
    shuffle_phase.AddArg("deferred", int64_t{1});
    for (size_t r = 0; r < num_reducers; ++r) {
      int64_t total = 0;
      for (size_t c = 0; c < num_chunks; ++c) {
        total += static_cast<int64_t>(shards[c].offsets[r + 1] -
                                      shards[c].offsets[r]);
      }
      stats.per_reducer_records[r] = total;
    }
  }
  stats.shuffle_seconds = phase_watch.ElapsedSeconds();

  // ---- Reduce phase: group by key within each reducer, in key order.
  // Scheduler-submitted jobs stage DFS part files under a per-job prefix:
  // two concurrent submissions of the same algorithm share the job *name*,
  // and without the prefix their committers would race on one path.
  const std::string dfs_part_prefix =
      job_id >= 0 ? "job-" + std::to_string(job_id) + "/" + name_ : name_;
  phase_watch.Reset();
  std::vector<std::vector<Out>> reducer_out(static_cast<size_t>(num_reducers_));
  stats.per_reducer_seconds.assign(static_cast<size_t>(num_reducers_), 0.0);
  std::vector<PhaseFaultStats> reduce_task_faults(
      static_cast<size_t>(num_reducers_));

  // Budget mode: rebuild reducer r's inbox by k-way merging its bucket
  // column — in-memory sorted buckets are moved out of their shards,
  // spilled buckets stream back through run cursors — with key ties
  // broken by chunk index. That order is exactly the stable-sort-by-key
  // permutation of the chunk-major arrival order the in-memory path
  // feeds its StableSortIndexByKey, so reduce output is byte-identical;
  // and since the merged keys arrive sorted, the reduce fast path below
  // needs no further sort.
  std::vector<int64_t> merge_widths(budget_mode ? num_reducers : 0, 0);
  auto build_inbox = [&](size_t r) {
    struct MergeSource {
      std::pair<K, V>* mem = nullptr;  // In-memory sorted bucket slice.
      size_t mem_pos = 0;
      size_t mem_end = 0;
      spill::EncodedRunCursor<K, V> enc;  // Columnar-compressed run.
      bool use_enc = false;
      K enc_key{};  // Decoded head key of `enc`.
      std::shared_ptr<const std::vector<uint8_t>> enc_bytes;
      std::shared_ptr<const std::vector<std::pair<K, V>>> raw;  // Raw run.
      size_t raw_pos = 0;
    };
    ReducerInbox& in = inbox[r];
    std::vector<MergeSource> sources;
    std::vector<std::string> run_names;
    size_t total = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      MapShard& shard = shards[c];
      const size_t lo = shard.offsets[r];
      const size_t hi = shard.offsets[r + 1];
      if (hi == lo) continue;
      total += hi - lo;
      MergeSource src;
      if (!shard.spilled) {
        src.mem = shard.pairs.data();
        src.mem_pos = lo;
        src.mem_end = hi;
      } else {
        run_names.push_back(spill_run_name(c, r));
        bool loaded = false;
        if constexpr (spill::kEncodable<K, V>) {
          // Probe the columnar representation first; a run the flush chose
          // to store raw (encoding expanded it) fails the type check and
          // falls through.
          auto data = spill_dfs.Read<uint8_t>(run_names.back());
          if (data.ok()) {
            src.enc_bytes = data.value();
            src.use_enc = true;
            const bool ok =
                src.enc.Init(src.enc_bytes->data(), src.enc_bytes->size());
            (void)ok;  // Engine-encoded frames always decode.
            if (!src.enc.empty()) src.enc_key = src.enc.key();
            loaded = true;
          }
        }
        if constexpr (std::is_copy_constructible_v<K> &&
                      std::is_copy_constructible_v<V>) {
          if (!loaded) {
            auto data = spill_dfs.Read<std::pair<K, V>>(run_names.back());
            src.raw = data.value();
          }
        }
      }
      sources.push_back(std::move(src));
    }
    merge_widths[r] = static_cast<int64_t>(sources.size());
    auto src_empty = [](const MergeSource& s) {
      if (s.mem != nullptr) return s.mem_pos >= s.mem_end;
      if (s.use_enc) return s.enc.empty();
      return s.raw == nullptr || s.raw_pos >= s.raw->size();
    };
    auto src_key = [](const MergeSource& s) -> const K& {
      if (s.mem != nullptr) return s.mem[s.mem_pos].first;
      if (s.use_enc) return s.enc_key;
      return (*s.raw)[s.raw_pos].first;
    };
    auto beats = [&](size_t a, size_t b) {
      const MergeSource& sa = sources[a];
      const MergeSource& sb = sources[b];
      if (src_empty(sa)) return false;
      if (src_empty(sb)) return true;
      const K& ka = src_key(sa);
      const K& kb = src_key(sb);
      if (ka < kb) return true;
      if (kb < ka) return false;
      return a < b;  // Chunk-order tie-break = merge stability.
    };
    in.keys.reserve(total);
    in.values.reserve(total);
    if (total > 0) {
      spill::LoserTree<decltype(beats)> tree(sources.size(), beats);
      for (size_t produced = 0; produced < total; ++produced) {
        const size_t w = tree.winner();
        MergeSource& s = sources[w];
        if (s.mem != nullptr) {
          in.keys.push_back(std::move(s.mem[s.mem_pos].first));
          in.values.push_back(std::move(s.mem[s.mem_pos].second));
          ++s.mem_pos;
        } else if (s.use_enc) {
          if constexpr (spill::kEncodable<K, V>) {
            K k;
            V v;
            s.enc.Pop(&k, &v);
            in.keys.push_back(std::move(k));
            in.values.push_back(std::move(v));
            if (!s.enc.empty()) s.enc_key = s.enc.key();
          }
        } else {
          if constexpr (std::is_copy_constructible_v<K> &&
                        std::is_copy_constructible_v<V>) {
            in.keys.push_back((*s.raw)[s.raw_pos].first);
            in.values.push_back((*s.raw)[s.raw_pos].second);
            ++s.raw_pos;
          }
        }
        tree.Replay(w);
      }
    }
    // The merged inbox owns the records now; drop this reducer's spill
    // runs so out-of-core memory drains as reducers complete.
    sources.clear();
    for (const std::string& name : run_names) spill_dfs.Remove(name);
  };

  auto run_reducer = [&](size_t r) {
    PhaseFaultStats& rf = reduce_task_faults[r];
    rf.tasks = 1;
    if (budget_mode) build_inbox(r);
    ReducerInbox& in = inbox[r];
    const size_t n = in.keys.size();
    // Groups [i, j) of a key-sorted key array, handing reduce_ a span
    // directly into the matching value array — no per-group scratch copy.
    // The spans are only valid during the reduce_ call. `limit` stops a
    // flaky attempt roughly midway: the group containing record `limit`
    // is the last one processed.
    auto reduce_runs = [&](const K* keys, const V* values, size_t limit,
                           OutEmitter& out) {
      size_t i = 0;
      while (i < limit) {
        const K& key = keys[i];
        size_t j = i + 1;
        while (j < n && !(key < keys[j]) && !(keys[j] < key)) ++j;
        reduce_(key, std::span<const V>(values + i, j - i), out);
        i = j;
      }
    };
    // A doomed attempt (flaky failure or speculative duplicate) whose
    // output is discarded. It must leave the inbox intact for the real
    // attempt, so it reduces over the inbox in place when arrival order
    // is already key-sorted and over a *copied* sorted view otherwise;
    // move-only key/value types can't be copied, so the unsorted case
    // degrades to a crash-style failure (nothing executed). Returns
    // whether the attempt actually ran. All output lands in scratch
    // buffers and a DfsStage that is aborted on scope exit.
    auto run_discarded_attempt = [&](size_t limit) {
      std::vector<Out> scratch;
      std::map<std::string, int64_t> counters;
      OutEmitter out(&scratch, &counters);
      if (std::is_sorted(in.keys.begin(), in.keys.end())) {
        reduce_runs(in.keys.data(), in.values.data(), limit, out);
      } else if constexpr (std::is_copy_constructible_v<K> &&
                           std::is_copy_constructible_v<V>) {
        std::vector<uint32_t> idx(n);
        for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
        simd::StableSortIndexByKey(in.keys, &idx);
        std::vector<K> sorted_keys;
        std::vector<V> sorted_values;
        sorted_keys.reserve(n);
        sorted_values.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          sorted_keys.push_back(in.keys[idx[i]]);
          sorted_values.push_back(in.values[idx[i]]);
        }
        reduce_runs(sorted_keys.data(), sorted_values.data(), limit, out);
      } else {
        return false;
      }
      if (ctx.dfs != nullptr) {
        if constexpr (std::is_copy_constructible_v<Out>) {
          DfsStage stage(ctx.dfs);
          auto part = std::make_shared<const std::vector<Out>>(scratch);
          (void)stage.Write(dfs_part_prefix + "/part-" + std::to_string(r),
                            part, output_record_bytes_);
          // No Commit: the stage's destructor discards the part file, so
          // the Dfs never sees this attempt's bytes.
        }
      }
      rf.wasted_records += static_cast<int64_t>(scratch.size());
      rf.wasted_bytes +=
          static_cast<int64_t>(scratch.size()) * output_record_bytes_;
      return true;
    };
    for (int attempt = 0;; ++attempt) {
      const FaultKind fault =
          faults == nullptr ? FaultKind::kNone
                            : faults->At(FaultPhase::kReduce,
                                         static_cast<int64_t>(r), attempt);
      ++rf.attempts;
      if (fault == FaultKind::kCrash || fault == FaultKind::kFlakyIo) {
        TraceSpan attempt_span(tracer, "reduce_attempt", "task");
        tag_job(attempt_span);
        attempt_span.AddArg("reducer", static_cast<int64_t>(r));
        attempt_span.AddArg("attempt", static_cast<int64_t>(attempt));
        attempt_span.AddArg("failed", int64_t{1});
        Stopwatch attempt_watch;
        if (fault == FaultKind::kFlakyIo) {
          (void)run_discarded_attempt(n / 2);
        }
        rf.wasted_seconds += attempt_watch.ElapsedSeconds();
        attempt_span.End();
        if (attempt + 1 >= retry.max_attempts) {
          retries_exhausted(FaultPhase::kReduce, r);
        }
        ++rf.retries;
        charge_backoff(attempt, &rf);
        continue;
      }
      if (fault == FaultKind::kSlow) {
        // Straggler: run the speculative duplicate first (non-destructive,
        // discarded), then let the original attempt commit below.
        TraceSpan spec_span(tracer, "reduce_attempt", "task");
        tag_job(spec_span);
        spec_span.AddArg("reducer", static_cast<int64_t>(r));
        spec_span.AddArg("attempt", static_cast<int64_t>(attempt + 1));
        spec_span.AddArg("failed", int64_t{1});
        spec_span.AddArg("speculative", int64_t{1});
        Stopwatch spec_watch;
        if (run_discarded_attempt(n)) {
          rf.wasted_seconds += spec_watch.ElapsedSeconds();
          ++rf.attempts;
          ++rf.speculative;
        }
      }
      // Committing attempt: may consume the inbox destructively.
      TraceSpan reduce_span(tracer, "reduce_task", "task");
      tag_job(reduce_span);
      reduce_span.AddArg("reducer", static_cast<int64_t>(r));
      reduce_span.AddArg("records", static_cast<int64_t>(n));
      if (faults != nullptr) {
        reduce_span.AddArg("attempt", static_cast<int64_t>(attempt));
      }
      Stopwatch reducer_watch;
      std::map<std::string, int64_t> counters;
      OutEmitter out_emitter(&reducer_out[r], &counters);
      if (std::is_sorted(in.keys.begin(), in.keys.end())) {
        // Fast path: arrival order is already key-sorted — always true for
        // the spatial algorithms' identity partitioner, where a reducer
        // holds exactly one key (its cell). Reduce directly over the inbox:
        // zero sorts, zero moves.
        reduce_runs(in.keys.data(), in.values.data(), n, out_emitter);
      } else {
        // Stable index sort by key keeps same-key values in arrival (chunk)
        // order, matching Hadoop's merge of mapper spills — it yields
        // exactly the permutation a stable sort of (key, value) pairs
        // would, while moving 4-byte indices instead of whole pairs. The
        // permutation is applied once (one move per value), making same-key
        // values one contiguous run.
        std::vector<uint32_t> idx(n);
        for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
        simd::StableSortIndexByKey(in.keys, &idx);
        std::vector<K> sorted_keys;
        std::vector<V> sorted_values;
        sorted_keys.reserve(n);
        sorted_values.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          sorted_keys.push_back(std::move(in.keys[idx[i]]));
          sorted_values.push_back(std::move(in.values[idx[i]]));
        }
        reduce_runs(sorted_keys.data(), sorted_values.data(), n, out_emitter);
      }
      std::vector<K>().swap(in.keys);  // Release inbox memory eagerly.
      std::vector<V>().swap(in.values);
      if (ctx.dfs != nullptr) {
        // Commit this reduce task's output as the job's part file, Hadoop
        // OutputCommitter style: staged during the attempt, published only
        // here, after the attempt has fully succeeded.
        if constexpr (std::is_copy_constructible_v<Out>) {
          DfsStage stage(ctx.dfs);
          auto part = std::make_shared<const std::vector<Out>>(reducer_out[r]);
          (void)stage.Write(dfs_part_prefix + "/part-" + std::to_string(r),
                            part, output_record_bytes_);
          stage.Commit();
        }
      }
      stats.per_reducer_seconds[r] = reducer_watch.ElapsedSeconds();
      MergeCounters(counters);
      break;
    }
  };
  {
    TraceSpan reduce_phase(tracer, "reduce", "phase");
    tag_job(reduce_phase);
    if (pool != nullptr && num_reducers_ > 1) {
      ParallelFor(pool, static_cast<size_t>(num_reducers_), run_reducer);
    } else {
      for (int r = 0; r < num_reducers_; ++r) {
        run_reducer(static_cast<size_t>(r));
      }
    }
  }
  stats.reduce_seconds = phase_watch.ElapsedSeconds();
  for (const PhaseFaultStats& rf : reduce_task_faults) {
    stats.reduce_faults.Add(rf);
  }
  for (const int64_t w : merge_widths) {
    stats.spill.merge_runs_max = std::max(stats.spill.merge_runs_max, w);
  }

  for (auto& out : reducer_out) {
    stats.reduce_output_records += static_cast<int64_t>(out.size());
    output->insert(output->end(), std::make_move_iterator(out.begin()),
                   std::make_move_iterator(out.end()));
  }
  stats.reduce_output_bytes = stats.reduce_output_records * output_record_bytes_;

  {
    MutexLock lock(&counter_mu_);
    stats.user_counters = user_counters_;
  }
  stats.wall_seconds = job_watch.ElapsedSeconds();
  job_span.AddArg("map_input_records", stats.map_input_records);
  job_span.AddArg("intermediate_records", stats.intermediate_records);
  job_span.AddArg("intermediate_bytes", stats.intermediate_bytes);
  job_span.AddArg("reduce_output_records", stats.reduce_output_records);
  if (stats.spill.active()) {
    job_span.AddArg("spilled_runs", stats.spill.spilled_runs);
    job_span.AddArg("spilled_stored_bytes", stats.spill.spilled_stored_bytes);
  }
  if (stats.AnyFaults()) {
    job_span.AddArg("retries",
                    stats.map_faults.retries + stats.reduce_faults.retries);
    job_span.AddArg("speculative", stats.map_faults.speculative +
                                       stats.reduce_faults.speculative);
    job_span.AddArg("wasted_records", stats.map_faults.wasted_records +
                                          stats.reduce_faults.wasted_records);
  }
  return stats;
}

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_ENGINE_H_
