#ifndef MWSJ_MAPREDUCE_ENGINE_H_
#define MWSJ_MAPREDUCE_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "mapreduce/counters.h"

namespace mwsj {

namespace engine_internal {

/// Best-effort rendering of a shuffle key for error messages; keys only
/// need ordering and equality, so non-printable types degrade gracefully.
template <typename K>
std::string DescribeKey(const K& key) {
  if constexpr (std::is_arithmetic_v<K>) {
    return std::to_string(key);
  } else if constexpr (std::is_convertible_v<const K&, std::string>) {
    return std::string(key);
  } else {
    return "<unprintable key>";
  }
}

}  // namespace engine_internal

/// In-process map-reduce engine.
///
/// This substrate plays the role Hadoop 0.20.2 plays in the paper (§2,
/// §7.8.1): user code supplies a map function that turns input records into
/// intermediate key-value pairs, the engine shuffles pairs to reducers by a
/// partition function, and a reduce function processes each key group. The
/// engine is deliberately faithful to the paper's cost structure rather than
/// to Hadoop's implementation details:
///
///   * every intermediate pair is counted (and sized) — that is the
///     communication cost the algorithms are designed to minimize;
///   * reducers execute as independent tasks with per-task timing, so
///     reducer skew is observable;
///   * execution is deterministic: mapper outputs are concatenated in input
///     order regardless of thread scheduling, and reducers iterate key
///     groups in key order.
///
/// Keys must be totally ordered (operator<) and equality-comparable; keys
/// and values must be movable and default-constructible (the mapper-side
/// scatter builds reducer-major shards in place). The partition and
/// value-size functions run inside mapper tasks and must be thread-safe
/// (in practice: pure functions of the key/value).
template <typename In, typename K, typename V, typename Out>
class MapReduceJob {
 public:
  using PartitionFn = std::function<int(const K&)>;
  using SizeFn = std::function<int64_t(const V&)>;

  /// Collects intermediate pairs from one map invocation, computing each
  /// pair's reducer at emit time. Each map chunk owns one emitter plus its
  /// own byte/record tallies, so mappers never contend on shared state; the
  /// tallies are summed after the map barrier.
  class Emitter {
   public:
    Emitter(std::vector<std::pair<K, V>>* pairs, std::vector<uint32_t>* route,
            const PartitionFn* partition, const SizeFn* value_size,
            const std::string* job_name, int num_reducers)
        : pairs_(pairs), route_(route), partition_(partition),
          value_size_(value_size), job_name_(job_name),
          num_reducers_(num_reducers) {}
    void Emit(K key, V value) {
      const int r = (*partition_)(key);
      // An out-of-range partition result would corrupt the counting sort
      // out of bounds; fail fast with the job and key instead.
      if (r < 0 || r >= num_reducers_) [[unlikely]] {
        std::fprintf(stderr,
                     "MapReduceJob '%s': partition function returned %d for "
                     "key %s, outside the valid reducer range [0, %d)\n",
                     job_name_->c_str(), r,
                     engine_internal::DescribeKey(key).c_str(),
                     num_reducers_);
        std::abort();
      }
      bytes_ += (*value_size_)(value);
      route_->push_back(static_cast<uint32_t>(r));
      pairs_->emplace_back(std::move(key), std::move(value));
    }

    int64_t bytes() const { return bytes_; }

   private:
    std::vector<std::pair<K, V>>* pairs_;
    std::vector<uint32_t>* route_;
    const PartitionFn* partition_;
    const SizeFn* value_size_;
    const std::string* job_name_;
    int num_reducers_;
    int64_t bytes_ = 0;
  };

  /// Collects output records from one reduce invocation.
  class OutEmitter {
   public:
    explicit OutEmitter(std::vector<Out>* sink) : sink_(sink) {}
    void Emit(Out record) { sink_->push_back(std::move(record)); }

   private:
    std::vector<Out>* sink_;
  };

  using MapFn = std::function<void(const In&, Emitter&)>;
  /// One call per key group, in key order; values arrive in arrival
  /// (chunk-major emit) order. The span points directly into the reducer's
  /// sorted value array — it is valid only for the duration of the call,
  /// and the reduce function must not retain it.
  using ReduceFn = std::function<void(const K&, std::span<const V>, OutEmitter&)>;

  MapReduceJob(std::string name, int num_reducers)
      : name_(std::move(name)), num_reducers_(num_reducers) {}

  MapReduceJob& set_map(MapFn fn) {
    map_ = std::move(fn);
    return *this;
  }
  MapReduceJob& set_reduce(ReduceFn fn) {
    reduce_ = std::move(fn);
    return *this;
  }
  /// Defaults to `std::hash<K> % num_reducers`. The spatial algorithms use
  /// the identity partitioner (key = cell id = reducer id).
  MapReduceJob& set_partition(PartitionFn fn) {
    partition_ = std::move(fn);
    return *this;
  }
  /// Byte size of one intermediate value, for communication accounting.
  /// Defaults to sizeof(V) + sizeof(K).
  MapReduceJob& set_value_size(SizeFn fn) {
    value_size_ = std::move(fn);
    return *this;
  }
  /// Byte size of one input / output record for DFS accounting.
  MapReduceJob& set_record_bytes(int64_t in_bytes, int64_t out_bytes) {
    input_record_bytes_ = in_bytes;
    output_record_bytes_ = out_bytes;
    return *this;
  }

  /// Adds to a user counter visible in the resulting JobStats. Thread-safe.
  void IncrementCounter(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(counter_mu_);
    user_counters_[name] += delta;
  }

  /// Executes the job over `input`, appending reducer output to `*output`.
  /// `ctx.pool` may be null for synchronous single-threaded execution;
  /// `ctx.tracer` (optional) records the job span, the map/shuffle/reduce
  /// phase spans, and one task span per map chunk / shuffle merge /
  /// reduce task.
  JobStats Run(std::span<const In> input, std::vector<Out>* output,
               const ExecutionContext& ctx);

  /// Deprecated shim for pre-ExecutionContext call sites; forwards to the
  /// context overload with no tracer attached.
  JobStats Run(std::span<const In> input, std::vector<Out>* output,
               ThreadPool* pool = nullptr) {
    return Run(input, output, ExecutionContext(pool));
  }

 private:
  std::string name_;
  int num_reducers_;
  MapFn map_;
  ReduceFn reduce_;
  PartitionFn partition_;
  SizeFn value_size_;
  int64_t input_record_bytes_ = static_cast<int64_t>(sizeof(In));
  int64_t output_record_bytes_ = static_cast<int64_t>(sizeof(Out));

  std::mutex counter_mu_;
  std::map<std::string, int64_t> user_counters_;
};

template <typename In, typename K, typename V, typename Out>
JobStats MapReduceJob<In, K, V, Out>::Run(std::span<const In> input,
                                          std::vector<Out>* output,
                                          const ExecutionContext& ctx) {
  ThreadPool* const pool = ctx.pool;
  Tracer* const tracer = ctx.tracer;
  TraceSpan job_span(tracer, name_, "job");
  Stopwatch job_watch;
  JobStats stats;
  stats.job_name = name_;
  stats.num_reducers = num_reducers_;
  stats.map_input_records = static_cast<int64_t>(input.size());
  stats.map_input_bytes = stats.map_input_records * input_record_bytes_;

  // A reused job object starts each run with fresh user counters.
  {
    std::lock_guard<std::mutex> lock(counter_mu_);
    user_counters_.clear();
  }

  PartitionFn partition = partition_;
  if (!partition) {
    partition = [this](const K& k) {
      return static_cast<int>(std::hash<K>{}(k) % num_reducers_);
    };
  }
  SizeFn value_size = value_size_;
  if (!value_size) {
    value_size = [](const V&) {
      return static_cast<int64_t>(sizeof(V) + sizeof(K));
    };
  }

  // ---- Map phase. Input is split into fixed chunks; each chunk partitions
  // its pairs at emit time and finishes its task with a stable local
  // counting sort into a reducer-major shard (the chunk's row of the
  // num_chunks × num_reducers bucket matrix, stored compactly as one
  // vector plus offsets — Hadoop's mapper-side partition/sort/spill). The
  // shuffle below is then a contention-free concatenation, and the overall
  // pair order (chunk-major, emit order within a chunk) is independent of
  // thread scheduling.
  const size_t num_reducers = static_cast<size_t>(num_reducers_);
  const size_t chunk_size =
      std::max<size_t>(1, (input.size() + 63) / 64);
  const size_t num_chunks =
      input.empty() ? 0 : (input.size() + chunk_size - 1) / chunk_size;
  struct MapShard {
    std::vector<std::pair<K, V>> pairs;  // Reducer-major, emit-order stable.
    std::vector<size_t> offsets;         // Bucket r = [offsets[r], offsets[r+1]).
    int64_t bytes = 0;
    double seconds = 0;
  };
  std::vector<MapShard> shards(num_chunks);

  Stopwatch phase_watch;
  auto run_chunk = [&](size_t c) {
    TraceSpan chunk_span(tracer, "map_chunk", "task");
    Stopwatch chunk_watch;
    MapShard& shard = shards[c];
    std::vector<std::pair<K, V>> raw;
    std::vector<uint32_t> route;
    const size_t lo = c * chunk_size;
    const size_t hi = std::min(input.size(), lo + chunk_size);
    // Most maps emit ≥1 pair per record; pre-sizing halves growth moves.
    raw.reserve(hi - lo);
    route.reserve(hi - lo);
    Emitter emitter(&raw, &route, &partition, &value_size, &name_,
                    num_reducers_);
    for (size_t i = lo; i < hi; ++i) map_(input[i], emitter);
    chunk_span.AddArg("chunk", static_cast<int64_t>(c));
    chunk_span.AddArg("records", static_cast<int64_t>(raw.size()));
    // Stable counting sort by reducer, preserving emit order per bucket.
    shard.offsets.assign(num_reducers + 1, 0);
    for (const uint32_t r : route) ++shard.offsets[r + 1];
    for (size_t r = 0; r < num_reducers; ++r) {
      shard.offsets[r + 1] += shard.offsets[r];
    }
    std::vector<size_t> cursor(shard.offsets.begin(), shard.offsets.end() - 1);
    shard.pairs.resize(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      shard.pairs[cursor[route[i]]++] = std::move(raw[i]);
    }
    shard.bytes = emitter.bytes();
    shard.seconds = chunk_watch.ElapsedSeconds();
  };
  {
    TraceSpan map_phase(tracer, "map", "phase");
    map_phase.AddArg("chunks", static_cast<int64_t>(num_chunks));
    if (pool != nullptr && num_chunks > 1) {
      ParallelFor(pool, num_chunks, run_chunk);
    } else {
      for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
    }
  }
  stats.per_chunk_map_seconds.resize(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    stats.intermediate_records += static_cast<int64_t>(shards[c].pairs.size());
    stats.intermediate_bytes += shards[c].bytes;
    stats.per_chunk_map_seconds[c] = shards[c].seconds;
  }
  stats.map_seconds = phase_watch.ElapsedSeconds();

  // ---- Shuffle: each reducer's inbox is the concatenation of its bucket
  // column in chunk order — byte-for-byte the order the former serial
  // routing loop produced — merged in parallel across reducers (distinct
  // reducers move disjoint shard slices, so no synchronization is needed).
  // The inbox is structure-of-arrays: the reduce group-by sorts a compact
  // index permutation over keys[] and hands reduce_ spans directly into a
  // value array, never touching key-value pairs again.
  phase_watch.Reset();
  struct ReducerInbox {
    std::vector<K> keys;
    std::vector<V> values;  // Index-aligned with keys.
  };
  std::vector<ReducerInbox> inbox(num_reducers);
  auto merge_reducer = [&](size_t r) {
    TraceSpan merge_span(tracer, "shuffle_merge", "task");
    size_t total = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      total += shards[c].offsets[r + 1] - shards[c].offsets[r];
    }
    auto& in = inbox[r];
    in.keys.reserve(total);
    in.values.reserve(total);
    for (size_t c = 0; c < num_chunks; ++c) {
      MapShard& shard = shards[c];
      for (size_t i = shard.offsets[r]; i < shard.offsets[r + 1]; ++i) {
        in.keys.push_back(std::move(shard.pairs[i].first));
        in.values.push_back(std::move(shard.pairs[i].second));
      }
    }
    merge_span.AddArg("reducer", static_cast<int64_t>(r));
    merge_span.AddArg("records", static_cast<int64_t>(total));
  };
  {
    TraceSpan shuffle_phase(tracer, "shuffle", "phase");
    if (pool != nullptr && num_reducers > 1) {
      ParallelFor(pool, num_reducers, merge_reducer);
    } else {
      for (size_t r = 0; r < num_reducers; ++r) merge_reducer(r);
    }
  }
  shards.clear();
  shards.shrink_to_fit();

  stats.per_reducer_records.resize(num_reducers);
  for (size_t r = 0; r < num_reducers; ++r) {
    stats.per_reducer_records[r] = static_cast<int64_t>(inbox[r].keys.size());
  }
  stats.shuffle_seconds = phase_watch.ElapsedSeconds();

  // ---- Reduce phase: group by key within each reducer, in key order.
  phase_watch.Reset();
  std::vector<std::vector<Out>> reducer_out(static_cast<size_t>(num_reducers_));
  stats.per_reducer_seconds.assign(static_cast<size_t>(num_reducers_), 0.0);

  auto run_reducer = [&](size_t r) {
    TraceSpan reduce_span(tracer, "reduce_task", "task");
    reduce_span.AddArg("reducer", static_cast<int64_t>(r));
    reduce_span.AddArg("records", static_cast<int64_t>(inbox[r].keys.size()));
    Stopwatch reducer_watch;
    ReducerInbox& in = inbox[r];
    const size_t n = in.keys.size();
    OutEmitter out_emitter(&reducer_out[r]);
    // Groups [i, j) of a key-sorted key array, handing reduce_ a span
    // directly into the matching value array — no per-group scratch copy.
    // The spans are only valid during the reduce_ call.
    auto reduce_runs = [&](const K* keys, const V* values) {
      size_t i = 0;
      while (i < n) {
        const K& key = keys[i];
        size_t j = i + 1;
        while (j < n && !(key < keys[j]) && !(keys[j] < key)) ++j;
        reduce_(key, std::span<const V>(values + i, j - i), out_emitter);
        i = j;
      }
    };
    if (std::is_sorted(in.keys.begin(), in.keys.end())) {
      // Fast path: arrival order is already key-sorted — always true for
      // the spatial algorithms' identity partitioner, where a reducer
      // holds exactly one key (its cell). Reduce directly over the inbox:
      // zero sorts, zero moves.
      reduce_runs(in.keys.data(), in.values.data());
    } else {
      // Stable index sort by key keeps same-key values in arrival (chunk)
      // order, matching Hadoop's merge of mapper spills — it yields
      // exactly the permutation a stable sort of (key, value) pairs
      // would, while moving 4-byte indices instead of whole pairs. The
      // permutation is applied once (one move per value), making same-key
      // values one contiguous run.
      std::vector<uint32_t> idx(n);
      for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
      std::stable_sort(idx.begin(), idx.end(),
                       [&in](uint32_t a, uint32_t b) {
                         return in.keys[a] < in.keys[b];
                       });
      std::vector<K> sorted_keys;
      std::vector<V> sorted_values;
      sorted_keys.reserve(n);
      sorted_values.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        sorted_keys.push_back(std::move(in.keys[idx[i]]));
        sorted_values.push_back(std::move(in.values[idx[i]]));
      }
      reduce_runs(sorted_keys.data(), sorted_values.data());
    }
    std::vector<K>().swap(in.keys);  // Release inbox memory eagerly.
    std::vector<V>().swap(in.values);
    stats.per_reducer_seconds[r] = reducer_watch.ElapsedSeconds();
  };
  {
    TraceSpan reduce_phase(tracer, "reduce", "phase");
    if (pool != nullptr && num_reducers_ > 1) {
      ParallelFor(pool, static_cast<size_t>(num_reducers_), run_reducer);
    } else {
      for (int r = 0; r < num_reducers_; ++r) {
        run_reducer(static_cast<size_t>(r));
      }
    }
  }
  stats.reduce_seconds = phase_watch.ElapsedSeconds();

  for (auto& out : reducer_out) {
    stats.reduce_output_records += static_cast<int64_t>(out.size());
    output->insert(output->end(), std::make_move_iterator(out.begin()),
                   std::make_move_iterator(out.end()));
  }
  stats.reduce_output_bytes = stats.reduce_output_records * output_record_bytes_;

  {
    std::lock_guard<std::mutex> lock(counter_mu_);
    stats.user_counters = user_counters_;
  }
  stats.wall_seconds = job_watch.ElapsedSeconds();
  job_span.AddArg("map_input_records", stats.map_input_records);
  job_span.AddArg("intermediate_records", stats.intermediate_records);
  job_span.AddArg("intermediate_bytes", stats.intermediate_bytes);
  job_span.AddArg("reduce_output_records", stats.reduce_output_records);
  return stats;
}

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_ENGINE_H_
