#include "mapreduce/fault.h"

#include <cstdlib>

#include "common/str_format.h"

namespace mwsj {

namespace {

// splitmix64 finalizer: full-avalanche mixing so adjacent task/attempt
// indices decorrelate. The plan must be a pure deterministic function of
// its key on every platform, so no std::hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultPhaseName(FaultPhase phase) {
  switch (phase) {
    case FaultPhase::kMap:
      return "map";
    case FaultPhase::kReduce:
      return "reduce";
    case FaultPhase::kSpill:
      return "spill";
  }
  return "unknown";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kFlakyIo:
      return "flaky-io";
    case FaultKind::kSlow:
      return "slow";
  }
  return "unknown";
}

FaultPlan FaultPlan::Seeded(uint64_t seed, double crash_prob,
                            double flaky_prob, double slow_prob) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.crash_prob_ = crash_prob;
  plan.flaky_prob_ = flaky_prob;
  plan.slow_prob_ = slow_prob;
  return plan;
}

StatusOr<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  uint64_t seed = 0;
  double crash = 0, flaky = 0, slow = 0;
  int bound = 3;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("fault spec item '%s' is not key=value", item.c_str()));
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* parse_end = nullptr;
    if (key == "seed") {
      seed = std::strtoull(value.c_str(), &parse_end, 10);
    } else if (key == "bound") {
      bound = static_cast<int>(std::strtol(value.c_str(), &parse_end, 10));
    } else if (key == "crash" || key == "flaky" || key == "slow") {
      const double p = std::strtod(value.c_str(), &parse_end);
      if (p < 0 || p > 1) {
        return Status::InvalidArgument(
            StrFormat("fault probability '%s' outside [0, 1]", item.c_str()));
      }
      (key == "crash" ? crash : key == "flaky" ? flaky : slow) = p;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown fault spec key '%s' (expected seed, crash, "
                    "flaky, slow, or bound)",
                    key.c_str()));
    }
    if (parse_end == value.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument(
          StrFormat("unparseable fault spec value '%s'", item.c_str()));
    }
  }
  if (crash + flaky + slow > 1.0) {
    return Status::InvalidArgument(
        "fault probabilities must sum to at most 1");
  }
  FaultPlan plan = Seeded(seed, crash, flaky, slow);
  plan.set_max_faulted_attempts(bound);
  return plan;
}

void FaultPlan::Inject(FaultPhase phase, int64_t task, int attempt,
                       FaultKind kind) {
  injected_[Key(static_cast<int>(phase), task, attempt)] = kind;
}

FaultKind FaultPlan::At(FaultPhase phase, int64_t task, int attempt) const {
  if (!injected_.empty()) {
    const auto it =
        injected_.find(Key(static_cast<int>(phase), task, attempt));
    if (it != injected_.end()) return it->second;
  }
  if (crash_prob_ + flaky_prob_ + slow_prob_ <= 0) return FaultKind::kNone;
  if (attempt >= max_faulted_attempts_) return FaultKind::kNone;
  uint64_t h = Mix(seed_ ^ 0x6d77736a'6661756cull);  // "mwsj" "faul"
  h = Mix(h ^ static_cast<uint64_t>(phase));
  h = Mix(h ^ static_cast<uint64_t>(task));
  h = Mix(h ^ static_cast<uint64_t>(attempt));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < crash_prob_) return FaultKind::kCrash;
  if (u < crash_prob_ + flaky_prob_) return FaultKind::kFlakyIo;
  if (u < crash_prob_ + flaky_prob_ + slow_prob_) return FaultKind::kSlow;
  return FaultKind::kNone;
}

bool FaultPlan::empty() const {
  return injected_.empty() && crash_prob_ + flaky_prob_ + slow_prob_ <= 0;
}

double BackoffSeconds(const RetryPolicy& policy, int attempt) {
  double s = policy.backoff_initial_seconds;
  for (int i = 0; i < attempt; ++i) s *= policy.backoff_multiplier;
  return s;
}

}  // namespace mwsj
