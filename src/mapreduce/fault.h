#ifndef MWSJ_MAPREDUCE_FAULT_H_
#define MWSJ_MAPREDUCE_FAULT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>

#include "common/status.h"

namespace mwsj {

/// Fault injection and recovery model for the in-process map-reduce engine.
///
/// The paper's rounds run on Hadoop, whose defining runtime property is
/// that tasks fail and are transparently re-executed with exactly-once
/// output. This module models that axis deterministically: a FaultPlan
/// decides, as a pure function of (phase, task, attempt), whether an
/// attempt crashes, fails midway, or straggles; the engine retries with
/// bounded exponential backoff and discards everything a failed attempt
/// produced (emits, user counters, DFS writes), so job output stays
/// byte-identical to a fault-free run while the wasted work is accounted
/// in JobStats.

/// Engine phase a fault is injected into. Map and reduce execute user
/// code; kSpill covers the spill-flush I/O a budgeted mapper chunk
/// performs when writing its sorted runs (task id = chunk index) — the
/// in-memory shuffle merge remains unfaultable bookkeeping.
enum class FaultPhase {
  kMap = 0,
  kReduce = 1,
  kSpill = 2,
};
const char* FaultPhaseName(FaultPhase phase);

/// What happens to one task attempt.
enum class FaultKind {
  kNone = 0,
  /// The attempt dies at task start: no records processed, nothing emitted.
  kCrash,
  /// The attempt dies midway through its input (flaky I/O): roughly half
  /// the records are processed and their emits, counter increments, and
  /// staged DFS writes must all be discarded — the canonical test that
  /// attempt staging is airtight.
  kFlakyIo,
  /// The attempt completes correctly but its (virtual) duration exceeds
  /// the straggler timeout, so the engine launches a speculative duplicate
  /// attempt; the duplicate's identical output is discarded and charged as
  /// wasted work (Hadoop's speculative execution).
  kSlow,
};
const char* FaultKindName(FaultKind kind);

/// A deterministic schedule of per-attempt faults keyed by
/// (phase, task_id, attempt).
///
/// Two layers compose:
///   * explicit injections (`Inject`) — exact faults for targeted tests;
///   * a seeded probabilistic layer (`Seeded`) — every key not explicitly
///     injected faults as a pure hash of (seed, phase, task, attempt), so
///     a plan is reproducible across runs, platforms, and thread counts.
///
/// Seeded plans are bounded by construction: attempts at or beyond
/// `max_faulted_attempts` never fault, guaranteeing every task succeeds
/// within `max_faulted_attempts + 1` attempts. Explicit injections are
/// not bounded — injecting faults on every attempt up to the retry
/// policy's max_attempts exhausts the task (tested via death tests).
class FaultPlan {
 public:
  /// An empty plan: every attempt is fault-free.
  FaultPlan() = default;

  /// A seeded probabilistic plan. Each probability is the chance that a
  /// given (phase, task, attempt) suffers the corresponding fault;
  /// `crash + flaky + slow` must be <= 1.
  static FaultPlan Seeded(uint64_t seed, double crash_prob, double flaky_prob,
                          double slow_prob);

  /// Parses a plan spec of the form
  /// `seed=42,crash=0.1,flaky=0.05,slow=0.02[,bound=3]` (any subset of
  /// keys; omitted probabilities default to 0, seed to 0, bound to 3).
  static StatusOr<FaultPlan> Parse(const std::string& spec);

  /// Forces `kind` onto one exact attempt, overriding the seeded layer.
  void Inject(FaultPhase phase, int64_t task, int attempt, FaultKind kind);

  /// Seeded faults never hit attempt indices >= n (default 3), bounding
  /// every seeded plan within a default retry budget of 4 attempts.
  void set_max_faulted_attempts(int n) { max_faulted_attempts_ = n; }

  /// The fault (if any) for one attempt. Pure and thread-safe: the engine
  /// calls this concurrently from pool workers.
  FaultKind At(FaultPhase phase, int64_t task, int attempt) const;

  /// True when no attempt can ever fault (no injections, zero
  /// probabilities) — the engine then skips all staging work.
  bool empty() const;

  uint64_t seed() const { return seed_; }

 private:
  using Key = std::tuple<int, int64_t, int>;  // (phase, task, attempt)
  std::map<Key, FaultKind> injected_;
  uint64_t seed_ = 0;
  double crash_prob_ = 0;
  double flaky_prob_ = 0;
  double slow_prob_ = 0;
  int max_faulted_attempts_ = 3;
};

/// Bounded-retry and straggler policy for faulted task attempts. The
/// engine consults it only when an attempt actually fails or straggles, so
/// a fault-free run never sleeps.
struct RetryPolicy {
  /// A task failing this many attempts aborts the job (Hadoop's
  /// mapred.map.max.attempts, default 4).
  int max_attempts = 4;

  /// Backoff before retry `a` (0-based failed attempt index) is
  /// `backoff_initial_seconds * backoff_multiplier^a`.
  double backoff_initial_seconds = 0.0005;
  double backoff_multiplier = 2.0;

  /// Virtual duration threshold past which an attempt counts as a
  /// straggler and is speculatively re-executed. kSlow faults are defined
  /// as exceeding it; the engine never watches wall clocks for this, so
  /// runs stay deterministic.
  double straggler_timeout_seconds = 1.0;

  /// Clock injection: when set, called with each computed backoff instead
  /// of sleeping — tests assert the exponential sequence without real
  /// sleeps. Null means a real std::this_thread sleep.
  std::function<void(double)> sleep;
};

/// Backoff duration before retrying after the `attempt`-th failure.
double BackoffSeconds(const RetryPolicy& policy, int attempt);

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_FAULT_H_
