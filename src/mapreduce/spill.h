#ifndef MWSJ_MAPREDUCE_SPILL_H_
#define MWSJ_MAPREDUCE_SPILL_H_

// mwsj-lint: spill-budgeted
//
// Out-of-core shuffle support for the map-reduce engine (DESIGN.md §2.13):
// budget resolution, the columnar spill-run codec bridge, streaming run
// cursors, and the k-way loser-tree merge that rebuilds reducer inboxes in
// exactly the order a stable sort of the in-memory path would produce.

#include <cstdint>
#include <cstdlib>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/effects.h"
#include "common/execution_context.h"
#include "io/colcodec.h"
#include "simd/simd.h"

namespace mwsj::spill {

/// Parses the MWSJ_SHUFFLE_BUDGET override once per process: a positive
/// byte count with an optional k/m/g (or K/M/G) binary suffix. Unset,
/// empty, or unparseable means no override.
inline int64_t EnvShuffleBudget() {
  static const int64_t cached = [] {
    const char* env = std::getenv("MWSJ_SHUFFLE_BUDGET");
    if (env == nullptr || env[0] == '\0') return int64_t{0};
    char* end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || v <= 0) return int64_t{0};
    switch (*end) {
      case 'k': case 'K': v <<= 10; ++end; break;
      case 'm': case 'M': v <<= 20; ++end; break;
      case 'g': case 'G': v <<= 30; ++end; break;
      default: break;
    }
    if (*end != '\0') return int64_t{0};
    return static_cast<int64_t>(v);
  }();
  return cached;
}

/// The effective shuffle budget for one run: an explicit positive budget
/// wins, an explicit -1 pins unlimited, and 0 inherits the environment
/// override (else unlimited). Returns 0 for "unlimited".
inline int64_t ResolveShuffleBudget(const ExecutionOptions& options) {
  if (options.shuffle_memory_budget > 0) return options.shuffle_memory_budget;
  if (options.shuffle_memory_budget < 0) return 0;
  return EnvShuffleBudget();
}

/// Each mapper chunk owns an equal share of the budget; a chunk whose
/// intermediate bytes exceed its share spills.
inline int64_t ChunkBudget(int64_t budget, size_t num_chunks) {
  if (num_chunks == 0) return budget;
  const int64_t share = budget / static_cast<int64_t>(num_chunks);
  return share > 0 ? share : 1;
}

/// Opt-in trait mapping a value type onto fixed u64 columns so its spill
/// runs compress columnarly (io/colcodec.h). Specializations (e.g. RelRect
/// and MarkedRect in core/records.h) provide:
///
///   static constexpr bool enabled = true;
///   static constexpr size_t kNumColumns = N;
///   static void Scatter(const T& v, uint64_t* cols);  // cols[0..N)
///   static T Gather(const uint64_t* cols);
///
/// Scatter/Gather must be exact inverses bit-for-bit; coordinates go
/// through colcodec::OrderedBitsFromDouble so sorted streams delta-pack
/// well. Types without a specialization spill as raw sorted pair runs —
/// same merge semantics, byte accounting without compression.
template <typename T>
struct SpillColumns {
  static constexpr bool enabled = false;
};

/// Order- and value-preserving u64 bijection for integral shuffle keys
/// (the key column of a spill run).
template <typename K>
inline uint64_t KeyToU64(K k) {
  static_assert(std::is_integral_v<K> && sizeof(K) <= 8);
  return simd::OrderedKeyFromInt(k);
}

template <typename K>
inline K KeyFromU64(uint64_t u) {
  static_assert(std::is_integral_v<K> && sizeof(K) <= 8);
  if constexpr (std::is_signed_v<K>) {
    return static_cast<K>(
        static_cast<int64_t>(u ^ (uint64_t{1} << 63)));
  } else {
    return static_cast<K>(u);
  }
}

/// Whether (K, V) spill runs can be columnar-encoded.
template <typename K, typename V>
inline constexpr bool kEncodable = std::is_integral_v<K> &&
                                   sizeof(K) <= 8 && SpillColumns<V>::enabled;

/// Encodes one sorted bucket of pairs as a columnar frame: the key column
/// first, then the value columns. Only instantiated when kEncodable.
/// `column_scratch` is caller-owned column-major staging, grown to the
/// largest bucket and then reused — the engine threads one scratch through
/// every bucket of every flush attempt, so a flaky-I/O retry or a
/// speculative duplicate flush re-encodes without reallocating the staging
/// (its size rivals the bucket itself).
///
/// MWSJ_DETERMINISTIC: the encoded bytes are part of the spill byte-identity
/// contract — the same sorted bucket must encode to the same frame.
template <typename K, typename V>
MWSJ_DETERMINISTIC void EncodeRun(const std::pair<K, V>* pairs, size_t n,
                                  std::vector<uint64_t>* column_scratch,
                                  std::vector<uint8_t>* out) {
  constexpr size_t kCols = 1 + SpillColumns<V>::kNumColumns;
  // Column-major staging of the whole bucket; bounded by the chunk's
  // budget share that triggered the spill. mwsj-lint: allow(spill-unbounded)
  std::vector<uint64_t>& columns = *column_scratch;
  if (columns.size() < kCols * n) columns.resize(kCols * n);
  uint64_t scratch[kCols];
  for (size_t i = 0; i < n; ++i) {
    columns[i] = KeyToU64(pairs[i].first);
    SpillColumns<V>::Scatter(pairs[i].second, scratch);
    for (size_t c = 1; c < kCols; ++c) {
      columns[c * n + i] = scratch[c - 1];
    }
  }
  const uint64_t* col_ptrs[kCols];
  for (size_t c = 0; c < kCols; ++c) col_ptrs[c] = columns.data() + c * n;
  colcodec::EncodeFrame(col_ptrs, kCols, n, out);
}

/// One-shot convenience overload with function-local staging.
template <typename K, typename V>
MWSJ_DETERMINISTIC void EncodeRun(const std::pair<K, V>* pairs, size_t n,
                                  std::vector<uint8_t>* out) {
  // mwsj-lint: allow(spill-unbounded) -- same bucket-bounded staging as
  // the scratch-threaded overload, owned for one call.
  std::vector<uint64_t> columns;
  EncodeRun(pairs, n, &columns, out);
}

/// Streaming record source over an encoded run: holds one decoded block
/// (≤ colcodec::kBlockRows rows per column) at a time.
template <typename K, typename V>
class EncodedRunCursor {
 public:
  /// False on a malformed frame (never produced by the engine itself).
  bool Init(const uint8_t* data, size_t size) {
    if (!reader_.Init(data, size)) return false;
    if (reader_.cols() != 1 + SpillColumns<V>::kNumColumns) return false;
    block_.resize(reader_.cols() * colcodec::kBlockRows);
    remaining_ = reader_.rows();
    count_ = 0;
    pos_ = 0;
    return Advance();
  }

  bool empty() const { return pos_ >= count_; }

  K key() const { return KeyFromU64<K>(block_[pos_]); }

  /// MWSJ_ALLOC_FREE: per-record merge step — decodes into the buffer that
  /// Init sized once; no allocation per popped record.
  MWSJ_ALLOC_FREE void Pop(K* k, V* v) {
    *k = key();
    uint64_t scratch[64];
    const size_t cols = reader_.cols();
    for (size_t c = 1; c < cols; ++c) {
      scratch[c - 1] = block_[c * colcodec::kBlockRows + pos_];
    }
    *v = SpillColumns<V>::Gather(scratch);
    ++pos_;
    if (pos_ >= count_) (void)Advance();
  }

 private:
  MWSJ_ALLOC_FREE bool Advance() {
    if (remaining_ == 0) {
      count_ = 0;
      pos_ = 0;
      return true;
    }
    count_ = reader_.NextBlock(block_.data());
    pos_ = 0;
    if (count_ == 0) return false;
    remaining_ -= count_;
    return true;
  }

  colcodec::FrameReader reader_;
  std::vector<uint64_t> block_;
  size_t count_ = 0;
  size_t pos_ = 0;
  size_t remaining_ = 0;
};

/// Tournament loser tree over k sorted sources. `beats(a, b)` answers
/// "does source a's current head sort strictly before source b's?" and
/// must treat an exhausted source as +infinity (never beats, always
/// loses). After popping from winner() call Replay(winner) to restore the
/// invariant. O(log k) comparisons per record, independent of skew.
template <typename BeatsFn>
class LoserTree {
 public:
  static constexpr size_t kInvalid = static_cast<size_t>(-1);

  LoserTree(size_t k, BeatsFn beats)
      : k_(k), beats_(std::move(beats)) {
    tree_.assign(k_ > 1 ? k_ : 1, kInvalid);
    // Building by replaying every leaf from an all-empty tree is the
    // classical construction: each replay either parks at the first empty
    // internal node or — with all k-1 slots filled — carries the overall
    // winner to the root. Replay order is immaterial.
    for (size_t s = k_; s-- > 0;) Replay(s);
  }

  size_t winner() const { return winner_; }

  /// MWSJ_ALLOC_FREE: O(log k) pointer walk over the preallocated tree —
  /// runs once per merged record.
  MWSJ_ALLOC_FREE void Replay(size_t s) {
    size_t winner = s;
    for (size_t node = (s + k_) / 2; node >= 1; node /= 2) {
      size_t& slot = tree_[node];
      if (slot == kInvalid) {
        slot = winner;
        return;
      }
      if (beats_(slot, winner)) std::swap(winner, slot);
    }
    winner_ = winner;
  }

 private:
  size_t k_;
  BeatsFn beats_;
  std::vector<size_t> tree_;
  size_t winner_ = kInvalid;
};

}  // namespace mwsj::spill

#endif  // MWSJ_MAPREDUCE_SPILL_H_
