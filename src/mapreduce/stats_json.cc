#include "mapreduce/stats_json.h"

#include "common/str_format.h"

namespace mwsj {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PhaseFaultsToJson(const PhaseFaultStats& f) {
  return StrFormat(
      "{\"tasks\": %lld, \"attempts\": %lld, \"retries\": %lld, "
      "\"speculative\": %lld, \"wasted_records\": %lld, "
      "\"wasted_bytes\": %lld, \"wasted_seconds\": %.6f, "
      "\"backoff_seconds\": %.6f}",
      static_cast<long long>(f.tasks), static_cast<long long>(f.attempts),
      static_cast<long long>(f.retries),
      static_cast<long long>(f.speculative),
      static_cast<long long>(f.wasted_records),
      static_cast<long long>(f.wasted_bytes), f.wasted_seconds,
      f.backoff_seconds);
}

}  // namespace

std::string RunStatsToJson(const RunStats& stats) {
  std::string out = "{";
  out += StrFormat("\"total_wall_seconds\": %.6f", stats.total_wall_seconds);
  // Catalog reuse accounting appears only when a DatasetCatalog was
  // actually consulted, so catalog-less stats documents are unchanged.
  if (stats.catalog_hits > 0 || stats.catalog_misses > 0) {
    out += StrFormat(", \"catalog\": {\"hits\": %lld, \"misses\": %lld}",
                     static_cast<long long>(stats.catalog_hits),
                     static_cast<long long>(stats.catalog_misses));
  }
  out += ", \"jobs\": [";
  for (size_t j = 0; j < stats.jobs.size(); ++j) {
    const JobStats& job = stats.jobs[j];
    if (j > 0) out += ", ";
    out += "{";
    out += StrFormat("\"name\": \"%s\"", EscapeJson(job.job_name).c_str());
    // Present only for scheduler-submitted jobs; standalone runs keep the
    // pre-scheduler document byte-identical.
    if (job.job_id >= 0) {
      out += StrFormat(", \"job_id\": %lld",
                       static_cast<long long>(job.job_id));
    }
    out += StrFormat(", \"map_input_records\": %lld",
                     static_cast<long long>(job.map_input_records));
    out += StrFormat(", \"map_input_bytes\": %lld",
                     static_cast<long long>(job.map_input_bytes));
    out += StrFormat(", \"intermediate_records\": %lld",
                     static_cast<long long>(job.intermediate_records));
    out += StrFormat(", \"intermediate_bytes\": %lld",
                     static_cast<long long>(job.intermediate_bytes));
    out += StrFormat(", \"reduce_output_records\": %lld",
                     static_cast<long long>(job.reduce_output_records));
    out += StrFormat(", \"reduce_output_bytes\": %lld",
                     static_cast<long long>(job.reduce_output_bytes));
    out += StrFormat(", \"num_reducers\": %d", job.num_reducers);
    out += StrFormat(", \"max_reducer_records\": %lld",
                     static_cast<long long>(job.MaxReducerRecords()));
    out += StrFormat(", \"reduce_seconds_total\": %.6f",
                     job.SumReducerSeconds());
    out += StrFormat(", \"reduce_seconds_max\": %.6f",
                     job.MaxReducerSeconds());
    out += StrFormat(", \"map_seconds\": %.6f", job.map_seconds);
    out += StrFormat(", \"shuffle_seconds\": %.6f", job.shuffle_seconds);
    out += StrFormat(", \"reduce_seconds\": %.6f", job.reduce_seconds);
    out += StrFormat(", \"map_chunks\": %zu",
                     job.per_chunk_map_seconds.size());
    out += StrFormat(", \"map_chunk_seconds_max\": %.6f",
                     job.MaxMapChunkSeconds());
    out += StrFormat(", \"wall_seconds\": %.6f", job.wall_seconds);
    out += StrFormat(
        ", \"phases\": {"
        "\"map\": {\"seconds\": %.6f, \"tasks\": %zu, "
        "\"max_task_seconds\": %.6f}, "
        "\"shuffle\": {\"seconds\": %.6f}, "
        "\"reduce\": {\"seconds\": %.6f, \"tasks\": %zu, "
        "\"max_task_seconds\": %.6f}}",
        job.map_seconds, job.per_chunk_map_seconds.size(),
        job.MaxMapChunkSeconds(), job.shuffle_seconds, job.reduce_seconds,
        job.per_reducer_seconds.size(), job.MaxReducerSeconds());
    // Out-of-core accounting appears only when the run had a shuffle
    // budget, so in-memory stats documents are unchanged.
    if (job.spill.active()) {
      out += StrFormat(
          ", \"spill\": {\"budget_bytes\": %lld, \"spilled_chunks\": %lld, "
          "\"spilled_runs\": %lld, \"spilled_raw_bytes\": %lld, "
          "\"spilled_stored_bytes\": %lld, \"compression_ratio\": %.4f, "
          "\"peak_shuffle_bytes\": %lld, \"peak_inbox_bytes\": %lld, "
          "\"merge_runs_max\": %lld, \"flush_retries\": %lld, "
          "\"wasted_flush_bytes\": %lld}",
          static_cast<long long>(job.spill.budget_bytes),
          static_cast<long long>(job.spill.spilled_chunks),
          static_cast<long long>(job.spill.spilled_runs),
          static_cast<long long>(job.spill.spilled_raw_bytes),
          static_cast<long long>(job.spill.spilled_stored_bytes),
          job.spill.CompressionRatio(),
          static_cast<long long>(job.spill.peak_shuffle_bytes),
          static_cast<long long>(job.spill.peak_inbox_bytes),
          static_cast<long long>(job.spill.merge_runs_max),
          static_cast<long long>(job.spill.flush_retries),
          static_cast<long long>(job.spill.wasted_flush_bytes));
    }
    // Fault-recovery accounting appears only when an attempt actually
    // faulted, so fault-free stats documents are unchanged.
    if (job.AnyFaults()) {
      out += ", \"faults\": {\"map\": ";
      out += PhaseFaultsToJson(job.map_faults);
      out += ", \"reduce\": ";
      out += PhaseFaultsToJson(job.reduce_faults);
      out += "}";
    }
    out += ", \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : job.user_counters) {  // std::map: sorted.
      if (!first) out += ", ";
      first = false;
      out += StrFormat("\"%s\": %lld", EscapeJson(name).c_str(),
                       static_cast<long long>(value));
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace mwsj
