#ifndef MWSJ_MAPREDUCE_STATS_JSON_H_
#define MWSJ_MAPREDUCE_STATS_JSON_H_

#include <string>

#include "mapreduce/counters.h"

namespace mwsj {

/// Serializes run statistics as a JSON document for machine consumption
/// (dashboards, regression tracking of the bench outputs). The schema:
///
/// {
///   "total_wall_seconds": 1.23,
///   "jobs": [
///     {
///       "name": "crep_round1_mark",
///       "map_input_records": 100, "map_input_bytes": 4800,
///       "intermediate_records": 130, "intermediate_bytes": 6240,
///       "reduce_output_records": 100, "reduce_output_bytes": 4800,
///       "num_reducers": 64,
///       "max_reducer_records": 9,
///       "reduce_seconds_total": 0.01, "reduce_seconds_max": 0.002,
///       "wall_seconds": 0.05,
///       "counters": {"rectangles_replicated": 12}
///     }, ...
///   ]
/// }
///
/// Strings are escaped per RFC 8259; the output is deterministic (counters
/// in lexicographic order).
std::string RunStatsToJson(const RunStats& stats);

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_STATS_JSON_H_
