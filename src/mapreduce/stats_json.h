#ifndef MWSJ_MAPREDUCE_STATS_JSON_H_
#define MWSJ_MAPREDUCE_STATS_JSON_H_

#include <string>

#include "mapreduce/counters.h"

namespace mwsj {

/// Serializes run statistics as a JSON document for machine consumption
/// (dashboards, regression tracking of the bench outputs). The schema:
///
/// {
///   "total_wall_seconds": 1.23,
///   "catalog": {"hits": 2, "misses": 1},        // only with a DatasetCatalog
///   "jobs": [
///     {
///       "name": "crep_round1_mark",
///       "job_id": 7,                            // only for scheduled jobs
///       "map_input_records": 100, "map_input_bytes": 4800,
///       "intermediate_records": 130, "intermediate_bytes": 6240,
///       "reduce_output_records": 100, "reduce_output_bytes": 4800,
///       "num_reducers": 64,
///       "max_reducer_records": 9,
///       "reduce_seconds_total": 0.01, "reduce_seconds_max": 0.002,
///       "wall_seconds": 0.05,
///       "phases": {
///         "map":     {"seconds": 0.02, "tasks": 4, "max_task_seconds": 0.01},
///         "shuffle": {"seconds": 0.01},
///         "reduce":  {"seconds": 0.02, "tasks": 64, "max_task_seconds": 0.002}
///       },
///       "faults": {
///         "map":    {"tasks": 4, "attempts": 6, "retries": 2,
///                    "speculative": 0, "wasted_records": 12,
///                    "wasted_bytes": 576, "wasted_seconds": 0.003,
///                    "backoff_seconds": 0.0015},
///         "reduce": {...}
///       },
///       "counters": {"rectangles_replicated": 12}
///     }, ...
///   ]
/// }
///
/// "phases" summarizes the engine's per-phase spans: wall seconds of each
/// phase, the number of parallel tasks it dispatched, and the slowest
/// task — the same quantities the tracer records as spans (common/trace.h),
/// folded into the stats document so dashboards need no trace file.
///
/// "catalog" is present only for runs that consulted a DatasetCatalog
/// (core/dataset_catalog.h): resident artifacts reused vs. built from
/// scratch. "job_id" is present only for scheduler-submitted jobs
/// (core/scheduler.h) and attributes each MR job to its submission.
///
/// "faults" is present only for jobs where fault injection actually fired
/// (a retry, speculative attempt, or wasted work was recorded): per phase,
/// the attempts executed vs. tasks, the retries and speculative duplicates,
/// and the discarded attempts' wasted records/bytes/seconds plus backoff
/// delay — the engine's retry-amplification ledger.
///
/// Strings are escaped per RFC 8259; the output is deterministic (counters
/// in lexicographic order).
std::string RunStatsToJson(const RunStats& stats);

}  // namespace mwsj

#endif  // MWSJ_MAPREDUCE_STATS_JSON_H_
