#include "queries/containment.h"

#include <algorithm>

#include "common/trace.h"
#include "grid/transform.h"
#include "localjoin/rtree.h"
#include "mapreduce/engine.h"

namespace mwsj {

namespace {

// Input/shuffle record: a point (degenerate rect) or a rectangle.
struct Item {
  Rect rect;
  int64_t id = 0;
  bool is_point = false;
};

}  // namespace

StatusOr<ContainmentResult> ContainmentJoin(const GridPartition& grid,
                                            std::span<const Point> points,
                                            std::span<const Rect> rects,
                                            const ExecutionContext& ctx) {
  TraceSpan algo_span(ctx.tracer, "containment", "algorithm");
  algo_span.AddArg("points", static_cast<int64_t>(points.size()));
  algo_span.AddArg("rects", static_cast<int64_t>(rects.size()));

  std::vector<Item> input;
  input.reserve(points.size() + rects.size());
  for (size_t i = 0; i < points.size(); ++i) {
    input.push_back(
        Item{Rect::FromPoint(points[i]), static_cast<int64_t>(i), true});
  }
  for (size_t i = 0; i < rects.size(); ++i) {
    input.push_back(Item{rects[i], static_cast<int64_t>(i), false});
  }

  using Job = MapReduceJob<Item, CellId, Item, std::pair<int64_t, int64_t>>;
  Job job("containment", grid.num_cells());
  job.set_partition([](const CellId& c) { return static_cast<int>(c); });
  job.set_map([&grid](const Item& item, Job::Emitter& emit) {
    if (item.is_point) {
      // Exactly one reducer sees each point, so the result is
      // duplicate-free by construction. A rectangle containing the point
      // overlaps the point's (closed) owner cell and is Split to it.
      emit.Emit(grid.CellOfRect(item.rect), item);
    } else {
      std::vector<CellId> cells;
      SplitCells(grid, item.rect, &cells);
      for (CellId c : cells) emit.Emit(c, item);
    }
  });
  job.set_reduce([](const CellId&, std::span<const Item> values,
                    Job::OutEmitter& out) {
    std::vector<Rect> cell_rects;
    std::vector<int64_t> rect_ids;
    std::vector<const Item*> cell_points;
    for (const Item& v : values) {
      if (v.is_point) {
        cell_points.push_back(&v);
      } else {
        cell_rects.push_back(v.rect);
        rect_ids.push_back(v.id);
      }
    }
    if (cell_points.empty() || cell_rects.empty()) return;
    const RTree tree(cell_rects);
    RTree::QueryScratch scratch;
    std::vector<int32_t> hits;
    for (const Item* p : cell_points) {
      hits.clear();
      tree.CollectOverlapping(p->rect, &scratch, &hits);
      for (int32_t h : hits) {
        out.Emit({p->id, rect_ids[static_cast<size_t>(h)]});
      }
    }
  });

  ContainmentResult result;
  result.stats.Add(job.Run(std::span<const Item>(input), &result.pairs, ctx));
  std::sort(result.pairs.begin(), result.pairs.end());
  algo_span.AddArg("output_pairs", static_cast<int64_t>(result.pairs.size()));
  return result;
}

}  // namespace mwsj
