#ifndef MWSJ_QUERIES_CONTAINMENT_H_
#define MWSJ_QUERIES_CONTAINMENT_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "geometry/rect.h"
#include "grid/grid_partition.h"
#include "mapreduce/counters.h"

namespace mwsj {

/// Result of a containment join.
struct ContainmentResult {
  /// (point id, rectangle id) pairs with the rectangle containing the
  /// point, sorted, duplicate-free.
  std::vector<std::pair<int64_t, int64_t>> pairs;
  RunStats stats;
};

/// The containment query the paper lists as future work (§10, and §3's
/// survey of 2-way systems): find every (point, rectangle) pair where the
/// rectangle contains the point. One map-reduce job over the same grid
/// substrate: points are Projected (each reaches exactly one reducer — no
/// duplicate avoidance needed), rectangles are Split, and each reducer
/// probes an R-tree of its rectangles with its points.
StatusOr<ContainmentResult> ContainmentJoin(
    const GridPartition& grid, std::span<const Point> points,
    std::span<const Rect> rects,
    const ExecutionContext& ctx = ExecutionContext());

}  // namespace mwsj

#endif  // MWSJ_QUERIES_CONTAINMENT_H_
