#include "queries/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/trace.h"
#include "core/dedup.h"
#include "grid/transform.h"
#include "localjoin/rtree.h"
#include "mapreduce/engine.h"

namespace mwsj {

namespace {

constexpr double kUnbounded = std::numeric_limits<double>::infinity();

struct Item {
  Rect rect;
  int64_t id = 0;
  bool is_point = false;
  double radius = 0;  // Round-2 search bound for points.
};

struct Candidate {
  int64_t point_id = 0;
  int64_t rect_id = 0;
  double distance = 0;
};

}  // namespace

StatusOr<KnnResult> KnnJoin(const GridPartition& grid,
                            std::span<const Point> points,
                            std::span<const Rect> rects, int k,
                            const ExecutionContext& ctx) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");

  TraceSpan algo_span(ctx.tracer, "knn", "algorithm");
  algo_span.AddArg("points", static_cast<int64_t>(points.size()));
  algo_span.AddArg("rects", static_cast<int64_t>(rects.size()));
  algo_span.AddArg("k", static_cast<int64_t>(k));

  KnnResult result;
  result.neighbors.assign(points.size(), {});
  if (points.empty() || rects.empty()) return result;

  std::vector<Item> input;
  input.reserve(points.size() + rects.size());
  for (size_t i = 0; i < points.size(); ++i) {
    input.push_back(
        Item{Rect::FromPoint(points[i]), static_cast<int64_t>(i), true, 0});
  }
  for (size_t i = 0; i < rects.size(); ++i) {
    input.push_back(Item{rects[i], static_cast<int64_t>(i), false, 0});
  }

  // ---- Round 1: per-point upper bound on the k-th neighbor distance.
  // The bound is inflated by a space-relative epsilon: when it equals the
  // k-th distance exactly, rounding in `point + radius` could otherwise
  // make the enlarged rectangle miss the k-th neighbor (and its owner
  // cell). Inflation only admits extra candidates; the merge round ranks
  // by exact distances, so the result stays exact.
  const double radius_epsilon =
      1e-9 * (1.0 + grid.space().length() + grid.space().breadth());
  using BoundJob = MapReduceJob<Item, CellId, Item, Item>;
  BoundJob bound_job("knn_round1_bound", grid.num_cells());
  bound_job.set_partition([](const CellId& c) { return static_cast<int>(c); });
  bound_job.set_map([&grid](const Item& item, BoundJob::Emitter& emit) {
    if (item.is_point) {
      emit.Emit(grid.CellOfRect(item.rect), item);
    } else {
      std::vector<CellId> cells;
      SplitCells(grid, item.rect, &cells);
      for (CellId c : cells) emit.Emit(c, item);
    }
  });
  bound_job.set_reduce([k, radius_epsilon](const CellId&,
                                           std::span<const Item> values,
                                           BoundJob::OutEmitter& out) {
    std::vector<const Item*> cell_points;
    std::vector<const Item*> cell_rects;
    for (const Item& v : values) {
      (v.is_point ? cell_points : cell_rects).push_back(&v);
    }
    std::vector<double> distances;
    for (const Item* p : cell_points) {
      Item bounded = *p;
      if (static_cast<int>(cell_rects.size()) < k) {
        bounded.radius = kUnbounded;
      } else {
        distances.clear();
        distances.reserve(cell_rects.size());
        for (const Item* r : cell_rects) {
          distances.push_back(MinDistance(r->rect, p->rect));
        }
        std::nth_element(distances.begin(),
                         distances.begin() + (k - 1), distances.end());
        bounded.radius =
            distances[static_cast<size_t>(k - 1)] + radius_epsilon;
      }
      out.Emit(bounded);
    }
  });

  std::vector<Item> bounded_points;
  result.stats.Add(
      bound_job.Run(std::span<const Item>(input), &bounded_points, ctx));

  // ---- Round 2: collect candidates within each point's bound.
  std::vector<Item> probe_input = std::move(bounded_points);
  for (size_t i = 0; i < rects.size(); ++i) {
    probe_input.push_back(Item{rects[i], static_cast<int64_t>(i), false, 0});
  }

  using ProbeJob = MapReduceJob<Item, CellId, Item, Candidate>;
  ProbeJob probe_job("knn_round2_probe", grid.num_cells());
  probe_job.set_partition([](const CellId& c) { return static_cast<int>(c); });
  probe_job.set_map([&grid](const Item& item, ProbeJob::Emitter& emit) {
    std::vector<CellId> cells;
    if (!item.is_point) {
      SplitCells(grid, item.rect, &cells);
    } else if (std::isinf(item.radius)) {
      for (CellId c = 0; c < grid.num_cells(); ++c) cells.push_back(c);
    } else {
      EnlargedSplitCells(grid, item.rect, item.radius, &cells);
    }
    for (CellId c : cells) emit.Emit(c, item);
  });
  probe_job.set_reduce([&grid](const CellId& cell,
                               std::span<const Item> values,
                               ProbeJob::OutEmitter& out) {
    std::vector<const Item*> cell_points;
    std::vector<Rect> cell_rects;
    std::vector<int64_t> rect_ids;
    for (const Item& v : values) {
      if (v.is_point) {
        cell_points.push_back(&v);
      } else {
        cell_rects.push_back(v.rect);
        rect_ids.push_back(v.id);
      }
    }
    if (cell_points.empty() || cell_rects.empty()) return;
    const RTree tree(cell_rects);
    RTree::QueryScratch scratch;
    std::vector<int32_t> hits;
    for (const Item* p : cell_points) {
      hits.clear();
      if (std::isinf(p->radius)) {
        tree.CollectWithinDistance(p->rect, kUnbounded, &scratch, &hits);
      } else {
        tree.CollectWithinDistance(p->rect, p->radius, &scratch, &hits);
      }
      for (int32_t h : hits) {
        const Rect& r = cell_rects[static_cast<size_t>(h)];
        // Each (point, rect) candidate is emitted by one cell: the §5.3
        // owner for bounded points, the rectangle's start cell otherwise
        // (unbounded points reach every cell).
        const bool owns =
            std::isinf(p->radius)
                ? grid.CellOfRect(r) == cell
                : OwnsRangePair(grid, cell, p->rect, r, p->radius);
        if (!owns) continue;
        out.Emit(Candidate{p->id, rect_ids[static_cast<size_t>(h)],
                           MinDistance(r, p->rect)});
      }
    }
  });

  std::vector<Candidate> candidates;
  result.stats.Add(probe_job.Run(std::span<const Item>(probe_input),
                                 &candidates, ctx));

  // ---- Round 3: merge per point, keep the k smallest (distance, id).
  using MergeJob = MapReduceJob<Candidate, int64_t, Candidate,
                                std::pair<int64_t, std::vector<KnnNeighbor>>>;
  const int merge_reducers = grid.num_cells();
  MergeJob merge_job("knn_round3_merge", merge_reducers);
  merge_job.set_partition([merge_reducers](const int64_t& point_id) {
    return static_cast<int>(point_id % merge_reducers);
  });
  merge_job.set_map([](const Candidate& c, MergeJob::Emitter& emit) {
    emit.Emit(c.point_id, c);
  });
  merge_job.set_reduce([k](const int64_t& point_id,
                           std::span<const Candidate> values,
                           MergeJob::OutEmitter& out) {
    std::vector<KnnNeighbor> neighbors;
    neighbors.reserve(values.size());
    for (const Candidate& c : values) {
      neighbors.push_back(KnnNeighbor{c.rect_id, c.distance});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.rect_id < b.rect_id;
              });
    if (static_cast<int>(neighbors.size()) > k) {
      neighbors.resize(static_cast<size_t>(k));
    }
    out.Emit({point_id, std::move(neighbors)});
  });

  std::vector<std::pair<int64_t, std::vector<KnnNeighbor>>> merged;
  result.stats.Add(
      merge_job.Run(std::span<const Candidate>(candidates), &merged, ctx));
  for (auto& [point_id, neighbors] : merged) {
    result.neighbors[static_cast<size_t>(point_id)] = std::move(neighbors);
  }
  return result;
}

}  // namespace mwsj
