#ifndef MWSJ_QUERIES_KNN_H_
#define MWSJ_QUERIES_KNN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "geometry/rect.h"
#include "grid/grid_partition.h"
#include "mapreduce/counters.h"

namespace mwsj {

/// One k-nearest-neighbor answer entry.
struct KnnNeighbor {
  int64_t rect_id = 0;
  double distance = 0;

  friend bool operator==(const KnnNeighbor& a, const KnnNeighbor& b) {
    return a.rect_id == b.rect_id && a.distance == b.distance;
  }
};

/// Result of an all-points kNN query.
struct KnnResult {
  /// neighbors[p] lists the k rectangles nearest to point p, ordered by
  /// (distance, rect id); fewer than k entries when the dataset is small.
  std::vector<std::vector<KnnNeighbor>> neighbors;
  RunStats stats;
};

/// The kNN query the paper lists as future work (§10): for every query
/// point, find the k rectangles with the smallest Euclidean MBR distance.
/// Exact, as three map-reduce rounds over the grid substrate:
///
///  1. *bound*: points are Projected, rectangles Split; each reducer
///     computes, per point, the k-th smallest distance among its local
///     rectangles — an upper bound on the true k-th neighbor distance
///     (infinite when fewer than k rectangles are local);
///  2. *probe*: each point is routed to every cell within its bound (all
///     cells when unbounded), rectangles are Split again; reducers emit
///     (point, rect, distance) candidates within the bound, deduplicated
///     with the §5.3 enlarged-intersection owner rule;
///  3. *merge*: candidates are grouped by point id and the k smallest
///     (distance, id) pairs survive.
///
/// Ties beyond position k are cut by rectangle id, making the result
/// deterministic.
StatusOr<KnnResult> KnnJoin(const GridPartition& grid,
                            std::span<const Point> points,
                            std::span<const Rect> rects, int k,
                            const ExecutionContext& ctx = ExecutionContext());

}  // namespace mwsj

#endif  // MWSJ_QUERIES_KNN_H_
