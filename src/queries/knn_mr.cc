// Distributed kNN join (queries/knn_mr.h): the map/reduce lambdas here run
// once per routed record per round — no type-erased callables in the
// kernels, no naked new/malloc; scratch vectors are reused across points
// within a reducer. The round-3 merge kernel is hoisted to the annotated
// knn_internal::MergeTopK (knn_mr.h) so tools/mwsj_check.py
// alloc-free-reach holds its per-point path allocation-free.
#include "queries/knn_mr.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "common/str_format.h"
#include "common/trace.h"
#include "grid/transform.h"
#include "localjoin/rtree.h"
#include "mapreduce/engine.h"

namespace mwsj {

namespace {

constexpr double kUnbounded = std::numeric_limits<double>::infinity();

// Round-1 output: one k-th-distance upper bound per cell holding points.
struct KnnCellBound {
  CellId cell = 0;
  double bound = kUnbounded;
};

// Round-3 output: one ranked neighbor row of the final answer.
struct KnnRankedRow {
  int64_t point_id = 0;
  int64_t rank = 0;
  int64_t rect_id = 0;
};

// Sample points per cell refining the round-1 bound. More samples tighten
// the bound (less round-2 replication) at more round-1 work; eight keeps
// round 1 linear in the cell's rectangles.
constexpr int kMaxBoundSamples = 8;

using knn_internal::CandidateLess;

double CellDiagonal(const GridPartition& grid, CellId cell) {
  const Rect c = grid.CellRect(cell);
  return std::hypot(c.length(), c.breadth());
}

}  // namespace

StatusOr<JoinRunResult> ExecuteKnnJoinMr(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    int k, const RunnerOptions& options) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (query.num_relations() != 2) {
    return Status::InvalidArgument(
        "knn-mr requires a 2-relation query (points, rectangles)");
  }
  if (relations.size() != 2) {
    return Status::InvalidArgument(
        StrFormat("knn-mr requires 2 datasets, got %zu", relations.size()));
  }
  if (options.count_only || options.distinct_ids) {
    return Status::InvalidArgument(
        "knn-mr does not support count_only or distinct_ids");
  }
  for (const Rect& p : relations[0]) {
    if (p.length() != 0 || p.breadth() != 0) {
      return Status::InvalidArgument(
          "knn-mr relation 0 must hold degenerate point rectangles");
    }
  }

  JoinRunResult result;
  const std::vector<Rect>& points = relations[0];
  const std::vector<Rect>& rects = relations[1];
  if (points.empty() || rects.empty()) return result;

  const Rect space = options.space.value_or(ComputeBoundingSpace(relations));
  if (options.space.has_value()) {
    for (size_t r = 0; r < relations.size(); ++r) {
      for (const Rect& rect : relations[r]) {
        if (!space.Contains(rect)) {
          return Status::InvalidArgument(StrFormat(
              "relation %zu contains a rectangle outside the declared space",
              r));
        }
      }
    }
  }

  ExecutionContext ctx = options.context;
  if (ctx.label.empty()) ctx.label = "knn-mr";
  TraceSpan run_span(ctx.tracer, ctx.label, "run");
  if (ctx.job_id >= 0) run_span.AddArg("job", ctx.job_id);

  StatusOr<GridAcquisition> acquired =
      AcquireGrid(relations, space, options, ctx);
  if (!acquired.ok()) return acquired.status();
  const GridPartition& grid = *acquired.value().grid;
  int64_t catalog_hits = acquired.value().catalog_hits;
  int64_t catalog_misses = acquired.value().catalog_misses;

  TraceSpan algo_span(ctx.tracer, "knn_mr", "algorithm");
  algo_span.AddArg("points", static_cast<int64_t>(points.size()));
  algo_span.AddArg("rects", static_cast<int64_t>(rects.size()));
  algo_span.AddArg("k", static_cast<int64_t>(k));

  // Like the single-node kNN, bounds are inflated by a space-relative
  // epsilon so rounding in EnlargeByDistance / the within-distance test
  // cannot exclude a true k-th neighbor sitting exactly at the bound.
  // Inflation only admits extra candidates; the merge ranks by exact
  // distances, so the result stays exact.
  const double radius_epsilon =
      1e-9 * (1.0 + grid.space().length() + grid.space().breadth());

  // ---- Round 1: per-cell upper bound on the k-th neighbor distance of
  // every in-cell point — or a catalog hit on a prior run's bounds.
  std::shared_ptr<const KnnCellBounds> bounds_ptr;
  std::string bounds_key;
  if (options.catalog != nullptr && !acquired.value().grid_key.empty()) {
    bounds_key =
        acquired.value().grid_key + StrFormat("|knn_bounds[k=%d]", k);
    bounds_ptr = options.catalog->Get<KnnCellBounds>(bounds_key);
    if (bounds_ptr != nullptr) {
      ++catalog_hits;
    } else {
      ++catalog_misses;
    }
  }
  if (bounds_ptr == nullptr) {
    std::vector<KnnRouted> bound_input;
    bound_input.reserve(points.size() + rects.size());
    for (size_t i = 0; i < points.size(); ++i) {
      bound_input.push_back(
          KnnRouted{points[i], static_cast<int64_t>(i), 0, 0});
    }
    for (size_t i = 0; i < rects.size(); ++i) {
      bound_input.push_back(
          KnnRouted{rects[i], static_cast<int64_t>(i), 1, 0});
    }

    using BoundJob = MapReduceJob<KnnRouted, CellId, KnnRouted, KnnCellBound>;
    BoundJob bound_job("knn_mr_round1_bound", grid.num_cells());
    bound_job.set_partition(
        [](const CellId& c) { return static_cast<int>(c); });
    bound_job.set_map([&grid](const KnnRouted& item,
                              BoundJob::Emitter& emit) {
      if (item.relation == 0) {
        emit.Emit(grid.CellOfRect(item.rect), item);
      } else {
        std::vector<CellId> cells;
        SplitCells(grid, item.rect, &cells);
        for (CellId c : cells) emit.Emit(c, item);
      }
    });
    bound_job.set_reduce([&grid, k, radius_epsilon](
                             const CellId& cell,
                             std::span<const KnnRouted> values,
                             BoundJob::OutEmitter& out) {
      std::vector<const KnnRouted*> cell_points;
      std::vector<const KnnRouted*> cell_rects;
      cell_points.reserve(values.size());
      cell_rects.reserve(values.size());
      for (const KnnRouted& v : values) {
        (v.relation == 0 ? cell_points : cell_rects).push_back(&v);
      }
      if (cell_points.empty()) return;
      if (static_cast<int>(cell_rects.size()) < k) {
        out.IncrementCounter(kCounterKnnUnboundedCells, 1);
        out.Emit(KnnCellBound{cell, kUnbounded});
        return;
      }
      // The k-th smallest MaxMinDistance bounds every in-cell point at
      // once: k rectangles are each within that value of any point here.
      std::vector<double> distances;
      distances.reserve(cell_rects.size());
      for (const KnnRouted* r : cell_rects) {
        distances.push_back(CellRectMaxMinDistance(grid, cell, r->rect));
      }
      std::nth_element(distances.begin(), distances.begin() + (k - 1),
                       distances.end());
      double bound = distances[static_cast<size_t>(k - 1)];
      // Sample refinement: a sample point's own k-th distance plus the
      // cell diagonal also bounds every in-cell point (triangle
      // inequality); with clustered data it is often far tighter than the
      // per-rectangle worst case.
      const double diag = CellDiagonal(grid, cell);
      const size_t stride =
          std::max<size_t>(1, cell_points.size() / kMaxBoundSamples);
      int samples = 0;
      for (size_t i = 0;
           i < cell_points.size() && samples < kMaxBoundSamples;
           i += stride, ++samples) {
        const KnnRouted* s = cell_points[i];
        distances.clear();
        for (const KnnRouted* r : cell_rects) {
          distances.push_back(MinDistance(r->rect, s->rect));
        }
        std::nth_element(distances.begin(), distances.begin() + (k - 1),
                         distances.end());
        bound = std::min(bound, distances[static_cast<size_t>(k - 1)] + diag);
      }
      out.IncrementCounter(kCounterKnnBoundedCells, 1);
      out.Emit(KnnCellBound{cell, bound + radius_epsilon});
    });

    std::vector<KnnCellBound> cell_bounds;
    result.stats.Add(bound_job.Run(std::span<const KnnRouted>(bound_input),
                                   &cell_bounds, ctx));

    std::shared_ptr<KnnCellBounds> fresh = std::make_shared<KnnCellBounds>();
    fresh->per_cell.assign(static_cast<size_t>(grid.num_cells()), kUnbounded);
    for (const KnnCellBound& b : cell_bounds) {
      fresh->per_cell[static_cast<size_t>(b.cell)] = b.bound;
    }
    bounds_ptr = fresh;
    if (!bounds_key.empty()) {
      // First-wins, like the grid: a concurrent identical job may have
      // stored its (byte-identical) bounds already.
      bounds_ptr = options.catalog->Put<KnnCellBounds>(bounds_key, bounds_ptr);
    }
  }
  const std::vector<double>& bounds = bounds_ptr->per_cell;

  // ---- Round 2: replicate points within their bounds, local top-k per
  // (point, cell) over the allocation-free local kNN kernel.
  std::vector<KnnRouted> join_input;
  join_input.reserve(points.size() + rects.size());
  for (size_t i = 0; i < points.size(); ++i) {
    KnnRouted p{points[i], static_cast<int64_t>(i), 0, 0};
    p.bound = bounds[static_cast<size_t>(grid.CellOfRect(p.rect))];
    join_input.push_back(p);
  }
  for (size_t i = 0; i < rects.size(); ++i) {
    join_input.push_back(KnnRouted{rects[i], static_cast<int64_t>(i), 1, 0});
  }

  using JoinJob = MapReduceJob<KnnRouted, CellId, KnnRouted, KnnCandidate>;
  JoinJob join_job("knn_mr_round2_join", grid.num_cells());
  join_job.set_partition([](const CellId& c) { return static_cast<int>(c); });
  join_job.set_map([&grid](const KnnRouted& item, JoinJob::Emitter& emit) {
    std::vector<CellId> cells;
    if (item.relation != 0) {
      SplitCells(grid, item.rect, &cells);
      emit.IncrementCounter(kCounterKnnRectCopies,
                            static_cast<int64_t>(cells.size()));
      for (CellId c : cells) emit.Emit(c, item);
      return;
    }
    emit.IncrementCounter(kCounterKnnPoints, 1);
    if (std::isinf(item.bound)) {
      emit.IncrementCounter(kCounterKnnUnboundedPoints, 1);
      cells.reserve(static_cast<size_t>(grid.num_cells()));
      for (CellId c = 0; c < grid.num_cells(); ++c) cells.push_back(c);
    } else {
      emit.IncrementCounter(kCounterKnnBoundedPoints, 1);
      // EnlargedSplitCells covers the L-infinity box around the bound;
      // the Euclidean cell-distance test trims its corner cells.
      std::vector<CellId> box;
      EnlargedSplitCells(grid, item.rect, item.bound, &box);
      cells.reserve(box.size());
      for (CellId c : box) {
        if (CellRectDistance(grid, c, item.rect,
                             DistanceMetric::kEuclidean) <= item.bound) {
          cells.push_back(c);
        }
      }
    }
    emit.IncrementCounter(kCounterKnnPointCopies,
                          static_cast<int64_t>(cells.size()));
    for (CellId c : cells) emit.Emit(c, item);
  });
  join_job.set_reduce([k](const CellId&, std::span<const KnnRouted> values,
                          JoinJob::OutEmitter& out) {
    std::vector<const KnnRouted*> cell_points;
    std::vector<Rect> cell_rects;
    std::vector<int64_t> rect_ids;
    cell_points.reserve(values.size());
    for (const KnnRouted& v : values) {
      if (v.relation == 0) {
        cell_points.push_back(&v);
      } else {
        cell_rects.push_back(v.rect);
        rect_ids.push_back(v.id);
      }
    }
    if (cell_points.empty() || cell_rects.empty()) return;
    const RTree tree(cell_rects);
    RTree::QueryScratch scratch;
    std::vector<int32_t> hits;
    std::vector<KnnCandidate> local;
    for (const KnnRouted* p : cell_points) {
      hits.clear();
      tree.CollectWithinDistance(p->rect, p->bound, &scratch, &hits);
      local.clear();
      local.reserve(hits.size());
      for (int32_t h : hits) {
        local.push_back(
            KnnCandidate{p->id, rect_ids[static_cast<size_t>(h)],
                         MinDistance(cell_rects[static_cast<size_t>(h)],
                                     p->rect)});
      }
      // Local top-k: the global answer's pairs each have a cell holding
      // both sides where the pair survives this cut (any pair displacing
      // it here also outranks it globally), so truncation loses nothing.
      const size_t keep = std::min(local.size(), static_cast<size_t>(k));
      std::partial_sort(local.begin(),
                        local.begin() + static_cast<ptrdiff_t>(keep),
                        local.end(), CandidateLess);
      for (size_t i = 0; i < keep; ++i) {
        out.IncrementCounter(kCounterKnnCandidates, 1);
        out.Emit(local[i]);
      }
    }
  });

  std::vector<KnnCandidate> candidates;
  result.stats.Add(join_job.Run(std::span<const KnnRouted>(join_input),
                                &candidates, ctx));

  // ---- Round 3: global merge per point — drop duplicate pairs from
  // overlapping cells, keep the k smallest (distance, rect id).
  using MergeJob = MapReduceJob<KnnCandidate, int64_t, KnnCandidate,
                                KnnRankedRow>;
  const int merge_reducers = grid.num_cells();
  MergeJob merge_job("knn_mr_round3_merge", merge_reducers);
  merge_job.set_partition([merge_reducers](const int64_t& point_id) {
    return static_cast<int>(point_id % merge_reducers);
  });
  merge_job.set_map([](const KnnCandidate& c, MergeJob::Emitter& emit) {
    emit.Emit(c.point_id, c);
  });
  merge_job.set_reduce([k](const int64_t& point_id,
                           std::span<const KnnCandidate> values,
                           MergeJob::OutEmitter& out) {
    knn_internal::MergeTopK(values, k, [&](int64_t rank, int64_t rect_id) {
      out.Emit(KnnRankedRow{point_id, rank, rect_id});
    });
  });

  std::vector<KnnRankedRow> rows;
  result.stats.Add(
      merge_job.Run(std::span<const KnnCandidate>(candidates), &rows, ctx));

  result.tuples.reserve(rows.size());
  for (const KnnRankedRow& r : rows) {
    result.tuples.push_back(IdTuple{r.point_id, r.rank, r.rect_id});
  }
  std::sort(result.tuples.begin(), result.tuples.end());
  result.num_tuples = static_cast<int64_t>(result.tuples.size());
  result.stats.catalog_hits += catalog_hits;
  result.stats.catalog_misses += catalog_misses;
  return result;
}

JobSpec MakeKnnMrJobSpec(const Query& query, int k) {
  JobSpec spec;
  spec.query = query;
  spec.execute = [k](const Query& q,
                     const std::vector<std::vector<Rect>>& rels,
                     const RunnerOptions& opts) {
    return ExecuteKnnJoinMr(q, rels, k, opts);
  };
  return spec;
}

StatusOr<JoinRunResult> RunKnnJoinMr(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    int k, const RunnerOptions& options) {
  // Mirror of RunSpatialJoin (core/runner.cc): submit + wait on an inline
  // single-slot scheduler so blocking callers pay no thread create/join.
  SchedulerOptions sched_options;
  sched_options.pool = options.context.pool;
  sched_options.tracer = options.context.tracer;
  sched_options.catalog = options.catalog;
  sched_options.max_in_flight = 1;
  sched_options.max_queued = 1;
  sched_options.inline_execution = true;
  JobScheduler scheduler(sched_options);

  JobSpec spec = MakeKnnMrJobSpec(query, k);
  spec.borrowed_relations = &relations;
  spec.options = options;
  spec.tag_job_id = false;
  StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
  if (!handle.ok()) return handle.status();
  return handle.value().Take();
}

}  // namespace mwsj
