#ifndef MWSJ_QUERIES_KNN_MR_H_
#define MWSJ_QUERIES_KNN_MR_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/effects.h"
#include "common/status.h"
#include "core/records.h"
#include "core/runner.h"
#include "core/scheduler.h"
#include "geometry/rect.h"
#include "io/colcodec.h"
#include "mapreduce/spill.h"
#include "query/query.h"

namespace mwsj {

/// The record the distributed kNN join shuffles: a rectangle tagged with
/// its relation role (0 = query points, stored as degenerate rectangles;
/// 1 = data rectangles) and, for points entering round 2, the per-cell
/// upper bound on the true k-th neighbor distance computed by round 1
/// (+inf when the point's home cell could not bound it).
struct KnnRouted {
  Rect rect;
  int64_t id = 0;
  int32_t relation = 0;
  double bound = 0;
};

/// Columnar spill layout (mapreduce/spill.h) so knn-mr rounds stay
/// byte-identical under a shuffle memory budget: coordinates and the bound
/// through the bijective ordered-bits transform, ids through the
/// sign-biasing key map — exactly the RelRect/MarkedRect scheme
/// (core/records.h).
template <>
struct spill::SpillColumns<KnnRouted> {
  static constexpr bool enabled = true;
  static constexpr size_t kNumColumns = 7;
  static void Scatter(const KnnRouted& v, uint64_t* cols) {
    cols[0] = colcodec::OrderedBitsFromDouble(v.rect.min_x());
    cols[1] = colcodec::OrderedBitsFromDouble(v.rect.min_y());
    cols[2] = colcodec::OrderedBitsFromDouble(v.rect.max_x());
    cols[3] = colcodec::OrderedBitsFromDouble(v.rect.max_y());
    cols[4] = spill::KeyToU64(v.id);
    cols[5] = spill::KeyToU64(v.relation);
    cols[6] = colcodec::OrderedBitsFromDouble(v.bound);
  }
  static KnnRouted Gather(const uint64_t* cols) {
    KnnRouted v;
    v.rect = Rect(colcodec::DoubleFromOrderedBits(cols[0]),
                  colcodec::DoubleFromOrderedBits(cols[1]),
                  colcodec::DoubleFromOrderedBits(cols[2]),
                  colcodec::DoubleFromOrderedBits(cols[3]));
    v.id = spill::KeyFromU64<int64_t>(cols[4]);
    v.relation = spill::KeyFromU64<int32_t>(cols[5]);
    v.bound = colcodec::DoubleFromOrderedBits(cols[6]);
    return v;
  }
};

/// One (point, rectangle) candidate pair surviving a round-2 reducer's
/// local top-k, carrying the exact distance for the global merge.
struct KnnCandidate {
  int64_t point_id = 0;
  int64_t rect_id = 0;
  double distance = 0;
};

template <>
struct spill::SpillColumns<KnnCandidate> {
  static constexpr bool enabled = true;
  static constexpr size_t kNumColumns = 3;
  static void Scatter(const KnnCandidate& v, uint64_t* cols) {
    cols[0] = spill::KeyToU64(v.point_id);
    cols[1] = spill::KeyToU64(v.rect_id);
    cols[2] = colcodec::OrderedBitsFromDouble(v.distance);
  }
  static KnnCandidate Gather(const uint64_t* cols) {
    KnnCandidate v;
    v.point_id = spill::KeyFromU64<int64_t>(cols[0]);
    v.rect_id = spill::KeyFromU64<int64_t>(cols[1]);
    v.distance = colcodec::DoubleFromOrderedBits(cols[2]);
    return v;
  }
};

namespace knn_internal {

/// Ordering of the global merge: distance first, rectangle id breaking
/// exact ties, so k-truncation is deterministic everywhere.
inline bool CandidateLess(const KnnCandidate& a, const KnnCandidate& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.rect_id < b.rect_id;
}

/// Round-3 merge kernel for one point: sorts the point's candidate pairs,
/// collapses duplicates from overlapping cells (a pair emitted by several
/// cells repeats with an identical distance, so duplicates sort adjacent),
/// and calls `emit_row(rank, rect_id)` for the k smallest. Hoisted out of
/// the reduce lambda so it can carry effect annotations and own per-thread
/// scratch — the reduce std::function is one object shared by every reduce
/// worker, so captured scratch would race.
///
/// MWSJ_ALLOC_FREE: runs once per point; the sort buffer is thread-local
/// and grows to each worker's high-water candidate count, so the steady
/// state allocates nothing (tests/queries/knn_mr_test.cc pins this).
/// MWSJ_DETERMINISTIC: rank order is the (distance, rect id) total order,
/// independent of partitioning, thread count, or spill budget.
template <typename EmitRow>
MWSJ_ALLOC_FREE MWSJ_DETERMINISTIC void MergeTopK(
    std::span<const KnnCandidate> values, int k, const EmitRow& emit_row) {
  thread_local std::vector<KnnCandidate> sorted;
  sorted.clear();
  // mwsj-check: allow(alloc-free-reach): thread-local scratch reaches the
  // worker's high-water candidate count once, then is reused per point.
  sorted.insert(sorted.end(), values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), CandidateLess);
  int64_t rank = 0;
  for (size_t i = 0; i < sorted.size() && rank < k; ++i) {
    if (i > 0 && sorted[i].rect_id == sorted[i - 1].rect_id) continue;
    emit_row(rank, sorted[i].rect_id);
    ++rank;
  }
}

}  // namespace knn_internal

/// Round-1 output as a resident catalog artifact: per-cell upper bounds on
/// the k-th neighbor distance of any point in that cell (+inf when the
/// cell could not be bounded). Cached under the acquired grid's artifact
/// key extended with `|knn_bounds[k=N]`, so a repeat submission of the
/// same (query, datasets, grid, k) skips round 1 entirely.
struct KnnCellBounds {
  std::vector<double> per_cell;
};

/// Distributed kNN join over the map-reduce substrate (ROADMAP item 4,
/// after Lu et al., PAPERS.md): for every point of `relations[0]` (each a
/// degenerate rectangle), find the `k` rectangles of `relations[1]` with
/// the smallest Euclidean MBR distance. Two grid-partitioned rounds plus a
/// merge round:
///
///  1. *bound*: rectangles are Split, points Projected; each reducer
///     derives one upper bound per cell on the k-th neighbor distance of
///     *every* in-cell point — min of the k-th smallest per-rectangle
///     MaxMinDistance (grid/transform.h) and, over a few sample points,
///     the sample's k-th distance plus the cell diagonal;
///  2. *join*: each point is replicated to every cell whose Euclidean
///     cell distance is within its bound (all cells when unbounded),
///     rectangles are Split; reducers run the allocation-free local kNN
///     kernel (localjoin/rtree.h) and emit a local top-k per point;
///  3. *merge*: candidates group by point id; duplicates from overlapping
///     cells collapse and the k smallest (distance, rect id) survive.
///
/// The (distance, rect id) tie-break makes the output byte-identical
/// regardless of partitioning, thread count, ISA, or spill budget. Output
/// tuples are `{point_id, rank, rect_id}` with ranks 0..k-1 per point,
/// sorted by (point, rank) — a 3-ary encoding (rank instead of a second
/// relation id) documented in DESIGN.md §2.14; distances are recomputable
/// exactly as MinDistance(point, rect).
///
/// `query` must have exactly 2 relations (predicates are not interpreted;
/// the query carries the relation count and the canonical artifact key).
/// count_only and distinct_ids are rejected. Runs synchronously on the
/// calling thread — this is the `JobSpec::execute` payload; submit through
/// the scheduler via MakeKnnMrJobSpec, or use the blocking RunKnnJoinMr.
StatusOr<JoinRunResult> ExecuteKnnJoinMr(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    int k, const RunnerOptions& options);

/// A JobSpec running the distributed kNN join through JobScheduler::Submit:
/// sets `query` and the `execute` hook; the caller supplies the input
/// source (dataset_names / relations / borrowed_relations) and options.
/// Dataset-name submissions inherit the scheduler's catalog artifact key,
/// so the grid and the round-1 bounds become resident artifacts.
JobSpec MakeKnnMrJobSpec(const Query& query, int k);

/// Blocking convenience wrapper: submit + wait on an inline single-slot
/// scheduler, exactly like RunSpatialJoin (core/runner.h).
StatusOr<JoinRunResult> RunKnnJoinMr(
    const Query& query, const std::vector<std::vector<Rect>>& relations,
    int k, const RunnerOptions& options);

}  // namespace mwsj

#endif  // MWSJ_QUERIES_KNN_MR_H_
