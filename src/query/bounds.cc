#include "query/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/str_format.h"

namespace mwsj {

Status ValidateQueryBounds(const Query& query, const Rect& space) {
  for (size_t ci = 0; ci < query.conditions().size(); ++ci) {
    const double d = query.conditions()[ci].predicate.distance();
    if (std::isnan(d) || d < 0) {
      return Status::InvalidArgument(StrFormat(
          "condition %zu: range distance %g is not a valid distance", ci, d));
    }
    if (d > kMaxQueryDistance) {
      return Status::InvalidArgument(StrFormat(
          "condition %zu: range distance %g exceeds the supported maximum "
          "%g (enlargement would overflow to inf and break cell routing)",
          ci, d, kMaxQueryDistance));
    }
  }
  if (!space.IsFinite()) {
    return Status::InvalidArgument(
        "data bounding space has a non-finite corner");
  }
  // The replication bounds sum edge distances with rectangle diagonals
  // (bounds.h): near-DBL_MAX coordinates can overflow them even when every
  // individual distance passes. Check the worst case: every relation's
  // d_max capped by the space diagonal.
  const double space_diagonal = space.Diagonal();
  if (!std::isfinite(space_diagonal) ||
      space_diagonal > kMaxQueryDistance) {
    return Status::InvalidArgument(StrFormat(
        "data bounding space diagonal %g exceeds the supported maximum %g",
        space_diagonal, kMaxQueryDistance));
  }
  for (const double bound : ComputeReplicationBounds(query, space_diagonal)) {
    if (!std::isfinite(bound) || bound > kMaxQueryDistance) {
      return Status::InvalidArgument(StrFormat(
          "replication bound %g (from the query's distances and the data "
          "extent) exceeds the supported maximum %g",
          bound, kMaxQueryDistance));
    }
  }
  return Status::OK();
}

std::vector<double> ComputeReplicationBounds(
    const Query& query, const std::vector<double>& diagonal_bounds) {
  const int n = query.num_relations();
  std::vector<double> bounds(static_cast<size_t>(n), 0.0);

  // Dijkstra from every source. Edge i→k costs w_e + d_max[k]; the final
  // hop's d_max[j] is subtracted because the destination rectangle is not
  // an intermediate.
  for (int src = 0; src < n; ++src) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(static_cast<size_t>(n), kInf);
    dist[static_cast<size_t>(src)] = 0;
    using Item = std::pair<double, int>;  // (distance, relation)
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    heap.emplace(0.0, src);
    while (!heap.empty()) {
      const auto [d, r] = heap.top();
      heap.pop();
      if (d > dist[static_cast<size_t>(r)]) continue;
      for (int ci : query.ConditionsOf(r)) {
        const JoinCondition& c = query.conditions()[static_cast<size_t>(ci)];
        const int other = (c.left == r) ? c.right : c.left;
        const double cost = c.predicate.distance() +
                            diagonal_bounds[static_cast<size_t>(other)];
        if (dist[static_cast<size_t>(r)] + cost <
            dist[static_cast<size_t>(other)]) {
          dist[static_cast<size_t>(other)] =
              dist[static_cast<size_t>(r)] + cost;
          heap.emplace(dist[static_cast<size_t>(other)], other);
        }
      }
    }
    double worst = 0;
    for (int j = 0; j < n; ++j) {
      if (j == src) continue;
      worst = std::max(worst, dist[static_cast<size_t>(j)] -
                                  diagonal_bounds[static_cast<size_t>(j)]);
    }
    bounds[static_cast<size_t>(src)] = worst;
  }
  return bounds;
}

std::vector<double> ComputeReplicationBounds(const Query& query,
                                             double global_diagonal_bound) {
  return ComputeReplicationBounds(
      query, std::vector<double>(static_cast<size_t>(query.num_relations()),
                                 global_diagonal_bound));
}

}  // namespace mwsj
