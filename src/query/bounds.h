#ifndef MWSJ_QUERY_BOUNDS_H_
#define MWSJ_QUERY_BOUNDS_H_

#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace mwsj {

/// Largest range distance / replication bound the execution layers accept.
/// Two constraints meet here: Rect::EnlargeByDistance(d) must not push a
/// coordinate to ±inf (which breaks grid-cell routing — an inf-cornered
/// rectangle projects to no cell), and the squared-distance predicates
/// compare against d·d, which overflows above ~1.34e154. 1e150 leaves
/// headroom under both while being astronomically above any real dataset.
inline constexpr double kMaxQueryDistance = 1e150;

/// Rejects queries whose range distances — or the replication bounds they
/// induce together with `space` (the data's bounding rectangle) — are NaN,
/// infinite, or large enough to overflow EnlargeByDistance / the grid
/// transforms into ±inf. Call before routing; the per-record ingest checks
/// guarantee finite rectangles, this guards the query side.
Status ValidateQueryBounds(const Query& query, const Rect& space);

/// Per-relation replication-distance bounds for Controlled-Replicate in
/// Limit (§7.9 for overlap, §8 for range, footnote 3 for general graphs).
///
/// For an output tuple, the rectangle of relation j reachable from relation
/// i along a join-graph path contributes, per axis, at most
///
///     sum over path edges of  w_e  +  sum over intermediate relations of
///     their diagonal upper bound d_max
///
/// to the offset between rectangle i and rectangle j's start point; the
/// duplicate-avoidance point of the tuple is composed of member start
/// coordinates, so a rectangle marked for replication only needs to reach
/// fourth-quadrant cells within
///
///     L_i = max_j  min over i→j paths [ Σ_e (w_e + d_max[target(e)]) ]
///                  − d_max[j]
///
/// of itself. For the paper's chain of m relations with one global d_max
/// this reduces to the published bounds: (m−2)·d_max for endpoint relations
/// of an overlap chain, (m−2)·d_max + (m−1)·d for a range chain.
///
/// The bound constrains each axis separately, so the *Chebyshev* cell
/// distance test is the provably safe companion metric (see
/// grid/transform.h); with the Euclidean test of the paper's §4 f2
/// definition, corner cells at per-axis distance ≤ L_i but Euclidean
/// distance > L_i would be skipped.
///
/// `diagonal_bounds[r]` is an upper bound on the diagonal of the rectangles
/// of relation r (the paper's d_max, per relation). Returns one bound per
/// relation. Requires a valid (connected) query.
std::vector<double> ComputeReplicationBounds(
    const Query& query, const std::vector<double>& diagonal_bounds);

/// Convenience overload with a single global d_max for every relation.
std::vector<double> ComputeReplicationBounds(const Query& query,
                                             double global_diagonal_bound);

}  // namespace mwsj

#endif  // MWSJ_QUERY_BOUNDS_H_
