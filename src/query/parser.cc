#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/str_format.h"

namespace mwsj {

namespace {

// A minimal hand-rolled tokenizer/parser; the grammar is three tokens deep,
// so recursive descent with explicit positions keeps error messages exact.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Query> Parse() {
    MWSJ_RETURN_IF_ERROR(ParseCondition());
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) break;
      MWSJ_RETURN_IF_ERROR(ExpectKeyword("AND"));
      MWSJ_RETURN_IF_ERROR(ParseCondition());
    }
    return builder_.Build();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status ErrorAt(size_t pos, const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("query parse error at offset %zu: %s", pos, what.c_str()));
  }

  // Reads an identifier ([A-Za-z_][A-Za-z0-9_]*).
  StatusOr<std::string> ReadIdent() {
    SkipSpace();
    const size_t start = pos_;
    if (pos_ >= text_.size() ||
        (!std::isalpha(static_cast<unsigned char>(text_[pos_])) &&
         text_[pos_] != '_')) {
      return ErrorAt(pos_, "expected a relation name");
    }
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  static std::string ToUpper(std::string s) {
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
  }

  Status ExpectKeyword(const std::string& keyword) {
    const size_t at = pos_;
    StatusOr<std::string> word = ReadIdent();
    if (!word.ok()) return ErrorAt(at, "expected keyword " + keyword);
    if (ToUpper(word.value()) != keyword) {
      return ErrorAt(at, "expected keyword " + keyword + ", got '" +
                             word.value() + "'");
    }
    return Status::OK();
  }

  StatusOr<Predicate> ReadPredicate() {
    const size_t at = pos_;
    StatusOr<std::string> word = ReadIdent();
    if (!word.ok()) return ErrorAt(at, "expected a predicate (OV or RA(d))");
    const std::string upper = ToUpper(word.value());
    if (upper == "OV" || upper == "OVERLAPS") return Predicate::Overlap();
    if (upper == "RA" || upper == "RANGE") {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '(') {
        return ErrorAt(pos_, "expected '(' after " + upper);
      }
      ++pos_;
      SkipSpace();
      char* end = nullptr;
      const std::string rest(text_.substr(pos_));
      const double d = std::strtod(rest.c_str(), &end);
      if (end == rest.c_str()) {
        return ErrorAt(pos_, "expected a distance number");
      }
      pos_ += static_cast<size_t>(end - rest.c_str());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return ErrorAt(pos_, "expected ')' after range distance");
      }
      ++pos_;
      if (d < 0) return ErrorAt(at, "range distance must be non-negative");
      return Predicate::Range(d);
    }
    return ErrorAt(at, "unknown predicate '" + word.value() + "'");
  }

  int RelationIndex(const std::string& name) {
    auto it = relation_index_.find(name);
    if (it != relation_index_.end()) return it->second;
    const int idx = builder_.AddRelation(name);
    relation_index_[name] = idx;
    return idx;
  }

  Status ParseCondition() {
    StatusOr<std::string> left = ReadIdent();
    if (!left.ok()) return left.status();
    StatusOr<Predicate> pred = ReadPredicate();
    if (!pred.ok()) return pred.status();
    StatusOr<std::string> right = ReadIdent();
    if (!right.ok()) return right.status();
    // Register relations in appearance order (function-argument evaluation
    // order would be unspecified).
    const int left_index = RelationIndex(left.value());
    const int right_index = RelationIndex(right.value());
    builder_.AddCondition(left_index, right_index, pred.value());
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  QueryBuilder builder_;
  std::map<std::string, int> relation_index_;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace mwsj
