#ifndef MWSJ_QUERY_PARSER_H_
#define MWSJ_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace mwsj {

/// Parses the textual query notation used in the paper's prose, e.g.
///
///   "R1 OV R2 AND R2 OV R3"            (the paper's Q2)
///   "R1 RA(100) R2 AND R2 RA(100) R3"  (the paper's Q3, d=100)
///   "R1 OV R2 AND R2 RA(200) R3"       (the paper's Q4)
///
/// Grammar (case-insensitive keywords):
///   query     := condition ( "AND" condition )*
///   condition := ident predicate ident
///   predicate := "OV" | "OVERLAPS" | "RA" "(" number ")" |
///                "RANGE" "(" number ")"
///
/// Relations are created in first-appearance order; repeating a name reuses
/// the same relation. Returns InvalidArgument with a position-annotated
/// message on syntax errors, and propagates QueryBuilder validation errors
/// (e.g. disconnected graphs).
StatusOr<Query> ParseQuery(std::string_view text);

}  // namespace mwsj

#endif  // MWSJ_QUERY_PARSER_H_
