#ifndef MWSJ_QUERY_PREDICATE_H_
#define MWSJ_QUERY_PREDICATE_H_

#include <string>

#include "geometry/rect.h"

namespace mwsj {

/// The two spatial predicates of the paper's query model (§1.2).
enum class PredicateKind {
  kOverlap,  // Ov: rectangles share at least one point.
  kRange,    // Ra(d): rectangles within Euclidean distance d.
};

/// A spatial join predicate. Overlap is represented as distance 0 in the
/// join graph (§1.2: edge weight 0 for overlap, d for range), but keeps its
/// own kind so conditions C2 pick the right crossing test (§9).
class Predicate {
 public:
  static Predicate Overlap() { return Predicate(PredicateKind::kOverlap, 0); }
  static Predicate Range(double d) {
    return Predicate(PredicateKind::kRange, d);
  }

  PredicateKind kind() const { return kind_; }
  bool is_overlap() const { return kind_ == PredicateKind::kOverlap; }
  bool is_range() const { return kind_ == PredicateKind::kRange; }

  /// The join-graph edge weight: 0 for overlap, d for range.
  double distance() const { return distance_; }

  /// Evaluates the predicate on two MBRs (the filter-step test).
  bool Evaluate(const Rect& a, const Rect& b) const {
    if (kind_ == PredicateKind::kOverlap) return Overlaps(a, b);
    return WithinDistance(a, b, distance_);
  }

  std::string ToString() const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.kind_ == b.kind_ && a.distance_ == b.distance_;
  }

 private:
  Predicate(PredicateKind kind, double distance)
      : kind_(kind), distance_(distance) {}

  PredicateKind kind_;
  double distance_;
};

}  // namespace mwsj

#endif  // MWSJ_QUERY_PREDICATE_H_
