#include "query/query.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <tuple>

#include "common/str_format.h"

namespace mwsj {

namespace {

/// Full-precision predicate rendering for canonicalization. ToString()'s
/// %g is for humans and would alias distances that differ below six
/// significant digits; %.17g round-trips every double.
std::string CanonicalPredicate(const Predicate& p) {
  if (p.is_overlap()) return "Ov";
  return StrFormat("Ra(%.17g)", p.distance());
}

}  // namespace

std::string Predicate::ToString() const {
  if (is_overlap()) return "Ov";
  return StrFormat("Ra(%g)", distance_);
}

bool Query::IsOverlapOnly() const {
  return std::all_of(conditions_.begin(), conditions_.end(),
                     [](const JoinCondition& c) {
                       return c.predicate.is_overlap();
                     });
}

bool Query::IsRangeOnly() const {
  return std::all_of(conditions_.begin(), conditions_.end(),
                     [](const JoinCondition& c) {
                       return c.predicate.is_range();
                     });
}

double Query::MaxRangeDistance() const {
  double d = 0;
  for (const JoinCondition& c : conditions_) {
    d = std::max(d, c.predicate.distance());
  }
  return d;
}

bool Query::Matches(const std::vector<Rect>& assignment) const {
  for (const JoinCondition& c : conditions_) {
    if (!c.predicate.Evaluate(assignment[static_cast<size_t>(c.left)],
                              assignment[static_cast<size_t>(c.right)])) {
      return false;
    }
  }
  return true;
}

std::string Query::ToString() const {
  std::string out;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    const JoinCondition& c = conditions_[i];
    if (i > 0) out += " AND ";
    out += relation_names_[static_cast<size_t>(c.left)];
    out += " ";
    out += c.predicate.ToString();
    out += " ";
    out += relation_names_[static_cast<size_t>(c.right)];
  }
  return out;
}

std::vector<int> Query::CanonicalOrderIndices() const {
  const size_t n = relation_names_.size();
  // Local structure signature per relation: the sorted multiset of
  // (predicate, neighbor name) over its incident conditions. It orders
  // duplicate-named relations (self-join spellings) that plain name
  // sorting cannot, so registration order stops leaking into the form.
  std::vector<std::string> signature(n);
  for (size_t r = 0; r < n; ++r) {
    std::vector<std::string> incident;
    incident.reserve(adjacency_[r].size());
    for (const int ci : adjacency_[r]) {
      const JoinCondition& c = conditions_[static_cast<size_t>(ci)];
      const int other = (c.left == static_cast<int>(r)) ? c.right : c.left;
      incident.push_back(CanonicalPredicate(c.predicate) + "~" +
                         relation_names_[static_cast<size_t>(other)]);
    }
    std::sort(incident.begin(), incident.end());
    for (const std::string& s : incident) {
      signature[r] += s;
      signature[r] += ';';
    }
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& na = relation_names_[static_cast<size_t>(a)];
    const auto& nb = relation_names_[static_cast<size_t>(b)];
    if (na != nb) return na < nb;
    return signature[static_cast<size_t>(a)] <
           signature[static_cast<size_t>(b)];
  });
  return order;
}

std::vector<int> Query::CanonicalRanks() const {
  const std::vector<int> order = CanonicalOrderIndices();
  std::vector<int> rank(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  return rank;
}

std::string Query::CanonicalForm() const {
  const size_t n = relation_names_.size();
  const std::vector<int> order = CanonicalOrderIndices();
  std::vector<int> rank(n);
  for (size_t i = 0; i < n; ++i) {
    rank[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }

  // Conditions under the new labels, endpoints in (lo, hi) order — both
  // predicate kinds are symmetric — and the list itself sorted.
  std::vector<std::tuple<int, int, std::string>> canon;
  canon.reserve(conditions_.size());
  for (const JoinCondition& c : conditions_) {
    const int a = rank[static_cast<size_t>(c.left)];
    const int b = rank[static_cast<size_t>(c.right)];
    canon.emplace_back(std::min(a, b), std::max(a, b),
                       CanonicalPredicate(c.predicate));
  }
  std::sort(canon.begin(), canon.end());

  // Length-prefixed names make the rendering injective even for names
  // containing the separators.
  std::string out = "rels[";
  for (size_t i = 0; i < n; ++i) {
    const std::string& name = relation_names_[static_cast<size_t>(order[i])];
    if (i > 0) out += ',';
    out += StrFormat("%zu:", name.size());
    out += name;
  }
  out += "] conds[";
  for (size_t i = 0; i < canon.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat("%d %s %d", std::get<0>(canon[i]),
                     std::get<2>(canon[i]).c_str(), std::get<1>(canon[i]));
  }
  out += ']';
  return out;
}

uint64_t Query::CanonicalHash() const {
  // FNV-1a, 64-bit: stable across processes and standard libraries,
  // unlike std::hash.
  const std::string form = CanonicalForm();
  uint64_t h = 14695981039346656037ULL;
  for (const char c : form) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Query::CanonicalKey() const {
  return StrFormat("q%016llx|", static_cast<unsigned long long>(
                                    CanonicalHash())) +
         CanonicalForm();
}

int QueryBuilder::AddRelation(std::string name) {
  relation_names_.push_back(std::move(name));
  return static_cast<int>(relation_names_.size()) - 1;
}

QueryBuilder& QueryBuilder::AddOverlap(int left, int right) {
  return AddCondition(left, right, Predicate::Overlap());
}

QueryBuilder& QueryBuilder::AddRange(int left, int right, double distance) {
  return AddCondition(left, right, Predicate::Range(distance));
}

QueryBuilder& QueryBuilder::AddCondition(int left, int right,
                                         Predicate predicate) {
  conditions_.push_back(JoinCondition{left, right, predicate});
  return *this;
}

StatusOr<Query> QueryBuilder::Build() const {
  const int n = static_cast<int>(relation_names_.size());
  if (n < 2) {
    return Status::InvalidArgument("a join query needs at least 2 relations");
  }
  if (conditions_.empty()) {
    return Status::InvalidArgument("a join query needs at least 1 condition");
  }
  for (const JoinCondition& c : conditions_) {
    if (c.left < 0 || c.left >= n || c.right < 0 || c.right >= n) {
      return Status::InvalidArgument(
          StrFormat("condition references relation index out of range "
                    "[0, %d): (%d, %d)",
                    n, c.left, c.right));
    }
    if (c.left == c.right) {
      return Status::InvalidArgument(
          "a condition cannot join a relation with itself; register the "
          "dataset twice for self-joins");
    }
    if (c.predicate.is_range() && c.predicate.distance() < 0) {
      return Status::InvalidArgument("range distance must be non-negative");
    }
  }

  // Connectivity check (BFS). A disconnected join graph is a cross
  // product of independent joins, which the framework does not support.
  std::vector<std::vector<int>> adjacency(static_cast<size_t>(n));
  for (size_t i = 0; i < conditions_.size(); ++i) {
    adjacency[static_cast<size_t>(conditions_[i].left)].push_back(
        static_cast<int>(i));
    adjacency[static_cast<size_t>(conditions_[i].right)].push_back(
        static_cast<int>(i));
  }
  std::vector<bool> seen(static_cast<size_t>(n), false);
  std::deque<int> frontier = {0};
  seen[0] = true;
  int visited = 0;
  while (!frontier.empty()) {
    const int r = frontier.front();
    frontier.pop_front();
    ++visited;
    for (int ci : adjacency[static_cast<size_t>(r)]) {
      const JoinCondition& c = conditions_[static_cast<size_t>(ci)];
      const int other = (c.left == r) ? c.right : c.left;
      if (!seen[static_cast<size_t>(other)]) {
        seen[static_cast<size_t>(other)] = true;
        frontier.push_back(other);
      }
    }
  }
  if (visited != n) {
    return Status::InvalidArgument(
        "the join graph must be connected; split disconnected queries into "
        "independent joins");
  }

  Query q;
  q.relation_names_ = relation_names_;
  q.conditions_ = conditions_;
  q.adjacency_ = std::move(adjacency);
  return q;
}

StatusOr<Query> MakeChainQuery(int num_relations, Predicate predicate) {
  QueryBuilder b;
  for (int i = 0; i < num_relations; ++i) {
    b.AddRelation(StrFormat("R%d", i + 1));
  }
  for (int i = 0; i + 1 < num_relations; ++i) {
    b.AddCondition(i, i + 1, predicate);
  }
  return b.Build();
}

}  // namespace mwsj
