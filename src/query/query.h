#ifndef MWSJ_QUERY_QUERY_H_
#define MWSJ_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"

namespace mwsj {

/// One triple (P_i, R_{i,1}, R_{i,2}) of the paper's query model (§1.2),
/// with relations referred to by index into the query's relation list.
struct JoinCondition {
  int left;
  int right;
  Predicate predicate;

  /// True when the condition joins relations `a` and `b` in either order.
  bool Connects(int a, int b) const {
    return (left == a && right == b) || (left == b && right == a);
  }
};

class QueryBuilder;

/// A multi-way spatial join query: a conjunction of join conditions over a
/// list of named relations (Equation 1 of the paper). Self-joins are
/// expressed by adding the same dataset under several relation names (the
/// paper's Q2s/Q3s/Q4s star queries over California roads do exactly this).
///
/// A valid query has at least two relations, at least one condition, no
/// condition joining a relation with itself, and a *connected* join graph —
/// a disconnected graph would make the multi-way join a Cartesian product
/// of independent joins, which none of the paper's algorithms (nor its
/// duplicate-avoidance proof) support.
class Query {
 public:
  int num_relations() const { return static_cast<int>(relation_names_.size()); }
  const std::vector<std::string>& relation_names() const {
    return relation_names_;
  }
  const std::vector<JoinCondition>& conditions() const { return conditions_; }

  /// Indices into conditions() of the conditions incident to relation `r`.
  const std::vector<int>& ConditionsOf(int r) const {
    return adjacency_[static_cast<size_t>(r)];
  }

  /// True when every predicate is an overlap (the §7 setting).
  bool IsOverlapOnly() const;
  /// True when every predicate is a range (the §8 setting).
  bool IsRangeOnly() const;
  /// Largest range distance in the query (0 for overlap-only queries).
  double MaxRangeDistance() const;

  /// Evaluates every condition against a full assignment of rectangles
  /// (one per relation). Used by the reference algorithms and tests.
  bool Matches(const std::vector<Rect>& assignment) const;

  std::string ToString() const;

  /// Order-normalized rendering of the query, identical for every spelling
  /// of the same query: relations are relabeled in sorted-name order (ties
  /// between duplicate names — self-joins — broken by each relation's
  /// sorted incident-edge signature), condition endpoints are put in
  /// (lo, hi) index order (both predicates are symmetric), and the
  /// condition list is sorted. Relation names are length-prefixed so no
  /// name content can forge a separator, and range distances print with
  /// full precision (%.17g) so distinct distances never alias. Distinct
  /// queries always render distinct forms; symmetric self-join spellings
  /// that the name+signature relabeling cannot distinguish may render
  /// different forms (a safe cache miss, never a false hit).
  std::string CanonicalForm() const;

  /// The canonical rank CanonicalForm() assigns to each relation position:
  /// CanonicalRanks()[p] is the index relation `p` is relabeled to. The
  /// form itself deliberately forgets which position each rank came from,
  /// so a consumer that binds *positional* data to the form (the
  /// scheduler's artifact keys bind catalog datasets by position) must
  /// record this permutation alongside it: two structurally different
  /// submissions can share a canonical form and a positional dataset list
  /// yet bind the data to different roles. Equal (form, permutation)
  /// pairs imply positionally identical queries.
  std::vector<int> CanonicalRanks() const;

  /// FNV-1a 64-bit hash of CanonicalForm(); stable across runs, builds,
  /// and processes (no std::hash involved).
  uint64_t CanonicalHash() const;

  /// The cache key the DatasetCatalog (and a future result cache) indexes
  /// on: the collision-free CanonicalForm prefixed with its hash for cheap
  /// bucketing and log readability.
  std::string CanonicalKey() const;

 private:
  friend class QueryBuilder;
  Query() = default;

  /// The relabeling permutation shared by CanonicalForm() and
  /// CanonicalRanks(): element `rank` is the original relation position
  /// assigned that canonical rank.
  std::vector<int> CanonicalOrderIndices() const;

  std::vector<std::string> relation_names_;
  std::vector<JoinCondition> conditions_;
  std::vector<std::vector<int>> adjacency_;
};

/// Fluent builder for Query. Example (the paper's Q4):
///
///   QueryBuilder b;
///   int r1 = b.AddRelation("R1");
///   int r2 = b.AddRelation("R2");
///   int r3 = b.AddRelation("R3");
///   b.AddOverlap(r1, r2).AddRange(r2, r3, 200.0);
///   StatusOr<Query> q = b.Build();
class QueryBuilder {
 public:
  /// Registers a relation and returns its index.
  int AddRelation(std::string name);

  QueryBuilder& AddOverlap(int left, int right);
  QueryBuilder& AddRange(int left, int right, double distance);
  QueryBuilder& AddCondition(int left, int right, Predicate predicate);

  /// Validates and assembles the query. Returns InvalidArgument on bad
  /// indices, self-edges, negative range distances, empty condition lists,
  /// or a disconnected join graph.
  StatusOr<Query> Build() const;

 private:
  std::vector<std::string> relation_names_;
  std::vector<JoinCondition> conditions_;
};

/// Convenience constructor for the paper's benchmark queries, all of which
/// are chains: R1 P R2 ∧ R2 P R3 ∧ ... (Q1, Q2, Q3, and the self-join
/// variants Q2s/Q3s, which are the same shape over one dataset).
StatusOr<Query> MakeChainQuery(int num_relations, Predicate predicate);

}  // namespace mwsj

#endif  // MWSJ_QUERY_QUERY_H_
