// Runtime ISA dispatch: detect once (cpuid via __builtin_cpu_supports),
// honor the MWSJ_SIMD override, and hand out function-pointer tables. The
// detection result is cached in a magic static, so steady-state callers of
// ActiveKernels() pay one atomic load (the testing override) plus a
// pointer read.
#include "simd/simd.h"

#include <atomic>
#include <cstdlib>

#include "simd/kernels_internal.h"

namespace mwsj::simd {

namespace {

const KernelTable kScalarTable = {
    &internal::OverlapFilterScalar,
    &internal::WithinFilterScalar,
    &internal::SortKeyIdxScalar,
    &internal::DeltaZigzagEncodeScalar,
    &internal::DeltaZigzagDecodeScalar,
    Isa::kScalar,
};

#if MWSJ_SIMD_HAVE_SSE42
const KernelTable kSseTable = {
    &internal::OverlapFilterSse,
    &internal::WithinFilterSse,
    &internal::SortKeyIdxSse,
    &internal::DeltaZigzagEncodeSse,
    &internal::DeltaZigzagDecodeSse,
    Isa::kSse,
};
#endif

#if MWSJ_SIMD_HAVE_AVX2
const KernelTable kAvx2Table = {
    &internal::OverlapFilterAvx2,
    &internal::WithinFilterAvx2,
    &internal::SortKeyIdxAvx2,
    &internal::DeltaZigzagEncodeAvx2,
    &internal::DeltaZigzagDecodeAvx2,
    Isa::kAvx2,
};
#endif

Isa DetectIsa() {
  const char* env = std::getenv("MWSJ_SIMD");
  // Set-but-empty counts as unset: `MWSJ_SIMD= ./binary` and exporting an
  // empty matrix variable from CI both mean "no override".
  if (env != nullptr && env[0] != '\0') {
    if (const std::optional<Isa> requested = ParseIsa(env)) {
      if (IsaAvailable(*requested)) return *requested;
    }
    // An explicit override that cannot be honored pins scalar: a test or
    // CI leg naming an ISA must never silently run a different vector one.
    return Isa::kScalar;
  }
  if (IsaAvailable(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaAvailable(Isa::kSse)) return Isa::kSse;
  return Isa::kScalar;
}

// Testing override; nullptr means "use the detected table". Relaxed atomics
// suffice — tests set it before launching joins, never during.
std::atomic<const KernelTable*> g_override{nullptr};

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse:
      return "sse";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Isa> ParseIsa(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "sse") return Isa::kSse;
  if (name == "avx2") return Isa::kAvx2;
  return std::nullopt;
}

bool IsaAvailable(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse:
#if MWSJ_SIMD_HAVE_SSE42 && defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case Isa::kAvx2:
#if MWSJ_SIMD_HAVE_AVX2 && defined(__x86_64__) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& KernelsFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return kScalarTable;
    case Isa::kSse:
#if MWSJ_SIMD_HAVE_SSE42
      return kSseTable;
#else
      break;
#endif
    case Isa::kAvx2:
#if MWSJ_SIMD_HAVE_AVX2
      return kAvx2Table;
#else
      break;
#endif
  }
  return kScalarTable;  // Unavailable ISA: the safe table.
}

const KernelTable& ActiveKernels() {
  static const KernelTable* const detected = &KernelsFor(DetectIsa());
  const KernelTable* overridden = g_override.load(std::memory_order_relaxed);
  return overridden != nullptr ? *overridden : *detected;
}

Isa ActiveIsa() { return ActiveKernels().isa; }

void SetIsaForTesting(Isa isa) {
  g_override.store(&KernelsFor(isa), std::memory_order_relaxed);
}

}  // namespace mwsj::simd
