// mwsj-lint: hot-path
//
// AVX2 kernel TU: 4 doubles / 4 u64 keys per vector. Compiled with -mavx2
// (set per-source in CMakeLists.txt) only when the compiler supports it;
// dispatch only selects these entry points when the CPU reports avx2, so
// no other TU may call them directly.
#if MWSJ_SIMD_HAVE_AVX2

#define MWSJ_SIMD_WIDTH 4
#define MWSJ_SIMD_FN(name) name##Avx2
#include "simd/kernels_impl.inc"

#endif  // MWSJ_SIMD_HAVE_AVX2
