#ifndef MWSJ_SIMD_KERNELS_INTERNAL_H_
#define MWSJ_SIMD_KERNELS_INTERNAL_H_

// Per-ISA kernel entry points and the shared scalar primitives. Internal to
// src/simd: dispatch.cc builds the tables from these, and the vector TUs
// reuse the scalar primitives for their tail loops so a tail element takes
// the exact same arithmetic as the scalar reference kernel.

#include <cstddef>
#include <cstdint>

namespace mwsj::simd::internal {

// ---------------------------------------------------------------------------
// Shared scalar primitives. These mirror geometry/rect.cc bit-for-bit:
// AxisGap as max(b_lo - a_hi, a_lo - b_hi, 0) equals the branchy original
// (the positive difference wins when disjoint, +0.0 when overlapping), and
// the squared form rounds identically to MinDistanceSquared.

inline bool OverlapsScalar(double b_min_x, double b_min_y, double b_max_x,
                           double b_max_y, double q_min_x, double q_min_y,
                           double q_max_x, double q_max_y) {
  return b_min_x <= q_max_x && q_min_x <= b_max_x && b_min_y <= q_max_y &&
         q_min_y <= b_max_y;
}

inline double AxisGapScalar(double a_lo, double a_hi, double b_lo,
                            double b_hi) {
  const double lo_gap = b_lo - a_hi;
  const double hi_gap = a_lo - b_hi;
  double gap = lo_gap > hi_gap ? lo_gap : hi_gap;
  if (!(gap > 0.0)) gap = 0.0;
  return gap;
}

inline bool WithinScalar(double b_min_x, double b_min_y, double b_max_x,
                         double b_max_y, double q_min_x, double q_min_y,
                         double q_max_x, double q_max_y, double d_sq) {
  const double dx = AxisGapScalar(b_min_x, b_max_x, q_min_x, q_max_x);
  const double dy = AxisGapScalar(b_min_y, b_max_y, q_min_y, q_max_y);
  return dx * dx + dy * dy <= d_sq;
}

inline bool CompositeLess(uint64_t key_a, uint32_t idx_a, uint64_t key_b,
                          uint32_t idx_b) {
  return key_a < key_b || (key_a == key_b && idx_a < idx_b);
}

// Zigzag transform over wrapping u64 differences (io/colcodec.h blocks).
// Encode maps small signed deltas to small unsigned codes; decode is the
// exact inverse. All arithmetic wraps, so any delta round-trips.

inline uint64_t ZigzagEncodeScalar(uint64_t delta) {
  return (delta << 1) ^
         static_cast<uint64_t>(static_cast<int64_t>(delta) >> 63);
}

inline uint64_t ZigzagDecodeScalar(uint64_t z) {
  return (z >> 1) ^ (uint64_t{0} - (z & 1));
}

// ---------------------------------------------------------------------------
// Kernel entry points, one set per compiled ISA.

size_t OverlapFilterScalar(const double* min_xs, const double* min_ys,
                           const double* max_xs, const double* max_ys,
                           size_t n, double q_min_x, double q_min_y,
                           double q_max_x, double q_max_y, uint32_t* out);
size_t WithinFilterScalar(const double* min_xs, const double* min_ys,
                          const double* max_xs, const double* max_ys,
                          size_t n, double q_min_x, double q_min_y,
                          double q_max_x, double q_max_y, double d_sq,
                          uint32_t* out);
void SortKeyIdxScalar(uint64_t* keys, uint32_t* idx, size_t n);
uint64_t DeltaZigzagEncodeScalar(const uint64_t* vals, size_t n,
                                 uint64_t* out);
void DeltaZigzagDecodeScalar(const uint64_t* deltas, size_t n, uint64_t base,
                             uint64_t* out);

#if MWSJ_SIMD_HAVE_SSE42
size_t OverlapFilterSse(const double* min_xs, const double* min_ys,
                        const double* max_xs, const double* max_ys, size_t n,
                        double q_min_x, double q_min_y, double q_max_x,
                        double q_max_y, uint32_t* out);
size_t WithinFilterSse(const double* min_xs, const double* min_ys,
                       const double* max_xs, const double* max_ys, size_t n,
                       double q_min_x, double q_min_y, double q_max_x,
                       double q_max_y, double d_sq, uint32_t* out);
void SortKeyIdxSse(uint64_t* keys, uint32_t* idx, size_t n);
uint64_t DeltaZigzagEncodeSse(const uint64_t* vals, size_t n, uint64_t* out);
void DeltaZigzagDecodeSse(const uint64_t* deltas, size_t n, uint64_t base,
                          uint64_t* out);
#endif

#if MWSJ_SIMD_HAVE_AVX2
size_t OverlapFilterAvx2(const double* min_xs, const double* min_ys,
                         const double* max_xs, const double* max_ys, size_t n,
                         double q_min_x, double q_min_y, double q_max_x,
                         double q_max_y, uint32_t* out);
size_t WithinFilterAvx2(const double* min_xs, const double* min_ys,
                        const double* max_xs, const double* max_ys, size_t n,
                        double q_min_x, double q_min_y, double q_max_x,
                        double q_max_y, double d_sq, uint32_t* out);
void SortKeyIdxAvx2(uint64_t* keys, uint32_t* idx, size_t n);
uint64_t DeltaZigzagEncodeAvx2(const uint64_t* vals, size_t n, uint64_t* out);
void DeltaZigzagDecodeAvx2(const uint64_t* deltas, size_t n, uint64_t base,
                           uint64_t* out);
#endif

}  // namespace mwsj::simd::internal

#endif  // MWSJ_SIMD_KERNELS_INTERNAL_H_
