// mwsj-lint: hot-path
//
// Scalar reference kernels. Every vector variant must match these
// byte-for-byte (same matching indices, same order, same sorted
// permutation); the parity test suite pins that under each ISA.
#include "simd/kernels_internal.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mwsj::simd::internal {

size_t OverlapFilterScalar(const double* min_xs, const double* min_ys,
                           const double* max_xs, const double* max_ys,
                           size_t n, double q_min_x, double q_min_y,
                           double q_max_x, double q_max_y, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = OverlapsScalar(min_xs[i], min_ys[i], max_xs[i],
                                    max_ys[i], q_min_x, q_min_y, q_max_x,
                                    q_max_y);
    // Unconditional store + conditional advance: branch-free compaction,
    // ascending index order by construction.
    out[count] = static_cast<uint32_t>(i);
    count += hit ? 1 : 0;
  }
  return count;
}

size_t WithinFilterScalar(const double* min_xs, const double* min_ys,
                          const double* max_xs, const double* max_ys,
                          size_t n, double q_min_x, double q_min_y,
                          double q_max_x, double q_max_y, double d_sq,
                          uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = WithinScalar(min_xs[i], min_ys[i], max_xs[i], max_ys[i],
                                  q_min_x, q_min_y, q_max_x, q_max_y, d_sq);
    out[count] = static_cast<uint32_t>(i);
    count += hit ? 1 : 0;
  }
  return count;
}

void SortKeyIdxScalar(uint64_t* keys, uint32_t* idx, size_t n) {
  // Reference implementation: materialize (key, idx) pairs and let
  // std::sort order them. Composite uniqueness makes the result the one
  // true sorted permutation, so no stability machinery is needed.
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  for (size_t i = 0; i < n; ++i) pairs[i] = {keys[i], idx[i]};
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 0; i < n; ++i) {
    keys[i] = pairs[i].first;
    idx[i] = pairs[i].second;
  }
}

}  // namespace mwsj::simd::internal
