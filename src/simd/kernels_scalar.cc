// mwsj-lint: hot-path
//
// Scalar reference kernels. Every vector variant must match these
// byte-for-byte (same matching indices, same order, same sorted
// permutation); the parity test suite pins that under each ISA.
#include "simd/kernels_internal.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace mwsj::simd::internal {

size_t OverlapFilterScalar(const double* min_xs, const double* min_ys,
                           const double* max_xs, const double* max_ys,
                           size_t n, double q_min_x, double q_min_y,
                           double q_max_x, double q_max_y, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = OverlapsScalar(min_xs[i], min_ys[i], max_xs[i],
                                    max_ys[i], q_min_x, q_min_y, q_max_x,
                                    q_max_y);
    // Unconditional store + conditional advance: branch-free compaction,
    // ascending index order by construction.
    out[count] = static_cast<uint32_t>(i);
    count += hit ? 1 : 0;
  }
  return count;
}

size_t WithinFilterScalar(const double* min_xs, const double* min_ys,
                          const double* max_xs, const double* max_ys,
                          size_t n, double q_min_x, double q_min_y,
                          double q_max_x, double q_max_y, double d_sq,
                          uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = WithinScalar(min_xs[i], min_ys[i], max_xs[i], max_ys[i],
                                  q_min_x, q_min_y, q_max_x, q_max_y, d_sq);
    out[count] = static_cast<uint32_t>(i);
    count += hit ? 1 : 0;
  }
  return count;
}

uint64_t DeltaZigzagEncodeScalar(const uint64_t* vals, size_t n,
                                 uint64_t* out) {
  uint64_t or_mask = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const uint64_t z = ZigzagEncodeScalar(vals[i + 1] - vals[i]);
    out[i] = z;
    or_mask |= z;
  }
  return or_mask;
}

void DeltaZigzagDecodeScalar(const uint64_t* deltas, size_t n, uint64_t base,
                             uint64_t* out) {
  if (n == 0) return;
  out[0] = base;
  for (size_t i = 1; i < n; ++i) {
    base += ZigzagDecodeScalar(deltas[i - 1]);
    out[i] = base;
  }
}

void SortKeyIdxScalar(uint64_t* keys, uint32_t* idx, size_t n) {
  // Reference implementation: materialize (key, idx) pairs and let
  // std::sort order them. Composite uniqueness makes the result the one
  // true sorted permutation, so no stability machinery is needed.
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  for (size_t i = 0; i < n; ++i) pairs[i] = {keys[i], idx[i]};
  std::sort(pairs.begin(), pairs.end());
  for (size_t i = 0; i < n; ++i) {
    keys[i] = pairs[i].first;
    idx[i] = pairs[i].second;
  }
}

}  // namespace mwsj::simd::internal
