// mwsj-lint: hot-path
//
// SSE4.2 kernel TU: 2 doubles / 2 u64 keys per vector. Compiled with
// -msse4.2 (set per-source in CMakeLists.txt) only when the compiler
// supports it; dispatch only selects these entry points when the CPU
// reports sse4.2, so no other TU may call them directly.
#if MWSJ_SIMD_HAVE_SSE42

#define MWSJ_SIMD_WIDTH 2
#define MWSJ_SIMD_FN(name) name##Sse
#include "simd/kernels_impl.inc"

#endif  // MWSJ_SIMD_HAVE_SSE42
