#ifndef MWSJ_SIMD_SIMD_H_
#define MWSJ_SIMD_SIMD_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mwsj::simd {

/// Instruction sets the batch kernels are compiled for. kScalar is always
/// available and is the reference semantics: every wider variant must
/// produce byte-identical outputs (same indices, same order) on the same
/// inputs, so switching ISAs can never change a join result.
enum class Isa {
  kScalar = 0,
  kSse = 1,   // SSE4.2: 2 doubles / 2 u64 keys per vector.
  kAvx2 = 2,  // AVX2: 4 doubles / 4 u64 keys per vector.
};

/// Human-readable name ("scalar", "sse", "avx2") for logs and benches.
const char* IsaName(Isa isa);

/// Parses the MWSJ_SIMD override values: "scalar", "sse", "avx2"
/// (case-sensitive). Returns nullopt for anything else.
std::optional<Isa> ParseIsa(std::string_view name);

/// True when this build carries the ISA's kernels *and* the CPU executes
/// them. kScalar is always true.
bool IsaAvailable(Isa isa);

/// Batch kernels over structure-of-arrays rectangle data. All filters scan
/// boxes i in [0, n), write the indices of matches to `out` (which must
/// hold n entries) in ascending order, and return the match count — the
/// same order a scalar forward loop would visit, so consumers' emit
/// streams do not depend on the active ISA.
///
/// Function pointers, not std::function: the table is resolved once at
/// startup and callers sit on per-probe hot paths (see mwsj_lint's
/// hot-path-std-function rule).
struct KernelTable {
  /// Closed-set rectangle overlap against the query box (geometry's
  /// Overlaps: touching edges overlap). NaN coordinates never match —
  /// identical to the scalar comparisons, where NaN fails every `<=`.
  size_t (*overlap_filter)(const double* min_xs, const double* min_ys,
                           const double* max_xs, const double* max_ys,
                           size_t n, double q_min_x, double q_min_y,
                           double q_max_x, double q_max_y, uint32_t* out);

  /// Within-distance via the tie-exact squared comparison: matches boxes
  /// with MinDistanceSquared(box, query) <= d_sq. Callers must only pass a
  /// finite d_sq = d*d with d >= 0; for d large enough that d*d overflows
  /// (e.g. kNN's unbounded +inf probe) take a scalar MinDistance path
  /// instead — inf <= inf would overclaim here.
  size_t (*within_filter)(const double* min_xs, const double* min_ys,
                          const double* max_xs, const double* max_ys,
                          size_t n, double q_min_x, double q_min_y,
                          double q_max_x, double q_max_y, double d_sq,
                          uint32_t* out);

  /// Sorts the parallel arrays (keys[i], idx[i]) ascending by the composite
  /// (key, idx). When idx starts as the position permutation 0..n-1 this is
  /// exactly a *stable* sort by key (ties keep arrival order), computed
  /// with u64 compares instead of comparator calls. The composite must be
  /// unique per element (true for any permutation idx), which makes the
  /// result independent of partitioning order — every ISA produces the
  /// identical permutation.
  void (*sort_key_idx)(uint64_t* keys, uint32_t* idx, size_t n);

  /// Columnar-codec forward transform (io/colcodec.h): writes the n-1
  /// zigzag-encoded adjacent differences of vals[0..n) to out and returns
  /// the OR of all of them (the encoder derives the block's pack width
  /// from it). n <= 1 writes nothing and returns 0.
  uint64_t (*delta_zigzag_encode)(const uint64_t* vals, size_t n,
                                  uint64_t* out);

  /// Inverse transform: out[0] = base, out[i] = out[i-1] + unzigzag of
  /// deltas[i-1] for i in [1, n) — the running prefix sum is inherently
  /// serial, the per-lane unzigzag is vectorized. Byte-identical across
  /// ISAs (wrapping u64 arithmetic throughout).
  void (*delta_zigzag_decode)(const uint64_t* deltas, size_t n,
                              uint64_t base, uint64_t* out);

  Isa isa = Isa::kScalar;
};

/// The table for a specific ISA. Precondition: IsaAvailable(isa).
const KernelTable& KernelsFor(Isa isa);

/// The process-wide active table: resolved on first use from the CPU (best
/// of AVX2 > SSE4.2 > scalar), overridable with the MWSJ_SIMD environment
/// variable ("scalar" | "sse" | "avx2"; an unavailable or unparseable
/// value falls back to scalar — never to a faster guess — so a CI leg
/// pinning an ISA can trust what it measured).
const KernelTable& ActiveKernels();

/// The ISA ActiveKernels() currently dispatches to.
Isa ActiveIsa();

/// Swaps the active table (parity tests run the same world under every
/// available ISA). Passing an unavailable ISA is the caller's bug. Not
/// thread-safe against concurrent probes: call between joins, not during.
void SetIsaForTesting(Isa isa);

/// Order-preserving map from double to u64: x < y  ⇔  Key(x) < Key(y) for
/// all non-NaN doubles, with -0.0 canonicalized to +0.0 so equal sweep
/// positions stay *equal* keys (the payload tie-break decides, exactly as
/// a double comparator would fall through on ==).
inline uint64_t OrderedKeyFromDouble(double x) {
  if (x == 0.0) x = 0.0;  // -0.0 == 0.0 compares equal; give both one key.
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  // Negative doubles: flip all bits (reverses their descending bit order).
  // Non-negative: set the sign bit to place them above every negative.
  return (bits >> 63) ? ~bits : (bits | (uint64_t{1} << 63));
}

/// Order-preserving widening of an integral key to u64 (sign-biased so
/// signed negatives sort below positives).
template <typename K>
inline uint64_t OrderedKeyFromInt(K k) {
  static_assert(std::is_integral_v<K> && sizeof(K) <= 8);
  if constexpr (std::is_signed_v<K>) {
    return static_cast<uint64_t>(static_cast<int64_t>(k)) ^
           (uint64_t{1} << 63);
  } else {
    return static_cast<uint64_t>(k);
  }
}

/// Sorts `*idx` (initially the identity permutation over keys) stably by
/// keys[idx[i]] — a drop-in for
///   std::stable_sort(idx, [&](a, b) { return keys[a] < keys[b]; })
/// Integral keys are widened order-preservingly and sorted by the active
/// batch kernel; other key types fall back to std::stable_sort.
template <typename K>
void StableSortIndexByKey(const std::vector<K>& keys,
                          std::vector<uint32_t>* idx) {
  if constexpr (std::is_integral_v<K> && sizeof(K) <= 8) {
    const size_t n = idx->size();
    std::vector<uint64_t> widened(n);
    for (size_t i = 0; i < n; ++i) {
      widened[i] = OrderedKeyFromInt(keys[(*idx)[i]]);
    }
    ActiveKernels().sort_key_idx(widened.data(), idx->data(), n);
  } else {
    std::stable_sort(
        idx->begin(), idx->end(),
        [&keys](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
  }
}

/// Structure-of-arrays rectangle storage for the batch filters. Owned by
/// index builders (R-tree leaves, small-relation scans) that fill it once
/// and probe it many times.
struct SoaRects {
  std::vector<double> min_x, min_y, max_x, max_y;

  size_t size() const { return min_x.size(); }
  bool empty() const { return min_x.empty(); }

  void Clear() {
    min_x.clear();
    min_y.clear();
    max_x.clear();
    max_y.clear();
  }

  void Reserve(size_t n) {
    min_x.reserve(n);
    min_y.reserve(n);
    max_x.reserve(n);
    max_y.reserve(n);
  }

  void PushBack(double mnx, double mny, double mxx, double mxy) {
    min_x.push_back(mnx);
    min_y.push_back(mny);
    max_x.push_back(mxx);
    max_y.push_back(mxy);
  }
};

}  // namespace mwsj::simd

#endif  // MWSJ_SIMD_SIMD_H_
