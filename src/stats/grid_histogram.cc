#include "stats/grid_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/str_format.h"

namespace mwsj {

GridHistogram::GridHistogram(const GridPartition& grid,
                             std::span<const Rect> data, int64_t scale_to)
    : grid_(&grid) {
  const size_t n = static_cast<size_t>(grid.num_cells());
  counts_.assign(n, 0);
  avg_length_.assign(n, 0);
  avg_breadth_.assign(n, 0);
  for (const Rect& r : data) {
    const size_t c = static_cast<size_t>(grid.CellOfRect(r));
    counts_[c] += 1;
    avg_length_[c] += r.length();
    avg_breadth_[c] += r.breadth();
  }
  for (size_t c = 0; c < n; ++c) {
    if (counts_[c] > 0) {
      avg_length_[c] /= counts_[c];
      avg_breadth_[c] /= counts_[c];
    }
  }
  if (scale_to > 0 && !data.empty()) {
    const double factor =
        static_cast<double>(scale_to) / static_cast<double>(data.size());
    for (double& c : counts_) c *= factor;
  }
  for (double c : counts_) total_ += c;
}

namespace {

double EstimatePairsImpl(const GridHistogram& a, const GridHistogram& b,
                         double extra) {
  const GridPartition& grid = a.grid();
  double pairs = 0;
  for (CellId c = 0; c < grid.num_cells(); ++c) {
    const double n1 = a.CellCount(c);
    const double n2 = b.CellCount(c);
    if (n1 <= 0 || n2 <= 0) continue;
    const Rect cell = grid.CellRect(c);
    const double area = cell.Area();
    if (area <= 0) continue;
    // Uniformity within the cell: P(pair matches) ~ window / cell_area,
    // capped at 1 for windows larger than the cell.
    const double wx = a.CellAvgLength(c) + b.CellAvgLength(c) + extra;
    const double wy = a.CellAvgBreadth(c) + b.CellAvgBreadth(c) + extra;
    const double p = std::min(1.0, (wx * wy) / area);
    pairs += n1 * n2 * p;
  }
  return pairs;
}

}  // namespace

double GridHistogram::EstimateOverlapPairs(const GridHistogram& other) const {
  return EstimatePairsImpl(*this, other, 0);
}

double GridHistogram::EstimateRangePairs(const GridHistogram& other,
                                         double d) const {
  return EstimatePairsImpl(*this, other, 2 * d);
}

double GridHistogram::SkewRatio() const {
  if (counts_.empty() || total_ <= 0) return 0;
  const double max = *std::max_element(counts_.begin(), counts_.end());
  return max / (total_ / static_cast<double>(counts_.size()));
}

std::string GridHistogram::ToAsciiArt() const {
  std::string out;
  const double max =
      counts_.empty()
          ? 0
          : *std::max_element(counts_.begin(), counts_.end());
  for (int row = 0; row < grid_->rows(); ++row) {
    for (int col = 0; col < grid_->cols(); ++col) {
      const double c = counts_[static_cast<size_t>(grid_->CellIdOf(row, col))];
      const int level =
          max > 0 ? static_cast<int>(std::lround(9.0 * c / max)) : 0;
      out += static_cast<char>(level == 0 ? '.' : '0' + level);
    }
    out += '\n';
  }
  return out;
}

double EstimateJoinCardinality(const Query& query,
                               std::span<const GridHistogram> histograms) {
  double cardinality = 1;
  for (int r = 0; r < query.num_relations(); ++r) {
    cardinality *= histograms[static_cast<size_t>(r)].total();
  }
  for (const JoinCondition& c : query.conditions()) {
    const GridHistogram& left = histograms[static_cast<size_t>(c.left)];
    const GridHistogram& right = histograms[static_cast<size_t>(c.right)];
    const double pairs =
        c.predicate.is_overlap()
            ? left.EstimateOverlapPairs(right)
            : left.EstimateRangePairs(right, c.predicate.distance());
    const double denom = left.total() * right.total();
    cardinality *= denom > 0 ? std::min(1.0, pairs / denom) : 0;
  }
  return cardinality;
}

}  // namespace mwsj
