#ifndef MWSJ_STATS_GRID_HISTOGRAM_H_
#define MWSJ_STATS_GRID_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "grid/grid_partition.h"
#include "query/query.h"

namespace mwsj {

/// A grid histogram over a rectangle dataset: per-cell counts of start
/// points plus the average rectangle dimensions per cell. Built from a
/// (sample of a) relation, it supports the position-aware cardinality
/// estimates the CLI's `--estimate` mode and the bench reports use, and a
/// quick skew summary of how a partitioning would load its reducers.
class GridHistogram {
 public:
  /// Builds the histogram of `data` over `grid`. `scale_to` rescales the
  /// counts to a full population size (e.g. sample 10K of 1M rectangles
  /// and pass scale_to = 1'000'000); 0 keeps raw counts.
  GridHistogram(const GridPartition& grid, std::span<const Rect> data,
                int64_t scale_to = 0);

  const GridPartition& grid() const { return *grid_; }
  double total() const { return total_; }

  /// Estimated number of rectangles starting in cell `c`.
  double CellCount(CellId c) const {
    return counts_[static_cast<size_t>(c)];
  }
  /// Average rectangle length/breadth among rectangles starting in `c`
  /// (0 for empty cells).
  double CellAvgLength(CellId c) const {
    return avg_length_[static_cast<size_t>(c)];
  }
  double CellAvgBreadth(CellId c) const {
    return avg_breadth_[static_cast<size_t>(c)];
  }

  /// Estimated number of pairs of `this` x `other` satisfying an overlap
  /// predicate, assuming per-cell uniformity: for each cell, pair count ~
  /// n1 * n2 * window / cell_area with window = (l1+l2)(b1+b2). The two
  /// histograms must share the same grid.
  double EstimateOverlapPairs(const GridHistogram& other) const;

  /// Same for a range predicate with distance d (window grows by 2d on
  /// each axis).
  double EstimateRangePairs(const GridHistogram& other, double d) const;

  /// max/avg occupancy ratio — reducer-balance indicator.
  double SkewRatio() const;

  /// Multi-line text rendering (one row of '#' bars per grid row), for the
  /// CLI's dataset inspection.
  std::string ToAsciiArt() const;

 private:
  const GridPartition* grid_;
  std::vector<double> counts_;
  std::vector<double> avg_length_;
  std::vector<double> avg_breadth_;
  double total_ = 0;
};

/// Estimated output cardinality of a multi-way join, combining the
/// per-condition pair estimates over a per-relation histogram set with the
/// independence assumption (cardinality = prod(sizes) * prod(pair_sel)).
/// Histograms must share one grid and be index-aligned with the query's
/// relations.
double EstimateJoinCardinality(const Query& query,
                               std::span<const GridHistogram> histograms);

}  // namespace mwsj

#endif  // MWSJ_STATS_GRID_HISTOGRAM_H_
