// Semantics of the annotated Mutex/MutexLock/CondVar wrappers
// (common/mutex.h) — mutual exclusion, condition-variable handoff, and the
// guarded access paths the -Wthread-safety annotations pin at compile time.
// These tests run under the TSan CI jobs, so a wrapper that silently
// stopped locking would fail dynamically as well as at Clang compile time.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace mwsj {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int64_t counter = 0;  // Guarded by mu (by construction of the test).
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrementsPerThread);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&mu] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, CondVarHandsOffPredicateChanges) {
  // Producer/consumer through the annotated CondVar: the consumer must
  // observe every produced value exactly once and in order, which only
  // holds if Wait atomically releases and reacquires the mutex.
  Mutex mu;
  CondVar ready;
  CondVar consumed;
  int slot = 0;       // 0 = empty; guarded by mu.
  int64_t sum = 0;    // Consumer-side tally; guarded by mu.
  constexpr int kItems = 1000;

  std::thread consumer([&] {
    for (int i = 1; i <= kItems; ++i) {
      MutexLock lock(&mu);
      while (slot == 0) ready.Wait(mu);
      EXPECT_EQ(slot, i) << "values must arrive in production order";
      sum += slot;
      slot = 0;
      consumed.NotifyOne();
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    MutexLock lock(&mu);
    while (slot != 0) consumed.Wait(mu);
    slot = i;
    ready.NotifyOne();
  }
  consumer.join();
  EXPECT_EQ(sum, int64_t{kItems} * (kItems + 1) / 2);
}

TEST(MutexTest, ThreadPoolDrainsQueueBuiltOnWrappers) {
  // The pool's Wait()/WorkerLoop() predicate loops are the
  // annotation-friendly RAII refactor of the old cv.wait(lock, lambda)
  // shape; hammer them with many generations of submit/wait cycles.
  ThreadPool pool(4);
  int64_t total = 0;
  Mutex mu;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&mu, &total] {
        MutexLock lock(&mu);
        ++total;
      });
    }
    pool.Wait();
  }
  MutexLock lock(&mu);
  EXPECT_EQ(total, 50 * 32);
}

}  // namespace
}  // namespace mwsj
