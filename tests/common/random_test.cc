// PRNG determinism and distribution sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace mwsj {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.5, 8.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 8.25);
  }
  EXPECT_DOUBLE_EQ(rng.Uniform(2.0, 2.0), 2.0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == -2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, UniformIntIsRoughlyUnbiased) {
  Rng rng(17);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(0, 9)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 / 5);  // Within 20%.
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
  const double shifted = rng.Gaussian(100, 0);
  EXPECT_DOUBLE_EQ(shifted, 100);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
}

}  // namespace
}  // namespace mwsj
