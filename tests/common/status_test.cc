// Status / StatusOr error-handling tests.

#include <gtest/gtest.h>

#include "common/status.h"

namespace mwsj {
namespace {

TEST(StatusTest, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad grid");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad grid");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad grid");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

// GCC 12's -Wmaybe-uninitialized misfires on std::variant's destructor
// when a StatusOr<int> provably holds the int alternative (libstdc++
// variant false positive, fixed in later GCC releases).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

Status FailsWhenNegative(int x) {
  MWSJ_RETURN_IF_ERROR(x < 0 ? Status::OutOfRange("negative") : Status::OK());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsWhenNegative(1).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mwsj
