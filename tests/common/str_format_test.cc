// String formatting helper tests, including the paper's table formats.

#include <gtest/gtest.h>

#include "common/str_format.h"

namespace mwsj {
namespace {

TEST(StrFormatTest, BasicSubstitution) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutputAllocatesCorrectly) {
  const std::string long_arg(1000, 'a');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
}

TEST(FormatHhMmTest, PaperTimeColumnFormat) {
  EXPECT_EQ(FormatHhMm(0), "00:00");
  EXPECT_EQ(FormatHhMm(5 * 60), "00:05");        // Table 2's "00:05".
  EXPECT_EQ(FormatHhMm(5 * 3600 + 14 * 60), "05:14");  // Table 3's "05:14".
  EXPECT_EQ(FormatHhMm(89), "00:01");            // Rounded to nearest minute.
  EXPECT_EQ(FormatHhMm(-5), "00:00");            // Clamped.
}

TEST(FormatMillionsTest, PaperCountColumnFormat) {
  EXPECT_EQ(FormatMillions(64'300'000), "64.3m");
  EXPECT_EQ(FormatMillions(3'900'000), "3.9m");
  EXPECT_EQ(FormatMillions(50'000), "0.05m");
  EXPECT_EQ(FormatMillions(150'000'000), "150m");
}

}  // namespace
}  // namespace mwsj
