// Thread-pool behaviour tests.

#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.h"

namespace mwsj {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace mwsj
