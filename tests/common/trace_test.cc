// Tracer semantics: balanced B/E pairs, well-formed JSON, thread safety
// of concurrent emission, and the disabled/no-tracer fast paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace mwsj {
namespace {

// Minimal structural JSON validator: checks quoting, escapes, and
// bracket/brace balance. Enough to catch malformed emission (unbalanced
// events, broken escaping); full schema checks live in the CI smoke test,
// which runs the output through `python3 -m json.tool`.
bool IsStructurallyValidJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Control characters must be escaped.
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TracerTest, SpansProduceBalancedBeginEndEvents) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer", "test");
    TraceSpan inner(&tracer, "inner", "test");
  }
  tracer.Instant("tick", "test");
  EXPECT_EQ(tracer.event_count(), 5);  // 2 B + 2 E + 1 instant.

  const std::string json = tracer.ToJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""), 2);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"E\""), 2);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"i\""), 1);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
}

TEST(TracerTest, ArgsAppearOnClosingEvent) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "work", "test");
    span.AddArg("records", int64_t{42});
    span.AddArg("seconds", 0.5);
  }
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
  EXPECT_NE(json.find("\"records\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\""), std::string::npos) << json;
}

TEST(TracerTest, NamesAreJsonEscaped) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "quote\"back\\slash\nnewline", "test");
  }
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << json;
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(/*enabled=*/false);
  {
    TraceSpan span(&tracer, "ignored", "test");
    span.AddArg("x", int64_t{1});
    tracer.Instant("also ignored", "test");
  }
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.event_count(), 0);
  EXPECT_TRUE(IsStructurallyValidJson(tracer.ToJson()));
}

TEST(TracerTest, NullTracerSpanIsANoOp) {
  TraceSpan span(nullptr, "nothing", "test");
  span.AddArg("x", int64_t{1});
  EXPECT_FALSE(span.recording());
}

TEST(TracerTest, ExplicitEndClosesOnce) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "early", "test");
    span.End();
    span.End();  // Idempotent; the destructor must not double-close.
  }
  EXPECT_EQ(tracer.event_count(), 2);  // Exactly one B and one E.
}

TEST(TracerTest, ConcurrentEmissionFromPoolThreads) {
  Tracer tracer;
  ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kSpansPerTask = 50;
  ParallelFor(&pool, kTasks, [&tracer](size_t task) {
    for (int i = 0; i < kSpansPerTask; ++i) {
      TraceSpan span(&tracer, "task_span", "test");
      span.AddArg("task", static_cast<int64_t>(task));
      tracer.Instant("mark", "test");
    }
  });
  // Every span contributes B + E + instant; none may be lost or torn.
  EXPECT_EQ(tracer.event_count(), kTasks * kSpansPerTask * 3);

  const std::string json = tracer.ToJson();
  EXPECT_TRUE(IsStructurallyValidJson(json)) << "concurrent emission broke "
                                                "the JSON structure";
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""), kTasks * kSpansPerTask);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"E\""), kTasks * kSpansPerTask);
}

TEST(TracerTest, EventCountIsSafeDuringConcurrentEmission) {
  // Regression for a lock-discipline bug the -Wthread-safety annotation
  // pass surfaced: event_count() held the registry mutex but read each
  // thread buffer's event vector, which emitting threads append to without
  // that mutex — a data race under concurrent polling. It now sums the
  // atomically published per-buffer counts, so polling mid-emission is
  // legal (this test runs under the TSan CI jobs, which pin the fix).
  Tracer tracer;
  ThreadPool pool(4);
  constexpr int kTasks = 16;
  constexpr int kSpansPerTask = 200;
  std::atomic<bool> done{false};
  std::atomic<int64_t> max_polled{0};
  std::thread poller([&tracer, &done, &max_polled] {
    while (!done.load(std::memory_order_acquire)) {
      const int64_t count = tracer.event_count();
      ASSERT_GE(count, max_polled.load(std::memory_order_relaxed))
          << "event_count went backwards under concurrent emission";
      max_polled.store(count, std::memory_order_relaxed);
    }
  });
  ParallelFor(&pool, kTasks, [&tracer](size_t) {
    for (int i = 0; i < kSpansPerTask; ++i) {
      TraceSpan span(&tracer, "polled_span", "test");
    }
  });
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_EQ(tracer.event_count(), kTasks * kSpansPerTask * 2);
}

TEST(TracerTest, SequentialTracersReuseThreadsSafely) {
  // Pool threads outlive tracers; a second tracer must not inherit the
  // first one's thread-local buffer bindings.
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    Tracer tracer;
    ParallelFor(&pool, 16, [&tracer](size_t) {
      TraceSpan span(&tracer, "round_span", "test");
    });
    EXPECT_EQ(tracer.event_count(), 32);
  }
}

TEST(TracerTest, WriteJsonRoundTrips) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "persisted", "test");
  }
  const std::string path = testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(tracer.WriteJson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, tracer.ToJson() + "\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mwsj
