// Replays the paper's Controlled-Replicate walkthroughs:
//  * §7.7 / Figure 5 — the overlap-chain marking example on a 2x2 grid,
//    including uS_c1 = {u2, v3, v4, w1, x2}, uS_c3 = {u3}, the four output
//    tuples and the reducer that owns each;
//  * §8 / Figure 7 — the range-join marking example (v2 has no foreign
//    cell within d and is not replicated; u1 is replicated through the
//    consistent set (u1, v1) even though it cannot see w1).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/controlled_replicate.h"
#include "core/dedup.h"
#include "core/runner.h"
#include "localjoin/brute_force.h"
#include "query/query.h"

namespace mwsj {
namespace {

// ---------------------------------------------------------------------------
// Figure 5 fixture. Space [0,2]x[0,2] split 2x2: paper cells c1..c4 are
// ids 0..3 (row-major from top-left). Query Q1: R1 Ov R2 ∧ R2 Ov R3 ∧
// R3 Ov R4; rectangles of R1..R4 are named u, v, w, x.
class Figure5Test : public ::testing::Test {
 protected:
  Figure5Test() {
    query_ = MakeChainQuery(4, Predicate::Overlap()).value();
    grid_ = GridPartition::Create(Rect(0, 0, 2, 2), 2, 2).value();

    // R1 = u, R2 = v, R3 = w, R4 = x. Ids are vector positions.
    u_ = {
        Rect::FromXYLB(0.7, 1.9, 0.1, 0.1),    // u1: isolated, inside c1.
        Rect::FromXYLB(0.3, 1.25, 0.2, 0.2),   // u2: inside c1, meets v3.
        Rect::FromXYLB(0.45, 0.9, 0.15, 0.15)  // u3: inside c3, meets v3.
    };
    v_ = {
        Rect::FromXYLB(0.05, 1.9, 0.1, 0.05),  // v1: isolated, inside c1.
        Rect::FromXYLB(0.6, 1.18, 0.15, 0.1),  // v2: inside c1, meets w1
                                               //     but no u partner.
        Rect::FromXYLB(0.4, 1.3, 0.25, 0.6),   // v3: c1 -> c3 crosser.
        Rect::FromXYLB(0.05, 1.05, 0.2, 0.25)  // v4: c1 -> c3 crosser,
                                               //     no partners.
    };
    w_ = {
        Rect::FromXYLB(0.5, 1.2, 0.9, 0.15),  // w1: c1 -> c2 crosser.
        Rect::FromXYLB(0.85, 1.8, 0.1, 0.1)   // w2: isolated, inside c1.
    };
    x_ = {
        Rect::FromXYLB(1.2, 1.4, 0.2, 0.3),   // x1: inside c2, meets w1.
        Rect::FromXYLB(0.8, 1.3, 0.15, 0.2)   // x2: inside c1, meets w1.
    };
  }

  // Rectangles of one relation overlapping a given cell, as a reducer
  // would receive them after Split.
  std::vector<LocalRect> SplitTo(const std::vector<Rect>& relation,
                                 CellId cell) const {
    std::vector<LocalRect> out;
    for (size_t i = 0; i < relation.size(); ++i) {
      if (Overlaps(relation[i], grid_.value().CellRect(cell))) {
        out.push_back(LocalRect{relation[i], static_cast<int64_t>(i)});
      }
    }
    return out;
  }

  Query MakeQuery() const { return query_.value(); }

  StatusOr<Query> query_ = Status::Internal("uninitialized");
  StatusOr<GridPartition> grid_ = Status::Internal("uninitialized");
  std::vector<Rect> u_, v_, w_, x_;
};

TEST_F(Figure5Test, CellC1ReceivesTheEightRectanglesOfThePaper) {
  const CellId c1 = 0;
  EXPECT_EQ(SplitTo(u_, c1).size(), 2u);  // u1, u2.
  EXPECT_EQ(SplitTo(v_, c1).size(), 4u);  // v1, v2, v3, v4.
  EXPECT_EQ(SplitTo(w_, c1).size(), 2u);  // w1, w2.
  EXPECT_EQ(SplitTo(x_, c1).size(), 1u);  // x2.
}

TEST_F(Figure5Test, MarkingAtC1MatchesThePaper) {
  const CellId c1 = 0;
  const std::vector<std::vector<LocalRect>> cell_rects = {
      SplitTo(u_, c1), SplitTo(v_, c1), SplitTo(w_, c1), SplitTo(x_, c1)};
  std::vector<std::vector<int64_t>> marked =
      MarkRectanglesForCell(MakeQuery(), grid_.value(), c1, cell_rects);
  for (auto& ids : marked) std::sort(ids.begin(), ids.end());

  // uS_c1 = (u2, v3, v4, w1, x2) — §7.7.
  EXPECT_EQ(marked[0], (std::vector<int64_t>{1}));        // u2.
  EXPECT_EQ(marked[1], (std::vector<int64_t>{2, 3}));     // v3, v4.
  EXPECT_EQ(marked[2], (std::vector<int64_t>{0}));        // w1.
  EXPECT_EQ(marked[3], (std::vector<int64_t>{1}));        // x2.
}

TEST_F(Figure5Test, MarkingAtC3ReplicatesOnlyU3) {
  const CellId c3 = 2;
  const std::vector<std::vector<LocalRect>> cell_rects = {
      SplitTo(u_, c3), SplitTo(v_, c3), SplitTo(w_, c3), SplitTo(x_, c3)};
  std::vector<std::vector<int64_t>> marked =
      MarkRectanglesForCell(MakeQuery(), grid_.value(), c3, cell_rects);

  EXPECT_EQ(marked[0], (std::vector<int64_t>{2}));  // u3 starts in c3.
  EXPECT_TRUE(marked[1].empty());  // v3/v4 do not start in c3.
  EXPECT_TRUE(marked[2].empty());
  EXPECT_TRUE(marked[3].empty());
}

TEST_F(Figure5Test, OutputTuplesAndOwningReducersMatchThePaper) {
  // Output: (u2,v3,w1,x1)@c2, (u2,v3,w1,x2)@c1, (u3,v3,w1,x1)@c4,
  // (u3,v3,w1,x2)@c3.
  const std::vector<std::vector<Rect>> data = {u_, v_, w_, x_};
  const Query query = MakeQuery();

  const std::vector<IdTuple> expected = {
      {1, 2, 0, 0}, {1, 2, 0, 1}, {2, 2, 0, 0}, {2, 2, 0, 1}};
  EXPECT_EQ(BruteForceJoin(query, data), expected);

  struct Owner {
    IdTuple tuple;
    CellId cell;
  };
  const Owner owners[] = {
      {{1, 2, 0, 0}, 1},  // (u2,v3,w1,x1) at c2.
      {{1, 2, 0, 1}, 0},  // (u2,v3,w1,x2) at c1.
      {{2, 2, 0, 0}, 3},  // (u3,v3,w1,x1) at c4.
      {{2, 2, 0, 1}, 2},  // (u3,v3,w1,x2) at c3.
  };
  for (const Owner& o : owners) {
    const Rect* members[] = {&u_[static_cast<size_t>(o.tuple[0])],
                             &v_[static_cast<size_t>(o.tuple[1])],
                             &w_[static_cast<size_t>(o.tuple[2])],
                             &x_[static_cast<size_t>(o.tuple[3])]};
    for (CellId cell = 0; cell < 4; ++cell) {
      EXPECT_EQ(OwnsTuple(grid_.value(), cell, members), cell == o.cell)
          << "tuple owner mismatch at cell " << cell;
    }
  }

  // End-to-end C-Rep on the fixture produces exactly the paper's output.
  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  options.grid_rows = 2;
  options.grid_cols = 2;
  options.space = Rect(0, 0, 2, 2);
  StatusOr<JoinRunResult> result = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().tuples, expected);
  // Seven rectangles are marked: uS_c1 = {u2, v3, v4, w1, x2} (the §7.7
  // walkthrough), u3 at c3 (§7.7), and x1 at c2 — the paper's walkthrough
  // does not enumerate c2, but the set (w1, x1) at c2 satisfies C1-C3
  // (w1 crosses back into c1), so C-Rep's own conditions mark x1 as well.
  EXPECT_EQ(result.value().stats.UserCounter(kCounterRectanglesReplicated),
            7);
}

// ---------------------------------------------------------------------------
// Figure 7 fixture: Q3 = R1 Ra(d) R2 ∧ R2 Ra(d) R3 with d = 0.2 on the
// same 2x2 grid.
class Figure7Test : public ::testing::Test {
 protected:
  Figure7Test() {
    query_ = MakeChainQuery(3, Predicate::Range(0.2)).value();
    grid_ = GridPartition::Create(Rect(0, 0, 2, 2), 2, 2).value();
    u_ = {Rect::FromXYLB(0.6, 1.5, 0.1, 0.1)};    // u1: 0.15 from v1.
    v_ = {Rect::FromXYLB(0.85, 1.5, 0.1, 0.1),    // v1: 0.05 from cell c2.
          Rect::FromXYLB(0.3, 1.7, 0.05, 0.05)};  // v2: deep inside c1.
    w_ = {Rect::FromXYLB(1.05, 1.5, 0.1, 0.1)};   // w1: inside c2.
  }

  StatusOr<Query> query_ = Status::Internal("uninitialized");
  StatusOr<GridPartition> grid_ = Status::Internal("uninitialized");
  std::vector<Rect> u_, v_, w_;
};

TEST_F(Figure7Test, RangeMarkingAtC1MatchesThePaper) {
  const CellId c1 = 0;
  const std::vector<std::vector<LocalRect>> cell_rects = {
      {{u_[0], 0}}, {{v_[0], 0}, {v_[1], 1}}, {}};
  const std::vector<std::vector<int64_t>> marked =
      MarkRectanglesForCell(query_.value(), grid_.value(), c1, cell_rects);

  EXPECT_EQ(marked[0], (std::vector<int64_t>{0}));  // u1 replicated.
  EXPECT_EQ(marked[1], (std::vector<int64_t>{0}));  // v1 replicated, v2 not.
  EXPECT_TRUE(marked[2].empty());
}

TEST_F(Figure7Test, EndToEndRangeJoinFindsTheTriple) {
  const std::vector<std::vector<Rect>> data = {u_, v_, w_};
  const std::vector<IdTuple> expected = {{0, 0, 0}};
  EXPECT_EQ(BruteForceJoin(query_.value(), data), expected);

  for (Algorithm algorithm :
       {Algorithm::kControlledReplicate,
        Algorithm::kControlledReplicateInLimit, Algorithm::kTwoWayCascade,
        Algorithm::kAllReplicate}) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 2;
    options.grid_cols = 2;
    options.space = Rect(0, 0, 2, 2);
    StatusOr<JoinRunResult> result =
        RunSpatialJoin(query_.value(), data, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tuples, expected) << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace mwsj
