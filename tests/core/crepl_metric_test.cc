// C-Rep-L f2 metric study (§7.9 vs. the safe variant): the Chebyshev
// cell-distance test is proven sufficient for the duplicate-avoidance
// owner cell; the paper's literal Euclidean test replicates to fewer
// cells and can only ever lose tuples, never invent them. These tests pin
// both properties.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/controlled_replicate.h"
#include "core/runner.h"
#include "localjoin/brute_force.h"
#include "testing/world.h"

namespace mwsj {
namespace {

class CrepLimitMetricTest : public ::testing::TestWithParam<int> {};

TEST_P(CrepLimitMetricTest, ChebyshevIsExactAndEuclideanIsASubset) {
  testing::WorldConfig config;
  config.mix = testing::PredicateMix::kRangeOnly;
  config.range_d = 12.0;
  config.max_dim = 30.0;
  config.seed = static_cast<uint64_t>(GetParam()) * 997 + 3;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  const auto expected = BruteForceJoin(query, data);

  RunnerOptions chebyshev;
  chebyshev.algorithm = Algorithm::kControlledReplicateInLimit;
  chebyshev.limit_metric = DistanceMetric::kChebyshev;
  chebyshev.grid_rows = 4;
  chebyshev.grid_cols = 4;
  chebyshev.space = Rect(0, 0, 100, 100);
  const auto safe = RunSpatialJoin(query, data, chebyshev);
  ASSERT_TRUE(safe.ok());
  EXPECT_EQ(safe.value().tuples, expected);

  RunnerOptions euclidean = chebyshev;
  euclidean.limit_metric = DistanceMetric::kEuclidean;
  const auto paper = RunSpatialJoin(query, data, euclidean);
  ASSERT_TRUE(paper.ok());
  // Tighter replication can only drop tuples.
  EXPECT_TRUE(std::includes(expected.begin(), expected.end(),
                            paper.value().tuples.begin(),
                            paper.value().tuples.end()));
  // And it never communicates more.
  EXPECT_LE(
      paper.value().stats.UserCounter(kCounterRectanglesAfterReplication),
      safe.value().stats.UserCounter(kCounterRectanglesAfterReplication));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrepLimitMetricTest, ::testing::Range(0, 10));

TEST(CrepLimitTest, LimitNeverReplicatesMoreCopiesThanFullCRep) {
  testing::WorldConfig config;
  config.mix = testing::PredicateMix::kHybrid;
  config.seed = 4242;
  config.max_rects_per_relation = 50;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  auto run = [&](Algorithm a) {
    RunnerOptions options;
    options.algorithm = a;
    options.grid_rows = 5;
    options.grid_cols = 5;
    options.space = Rect(0, 0, 100, 100);
    return RunSpatialJoin(query, data, options).value();
  };
  const auto crep = run(Algorithm::kControlledReplicate);
  const auto crepl = run(Algorithm::kControlledReplicateInLimit);
  EXPECT_EQ(crep.tuples, crepl.tuples);
  EXPECT_LE(crepl.stats.UserCounter(kCounterRectanglesAfterReplication),
            crep.stats.UserCounter(kCounterRectanglesAfterReplication));
  EXPECT_EQ(crepl.stats.UserCounter(kCounterRectanglesReplicated),
            crep.stats.UserCounter(kCounterRectanglesReplicated));
}

}  // namespace
}  // namespace mwsj
