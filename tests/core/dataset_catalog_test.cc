// DatasetCatalog: epochs, bundle assembly and identity keys, and the
// first-wins typed artifact cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dataset_catalog.h"

namespace mwsj {
namespace {

std::vector<Rect> OneRect(double x) {
  return {Rect(x, 0.0, x + 1.0, 1.0)};
}

TEST(DatasetCatalogTest, PutBumpsEpochAndReplacesData) {
  DatasetCatalog catalog;
  EXPECT_EQ(catalog.EpochOf("roads"), -1);
  EXPECT_EQ(catalog.GetDataset("roads"), nullptr);

  EXPECT_EQ(catalog.PutDataset("roads", OneRect(1)), 0);
  EXPECT_EQ(catalog.EpochOf("roads"), 0);
  ASSERT_NE(catalog.GetDataset("roads"), nullptr);
  EXPECT_EQ(catalog.GetDataset("roads")->at(0).min_x(), 1.0);

  EXPECT_EQ(catalog.PutDataset("roads", OneRect(2)), 1);
  EXPECT_EQ(catalog.EpochOf("roads"), 1);
  EXPECT_EQ(catalog.GetDataset("roads")->at(0).min_x(), 2.0);
  EXPECT_EQ(catalog.DatasetNames(), std::vector<std::string>{"roads"});
}

TEST(DatasetCatalogTest, BundleKeyEmbedsEpochsAndCachesAssembly) {
  DatasetCatalog catalog;
  catalog.PutDataset("a", OneRect(1));
  catalog.PutDataset("b", OneRect(2));

  StatusOr<DatasetCatalog::RelationBundle> first =
      catalog.GetRelationBundle({"a", "b", "a"});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  EXPECT_EQ(first.value().data_key, "data[1:a@0,1:b@0,1:a@0]");
  ASSERT_EQ(first.value().relations->size(), 3u);
  EXPECT_EQ(first.value().relations->at(2).at(0).min_x(), 1.0);

  // Same names, same epochs: the assembled bundle itself is resident.
  StatusOr<DatasetCatalog::RelationBundle> second =
      catalog.GetRelationBundle({"a", "b", "a"});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().relations, first.value().relations);

  // An epoch bump changes the key, so the stale bundle is never served.
  catalog.PutDataset("b", OneRect(3));
  StatusOr<DatasetCatalog::RelationBundle> bumped =
      catalog.GetRelationBundle({"a", "b", "a"});
  ASSERT_TRUE(bumped.ok());
  EXPECT_FALSE(bumped.value().cache_hit);
  EXPECT_EQ(bumped.value().data_key, "data[1:a@0,1:b@1,1:a@0]");
  EXPECT_EQ(bumped.value().relations->at(1).at(0).min_x(), 3.0);

  EXPECT_EQ(catalog.GetRelationBundle({"a", "missing"}).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetCatalogTest, EpochBumpEvictsSupersededArtifacts) {
  DatasetCatalog catalog;
  catalog.PutDataset("a", OneRect(1));
  catalog.PutDataset("b", OneRect(2));

  // A resident bundle over both datasets, plus derived artifacts the way
  // the scheduler keys them (the base key embeds the bundle's data_key),
  // plus one keyed against "a" alone and one unrelated.
  StatusOr<DatasetCatalog::RelationBundle> bundle =
      catalog.GetRelationBundle({"a", "b"});
  ASSERT_TRUE(bundle.ok());
  const std::string derived_key =
      "q0|" + bundle.value().data_key + "|perm[0,1]|grid[4x4]";
  catalog.Put<int>(derived_key, std::make_shared<const int>(1));
  catalog.Put<int>("q1|data[1:a@0]|grid", std::make_shared<const int>(2));
  catalog.Put<int>("unrelated", std::make_shared<const int>(3));
  EXPECT_EQ(catalog.evictions(), 0);

  // Bumping "b" drops the bundle and the derived artifact — both keys
  // reference b@0 — but keeps the a-only and unrelated entries.
  catalog.PutDataset("b", OneRect(3));
  EXPECT_EQ(catalog.evictions(), 2);
  EXPECT_EQ(catalog.Get<int>(derived_key), nullptr);
  EXPECT_NE(catalog.Get<int>("q1|data[1:a@0]|grid"), nullptr);
  EXPECT_NE(catalog.Get<int>("unrelated"), nullptr);

  // The next bundle request re-assembles against the new epoch.
  StatusOr<DatasetCatalog::RelationBundle> fresh =
      catalog.GetRelationBundle({"a", "b"});
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().cache_hit);
  EXPECT_EQ(fresh.value().data_key, "data[1:a@0,1:b@1]");

  // Bumping "a" now sweeps everything that referenced it.
  catalog.PutDataset("a", OneRect(4));
  EXPECT_EQ(catalog.evictions(), 4);  // +fresh bundle, +a-only artifact.
  EXPECT_EQ(catalog.Get<int>("q1|data[1:a@0]|grid"), nullptr);
  EXPECT_NE(catalog.Get<int>("unrelated"), nullptr);
}

TEST(DatasetCatalogTest, ArtifactsAreTypedAndFirstWins) {
  DatasetCatalog catalog;
  EXPECT_EQ(catalog.Get<int>("k"), nullptr);
  EXPECT_EQ(catalog.misses(), 1);

  auto first = std::make_shared<const int>(7);
  EXPECT_EQ(*catalog.Put<int>("k", first), 7);
  // First-wins: the resident value survives, the latecomer is dropped.
  auto second = std::make_shared<const int>(9);
  EXPECT_EQ(catalog.Put<int>("k", second), first);
  EXPECT_EQ(*catalog.Get<int>("k"), 7);
  EXPECT_EQ(catalog.hits(), 1);

  // Key discipline makes cross-type access a bug; the catalog refuses to
  // reinterpret rather than returning a corrupt value.
  EXPECT_EQ(catalog.Get<double>("k"), nullptr);
}

}  // namespace
}  // namespace mwsj
