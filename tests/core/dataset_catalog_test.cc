// DatasetCatalog: epochs, bundle assembly and identity keys, and the
// first-wins typed artifact cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dataset_catalog.h"

namespace mwsj {
namespace {

std::vector<Rect> OneRect(double x) {
  return {Rect(x, 0.0, x + 1.0, 1.0)};
}

TEST(DatasetCatalogTest, PutBumpsEpochAndReplacesData) {
  DatasetCatalog catalog;
  EXPECT_EQ(catalog.EpochOf("roads"), -1);
  EXPECT_EQ(catalog.GetDataset("roads"), nullptr);

  EXPECT_EQ(catalog.PutDataset("roads", OneRect(1)), 0);
  EXPECT_EQ(catalog.EpochOf("roads"), 0);
  ASSERT_NE(catalog.GetDataset("roads"), nullptr);
  EXPECT_EQ(catalog.GetDataset("roads")->at(0).min_x(), 1.0);

  EXPECT_EQ(catalog.PutDataset("roads", OneRect(2)), 1);
  EXPECT_EQ(catalog.EpochOf("roads"), 1);
  EXPECT_EQ(catalog.GetDataset("roads")->at(0).min_x(), 2.0);
  EXPECT_EQ(catalog.DatasetNames(), std::vector<std::string>{"roads"});
}

TEST(DatasetCatalogTest, BundleKeyEmbedsEpochsAndCachesAssembly) {
  DatasetCatalog catalog;
  catalog.PutDataset("a", OneRect(1));
  catalog.PutDataset("b", OneRect(2));

  StatusOr<DatasetCatalog::RelationBundle> first =
      catalog.GetRelationBundle({"a", "b", "a"});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  EXPECT_EQ(first.value().data_key, "data[1:a@0,1:b@0,1:a@0]");
  ASSERT_EQ(first.value().relations->size(), 3u);
  EXPECT_EQ(first.value().relations->at(2).at(0).min_x(), 1.0);

  // Same names, same epochs: the assembled bundle itself is resident.
  StatusOr<DatasetCatalog::RelationBundle> second =
      catalog.GetRelationBundle({"a", "b", "a"});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().relations, first.value().relations);

  // An epoch bump changes the key, so the stale bundle is never served.
  catalog.PutDataset("b", OneRect(3));
  StatusOr<DatasetCatalog::RelationBundle> bumped =
      catalog.GetRelationBundle({"a", "b", "a"});
  ASSERT_TRUE(bumped.ok());
  EXPECT_FALSE(bumped.value().cache_hit);
  EXPECT_EQ(bumped.value().data_key, "data[1:a@0,1:b@1,1:a@0]");
  EXPECT_EQ(bumped.value().relations->at(1).at(0).min_x(), 3.0);

  EXPECT_EQ(catalog.GetRelationBundle({"a", "missing"}).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetCatalogTest, ArtifactsAreTypedAndFirstWins) {
  DatasetCatalog catalog;
  EXPECT_EQ(catalog.Get<int>("k"), nullptr);
  EXPECT_EQ(catalog.misses(), 1);

  auto first = std::make_shared<const int>(7);
  EXPECT_EQ(*catalog.Put<int>("k", first), 7);
  // First-wins: the resident value survives, the latecomer is dropped.
  auto second = std::make_shared<const int>(9);
  EXPECT_EQ(catalog.Put<int>("k", second), first);
  EXPECT_EQ(*catalog.Get<int>("k"), 7);
  EXPECT_EQ(catalog.hits(), 1);

  // Key discipline makes cross-type access a bug; the catalog refuses to
  // reinterpret rather than returning a corrupt value.
  EXPECT_EQ(catalog.Get<double>("k"), nullptr);
}

}  // namespace
}  // namespace mwsj
