// Duplicate-avoidance rules, including a replay of the paper's Figure 3 /
// §6.2 example: on an 4x8 grid, the tuple (u1, v1, w1, x1) must be emitted
// by reducer 19 (1-based) — the cell containing the point (x1.x, u1.y).

#include <gtest/gtest.h>

#include "core/dedup.h"
#include "grid/grid_partition.h"

namespace mwsj {
namespace {

class Figure3Test : public ::testing::Test {
 protected:
  Figure3Test() {
    // 4 rows x 8 cols over [0,8]x[0,4]; paper ids are ours + 1.
    grid_ = GridPartition::Create(Rect(0, 0, 8, 4), 4, 8).value();
    u1_ = Rect::FromXYLB(1.3, 1.8, 0.3, 0.3);  // split: cell 18 only.
    v1_ = Rect::FromXYLB(1.55, 2.7, 0.25, 1.2);  // cells 10, 18.
    w1_ = Rect::FromXYLB(1.7, 3.5, 0.8, 1.0);    // cells 2, 3, 10, 11.
    x1_ = Rect::FromXYLB(2.2, 3.2, 0.3, 1.0);    // cells 3, 11.
  }

  StatusOr<GridPartition> grid_ = Status::Internal("uninitialized");
  Rect u1_, v1_, w1_, x1_;
};

TEST_F(Figure3Test, StartCells) {
  const GridPartition& g = grid_.value();
  EXPECT_EQ(g.CellOfRect(u1_) + 1, 18);
  EXPECT_EQ(g.CellOfRect(v1_) + 1, 10);
  EXPECT_EQ(g.CellOfRect(w1_) + 1, 2);
  EXPECT_EQ(g.CellOfRect(x1_) + 1, 3);
}

TEST_F(Figure3Test, ReferencePointIsX1xU1y) {
  const Rect* members[] = {&u1_, &v1_, &w1_, &x1_};
  const Point ref = MultiwayReferencePoint(members);
  EXPECT_DOUBLE_EQ(ref.x, 2.2);  // x1 is the rightmost start point.
  EXPECT_DOUBLE_EQ(ref.y, 1.8);  // u1 is the lowermost start point.
}

TEST_F(Figure3Test, OnlyReducer19EmitsTheTuple) {
  const GridPartition& g = grid_.value();
  const Rect* members[] = {&u1_, &v1_, &w1_, &x1_};
  int owners = 0;
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    if (OwnsTuple(g, cell, members)) {
      ++owners;
      EXPECT_EQ(cell + 1, 19);  // The paper's reducer 19.
    }
  }
  EXPECT_EQ(owners, 1);
}

TEST(DedupPairTest, OverlapPairOwnerIsStartOfIntersection) {
  // Figure 2(a)'s r3/r4: the overlap area starts in cell 14 of a 4x4 grid.
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const Rect r3 = Rect::FromXYLB(0.6, 1.4, 1.2, 0.9);   // rows 2-3, cols 0-1.
  const Rect r4 = Rect::FromXYLB(1.2, 0.8, 1.1, 0.5);   // row 3, cols 1-2.
  int owners = 0;
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    if (OwnsOverlapPair(g, cell, r3, r4)) {
      ++owners;
      EXPECT_EQ(cell + 1, 14);
    }
  }
  EXPECT_EQ(owners, 1);
}

TEST(DedupPairTest, NonOverlappingPairHasNoOwner) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const Rect a = Rect::FromXYLB(0.2, 3.8, 0.5, 0.5);
  const Rect b = Rect::FromXYLB(2.0, 1.0, 0.5, 0.5);
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    EXPECT_FALSE(OwnsOverlapPair(g, cell, a, b));
  }
}

TEST(DedupPairTest, RangePairOwnedOnceWithinEnlargedIntersection) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const Rect a = Rect::FromXYLB(0.5, 3.5, 0.4, 0.4);
  const Rect b = Rect::FromXYLB(1.2, 3.4, 0.4, 0.4);  // 0.3 to the right.
  const double d = 0.5;
  ASSERT_TRUE(WithinDistance(a, b, d));
  int owners = 0;
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    if (OwnsRangePair(g, cell, a, b, d)) ++owners;
  }
  EXPECT_EQ(owners, 1);
}

TEST(DedupPairTest, TouchingRectanglesStillOwnedExactlyOnce) {
  // Degenerate (zero-area) intersection from edge-touching rectangles.
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 2, 2).value();
  const Rect a = Rect::FromXYLB(0.5, 3.0, 1.0, 1.0);   // right edge x=1.5.
  const Rect b = Rect::FromXYLB(1.5, 3.25, 0.8, 0.5);  // left edge x=1.5.
  ASSERT_TRUE(Overlaps(a, b));
  int owners = 0;
  for (CellId cell = 0; cell < g.num_cells(); ++cell) {
    if (OwnsOverlapPair(g, cell, a, b)) ++owners;
  }
  EXPECT_EQ(owners, 1);
}

TEST(DedupPairTest, IntersectionStartOnGridLineOwnedByLeftUpperCell) {
  // The left/above boundary ownership convention in action: intersection
  // start exactly on the vertical grid line x=2 of a 2x2 grid over [0,4]².
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 2, 2).value();
  const Rect a = Rect::FromXYLB(1.0, 3.0, 2.0, 1.0);  // x in [1,3].
  const Rect b = Rect::FromXYLB(2.0, 3.5, 1.5, 1.0);  // x in [2,3.5].
  // Intersection starts at (2.0, 3.0): owned by the left cell (cell 0).
  EXPECT_TRUE(OwnsOverlapPair(g, 0, a, b));
  for (CellId cell = 1; cell < g.num_cells(); ++cell) {
    EXPECT_FALSE(OwnsOverlapPair(g, cell, a, b));
  }
}

}  // namespace
}  // namespace mwsj
