// Cross-algorithm equivalence: every distributed algorithm must produce
// exactly the brute-force output (duplicate-free) on randomized worlds
// sweeping query shapes, predicate mixes, grid sizes, rectangle scales and
// boundary-tie-inducing integer coordinates. This suite is the primary
// correctness arbiter for the whole library.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "common/random.h"
#include "core/runner.h"
#include "localjoin/brute_force.h"
#include "testing/world.h"

namespace mwsj {
namespace {

using testing::PredicateMix;
using testing::QueryShape;
using testing::WorldConfig;

struct Scenario {
  QueryShape shape;
  PredicateMix mix;
  bool integer_coords;
  const char* name;
};

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Scenario, int>> {};

std::vector<Algorithm> AlgorithmsUnderTest() {
  return {Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
          Algorithm::kControlledReplicate,
          Algorithm::kControlledReplicateInLimit};
}

TEST_P(EquivalenceTest, MatchesBruteForce) {
  const Scenario& scenario = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());

  WorldConfig config;
  config.shape = scenario.shape;
  config.mix = scenario.mix;
  config.integer_coords = scenario.integer_coords;
  config.seed = static_cast<uint64_t>(seed) * 7919 + 13;

  const Query query = testing::MakeWorldQuery(config);
  const std::vector<std::vector<Rect>> data =
      testing::MakeWorldData(config, query.num_relations());

  const std::vector<IdTuple> expected = BruteForceJoin(query, data);

  // Grid geometry varies with the seed: 1x1 (single reducer), skinny, and
  // square grids all must agree.
  const int grid_cases[][2] = {{1, 1}, {1, 4}, {3, 3}, {5, 2}, {4, 4}};
  const auto& grid = grid_cases[seed % 5];

  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = grid[0];
    options.grid_cols = grid[1];
    // Odd seeds also exercise quantile-placed (non-uniform) boundaries.
    options.partitioning =
        (seed % 2 == 1) ? Partitioning::kEquiDepth : Partitioning::kUniform;
    options.space = Rect(0, 0, config.space_size, config.space_size);
    StatusOr<JoinRunResult> result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tuples, expected)
        << AlgorithmName(algorithm) << " diverged from brute force on "
        << scenario.name << " seed=" << seed << " grid=" << grid[0] << "x"
        << grid[1] << " (" << result.value().tuples.size() << " vs "
        << expected.size() << " tuples)";
  }
}

constexpr Scenario kScenarios[] = {
    {QueryShape::kChain3, PredicateMix::kOverlapOnly, false, "chain3-overlap"},
    {QueryShape::kChain3, PredicateMix::kOverlapOnly, true,
     "chain3-overlap-int"},
    {QueryShape::kChain4, PredicateMix::kOverlapOnly, false, "chain4-overlap"},
    {QueryShape::kStar4, PredicateMix::kOverlapOnly, false, "star4-overlap"},
    {QueryShape::kCycle3, PredicateMix::kOverlapOnly, false, "cycle3-overlap"},
    {QueryShape::kChain3, PredicateMix::kRangeOnly, false, "chain3-range"},
    {QueryShape::kChain3, PredicateMix::kRangeOnly, true, "chain3-range-int"},
    {QueryShape::kChain4, PredicateMix::kRangeOnly, false, "chain4-range"},
    {QueryShape::kStar4, PredicateMix::kRangeOnly, false, "star4-range"},
    {QueryShape::kChain3, PredicateMix::kHybrid, false, "chain3-hybrid"},
    {QueryShape::kChain4, PredicateMix::kHybrid, false, "chain4-hybrid"},
    {QueryShape::kCycle3, PredicateMix::kHybrid, true, "cycle3-hybrid-int"},
};

std::string ScenarioName(
    const ::testing::TestParamInfo<std::tuple<Scenario, int>>& info) {
  std::string name = std::get<0>(info.param).name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorlds, EquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kScenarios),
                       ::testing::Range(0, 12)),
    ScenarioName);

// Degenerate inputs: all algorithms agree on empty and singleton relations.
// A five-relation chain exercises deeper subset enumeration in the
// marking oracle and longer cascades.
TEST(EquivalenceEdgeCases, FiveRelationChain) {
  QueryBuilder b;
  for (int i = 0; i < 5; ++i) b.AddRelation("R" + std::to_string(i + 1));
  b.AddOverlap(0, 1).AddRange(1, 2, 10).AddOverlap(2, 3).AddRange(3, 4, 6);
  const Query query = b.Build().value();

  Rng rng(77);
  std::vector<std::vector<Rect>> data(5);
  for (auto& relation : data) {
    for (int i = 0; i < 18; ++i) {
      const double l = rng.Uniform(0, 30);
      const double h = rng.Uniform(0, 30);
      relation.push_back(
          Rect::FromXYLB(rng.Uniform(0, 100 - l), rng.Uniform(h, 100), l, h));
    }
  }
  const auto expected = BruteForceJoin(query, data);
  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 3;
    options.grid_cols = 3;
    options.space = Rect(0, 0, 100, 100);
    const auto result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tuples, expected) << AlgorithmName(algorithm);
  }
}

// A "T"-shaped join graph (chain plus a branch off the middle).
TEST(EquivalenceEdgeCases, TreeShapedJoinGraph) {
  QueryBuilder b;
  for (int i = 0; i < 4; ++i) b.AddRelation("R" + std::to_string(i + 1));
  b.AddOverlap(0, 1).AddOverlap(1, 2).AddRange(1, 3, 12);
  const Query query = b.Build().value();

  Rng rng(91);
  std::vector<std::vector<Rect>> data(4);
  for (auto& relation : data) {
    for (int i = 0; i < 20; ++i) {
      const double l = rng.Uniform(0, 35);
      const double h = rng.Uniform(0, 35);
      relation.push_back(
          Rect::FromXYLB(rng.Uniform(0, 100 - l), rng.Uniform(h, 100), l, h));
    }
  }
  const auto expected = BruteForceJoin(query, data);
  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 4;
    options.grid_cols = 2;
    options.space = Rect(0, 0, 100, 100);
    const auto result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tuples, expected) << AlgorithmName(algorithm);
  }
}

TEST(EquivalenceEdgeCases, EmptyRelationProducesNoTuples) {
  WorldConfig config;
  const Query query = testing::MakeWorldQuery(config);
  std::vector<std::vector<Rect>> data =
      testing::MakeWorldData(config, query.num_relations());
  data[1].clear();  // Middle relation empty: join output must be empty.

  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.space = Rect(0, 0, 100, 100);
    StatusOr<JoinRunResult> result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().tuples.empty()) << AlgorithmName(algorithm);
  }
}

TEST(EquivalenceEdgeCases, SelfJoinWithSharedDataset) {
  // The paper's Q2s shape: one dataset playing all three roles.
  WorldConfig config;
  config.seed = 99;
  config.max_rects_per_relation = 25;
  const Query query = testing::MakeWorldQuery(config);
  const auto base = testing::MakeWorldData(config, 1);
  const std::vector<std::vector<Rect>> data = {base[0], base[0], base[0]};
  const std::vector<IdTuple> expected = BruteForceJoin(query, data);

  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 3;
    options.grid_cols = 3;
    options.space = Rect(0, 0, 100, 100);
    StatusOr<JoinRunResult> result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tuples, expected) << AlgorithmName(algorithm);
  }
}

TEST(EquivalenceEdgeCases, ThreadPoolMatchesSerialByteForByte) {
  // The whole pipeline — not just one engine job — must be invariant to
  // running on a worker pool: identical tuple vectors (same order, same
  // ids) and identical shuffle accounting for every algorithm.
  WorldConfig config;
  config.seed = 314;
  config.mix = PredicateMix::kHybrid;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  ThreadPool pool(4);
  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 4;
    options.grid_cols = 4;
    options.space = Rect(0, 0, config.space_size, config.space_size);

    const auto serial = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    options.context = ExecutionContext(&pool);
    const auto parallel = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    EXPECT_EQ(serial.value().tuples, parallel.value().tuples)
        << AlgorithmName(algorithm);
    ASSERT_EQ(serial.value().stats.jobs.size(),
              parallel.value().stats.jobs.size())
        << AlgorithmName(algorithm);
    for (size_t j = 0; j < serial.value().stats.jobs.size(); ++j) {
      const JobStats& s = serial.value().stats.jobs[j];
      const JobStats& p = parallel.value().stats.jobs[j];
      EXPECT_EQ(s.intermediate_records, p.intermediate_records)
          << AlgorithmName(algorithm) << " job " << j;
      EXPECT_EQ(s.intermediate_bytes, p.intermediate_bytes)
          << AlgorithmName(algorithm) << " job " << j;
      EXPECT_EQ(s.per_reducer_records, p.per_reducer_records)
          << AlgorithmName(algorithm) << " job " << j;
    }
  }
}

TEST(EquivalenceEdgeCases, CountOnlyMatchesMaterializedCount) {
  WorldConfig config;
  config.seed = 202;
  config.mix = PredicateMix::kHybrid;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  const auto expected = BruteForceJoin(query, data);

  for (Algorithm algorithm : AlgorithmsUnderTest()) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.grid_rows = 3;
    options.grid_cols = 3;
    options.space = Rect(0, 0, 100, 100);
    options.count_only = true;
    StatusOr<JoinRunResult> result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().tuples.empty()) << AlgorithmName(algorithm);
    EXPECT_EQ(result.value().num_tuples,
              static_cast<int64_t>(expected.size()))
        << AlgorithmName(algorithm);
  }
}

TEST(EquivalenceEdgeCases, CountOnlyRejectsDistinctIds) {
  WorldConfig config;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  RunnerOptions options;
  options.count_only = true;
  options.distinct_ids = true;
  options.space = Rect(0, 0, 100, 100);
  EXPECT_FALSE(RunSpatialJoin(query, data, options).ok());
}

TEST(EquivalenceEdgeCases, DistinctIdsFilterDropsRepeatedRectangles) {
  WorldConfig config;
  config.seed = 7;
  const Query query = testing::MakeWorldQuery(config);
  const auto base = testing::MakeWorldData(config, 1);
  const std::vector<std::vector<Rect>> data = {base[0], base[0], base[0]};

  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  options.space = Rect(0, 0, 100, 100);
  options.distinct_ids = true;
  StatusOr<JoinRunResult> result = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(result.ok());
  for (const IdTuple& t : result.value().tuples) {
    EXPECT_NE(t[0], t[1]);
    EXPECT_NE(t[1], t[2]);
    EXPECT_NE(t[0], t[2]);
  }
}

}  // namespace
}  // namespace mwsj
