// EXPLAIN report rendering tests.

#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/runner.h"
#include "testing/world.h"

namespace mwsj {
namespace {

TEST(ExplainTest, ReportsJobsCountersAndLoads) {
  testing::WorldConfig config;
  config.seed = 88;
  config.max_rects_per_relation = 40;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  options.grid_rows = 4;
  options.grid_cols = 4;
  options.space = Rect(0, 0, 100, 100);
  const auto result = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(result.ok());

  const std::string report = ExplainRun(query, result.value());
  EXPECT_NE(report.find("query: R1 Ov R2 AND R2 Ov R3"), std::string::npos);
  EXPECT_NE(report.find("crep_round1_mark"), std::string::npos);
  EXPECT_NE(report.find("crep_round2_join"), std::string::npos);
  EXPECT_NE(report.find("rectangles_replicated"), std::string::npos);
  EXPECT_NE(report.find("reducer load"), std::string::npos);
  EXPECT_NE(report.find("modeled cluster time"), std::string::npos);
}

TEST(ExplainTest, HandlesEmptyRun) {
  const Query query = MakeChainQuery(2, Predicate::Overlap()).value();
  JoinRunResult result;
  const std::string report = ExplainRun(query, result);
  EXPECT_NE(report.find("output tuples: 0"), std::string::npos);
}

}  // namespace
}  // namespace mwsj
