// Property test for the C-Rep round-1 marking decision: the production
// oracle (subset search with per-subset caches and R-tree probes) must
// agree with an exponential, literal transcription of conditions C1-C3 on
// randomized reducer inputs, for overlap, range and hybrid queries.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/controlled_replicate.h"
#include "testing/world.h"

namespace mwsj {
namespace {

// Literal reference implementation of §7.4/§8/§9: a rectangle is marked
// iff SOME rectangle-set containing it satisfies C1 (consistent), C2
// (boundary-edge members cross / have a foreign cell within d) and C3 (at
// least one inside/outside condition). Enumerates every subset of
// relations and every assignment — exponential, only for tiny inputs.
class ReferenceMarker {
 public:
  ReferenceMarker(const Query& query, const GridPartition& grid, CellId cell,
                  const std::vector<std::vector<LocalRect>>& rects)
      : query_(query), grid_(grid), cell_(cell), rects_(rects) {}

  bool IsMarked(int rel, size_t idx) const {
    const int m = query_.num_relations();
    for (uint32_t subset = 1; subset < (1u << m) - 1; ++subset) {
      if ((subset & (1u << rel)) == 0) continue;
      std::vector<int> members;
      for (int r = 0; r < m; ++r) {
        if (subset & (1u << r)) members.push_back(r);
      }
      std::vector<int64_t> assignment(members.size(), -1);
      if (TryAssign(subset, members, 0, rel, static_cast<int64_t>(idx),
                    assignment)) {
        return true;
      }
    }
    return false;
  }

 private:
  bool CrossesBoundary(const Rect& r) const {
    // Paper: overlaps a partition-cell other than `cell_`. With closed
    // cells this is equivalent to extending beyond the closed cell.
    return !grid_.CellRect(cell_).Contains(r);
  }

  bool HasForeignCellWithin(const Rect& r, double d) const {
    for (CellId c = 0; c < grid_.num_cells(); ++c) {
      if (c == cell_) continue;
      if (grid_.DistanceToCell(c, r) <= d) return true;
    }
    return false;
  }

  bool SatisfiesC2(uint32_t subset, int rel, const Rect& rect) const {
    for (int ci : query_.ConditionsOf(rel)) {
      const JoinCondition& c = query_.conditions()[static_cast<size_t>(ci)];
      const int other = (c.left == rel) ? c.right : c.left;
      if (subset & (1u << other)) continue;  // Internal condition.
      if (c.predicate.is_overlap()) {
        if (!CrossesBoundary(rect)) return false;
      } else {
        if (!HasForeignCellWithin(rect, c.predicate.distance())) return false;
      }
    }
    return true;
  }

  bool Consistent(uint32_t subset, const std::vector<int>& members,
                  const std::vector<int64_t>& assignment) const {
    for (const JoinCondition& c : query_.conditions()) {
      if ((subset & (1u << c.left)) == 0 || (subset & (1u << c.right)) == 0) {
        continue;
      }
      const Rect* left = nullptr;
      const Rect* right = nullptr;
      for (size_t k = 0; k < members.size(); ++k) {
        if (members[k] == c.left && assignment[k] >= 0) {
          left = &rects_[static_cast<size_t>(c.left)]
                        [static_cast<size_t>(assignment[k])]
                            .rect;
        }
        if (members[k] == c.right && assignment[k] >= 0) {
          right = &rects_[static_cast<size_t>(c.right)]
                         [static_cast<size_t>(assignment[k])]
                             .rect;
        }
      }
      if (left && right && !c.predicate.Evaluate(*left, *right)) return false;
    }
    return true;
  }

  bool TryAssign(uint32_t subset, const std::vector<int>& members,
                 size_t depth, int fixed_rel, int64_t fixed_idx,
                 std::vector<int64_t>& assignment) const {
    if (depth == members.size()) {
      // C3: at least one inside/outside condition must exist.
      bool has_boundary_condition = false;
      for (const JoinCondition& c : query_.conditions()) {
        const bool left_in = subset & (1u << c.left);
        const bool right_in = subset & (1u << c.right);
        if (left_in != right_in) has_boundary_condition = true;
      }
      return has_boundary_condition;
    }
    const int r = members[depth];
    const auto& list = rects_[static_cast<size_t>(r)];
    for (size_t i = 0; i < list.size(); ++i) {
      if (r == fixed_rel && static_cast<int64_t>(i) != fixed_idx) continue;
      if (!SatisfiesC2(subset, r, list[i].rect)) continue;
      assignment[depth] = static_cast<int64_t>(i);
      if (Consistent(subset, members, assignment) &&
          TryAssign(subset, members, depth + 1, fixed_rel, fixed_idx,
                    assignment)) {
        return true;
      }
      assignment[depth] = -1;
    }
    return false;
  }

  const Query& query_;
  const GridPartition& grid_;
  const CellId cell_;
  const std::vector<std::vector<LocalRect>>& rects_;
};

class MarkingOraclePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
// Params: (predicate mix index, seed).

TEST_P(MarkingOraclePropertyTest, MatchesLiteralConditions) {
  const int mix_index = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  testing::WorldConfig config;
  config.mix = static_cast<testing::PredicateMix>(mix_index);
  config.range_d = 10.0;
  config.max_rects_per_relation = 8;  // Tiny: the reference is exponential.
  config.max_dim = 45.0;
  config.seed = static_cast<uint64_t>(seed) * 131 + 7;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 3, 3).value();

  for (CellId cell = 0; cell < grid.num_cells(); ++cell) {
    // The reducer's view after Split.
    std::vector<std::vector<LocalRect>> cell_rects(data.size());
    for (size_t r = 0; r < data.size(); ++r) {
      for (size_t i = 0; i < data[r].size(); ++i) {
        if (Overlaps(data[r][i], grid.CellRect(cell))) {
          cell_rects[r].push_back(
              LocalRect{data[r][i], static_cast<int64_t>(i)});
        }
      }
    }

    std::vector<std::vector<int64_t>> marked =
        MarkRectanglesForCell(query, grid, cell, cell_rects);
    for (auto& ids : marked) std::sort(ids.begin(), ids.end());

    const ReferenceMarker reference(query, grid, cell, cell_rects);
    for (size_t r = 0; r < cell_rects.size(); ++r) {
      std::vector<int64_t> expected;
      for (size_t i = 0; i < cell_rects[r].size(); ++i) {
        if (grid.CellOfRect(cell_rects[r][i].rect) != cell) continue;
        if (reference.IsMarked(static_cast<int>(r), i)) {
          expected.push_back(cell_rects[r][i].id);
        }
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(marked[r], expected)
          << "relation " << r << " at cell " << cell << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, MarkingOraclePropertyTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 10)));

}  // namespace
}  // namespace mwsj
