// Sampling-based cascade-order optimizer tests.

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/runner.h"
#include "datagen/synthetic.h"
#include "localjoin/brute_force.h"

namespace mwsj {
namespace {

std::vector<Rect> Dataset(int64_t n, double dim, uint64_t seed) {
  SyntheticParams params;
  params.num_rectangles = n;
  params.x_max = params.y_max = 10'000;
  params.l_max = params.b_max = dim;
  params.seed = seed;
  return GenerateSynthetic(params).value();
}

TEST(SelectivityTest, DenserPredicatesScoreHigher) {
  QueryBuilder b;
  const int r1 = b.AddRelation("R1");
  const int r2 = b.AddRelation("R2");
  const int r3 = b.AddRelation("R3");
  b.AddOverlap(r1, r2).AddRange(r2, r3, 400);
  const Query q = b.Build().value();
  const std::vector<std::vector<Rect>> data = {
      Dataset(3000, 30, 1), Dataset(3000, 30, 2), Dataset(3000, 30, 3)};
  const std::vector<double> sel = EstimateSelectivities(q, data);
  ASSERT_EQ(sel.size(), 2u);
  // A 400-unit range predicate matches far more pairs than overlap of
  // 30-unit rectangles in a 10K space.
  EXPECT_GT(sel[1], 10 * sel[0]);
  EXPECT_GT(sel[0], 0);  // Smoothing keeps estimates positive.
}

TEST(SelectivityTest, EmptyRelationYieldsZero) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {{}, Dataset(100, 30, 1)};
  const std::vector<double> sel = EstimateSelectivities(q, data);
  EXPECT_DOUBLE_EQ(sel[0], 0);
}

TEST(OptimizerTest, PrefersSelectiveRelationFirstOnSkewedChain) {
  // R1 is small and sparse; R2/R3 are big and dense. Starting with the
  // R2xR3 join is catastrophically worse, so the optimizer must schedule
  // R1 within the first two relations (i.e., never join R2xR3 first).
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {
      Dataset(200, 20, 1), Dataset(8000, 150, 2), Dataset(8000, 150, 3)};
  const std::vector<int> order = OptimizeCascadeOrder(q, data);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_TRUE(order[0] == 0 || order[1] == 0)
      << "optimizer deferred the selective relation to the end";
}

TEST(OptimizerTest, OrderIsAlwaysValidForCascade) {
  // Star query: any order must keep the connectivity invariant.
  QueryBuilder b;
  const int center = b.AddRelation("C");
  const int l1 = b.AddRelation("L1");
  const int l2 = b.AddRelation("L2");
  const int l3 = b.AddRelation("L3");
  b.AddOverlap(center, l1).AddOverlap(center, l2).AddOverlap(center, l3);
  const Query q = b.Build().value();
  const std::vector<std::vector<Rect>> data = {
      Dataset(500, 40, 1), Dataset(100, 40, 2), Dataset(900, 40, 3),
      Dataset(300, 40, 4)};
  const std::vector<int> order = OptimizeCascadeOrder(q, data);
  ASSERT_EQ(order.size(), 4u);
  // Leaves are only connected through the center, so once two relations
  // are bound the center must be among them.
  EXPECT_TRUE(order[0] == center || order[1] == center);

  RunnerOptions options;
  options.algorithm = Algorithm::kTwoWayCascade;
  options.cascade_order = order;
  options.space = Rect(0, 0, 10'000, 10'000);
  const auto result = RunSpatialJoin(q, data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tuples, BruteForceJoin(q, data));
}

TEST(OptimizerTest, RunnerIntegrationMatchesBruteForce) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {
      Dataset(150, 60, 7), Dataset(400, 60, 8), Dataset(60, 60, 9)};
  RunnerOptions options;
  options.algorithm = Algorithm::kTwoWayCascade;
  options.optimize_cascade_order = true;
  options.space = Rect(0, 0, 10'000, 10'000);
  const auto result = RunSpatialJoin(q, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().tuples, BruteForceJoin(q, data));
}

TEST(OptimizerTest, ChoiceReducesIntermediateVolume) {
  // Compare the optimizer's order against the worst valid order on the
  // skewed instance: its cascade must shuffle fewer intermediate records.
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {
      Dataset(200, 20, 21), Dataset(6000, 120, 22), Dataset(6000, 120, 23)};

  auto intermediates = [&](std::vector<int> order) {
    RunnerOptions options;
    options.algorithm = Algorithm::kTwoWayCascade;
    options.cascade_order = std::move(order);
    options.count_only = true;
    options.space = Rect(0, 0, 10'000, 10'000);
    const auto result = RunSpatialJoin(q, data, options);
    EXPECT_TRUE(result.ok());
    return result.value().stats.TotalIntermediateRecords();
  };

  const std::vector<int> chosen = OptimizeCascadeOrder(q, data);
  EXPECT_LT(intermediates(chosen), intermediates({1, 2, 0}));
}

}  // namespace
}  // namespace mwsj
