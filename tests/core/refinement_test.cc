// Filter-and-refine pipeline (§1.1) over polygon datasets.

#include <gtest/gtest.h>

#include "core/refinement.h"

namespace mwsj {
namespace {

TEST(RefineTuplesTest, DropsMbrOnlyMatches) {
  QueryBuilder b;
  b.AddRelation("A");
  b.AddRelation("B");
  b.AddOverlap(0, 1);
  const Query q = b.Build().value();

  // `a` occupies the region below the square's main diagonal; `b_miss`
  // sits strictly above it, so the MBRs overlap but the shapes do not.
  const Polygon a({{0, 0}, {4, 0}, {4, 4}});
  const Polygon b_hit({{1, 0.5}, {4, 0.5}, {4, 2}});
  const Polygon b_miss({{0, 0.5}, {0, 4.5}, {3.5, 4.5}});
  ASSERT_TRUE(Overlaps(a.Mbr(), b_miss.Mbr()));
  ASSERT_FALSE(a.Intersects(b_miss));
  ASSERT_TRUE(a.Intersects(b_hit));

  const std::vector<std::vector<Polygon>> relations = {{a}, {b_hit, b_miss}};
  const std::vector<IdTuple> candidates = {{0, 0}, {0, 1}};
  EXPECT_EQ(RefineTuples(q, relations, candidates),
            (std::vector<IdTuple>{{0, 0}}));
}

TEST(RefineTuplesTest, RangePredicateUsesExactPolygonDistance) {
  QueryBuilder b;
  b.AddRelation("A");
  b.AddRelation("B");
  b.AddRange(0, 1, 1.0);
  const Query q = b.Build().value();

  // Corner-to-corner: MBRs are within 1.0 but the true shapes are not.
  const Polygon a({{0, 0}, {2, 0}, {0, 2}});            // Lower-left triangle.
  const Polygon far({{2.4, 2.4}, {3.5, 2.4}, {3.5, 3.5}});  // Across the gap.
  ASSERT_TRUE(WithinDistance(a.Mbr(), far.Mbr(), 1.0));
  ASSERT_GT(a.MinDistanceTo(far), 1.0);

  const std::vector<std::vector<Polygon>> relations = {{a}, {far}};
  EXPECT_TRUE(RefineTuples(q, relations, {{0, 0}}).empty());
}

TEST(RunFilterRefineJoinTest, EndToEndPipeline) {
  // city Ov forest ∧ forest Ov river — the paper's §1 motivating query
  // shape, on synthetic polygons.
  QueryBuilder b;
  const int city = b.AddRelation("city");
  const int forest = b.AddRelation("forest");
  const int river = b.AddRelation("river");
  b.AddOverlap(city, forest).AddOverlap(forest, river);
  const Query q = b.Build().value();

  const Polygon city0 = Polygon::RegularNGon({10, 10}, 3, 6);
  const Polygon city1 = Polygon::RegularNGon({50, 50}, 3, 6);
  const Polygon forest0 = Polygon::RegularNGon({13, 10}, 3, 8);
  // A thin river polygon flowing past the forest.
  const Polygon river0({{14, 2}, {16, 2}, {17, 18}, {15, 18}});

  const std::vector<std::vector<Polygon>> relations = {
      {city0, city1}, {forest0}, {river0}};
  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  options.grid_rows = 3;
  options.grid_cols = 3;
  const auto result = RunFilterRefineJoin(q, relations, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tuples, (std::vector<IdTuple>{{0, 0, 0}}));
  EXPECT_GE(result.value().candidate_tuples,
            static_cast<int64_t>(result.value().tuples.size()));
  EXPECT_FALSE(result.value().stats.jobs.empty());
}

TEST(RunFilterRefineJoinTest, PropagatesRunnerErrors) {
  QueryBuilder b;
  b.AddRelation("A");
  b.AddRelation("B");
  b.AddOverlap(0, 1);
  const Query q = b.Build().value();
  RunnerOptions options;
  options.grid_rows = -1;
  const auto result = RunFilterRefineJoin(
      q, {{Polygon::RegularNGon({1, 1}, 1, 4)},
          {Polygon::RegularNGon({1, 1}, 1, 4)}},
      options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace mwsj
