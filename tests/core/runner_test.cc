// Runner façade: validation, statistics invariants the paper relies on,
// cascade order handling, and parallel-pool determinism.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/runner.h"
#include "datagen/synthetic.h"
#include "localjoin/brute_force.h"
#include "testing/world.h"

namespace mwsj {
namespace {

TEST(RunnerValidationTest, RelationCountMustMatchQuery) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  RunnerOptions options;
  const auto result = RunSpatialJoin(q, {{}, {}}, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunnerValidationTest, DeclaredSpaceMustContainData) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  RunnerOptions options;
  options.space = Rect(0, 0, 10, 10);
  const std::vector<std::vector<Rect>> data = {
      {Rect::FromXYLB(50, 50, 1, 1)}, {Rect::FromXYLB(1, 1, 1, 1)}};
  EXPECT_FALSE(RunSpatialJoin(q, data, options).ok());
}

TEST(RunnerValidationTest, BadGridIsRejected) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  RunnerOptions options;
  options.grid_rows = 0;
  const std::vector<std::vector<Rect>> data = {{Rect::FromXYLB(1, 2, 1, 1)},
                                               {Rect::FromXYLB(1, 2, 1, 1)}};
  EXPECT_FALSE(RunSpatialJoin(q, data, options).ok());
}

TEST(RunnerValidationTest, DefaultSpaceIsComputedFromData) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  RunnerOptions options;  // No space set.
  const std::vector<std::vector<Rect>> data = {{Rect::FromXYLB(5, 6, 1, 1)},
                                               {Rect::FromXYLB(5.5, 6, 1, 1)}};
  const auto result = RunSpatialJoin(q, data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tuples, (std::vector<IdTuple>{{0, 0}}));
}

TEST(RunnerValidationTest, EmptyDataWithDefaultSpaceWorks) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  RunnerOptions options;
  const auto result = RunSpatialJoin(q, {{}, {}}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().tuples.empty());
}

TEST(ComputeBoundingSpaceTest, CoversAllRelationsAndFixesDegeneracy) {
  const Rect space = ComputeBoundingSpace(
      {{Rect::FromXYLB(0, 5, 2, 2)}, {Rect::FromXYLB(10, 20, 3, 3)}});
  EXPECT_TRUE(space.Contains(Rect::FromXYLB(0, 5, 2, 2)));
  EXPECT_TRUE(space.Contains(Rect::FromXYLB(10, 20, 3, 3)));
  // A single degenerate rectangle still yields a positive-area space.
  const Rect degenerate =
      ComputeBoundingSpace({{Rect::FromPoint(Point{3, 3})}});
  EXPECT_GT(degenerate.Area(), 0);
}

// The statistics relationships the paper's evaluation narrates: C-Rep
// replicates no more rectangles than All-Rep, and C-Rep-L communicates no
// more post-replication copies than C-Rep (§7.10: "the number of
// replicated rectangles remain the same; C-Rep-L only determines the limit
// to which a rectangle is replicated").
TEST(RunnerStatsTest, ReplicationCounterInvariants) {
  testing::WorldConfig config;
  config.seed = 321;
  config.max_rects_per_relation = 40;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  auto run = [&](Algorithm a) {
    RunnerOptions options;
    options.algorithm = a;
    options.grid_rows = 4;
    options.grid_cols = 4;
    options.space = Rect(0, 0, 100, 100);
    return RunSpatialJoin(query, data, options).value();
  };

  const JoinRunResult all_rep = run(Algorithm::kAllReplicate);
  const JoinRunResult crep = run(Algorithm::kControlledReplicate);
  const JoinRunResult crepl = run(Algorithm::kControlledReplicateInLimit);

  const int64_t all_marked =
      all_rep.stats.UserCounter(kCounterRectanglesReplicated);
  const int64_t crep_marked =
      crep.stats.UserCounter(kCounterRectanglesReplicated);
  const int64_t crepl_marked =
      crepl.stats.UserCounter(kCounterRectanglesReplicated);
  EXPECT_LE(crep_marked, all_marked);
  EXPECT_EQ(crep_marked, crepl_marked);  // Same marking decision.

  const int64_t crep_after =
      crep.stats.UserCounter(kCounterRectanglesAfterReplication);
  const int64_t crepl_after =
      crepl.stats.UserCounter(kCounterRectanglesAfterReplication);
  const int64_t all_after =
      all_rep.stats.UserCounter(kCounterRectanglesAfterReplication);
  EXPECT_LE(crepl_after, crep_after);
  EXPECT_LE(crep_after, all_after);

  // C-Rep runs two jobs; All-Rep runs one.
  EXPECT_EQ(all_rep.stats.jobs.size(), 1u);
  EXPECT_EQ(crep.stats.jobs.size(), 2u);
}

TEST(RunnerStatsTest, CascadeRunsOneJobPerAdditionalRelation) {
  testing::WorldConfig config;
  config.shape = testing::QueryShape::kChain4;
  config.seed = 11;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  RunnerOptions options;
  options.algorithm = Algorithm::kTwoWayCascade;
  options.space = Rect(0, 0, 100, 100);
  const auto result = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.jobs.size(), 3u);
}

TEST(RunnerCascadeTest, ExplicitOrderMatchesDefault) {
  testing::WorldConfig config;
  config.seed = 5;
  const Query query = testing::MakeWorldQuery(config);  // Chain3.
  const auto data = testing::MakeWorldData(config, query.num_relations());
  const auto expected = BruteForceJoin(query, data);

  for (const std::vector<int>& order :
       {std::vector<int>{0, 1, 2}, std::vector<int>{2, 1, 0},
        std::vector<int>{1, 0, 2}, std::vector<int>{1, 2, 0}}) {
    RunnerOptions options;
    options.algorithm = Algorithm::kTwoWayCascade;
    options.space = Rect(0, 0, 100, 100);
    options.cascade_order = order;
    const auto result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tuples, expected);
  }
}

TEST(RunnerCascadeTest, InvalidOrdersAreRejected) {
  const Query query = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {{Rect::FromXYLB(1, 2, 1, 1)},
                                               {Rect::FromXYLB(1, 2, 1, 1)},
                                               {Rect::FromXYLB(1, 2, 1, 1)}};
  for (const std::vector<int>& order :
       {std::vector<int>{0, 1},          // Not all relations.
        std::vector<int>{0, 0, 1},       // Not a permutation.
        std::vector<int>{0, 2, 1},       // R3 not connected to R1.
        std::vector<int>{0, 5, 1}}) {    // Out of range.
    RunnerOptions options;
    options.algorithm = Algorithm::kTwoWayCascade;
    options.cascade_order = order;
    EXPECT_FALSE(RunSpatialJoin(query, data, options).ok());
  }
}

TEST(RunnerPoolTest, ParallelExecutionIsDeterministic) {
  testing::WorldConfig config;
  config.seed = 1234;
  config.max_rects_per_relation = 60;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  RunnerOptions serial;
  serial.algorithm = Algorithm::kControlledReplicate;
  serial.space = Rect(0, 0, 100, 100);
  const auto serial_result = RunSpatialJoin(query, data, serial);
  ASSERT_TRUE(serial_result.ok());

  ThreadPool pool(4);
  RunnerOptions parallel = serial;
  parallel.context = ExecutionContext(&pool);
  const auto parallel_result = RunSpatialJoin(query, data, parallel);
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_EQ(serial_result.value().tuples, parallel_result.value().tuples);
}

TEST(AlgorithmNameTest, AllNamesAreStable) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kBruteForce), "BruteForce");
  EXPECT_STREQ(AlgorithmName(Algorithm::kTwoWayCascade), "2-way Cascade");
  EXPECT_STREQ(AlgorithmName(Algorithm::kAllReplicate), "All-Replicate");
  EXPECT_STREQ(AlgorithmName(Algorithm::kControlledReplicate), "C-Rep");
  EXPECT_STREQ(AlgorithmName(Algorithm::kControlledReplicateInLimit),
               "C-Rep-L");
}

}  // namespace
}  // namespace mwsj
