// JobScheduler: submit/wait parity with the blocking wrapper, FIFO
// admission with bounded queueing and cancellation, concurrent
// mixed-algorithm stress with per-job attribution, and DatasetCatalog
// reuse across repeat queries. The stress suite is what the CI
// scheduler-stress job runs under TSan (`ctest -R Scheduler`).

#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/dataset_catalog.h"
#include "core/runner.h"
#include "core/scheduler.h"
#include "mapreduce/fault.h"
#include "mapreduce/stats_json.h"
#include "testing/world.h"

namespace mwsj {
namespace {

using testing::MakeWorldData;
using testing::MakeWorldQuery;
using testing::PredicateMix;
using testing::QueryShape;
using testing::WorldConfig;

uint64_t SeedBase() {
  const char* env = std::getenv("MWSJ_SCHED_SEED_BASE");
  return env != nullptr ? static_cast<uint64_t>(std::atoll(env)) : 0;
}

WorldConfig StressWorld(int i) {
  WorldConfig config;
  config.shape = static_cast<QueryShape>(i % 4);
  config.mix = static_cast<PredicateMix>(i % 3);
  config.integer_coords = (i % 2) == 1;
  config.seed = SeedBase() + 100 + static_cast<uint64_t>(i);
  return config;
}

TEST(SchedulerTest, SubmitWaitMatchesBlockingRunPerAlgorithm) {
  WorldConfig config;
  config.shape = QueryShape::kStar4;
  config.mix = PredicateMix::kHybrid;
  config.seed = SeedBase() + 7;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  ThreadPool pool(4);
  SchedulerOptions sched_options;
  sched_options.pool = &pool;
  JobScheduler scheduler(sched_options);

  for (Algorithm algorithm :
       {Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
        Algorithm::kControlledReplicate,
        Algorithm::kControlledReplicateInLimit}) {
    RunnerOptions options;
    options.algorithm = algorithm;

    const StatusOr<JoinRunResult> serial = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(serial.ok()) << serial.status().message();

    JobSpec spec;
    spec.query = query;
    spec.relations = data;
    spec.options = options;
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    ASSERT_TRUE(handle.ok()) << handle.status().message();
    const StatusOr<JoinRunResult>& scheduled = handle.value().Wait();
    ASSERT_TRUE(scheduled.ok()) << scheduled.status().message();

    EXPECT_EQ(scheduled.value().tuples, serial.value().tuples)
        << AlgorithmName(algorithm);
    EXPECT_EQ(scheduled.value().num_tuples, serial.value().num_tuples);
    // Scheduling must not change what the jobs computed, only attribute it.
    ASSERT_EQ(scheduled.value().stats.jobs.size(),
              serial.value().stats.jobs.size());
    for (size_t j = 0; j < serial.value().stats.jobs.size(); ++j) {
      EXPECT_EQ(scheduled.value().stats.jobs[j].intermediate_records,
                serial.value().stats.jobs[j].intermediate_records);
      EXPECT_EQ(scheduled.value().stats.jobs[j].per_reducer_records,
                serial.value().stats.jobs[j].per_reducer_records);
      EXPECT_EQ(scheduled.value().stats.jobs[j].job_id, handle.value().id());
      EXPECT_EQ(serial.value().stats.jobs[j].job_id, -1);
    }
  }

  const JobScheduler::Counters counters = scheduler.counters();
  EXPECT_EQ(counters.submitted, 4);
  EXPECT_EQ(counters.succeeded, 4);
  EXPECT_EQ(counters.failed, 0);
}

TEST(SchedulerTest, ProcessShuffleBudgetClampsConcurrentJobs) {
  WorldConfig config;
  config.seed = SeedBase() + 23;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  // A process-wide budget is divided across the driver slots so the fleet
  // cannot jointly exceed it; each job's resolved budget lands in
  // JobStats::spill.budget_bytes.
  SchedulerOptions sched_options;
  sched_options.shuffle_memory_budget = 40000;
  sched_options.max_in_flight = 4;
  JobScheduler scheduler(sched_options);

  auto submit = [&](int64_t job_budget) {
    JobSpec spec;
    spec.query = query;
    spec.relations = data;
    spec.options.algorithm = Algorithm::kControlledReplicate;
    spec.options.context.options.shuffle_memory_budget = job_budget;
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    EXPECT_TRUE(handle.ok()) << handle.status().message();
    const StatusOr<JoinRunResult>& result = handle.value().Wait();
    EXPECT_TRUE(result.ok()) << result.status().message();
    return result.value().stats;
  };

  // No per-job budget: the job runs under its 1/max_in_flight share.
  for (const JobStats& job : submit(0).jobs) {
    EXPECT_EQ(job.spill.budget_bytes, 10000) << job.job_name;
  }
  // A job asking for more than its share is clamped down to it.
  for (const JobStats& job : submit(1 << 30).jobs) {
    EXPECT_EQ(job.spill.budget_bytes, 10000) << job.job_name;
  }
  // A job asking for less keeps its own tighter budget.
  for (const JobStats& job : submit(2048).jobs) {
    EXPECT_EQ(job.spill.budget_bytes, 2048) << job.job_name;
  }

  // Inline execution runs one job at a time, so it gets the whole budget.
  SchedulerOptions inline_options;
  inline_options.shuffle_memory_budget = 40000;
  inline_options.inline_execution = true;
  JobScheduler inline_scheduler(inline_options);
  JobSpec spec;
  spec.query = query;
  spec.relations = data;
  spec.options.algorithm = Algorithm::kControlledReplicate;
  StatusOr<JobHandle> handle = inline_scheduler.Submit(std::move(spec));
  ASSERT_TRUE(handle.ok()) << handle.status().message();
  const StatusOr<JoinRunResult>& result = handle.value().Wait();
  ASSERT_TRUE(result.ok()) << result.status().message();
  for (const JobStats& job : result.value().stats.jobs) {
    EXPECT_EQ(job.spill.budget_bytes, 40000) << job.job_name;
  }
}

TEST(SchedulerTest, InlineExecutionResolvesBeforeSubmitReturns) {
  // inline_execution spawns no drivers; the job runs on the submitting
  // thread, so the handle is already terminal when Submit returns. This
  // is the mode the blocking wrapper uses for every RunSpatialJoin call.
  WorldConfig config;
  config.seed = SeedBase() + 11;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  SchedulerOptions sched_options;
  sched_options.inline_execution = true;
  JobScheduler scheduler(sched_options);

  JobSpec spec;
  spec.query = query;
  spec.borrowed_relations = &data;
  StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
  ASSERT_TRUE(handle.ok()) << handle.status().message();
  EXPECT_EQ(handle.value().status(), JobState::kSucceeded);

  const StatusOr<JoinRunResult> serial =
      RunSpatialJoin(query, data, RunnerOptions{});
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(handle.value().Wait().value().tuples, serial.value().tuples);

  const JobScheduler::Counters counters = scheduler.counters();
  EXPECT_EQ(counters.submitted, 1);
  EXPECT_EQ(counters.succeeded, 1);
}

TEST(SchedulerTest, RejectsMalformedSpecs) {
  JobScheduler scheduler(SchedulerOptions{});
  WorldConfig config;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  {
    JobSpec spec;  // No query at all.
    EXPECT_EQ(scheduler.Submit(std::move(spec)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    JobSpec spec;  // Two input sources.
    spec.query = query;
    spec.relations = data;
    spec.borrowed_relations = &data;
    EXPECT_EQ(scheduler.Submit(std::move(spec)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    JobSpec spec;  // Named datasets but no catalog anywhere.
    spec.query = query;
    spec.dataset_names = {"a", "b", "c"};
    EXPECT_EQ(scheduler.Submit(std::move(spec)).status().code(),
              StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(scheduler.counters().submitted, 0);
}

TEST(SchedulerTest, NameCountMustMatchQueryRelations) {
  DatasetCatalog catalog;
  catalog.PutDataset("only", std::vector<Rect>{});
  SchedulerOptions sched_options;
  sched_options.catalog = &catalog;
  JobScheduler scheduler(sched_options);

  JobSpec spec;
  spec.query = MakeWorldQuery(WorldConfig{});  // 3 relations.
  spec.dataset_names = {"only"};
  EXPECT_EQ(scheduler.Submit(std::move(spec)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, BoundedAdmissionFifoAndQueuedCancel) {
  WorldConfig config;
  config.seed = SeedBase() + 3;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  // Deterministically park the single driver: the first job crashes its
  // first map attempt, and the retry policy's injected sleep blocks until
  // the test releases it. Everything submitted meanwhile must stay queued.
  FaultPlan faults;
  faults.Inject(FaultPhase::kMap, 0, 0, FaultKind::kCrash);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  RetryPolicy retry;
  retry.sleep = [released](double) { released.wait(); };

  SchedulerOptions sched_options;
  sched_options.max_in_flight = 1;
  sched_options.max_queued = 2;
  JobScheduler scheduler(sched_options);

  JobSpec blocking;
  blocking.query = query;
  blocking.relations = data;
  blocking.options.context.faults = &faults;
  blocking.options.context.retry = &retry;
  StatusOr<JobHandle> first = scheduler.Submit(std::move(blocking));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().id(), 1);
  while (first.value().status() != JobState::kRunning) {
    std::this_thread::yield();
  }

  auto plain_spec = [&] {
    JobSpec spec;
    spec.query = query;
    spec.relations = data;
    return spec;
  };
  StatusOr<JobHandle> second = scheduler.Submit(plain_spec());
  StatusOr<JobHandle> third = scheduler.Submit(plain_spec());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(second.value().id(), 2);
  EXPECT_EQ(third.value().id(), 3);
  EXPECT_EQ(second.value().status(), JobState::kQueued);
  EXPECT_EQ(third.value().status(), JobState::kQueued);

  // Queue (capacity 2) is full: admission control rejects, not blocks.
  StatusOr<JobHandle> fourth = scheduler.Submit(plain_spec());
  EXPECT_EQ(fourth.status().code(), StatusCode::kFailedPrecondition);

  // A queued job can be cancelled; a second cancel is a no-op.
  EXPECT_TRUE(second.value().Cancel());
  EXPECT_FALSE(second.value().Cancel());
  EXPECT_EQ(second.value().status(), JobState::kCancelled);
  EXPECT_FALSE(first.value().Cancel());  // Running: never interrupted.

  release.set_value();
  scheduler.Drain();

  // The crashed-then-retried job still produced its exact output —
  // exactly-once semantics survive scheduling.
  const StatusOr<JoinRunResult>& recovered = first.value().Wait();
  ASSERT_TRUE(recovered.ok());
  const StatusOr<JoinRunResult> serial =
      RunSpatialJoin(query, data, RunnerOptions{});
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(recovered.value().tuples, serial.value().tuples);
  EXPECT_GT(recovered.value().stats.jobs.at(0).map_faults.retries, 0);

  EXPECT_EQ(second.value().Wait().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(third.value().Wait().ok());

  const JobScheduler::Counters counters = scheduler.counters();
  EXPECT_EQ(counters.submitted, 3);
  EXPECT_EQ(counters.rejected, 1);
  EXPECT_EQ(counters.succeeded, 2);
  EXPECT_EQ(counters.cancelled, 1);
}

TEST(SchedulerStressTest, ConcurrentMixedJobsMatchSerialByteForByte) {
  // >= 8 jobs with mixed algorithms, shapes, predicate mixes, and
  // coordinate regimes, all interleaved on one shared pool and tracer.
  // Every job's tuples must equal its own serial baseline, and stats and
  // trace spans must attribute to the right submission id.
  constexpr int kJobs = 12;
  const Algorithm kAlgorithms[] = {
      Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
      Algorithm::kControlledReplicate,
      Algorithm::kControlledReplicateInLimit};

  std::vector<Query> queries;
  std::vector<std::vector<std::vector<Rect>>> datasets;
  std::vector<StatusOr<JoinRunResult>> serial;
  for (int i = 0; i < kJobs; ++i) {
    const WorldConfig config = StressWorld(i);
    queries.push_back(MakeWorldQuery(config));
    datasets.push_back(MakeWorldData(config, queries.back().num_relations()));
    RunnerOptions options;
    options.algorithm = kAlgorithms[i % 4];
    serial.push_back(RunSpatialJoin(queries[i], datasets[i], options));
    ASSERT_TRUE(serial[i].ok()) << serial[i].status().message();
  }

  ThreadPool pool(4);
  Tracer tracer;
  SchedulerOptions sched_options;
  sched_options.pool = &pool;
  sched_options.tracer = &tracer;
  sched_options.max_in_flight = 4;
  JobScheduler scheduler(sched_options);

  std::vector<JobHandle> handles;
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.query = queries[i];
    spec.borrowed_relations = &datasets[i];
    spec.options.algorithm = kAlgorithms[i % 4];
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    ASSERT_TRUE(handle.ok()) << handle.status().message();
    handles.push_back(std::move(handle.value()));
  }

  for (int i = 0; i < kJobs; ++i) {
    const StatusOr<JoinRunResult>& result = handles[i].Wait();
    ASSERT_TRUE(result.ok()) << "job " << i << ": "
                             << result.status().message();
    EXPECT_EQ(result.value().tuples, serial[i].value().tuples) << "job " << i;
    EXPECT_EQ(result.value().num_tuples, serial[i].value().num_tuples);
    for (const JobStats& job : result.value().stats.jobs) {
      EXPECT_EQ(job.job_id, handles[i].id());
    }
    // The rendered stats carry the id too.
    EXPECT_NE(RunStatsToJson(result.value().stats)
                  .find("\"job_id\": " + std::to_string(handles[i].id())),
              std::string::npos);
  }

  // The shared trace distinguishes the interleaved jobs by a "job" arg.
  const std::string trace = tracer.ToJson();
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_NE(trace.find("\"job\": " + std::to_string(handles[i].id())),
              std::string::npos)
        << "no spans attributed to job " << handles[i].id();
  }

  const JobScheduler::Counters counters = scheduler.counters();
  EXPECT_EQ(counters.submitted, kJobs);
  EXPECT_EQ(counters.succeeded, kJobs);
}

TEST(SchedulerCatalogTest, RepeatQueryReusesResidentArtifacts) {
  WorldConfig config;
  config.shape = QueryShape::kChain3;
  config.seed = SeedBase() + 41;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  DatasetCatalog catalog;
  const std::vector<std::string> names = {"lakes", "roads", "parks"};
  for (size_t r = 0; r < names.size(); ++r) {
    catalog.PutDataset(names[r], data[r]);
  }

  SchedulerOptions sched_options;
  sched_options.catalog = &catalog;
  JobScheduler scheduler(sched_options);

  auto submit = [&](Algorithm algorithm) {
    JobSpec spec;
    spec.query = query;
    spec.dataset_names = names;
    spec.options.algorithm = algorithm;
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    EXPECT_TRUE(handle.ok()) << handle.status().message();
    return handle.value().Take();
  };

  // Cold run: bundle, grid, and C-Rep round-1 marking all miss and are
  // installed.
  const StatusOr<JoinRunResult> cold =
      submit(Algorithm::kControlledReplicate);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  EXPECT_EQ(cold.value().stats.catalog_hits, 0);
  EXPECT_EQ(cold.value().stats.catalog_misses, 3);

  // Identical repeat: everything is resident — ingest, grid build, and the
  // whole round-1 job are skipped, and the output is still identical.
  const StatusOr<JoinRunResult> warm =
      submit(Algorithm::kControlledReplicate);
  ASSERT_TRUE(warm.ok()) << warm.status().message();
  EXPECT_EQ(warm.value().stats.catalog_hits, 3);
  EXPECT_EQ(warm.value().stats.catalog_misses, 0);
  EXPECT_EQ(warm.value().tuples, cold.value().tuples);
  // One fewer MR job ran: round 1 was served from the catalog.
  EXPECT_EQ(warm.value().stats.jobs.size(),
            cold.value().stats.jobs.size() - 1);
  const std::string json = RunStatsToJson(warm.value().stats);
  EXPECT_NE(json.find("\"catalog\": {\"hits\": 3, \"misses\": 0}"),
            std::string::npos)
      << json;

  // C-Rep-L shares the grid and the round-1 marking with C-Rep (marking
  // does not depend on the limit options), but computes its own round 2.
  const StatusOr<JoinRunResult> limit =
      submit(Algorithm::kControlledReplicateInLimit);
  ASSERT_TRUE(limit.ok()) << limit.status().message();
  EXPECT_EQ(limit.value().stats.catalog_hits, 3);
  EXPECT_EQ(limit.value().tuples, cold.value().tuples);

  // Replacing one dataset bumps its epoch: derived keys change, so the
  // next run rebuilds instead of serving stale artifacts — and the stale
  // bundle, grid, and round-1 marking are evicted, not stranded.
  catalog.PutDataset("roads", data[1]);
  EXPECT_EQ(catalog.evictions(), 3);
  const StatusOr<JoinRunResult> bumped =
      submit(Algorithm::kControlledReplicate);
  ASSERT_TRUE(bumped.ok()) << bumped.status().message();
  EXPECT_EQ(bumped.value().stats.catalog_hits, 0);
  EXPECT_EQ(bumped.value().stats.catalog_misses, 3);
  EXPECT_EQ(bumped.value().tuples, cold.value().tuples);
}

TEST(SchedulerCatalogTest, CollidingCanonicalFormsNeverShareArtifacts) {
  // Regression (review): the canonical form relabels relations by sorted
  // name and forgets the name-to-position binding, while datasets bind by
  // position. These two queries share a canonical form — chain A-B-C vs.
  // the same chain registered [B, A, C] with conditions (B,A),(B,C) — and
  // are submitted over the same positional dataset list, yet they execute
  // different joins (d2⋈d3 vs. d1⋈d3 on the second condition). A key
  // without the rank permutation served the first job's C-Rep round-1
  // marking to the second, silently corrupting its output.
  QueryBuilder chain;
  chain.AddRelation("A");
  chain.AddRelation("B");
  chain.AddRelation("C");
  chain.AddOverlap(0, 1).AddOverlap(1, 2);
  const Query q1 = chain.Build().value();

  QueryBuilder relabeled;
  relabeled.AddRelation("B");
  relabeled.AddRelation("A");
  relabeled.AddRelation("C");
  relabeled.AddOverlap(0, 1).AddOverlap(0, 2);
  const Query q2 = relabeled.Build().value();
  ASSERT_EQ(q1.CanonicalKey(), q2.CanonicalKey());

  // Small rectangles relative to the 8x8 grid cells: saturated markings
  // (everything replicated everywhere) would mask a served-stale marking,
  // since over-replication is harmless after duplicate avoidance.
  WorldConfig config;
  config.seed = SeedBase() + 23;
  config.max_dim = 12.0;
  config.max_rects_per_relation = 80;
  const auto data = MakeWorldData(config, 3);

  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  const StatusOr<JoinRunResult> serial1 = RunSpatialJoin(q1, data, options);
  const StatusOr<JoinRunResult> serial2 = RunSpatialJoin(q2, data, options);
  ASSERT_TRUE(serial1.ok());
  ASSERT_TRUE(serial2.ok());
  // The two submissions really compute different joins.
  ASSERT_NE(serial1.value().tuples, serial2.value().tuples);

  DatasetCatalog catalog;
  const std::vector<std::string> names = {"d1", "d2", "d3"};
  for (size_t r = 0; r < names.size(); ++r) {
    catalog.PutDataset(names[r], data[r]);
  }
  SchedulerOptions sched_options;
  sched_options.catalog = &catalog;
  JobScheduler scheduler(sched_options);

  auto submit = [&](const Query& query) {
    JobSpec spec;
    spec.query = query;
    spec.dataset_names = names;
    spec.options = options;
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    EXPECT_TRUE(handle.ok()) << handle.status().message();
    return handle.value().Take();
  };

  const StatusOr<JoinRunResult> first = submit(q1);
  const StatusOr<JoinRunResult> second = submit(q2);
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(first.value().tuples, serial1.value().tuples);
  EXPECT_EQ(second.value().tuples, serial2.value().tuples);
  // The second submission reuses only the (query-independent) bundle; its
  // grid and round-1 marking keys differ in the rank permutation, so the
  // first job's artifacts are not eligible.
  EXPECT_EQ(second.value().stats.catalog_hits, 1);
  EXPECT_EQ(second.value().stats.catalog_misses, 2);
}

TEST(SchedulerCatalogTest, SelfJoinRoleBindingsNeverShareArtifacts) {
  // The harder variant of the same trap: one dataset under one name in
  // every role, so even a rank-ordered dataset list renders identically.
  // A path centered at position 1 vs. position 0 shares the canonical
  // form and every name@epoch, and only the rank permutation separates
  // the keys; the outputs differ in which tuple slot holds the center.
  QueryBuilder center1;
  center1.AddRelation("R");
  center1.AddRelation("R");
  center1.AddRelation("R");
  center1.AddOverlap(0, 1).AddOverlap(1, 2);
  const Query path1 = center1.Build().value();

  QueryBuilder center0;
  center0.AddRelation("R");
  center0.AddRelation("R");
  center0.AddRelation("R");
  center0.AddOverlap(0, 1).AddOverlap(0, 2);
  const Query path0 = center0.Build().value();
  ASSERT_EQ(path1.CanonicalKey(), path0.CanonicalKey());

  WorldConfig config;
  config.seed = SeedBase() + 29;
  config.max_dim = 12.0;
  config.max_rects_per_relation = 80;
  const auto one = MakeWorldData(config, 1);
  const std::vector<std::vector<Rect>> data = {one[0], one[0], one[0]};

  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  const StatusOr<JoinRunResult> serial1 = RunSpatialJoin(path1, data, options);
  const StatusOr<JoinRunResult> serial0 = RunSpatialJoin(path0, data, options);
  ASSERT_TRUE(serial1.ok());
  ASSERT_TRUE(serial0.ok());

  DatasetCatalog catalog;
  catalog.PutDataset("roads", one[0]);
  SchedulerOptions sched_options;
  sched_options.catalog = &catalog;
  JobScheduler scheduler(sched_options);

  auto submit = [&](const Query& query) {
    JobSpec spec;
    spec.query = query;
    spec.dataset_names = {"roads", "roads", "roads"};
    spec.options = options;
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    EXPECT_TRUE(handle.ok()) << handle.status().message();
    return handle.value().Take();
  };

  const StatusOr<JoinRunResult> first = submit(path1);
  const StatusOr<JoinRunResult> second = submit(path0);
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(first.value().tuples, serial1.value().tuples);
  EXPECT_EQ(second.value().tuples, serial0.value().tuples);
  // Only the bundle (keyed on data alone) is shared across the two role
  // bindings; the rank permutation separates every derived artifact.
  EXPECT_EQ(second.value().stats.catalog_hits, 1);
  EXPECT_EQ(second.value().stats.catalog_misses, 2);
}

TEST(SchedulerCatalogTest, InlineRelationsNeverTouchTheCatalog) {
  // Inline (non-catalog) inputs have no sound cache identity; a scheduler
  // with a catalog must not let such jobs read or pollute it.
  WorldConfig config;
  config.seed = SeedBase() + 5;
  const Query query = MakeWorldQuery(config);
  const auto data = MakeWorldData(config, query.num_relations());

  DatasetCatalog catalog;
  SchedulerOptions sched_options;
  sched_options.catalog = &catalog;
  JobScheduler scheduler(sched_options);

  for (int round = 0; round < 2; ++round) {
    JobSpec spec;
    spec.query = query;
    spec.relations = data;
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    ASSERT_TRUE(handle.ok());
    const StatusOr<JoinRunResult>& result = handle.value().Wait();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().stats.catalog_hits, 0);
    EXPECT_EQ(result.value().stats.catalog_misses, 0);
  }
  EXPECT_EQ(catalog.hits() + catalog.misses(), 0);
}

}  // namespace
}  // namespace mwsj
