// Tracing must be an observer: a traced run returns byte-identical tuples
// and identical deterministic statistics to an untraced run, serial or
// pooled, and the trace itself must cover the run's jobs and rounds.

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/runner.h"
#include "testing/world.h"

namespace mwsj {
namespace {

// The scheduling-independent parts of two JobStats must match exactly;
// timings are excluded (they are measurements, not results).
void ExpectSameDeterministicStats(const RunStats& a, const RunStats& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t j = 0; j < a.jobs.size(); ++j) {
    SCOPED_TRACE(a.jobs[j].job_name);
    EXPECT_EQ(a.jobs[j].job_name, b.jobs[j].job_name);
    EXPECT_EQ(a.jobs[j].map_input_records, b.jobs[j].map_input_records);
    EXPECT_EQ(a.jobs[j].map_input_bytes, b.jobs[j].map_input_bytes);
    EXPECT_EQ(a.jobs[j].intermediate_records, b.jobs[j].intermediate_records);
    EXPECT_EQ(a.jobs[j].intermediate_bytes, b.jobs[j].intermediate_bytes);
    EXPECT_EQ(a.jobs[j].reduce_output_records,
              b.jobs[j].reduce_output_records);
    EXPECT_EQ(a.jobs[j].per_reducer_records, b.jobs[j].per_reducer_records);
    EXPECT_EQ(a.jobs[j].user_counters, b.jobs[j].user_counters);
  }
}

TEST(TraceDeterminismTest, TracedCRepRunMatchesUntracedRun) {
  testing::WorldConfig config;
  config.shape = testing::QueryShape::kChain3;
  config.mix = testing::PredicateMix::kOverlapOnly;
  config.seed = 7;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicate;
  options.grid_rows = 4;
  options.grid_cols = 4;
  options.space = Rect(0, 0, config.space_size, config.space_size);

  const auto untraced = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(untraced.ok()) << untraced.status().ToString();

  Tracer tracer;
  ThreadPool pool(4);
  options.context = ExecutionContext(&pool, &tracer);
  options.context.label = "traced-run";
  const auto traced = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  // Tracing and pooling change nothing observable about the result.
  EXPECT_EQ(untraced.value().tuples, traced.value().tuples);
  EXPECT_EQ(untraced.value().num_tuples, traced.value().num_tuples);
  ExpectSameDeterministicStats(untraced.value().stats, traced.value().stats);

  // The trace covers the run: both C-Rep rounds, all engine phases, the
  // run label, and the local joins.
  const std::string json = tracer.ToJson();
  for (const char* name :
       {"traced-run", "crep", "crep_round1", "crep_round2",
        "crep_round1_mark", "crep_round2_join", "map", "shuffle", "reduce",
        "local_join", "sort_tuples", "grid_build"}) {
    EXPECT_NE(json.find("\"" + std::string(name) + "\""), std::string::npos)
        << "missing span " << name;
  }
}

TEST(TraceDeterminismTest, DisabledTracerLeavesResultsAndTraceEmpty) {
  testing::WorldConfig config;
  config.shape = testing::QueryShape::kChain3;
  config.seed = 11;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  RunnerOptions options;
  options.algorithm = Algorithm::kControlledReplicateInLimit;
  options.grid_rows = 4;
  options.grid_cols = 4;
  options.space = Rect(0, 0, config.space_size, config.space_size);

  const auto baseline = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  Tracer disabled(/*enabled=*/false);
  options.context.tracer = &disabled;
  const auto with_disabled = RunSpatialJoin(query, data, options);
  ASSERT_TRUE(with_disabled.ok()) << with_disabled.status().ToString();

  EXPECT_EQ(baseline.value().tuples, with_disabled.value().tuples);
  EXPECT_EQ(disabled.event_count(), 0);
}

}  // namespace
}  // namespace mwsj
