// 2-way spatial joins (§5) against nested-loop references.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/two_way.h"

namespace mwsj {
namespace {

using Pair = std::pair<int64_t, int64_t>;

std::vector<LocalRect> RandomLocalRects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LocalRect> out;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 15);
    const double b = rng.Uniform(0, 15);
    out.push_back(LocalRect{
        Rect::FromXYLB(rng.Uniform(0, 100 - l), rng.Uniform(b, 100), l, b),
        static_cast<int64_t>(i)});
  }
  return out;
}

std::vector<Pair> Reference(const std::vector<LocalRect>& left,
                            const std::vector<LocalRect>& right,
                            const Predicate& pred) {
  std::vector<Pair> out;
  for (const LocalRect& l : left) {
    for (const LocalRect& r : right) {
      if (pred.Evaluate(l.rect, r.rect)) out.emplace_back(l.id, r.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class TwoWayJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoWayJoinTest, OverlapJoinIsExactAndDuplicateFree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const auto left = RandomLocalRects(150, seed * 5 + 1);
  const auto right = RandomLocalRects(130, seed * 5 + 2);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto outcome =
      TwoWaySpatialJoin(grid, Predicate::Overlap(), left, right);
  EXPECT_EQ(outcome.pairs, Reference(left, right, Predicate::Overlap()));
  // Duplicate-free by construction (§5.2 rule).
  auto pairs = outcome.pairs;
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  EXPECT_EQ(pairs.size(), outcome.pairs.size());
}

TEST_P(TwoWayJoinTest, RangeJoinIsExactAndDuplicateFree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const auto left = RandomLocalRects(120, seed * 7 + 1);
  const auto right = RandomLocalRects(120, seed * 7 + 2);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 5, 3).value();
  const Predicate pred = Predicate::Range(9.0);
  const auto outcome = TwoWaySpatialJoin(grid, pred, left, right);
  EXPECT_EQ(outcome.pairs, Reference(left, right, pred));
  auto pairs = outcome.pairs;
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  EXPECT_EQ(pairs.size(), outcome.pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoWayJoinTest, ::testing::Range(0, 8));

TEST(TwoWayJoinStatsTest, SplitSplitCommunicationIsCounted) {
  const std::vector<LocalRect> left = {
      LocalRect{Rect::FromXYLB(10, 90, 30, 5), 0}};  // Spans 2 columns.
  const std::vector<LocalRect> right = {
      LocalRect{Rect::FromXYLB(12, 88, 2, 2), 0}};  // Inside one cell.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto outcome =
      TwoWaySpatialJoin(grid, Predicate::Overlap(), left, right);
  EXPECT_EQ(outcome.pairs.size(), 1u);
  // left splits to cells (0,0) and (0,1); right to (0,0): 3 records.
  EXPECT_EQ(outcome.stats.intermediate_records, 3);
  EXPECT_EQ(outcome.stats.map_input_records, 2);
}

TEST(TwoWayJoinStatsTest, RangeRoutingEnlargesOnlyTheLeftSide) {
  // A left rectangle near a cell corner is shipped to the neighbors within
  // d, the right one is only split.
  const std::vector<LocalRect> left = {
      LocalRect{Rect::FromXYLB(20, 80, 2, 2), 0}};  // Near cell corner.
  const std::vector<LocalRect> right = {
      LocalRect{Rect::FromXYLB(30, 70, 2, 2), 0}};
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto outcome =
      TwoWaySpatialJoin(grid, Predicate::Range(5.0), left, right);
  // left^e(5) = [15,27]x[73,85] overlaps 4 cells; right 1 cell.
  EXPECT_EQ(outcome.stats.intermediate_records, 5);
  EXPECT_TRUE(outcome.pairs.empty());  // Distance ~ 10.6 > 5.
}

TEST(TwoWayJoinTest, EmptyInputs) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
  const auto outcome = TwoWaySpatialJoin(grid, Predicate::Overlap(), {}, {});
  EXPECT_TRUE(outcome.pairs.empty());
}

}  // namespace
}  // namespace mwsj
