// Result verification utility tests.

#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/verification.h"
#include "testing/world.h"

namespace mwsj {
namespace {

class VerificationTest : public ::testing::Test {
 protected:
  VerificationTest() {
    query_ = MakeChainQuery(3, Predicate::Overlap()).value();
    data_ = {
        {Rect::FromXYLB(0, 2, 2, 2)},
        {Rect::FromXYLB(1, 2, 2, 2), Rect::FromXYLB(50, 50, 1, 1)},
        {Rect::FromXYLB(2.5, 2, 2, 2)},
    };
  }

  StatusOr<Query> query_ = Status::Internal("uninitialized");
  std::vector<std::vector<Rect>> data_;
};

TEST_F(VerificationTest, AcceptsCorrectResult) {
  EXPECT_TRUE(VerifyJoinResult(query_.value(), data_, {{0, 0, 0}}).ok());
  EXPECT_TRUE(VerifyJoinResult(query_.value(), data_, {}).ok());
}

TEST_F(VerificationTest, RejectsWrongArity) {
  const Status s = VerifyJoinResult(query_.value(), data_, {{0, 0}});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(VerificationTest, RejectsOutOfRangeIds) {
  EXPECT_FALSE(VerifyJoinResult(query_.value(), data_, {{0, 5, 0}}).ok());
  EXPECT_FALSE(VerifyJoinResult(query_.value(), data_, {{-1, 0, 0}}).ok());
}

TEST_F(VerificationTest, RejectsPredicateViolations) {
  // B id 1 is far away: A-B overlap fails.
  const Status s = VerifyJoinResult(query_.value(), data_, {{0, 1, 0}});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("condition"), std::string::npos);
}

TEST_F(VerificationTest, RejectsDuplicates) {
  const Status s =
      VerifyJoinResult(query_.value(), data_, {{0, 0, 0}, {0, 0, 0}});
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST_F(VerificationTest, AcceptsEveryAlgorithmOutputOnRandomWorlds) {
  testing::WorldConfig config;
  config.mix = testing::PredicateMix::kHybrid;
  config.seed = 5150;
  config.max_rects_per_relation = 40;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  for (Algorithm algorithm :
       {Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
        Algorithm::kControlledReplicate,
        Algorithm::kControlledReplicateInLimit}) {
    RunnerOptions options;
    options.algorithm = algorithm;
    options.space = Rect(0, 0, 100, 100);
    const auto result = RunSpatialJoin(query, data, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(
        VerifyJoinResult(query, data, result.value().tuples).ok())
        << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace mwsj
