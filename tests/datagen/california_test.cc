// The synthetic California Road dataset must match every statistic the
// paper publishes about the real TIGER/Line-derived dataset (§7.8.2).

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/california.h"

namespace mwsj {
namespace {

class CaliforniaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CaliforniaParams params;
    params.num_roads = 200'000;  // Large enough for stable statistics.
    params.seed = 2000;
    data_ = new std::vector<Rect>(GenerateCaliforniaRoads(params));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static const std::vector<Rect>* data_;
};

const std::vector<Rect>* CaliforniaTest::data_ = nullptr;

TEST_F(CaliforniaTest, AllRoadsInsideTheFlattenedSpace) {
  const Rect space = CaliforniaSpace();
  EXPECT_DOUBLE_EQ(space.length(), 63'000);   // |x| / |y| = 0.63.
  EXPECT_DOUBLE_EQ(space.breadth(), 100'000);
  for (const Rect& r : *data_) {
    EXPECT_TRUE(space.Contains(r)) << r.ToString();
  }
}

TEST_F(CaliforniaTest, AverageDimensionsMatchPublishedValues) {
  // Paper: average MBB length 18, breadth 8.
  double sum_l = 0, sum_b = 0;
  for (const Rect& r : *data_) {
    sum_l += r.length();
    sum_b += r.breadth();
  }
  const double n = static_cast<double>(data_->size());
  EXPECT_NEAR(sum_l / n, 18.0, 6.0);
  EXPECT_NEAR(sum_b / n, 8.0, 3.0);
}

TEST_F(CaliforniaTest, ExtremesMatchPublishedValues) {
  // Paper: minimum dimensions 1; maximum length 2285, breadth 1344.
  double min_l = 1e9, min_b = 1e9, max_l = 0, max_b = 0;
  for (const Rect& r : *data_) {
    min_l = std::min(min_l, r.length());
    min_b = std::min(min_b, r.breadth());
    max_l = std::max(max_l, r.length());
    max_b = std::max(max_b, r.breadth());
  }
  EXPECT_GE(min_l, 1.0);
  EXPECT_GE(min_b, 1.0);
  EXPECT_LE(max_l, 2285.0);
  EXPECT_LE(max_b, 1344.0);
  EXPECT_GT(max_l, 1500.0);  // The highway tail is actually exercised.
  EXPECT_GT(max_b, 700.0);
}

TEST_F(CaliforniaTest, SizePercentilesMatchPublishedValues) {
  // Paper: 97% of MBBs have both dimensions < 100; 99% have both < 1000.
  int64_t both_under_100 = 0, both_under_1000 = 0;
  for (const Rect& r : *data_) {
    if (r.length() < 100 && r.breadth() < 100) ++both_under_100;
    if (r.length() < 1000 && r.breadth() < 1000) ++both_under_1000;
  }
  const double n = static_cast<double>(data_->size());
  EXPECT_NEAR(both_under_100 / n, 0.97, 0.02);
  EXPECT_GE(both_under_1000 / n, 0.985);
}

TEST_F(CaliforniaTest, PositionsAreSpatiallyClustered) {
  // Road networks are far from uniform: measure occupancy of a 16x16 grid
  // and require substantially more empty/over-full cells than a uniform
  // scatter would produce (chi-squared style dispersion test).
  constexpr int kGrid = 16;
  std::vector<int64_t> counts(kGrid * kGrid, 0);
  const Rect space = CaliforniaSpace();
  for (const Rect& r : *data_) {
    int cx = static_cast<int>(r.center().x / space.length() * kGrid);
    int cy = static_cast<int>(r.center().y / space.breadth() * kGrid);
    cx = std::clamp(cx, 0, kGrid - 1);
    cy = std::clamp(cy, 0, kGrid - 1);
    ++counts[static_cast<size_t>(cy * kGrid + cx)];
  }
  const double mean =
      static_cast<double>(data_->size()) / (kGrid * kGrid);
  double var = 0;
  for (int64_t c : counts) {
    var += (static_cast<double>(c) - mean) * (static_cast<double>(c) - mean);
  }
  var /= (kGrid * kGrid);
  // Uniform scatter would give variance ~= mean (Poisson). Clustered road
  // data must exceed it by a wide margin.
  EXPECT_GT(var, 10 * mean);
}

TEST_F(CaliforniaTest, DeterministicPerSeed) {
  CaliforniaParams params;
  params.num_roads = 1000;
  const auto a = GenerateCaliforniaRoads(params);
  const auto b = GenerateCaliforniaRoads(params);
  EXPECT_EQ(a, b);
  params.seed = 3;
  EXPECT_NE(GenerateCaliforniaRoads(params), a);
}

}  // namespace
}  // namespace mwsj
