// Distribution sampler tests.

#include <gtest/gtest.h>

#include "datagen/distributions.h"

namespace mwsj {
namespace {

TEST(DistributionsTest, NamesAreStable) {
  EXPECT_STREQ(DistributionName(Distribution::kUniform), "Uniform");
  EXPECT_STREQ(DistributionName(Distribution::kGaussian), "Gaussian");
  EXPECT_STREQ(DistributionName(Distribution::kClustered), "Clustered");
}

TEST(DistributionsTest, AllDistributionsRespectBounds) {
  Rng rng(5);
  for (Distribution d : {Distribution::kUniform, Distribution::kGaussian,
                         Distribution::kClustered}) {
    for (int i = 0; i < 5000; ++i) {
      const double v = SampleInRange(rng, d, -10, 10, 3);
      EXPECT_GE(v, -10) << DistributionName(d);
      EXPECT_LE(v, 10) << DistributionName(d);
    }
  }
}

TEST(DistributionsTest, GaussianConcentratesAroundMidpoint) {
  Rng rng(6);
  int center_hits = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = SampleInRange(rng, Distribution::kGaussian, 0, 60);
    if (v > 20 && v < 40) ++center_hits;  // Within ~1 stddev of the mean.
    }
  // A uniform would put 33% here; the Gaussian puts ~68%.
  EXPECT_GT(center_hits, kDraws / 2);
}

TEST(DistributionsTest, ClusteredIsMoreConcentratedThanUniform) {
  Rng rng(7);
  constexpr int kDraws = 20000;
  constexpr int kBuckets = 50;
  auto occupancy_variance = [&](Distribution d) {
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i) {
      const double v = SampleInRange(rng, d, 0, 1, 123);
      int b = static_cast<int>(v * kBuckets);
      if (b == kBuckets) b = kBuckets - 1;
      ++counts[static_cast<size_t>(b)];
    }
    const double mean = static_cast<double>(kDraws) / kBuckets;
    double var = 0;
    for (int c : counts) var += (c - mean) * (c - mean);
    return var / kBuckets;
  };
  EXPECT_GT(occupancy_variance(Distribution::kClustered),
            5 * occupancy_variance(Distribution::kUniform));
}

}  // namespace
}  // namespace mwsj
