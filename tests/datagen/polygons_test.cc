// Polygon dataset generator tests.

#include <gtest/gtest.h>

#include "datagen/polygons.h"

namespace mwsj {
namespace {

PolygonDatasetParams Params(int64_t n, uint64_t seed) {
  PolygonDatasetParams p;
  p.count = n;
  p.space = Rect(0, 0, 500, 500);
  p.min_radius = 5;
  p.max_radius = 30;
  p.seed = seed;
  return p;
}

void ExpectInsideSpace(const std::vector<Polygon>& polygons,
                       const Rect& space) {
  for (const Polygon& poly : polygons) {
    EXPECT_TRUE(space.Contains(poly.Mbr())) << poly.Mbr().ToString();
  }
}

TEST(PolygonDatagenTest, ConvexFootprintsAreInsideAndSized) {
  const auto polys = GenerateConvexFootprints(Params(200, 1));
  ASSERT_EQ(polys.size(), 200u);
  ExpectInsideSpace(polys, Rect(0, 0, 500, 500));
  for (const Polygon& p : polys) {
    EXPECT_GE(p.size(), 5u);
    EXPECT_LE(p.size(), 9u);
    EXPECT_LE(p.Mbr().Diagonal(), 2 * 30 * 1.5);
    // Convex footprints contain their center.
    EXPECT_TRUE(p.Contains(p.Mbr().center()));
  }
}

TEST(PolygonDatagenTest, ConcaveBlobsHaveManyVertices) {
  const auto polys = GenerateConcaveBlobs(Params(150, 2));
  ASSERT_EQ(polys.size(), 150u);
  ExpectInsideSpace(polys, Rect(0, 0, 500, 500));
  for (const Polygon& p : polys) {
    EXPECT_GE(p.size(), 8u);
    EXPECT_LE(p.size(), 14u);
  }
}

TEST(PolygonDatagenTest, CorridorsAreLongAndThin) {
  const auto polys = GenerateCorridors(Params(150, 3));
  ASSERT_EQ(polys.size(), 150u);
  ExpectInsideSpace(polys, Rect(0, 0, 500, 500));
  for (const Polygon& p : polys) {
    ASSERT_EQ(p.size(), 4u);
    // The MBR is much larger than the polygon's actual area (thin strip),
    // unless the corridor is nearly axis-aligned.
    const double mbr_area = p.Mbr().Area();
    EXPECT_GT(mbr_area, 0);
  }
}

TEST(PolygonDatagenTest, DeterministicPerSeed) {
  const auto a = GenerateConcaveBlobs(Params(50, 7));
  const auto b = GenerateConcaveBlobs(Params(50, 7));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Mbr(), b[i].Mbr());
  }
  const auto c = GenerateConcaveBlobs(Params(50, 8));
  EXPECT_NE(a[0].Mbr(), c[0].Mbr());
}

TEST(PolygonDatagenTest, MbrFilterFindsRefinementWork) {
  // The point of the filter/refine split: among MBR-overlapping pairs of
  // corridors and blobs, a meaningful share does not truly intersect.
  const auto corridors = GenerateCorridors(Params(120, 11));
  const auto blobs = GenerateConcaveBlobs(Params(120, 12));
  int mbr_pairs = 0, true_pairs = 0;
  for (const Polygon& c : corridors) {
    for (const Polygon& b : blobs) {
      if (Overlaps(c.Mbr(), b.Mbr())) {
        ++mbr_pairs;
        if (c.Intersects(b)) ++true_pairs;
      }
    }
  }
  EXPECT_GT(mbr_pairs, 0);
  EXPECT_GT(true_pairs, 0);
  EXPECT_LT(true_pairs, mbr_pairs);  // The filter step over-approximates.
}

}  // namespace
}  // namespace mwsj
