// Synthetic generator: the paper's §7.8.2 parameters.

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace mwsj {
namespace {

TEST(SyntheticTest, GeneratesRequestedCountInsideSpace) {
  SyntheticParams p = SyntheticParams::PaperDefaults(5000, 1);
  const auto data = GenerateSynthetic(p);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data.value().size(), 5000u);
  for (const Rect& r : data.value()) {
    EXPECT_GE(r.min_x(), p.x_min);
    EXPECT_LE(r.max_x(), p.x_max);
    EXPECT_GE(r.min_y(), p.y_min);
    EXPECT_LE(r.max_y(), p.y_max);
    EXPECT_GE(r.length(), p.l_min);
    EXPECT_LE(r.length(), p.l_max);
    EXPECT_GE(r.breadth(), p.b_min);
    EXPECT_LE(r.breadth(), p.b_max);
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticParams p = SyntheticParams::PaperDefaults(100, 7);
  const auto a = GenerateSynthetic(p);
  const auto b = GenerateSynthetic(p);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
  p.seed = 8;
  const auto c = GenerateSynthetic(p);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value(), c.value());
}

TEST(SyntheticTest, UniformCoordinatesSpreadAcrossSpace) {
  SyntheticParams p = SyntheticParams::PaperDefaults(20000, 3);
  const auto data = GenerateSynthetic(p);
  ASSERT_TRUE(data.ok());
  // Quadrant occupancy within 10% of uniform.
  int quadrants[4] = {};
  for (const Rect& r : data.value()) {
    const int qx = r.center().x < 50'000 ? 0 : 1;
    const int qy = r.center().y < 50'000 ? 0 : 1;
    ++quadrants[qx * 2 + qy];
  }
  for (int q : quadrants) EXPECT_NEAR(q, 5000, 500);
}

TEST(SyntheticTest, ValidationRejectsBadParams) {
  SyntheticParams p = SyntheticParams::PaperDefaults(10, 1);
  p.num_rectangles = -1;
  EXPECT_FALSE(GenerateSynthetic(p).ok());
  p = SyntheticParams::PaperDefaults(10, 1);
  p.x_max = p.x_min;
  EXPECT_FALSE(GenerateSynthetic(p).ok());
  p = SyntheticParams::PaperDefaults(10, 1);
  p.l_max = 200'000;  // Larger than the space.
  EXPECT_FALSE(GenerateSynthetic(p).ok());
  p = SyntheticParams::PaperDefaults(10, 1);
  p.b_min = 50;
  p.b_max = 10;  // Inverted.
  EXPECT_FALSE(GenerateSynthetic(p).ok());
}

TEST(SyntheticTest, GaussianDimensionsCenterOnRangeMidpoint) {
  SyntheticParams p = SyntheticParams::PaperDefaults(20000, 5);
  p.dist_l = Distribution::kGaussian;
  const auto data = GenerateSynthetic(p);
  ASSERT_TRUE(data.ok());
  double sum = 0;
  for (const Rect& r : data.value()) sum += r.length();
  EXPECT_NEAR(sum / 20000, 50.0, 2.0);
}

TEST(SampleDatasetTest, KeepsApproximatelyPFraction) {
  SyntheticParams p = SyntheticParams::PaperDefaults(20000, 9);
  const auto data = GenerateSynthetic(p);
  ASSERT_TRUE(data.ok());
  const auto half = SampleDataset(data.value(), 0.5, 11);
  EXPECT_NEAR(static_cast<double>(half.size()), 10000, 400);
  const auto none = SampleDataset(data.value(), 0.0, 11);
  EXPECT_TRUE(none.empty());
  const auto all = SampleDataset(data.value(), 1.0, 11);
  EXPECT_EQ(all.size(), data.value().size());
}

TEST(EnlargeDatasetTest, ScalesEveryRectangleAboutItsCenter) {
  const std::vector<Rect> data = {Rect::FromXYLB(10, 20, 4, 2),
                                  Rect::FromXYLB(50, 60, 1, 1)};
  const auto enlarged = EnlargeDataset(data, 2.0);
  ASSERT_EQ(enlarged.size(), 2u);
  EXPECT_EQ(enlarged[0].center(), data[0].center());
  EXPECT_DOUBLE_EQ(enlarged[0].length(), 8);
  EXPECT_DOUBLE_EQ(enlarged[0].breadth(), 4);
}

TEST(MaxDiagonalTest, FindsLargest) {
  const std::vector<Rect> data = {Rect::FromXYLB(0, 10, 3, 4),
                                  Rect::FromXYLB(0, 10, 1, 1)};
  EXPECT_DOUBLE_EQ(MaxDiagonal(data), 5.0);
  EXPECT_DOUBLE_EQ(MaxDiagonal({}), 0.0);
}

}  // namespace
}  // namespace mwsj
