// Randomized geometry invariants.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "geometry/rect.h"

namespace mwsj {
namespace {

Rect RandomRect(Rng& rng) {
  const double l = rng.Uniform(0, 30);
  const double b = rng.Uniform(0, 30);
  return Rect::FromXYLB(rng.Uniform(-50, 50), rng.Uniform(-50, 50), l, b);
}

class GeometryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometryPropertyTest, DistanceIsSymmetricAndConsistentWithOverlap) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 300; ++i) {
    const Rect a = RandomRect(rng);
    const Rect b = RandomRect(rng);
    const double dab = MinDistance(a, b);
    EXPECT_DOUBLE_EQ(dab, MinDistance(b, a));
    EXPECT_GE(dab, 0);
    EXPECT_EQ(Overlaps(a, b), dab == 0);
    EXPECT_EQ(Overlaps(a, b), Overlaps(b, a));
  }
}

TEST_P(GeometryPropertyTest, EnlargementMonotoneAndConsistentWithDistance) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  for (int i = 0; i < 200; ++i) {
    const Rect a = RandomRect(rng);
    const Rect b = RandomRect(rng);
    const double d = rng.Uniform(0, 40);
    // Enlarged-overlap is implied by being within distance d (the §5.3
    // routing guarantee), though not conversely.
    if (WithinDistance(a, b, d)) {
      EXPECT_TRUE(Overlaps(a.EnlargeByDistance(d), b));
    }
    // Monotonicity of enlargement.
    EXPECT_TRUE(a.EnlargeByDistance(d).Contains(a));
    EXPECT_TRUE(
        a.EnlargeByDistance(d + 1).Contains(a.EnlargeByDistance(d)));
  }
}

TEST_P(GeometryPropertyTest, IntersectionIsTheLargestCommonRectangle) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  for (int i = 0; i < 200; ++i) {
    const Rect a = RandomRect(rng);
    const Rect b = RandomRect(rng);
    const auto inter = Intersection(a, b);
    ASSERT_EQ(inter.has_value(), Overlaps(a, b));
    if (!inter.has_value()) continue;
    EXPECT_TRUE(a.Contains(*inter));
    EXPECT_TRUE(b.Contains(*inter));
    EXPECT_TRUE(inter->IsValid());
    // Center of the intersection lies in both rectangles.
    EXPECT_TRUE(a.Contains(inter->center()));
    EXPECT_TRUE(b.Contains(inter->center()));
  }
}

TEST_P(GeometryPropertyTest, UnionContainsAndIsMinimalOnCorners) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  for (int i = 0; i < 200; ++i) {
    const Rect a = RandomRect(rng);
    const Rect b = RandomRect(rng);
    const Rect u = Rect::Union(a, b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    EXPECT_EQ(u.min_x(), std::min(a.min_x(), b.min_x()));
    EXPECT_EQ(u.max_y(), std::max(a.max_y(), b.max_y()));
  }
}

TEST_P(GeometryPropertyTest, TriangleLikeInequalityThroughAPoint) {
  // dist(a, b) <= dist(a, p) + dist(p, b) for any point p.
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  for (int i = 0; i < 200; ++i) {
    const Rect a = RandomRect(rng);
    const Rect b = RandomRect(rng);
    const Point p{rng.Uniform(-60, 60), rng.Uniform(-60, 60)};
    EXPECT_LE(MinDistance(a, b),
              MinDistance(a, p) + MinDistance(b, p) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace mwsj
