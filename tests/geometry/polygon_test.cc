// Polygon refinement-step geometry tests.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/polygon.h"

namespace mwsj {
namespace {

Polygon UnitSquare(double x0, double y0) {
  return Polygon({{x0, y0}, {x0 + 1, y0}, {x0 + 1, y0 + 1}, {x0, y0 + 1}});
}

TEST(SegmentTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
}

TEST(SegmentTest, EndpointTouchAndCollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentTest, PointDistance) {
  EXPECT_DOUBLE_EQ(SegmentPointDistance({0, 0}, {2, 0}, {1, 1}), 1);
  EXPECT_DOUBLE_EQ(SegmentPointDistance({0, 0}, {2, 0}, {3, 0}), 1);
  EXPECT_DOUBLE_EQ(SegmentPointDistance({1, 1}, {1, 1}, {4, 5}), 5);
}

TEST(SegmentTest, SegmentSegmentDistance) {
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {1, 0}, {0, 2}, {1, 2}), 2);
  EXPECT_DOUBLE_EQ(SegmentSegmentDistance({0, 0}, {2, 2}, {0, 2}, {2, 0}), 0);
}

TEST(PolygonTest, MbrOfTriangle) {
  const Polygon tri({{0, 0}, {4, 0}, {2, 3}});
  EXPECT_EQ(tri.Mbr(), Rect(0, 0, 4, 3));
}

TEST(PolygonTest, ContainsWithConcaveShape) {
  // An L-shape: the notch at the top-right is outside.
  const Polygon l_shape(
      {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l_shape.Contains({0.5, 0.5}));
  EXPECT_TRUE(l_shape.Contains({0.5, 1.5}));
  EXPECT_FALSE(l_shape.Contains({1.5, 1.5}));  // In the notch.
  EXPECT_TRUE(l_shape.Contains({1, 1}));       // Boundary vertex.
}

TEST(PolygonTest, IntersectsByEdgeCrossing) {
  EXPECT_TRUE(UnitSquare(0, 0).Intersects(UnitSquare(0.5, 0.5)));
  EXPECT_FALSE(UnitSquare(0, 0).Intersects(UnitSquare(3, 3)));
}

TEST(PolygonTest, IntersectsByContainment) {
  const Polygon outer = UnitSquare(0, 0);
  const Polygon inner(
      {{0.4, 0.4}, {0.6, 0.4}, {0.6, 0.6}, {0.4, 0.6}});
  EXPECT_TRUE(outer.Intersects(inner));
  EXPECT_TRUE(inner.Intersects(outer));
}

TEST(PolygonTest, MinDistance) {
  EXPECT_DOUBLE_EQ(UnitSquare(0, 0).MinDistanceTo(UnitSquare(3, 0)), 2);
  EXPECT_DOUBLE_EQ(UnitSquare(0, 0).MinDistanceTo(UnitSquare(0.5, 0.5)), 0);
  // Diagonal gap: corners (1,1) and (4,5) -> 3-4-5.
  EXPECT_DOUBLE_EQ(UnitSquare(0, 0).MinDistanceTo(UnitSquare(4, 5)), 5);
}

TEST(PolygonTest, MbrOverlapIsNecessaryButNotSufficient) {
  // Triangles on opposite sides of the square's diagonal: their MBRs
  // overlap but the shapes do not — the filter/refine motivation of §1.1.
  const Polygon a({{0, 0}, {4, 0}, {4, 4}});
  const Polygon b({{0, 0.5}, {0, 4.5}, {3.5, 4.5}});
  EXPECT_TRUE(Overlaps(a.Mbr(), b.Mbr()));
  EXPECT_FALSE(a.Intersects(b));
}

TEST(PolygonTest, RegularNGonGeometry) {
  const Polygon hex = Polygon::RegularNGon({0, 0}, 2.0, 6);
  EXPECT_EQ(hex.size(), 6u);
  for (const Point& v : hex.vertices()) {
    EXPECT_NEAR(Distance(v, {0, 0}), 2.0, 1e-12);
  }
  EXPECT_TRUE(hex.Contains({0, 0}));
  const Rect mbr = hex.Mbr();
  EXPECT_NEAR(mbr.length(), 4.0, 1e-12);
}

}  // namespace
}  // namespace mwsj
