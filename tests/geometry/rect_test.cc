// Geometry kernel tests: the paper's (x, y, l, b) object model, predicates
// and enlargement operations.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "geometry/rect.h"

namespace mwsj {
namespace {

TEST(RectTest, FromXYLBMatchesPaperNotation) {
  // Top-left (2, 10), length 3 rightward, breadth 4 downward.
  const Rect r = Rect::FromXYLB(2, 10, 3, 4);
  EXPECT_DOUBLE_EQ(r.min_x(), 2);
  EXPECT_DOUBLE_EQ(r.max_x(), 5);
  EXPECT_DOUBLE_EQ(r.max_y(), 10);
  EXPECT_DOUBLE_EQ(r.min_y(), 6);
  EXPECT_EQ(r.start_point(), (Point{2, 10}));
  EXPECT_DOUBLE_EQ(r.x(), 2);
  EXPECT_DOUBLE_EQ(r.y(), 10);
  EXPECT_DOUBLE_EQ(r.length(), 3);
  EXPECT_DOUBLE_EQ(r.breadth(), 4);
}

TEST(RectTest, AreaDiagonalCenter) {
  const Rect r = Rect::FromXYLB(0, 4, 3, 4);
  EXPECT_DOUBLE_EQ(r.Area(), 12);
  EXPECT_DOUBLE_EQ(r.Diagonal(), 5);
  EXPECT_EQ(r.center(), (Point{1.5, 2}));
}

TEST(RectTest, OverlapIsClosedSet) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(1, 1, 1, 1);  // Shares the edge x=1.
  EXPECT_TRUE(Overlaps(a, b));
  const Rect c = Rect::FromXYLB(1, 2, 1, 1);  // Shares only corner (1,1).
  EXPECT_TRUE(Overlaps(a, c));
  const Rect d = Rect::FromXYLB(1.001, 1, 1, 1);
  EXPECT_FALSE(Overlaps(a, d));
}

TEST(RectTest, DegenerateRectanglesAreValidAndOverlap) {
  const Rect point = Rect::FromPoint(Point{0.5, 0.5});
  EXPECT_TRUE(point.IsValid());
  EXPECT_DOUBLE_EQ(point.Area(), 0);
  const Rect box = Rect::FromXYLB(0, 1, 1, 1);
  EXPECT_TRUE(Overlaps(point, box));
  EXPECT_TRUE(Overlaps(point, point));
}

TEST(RectTest, MinDistanceAxisAndDiagonalGaps) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);      // [0,1]x[0,1]
  const Rect right = Rect::FromXYLB(3, 1, 1, 1);  // [3,4]x[0,1]
  EXPECT_DOUBLE_EQ(MinDistance(a, right), 2);
  const Rect above = Rect::FromXYLB(0, 5, 1, 1);  // [0,1]x[4,5]
  EXPECT_DOUBLE_EQ(MinDistance(a, above), 3);
  const Rect diag = Rect::FromXYLB(4, 6, 1, 1);   // [4,5]x[5,6]
  EXPECT_DOUBLE_EQ(MinDistance(a, diag), 5);      // 3-4-5 triangle.
  EXPECT_DOUBLE_EQ(MinDistance(a, a), 0);
}

TEST(RectTest, WithinDistanceIsInclusive) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(3, 1, 1, 1);
  EXPECT_TRUE(WithinDistance(a, b, 2.0));   // Exactly 2 apart.
  EXPECT_FALSE(WithinDistance(a, b, 1.999));
}

TEST(RectTest, MinDistanceSquaredMatchesMinDistance) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);      // [0,1]x[0,1]
  const Rect diag = Rect::FromXYLB(4, 6, 1, 1);   // [4,5]x[5,6]
  EXPECT_DOUBLE_EQ(MinDistanceSquared(a, diag), 25);  // 3-4-5 triangle.
  EXPECT_DOUBLE_EQ(MinDistanceSquared(a, a), 0);
  EXPECT_DOUBLE_EQ(MinDistanceSquared(a, Point{4, 5}), 25);
  EXPECT_DOUBLE_EQ(MinDistanceSquared(a, Point{0.5, 0.5}), 0);
}

TEST(RectTest, WithinDistanceExactBoundaryTies) {
  // Rectangles whose gap is *exactly* d must satisfy Range(d). The old
  // sqrt-then-compare form failed whenever sqrt(fl(d·d)) rounds above d;
  // the squared comparison fl(gap·gap) <= fl(d·d) is tie-exact because the
  // gap equals d bit-for-bit. Sweep awkward magnitudes (non-representable
  // fractions, irrational-ish values, very large and very small scales).
  const double ds[] = {0.1,         1.0 / 3.0, 0.7,   1.4142135623730951,
                       2.718281828, 1e-12,     1e150, 123456789.123456789};
  for (const double d : ds) {
    // Anchor the facing edges at 0 and d so the axis gap is d bit-exactly
    // (fl(d - 0) == d; an offset like 1+d would round the gap away).
    const Rect a(-1, 0, 0, 1);
    const Rect tie(d, 0, d + 1, 1);
    EXPECT_TRUE(WithinDistance(a, tie, d)) << "d=" << d;
    const Rect beyond(std::nextafter(d, 1e308), 0, d + 2, 1);
    EXPECT_FALSE(WithinDistance(a, beyond, d)) << "d=" << d;
  }
}

TEST(RectTest, WithinDistanceNegativeAndHugeD) {
  const Rect a(0, 0, 1, 1);
  const Rect b(3, 0, 4, 1);
  EXPECT_FALSE(WithinDistance(a, b, -1.0));  // Negative d matches nothing.
  EXPECT_FALSE(WithinDistance(a, a, -1e-300));
  EXPECT_TRUE(WithinDistance(a, a, -0.0));  // -0 == 0: behaves as d = 0.
  EXPECT_TRUE(WithinDistance(a, b, 0.0) == Overlaps(a, b));
  // d·d overflows to inf: the sqrt fallback must keep the comparison sane
  // instead of reading inf <= inf for any farther pair.
  const Rect far_rect(1e200, 0, 2e200, 1);
  EXPECT_FALSE(WithinDistance(a, far_rect, 1e155));
  EXPECT_TRUE(WithinDistance(a, far_rect, 1e201));
  EXPECT_TRUE(
      WithinDistance(a, far_rect, std::numeric_limits<double>::infinity()));
}

TEST(RectTest, IsFiniteRejectsNaNAndInf) {
  EXPECT_TRUE(Rect(0, 0, 1, 1).IsFinite());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(Rect(nan, 0, 1, 1).IsFinite());
  EXPECT_FALSE(Rect(0, nan, 1, 1).IsFinite());
  EXPECT_FALSE(Rect(0, 0, inf, 1).IsFinite());
  EXPECT_FALSE(Rect(0, 0, 1, -inf).IsFinite());
  // NaN also fails IsValid: every comparison on NaN is false.
  EXPECT_FALSE(Rect(nan, 0, nan, 1).IsValid());
}

TEST(RectTest, MinDistanceToPoint) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  EXPECT_DOUBLE_EQ(MinDistance(a, Point{0.5, 0.5}), 0);  // Inside.
  EXPECT_DOUBLE_EQ(MinDistance(a, Point{2, 0.5}), 1);
  EXPECT_DOUBLE_EQ(MinDistance(a, Point{4, 5}), 5);
}

TEST(RectTest, IntersectionOfOverlapping) {
  const Rect a = Rect::FromXYLB(0, 2, 2, 2);  // [0,2]x[0,2]
  const Rect b = Rect::FromXYLB(1, 3, 2, 2);  // [1,3]x[1,3]
  const auto inter = Intersection(a, b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(*inter, Rect(1, 1, 2, 2));
  // Start point of the intersection drives §5.2 dedup.
  EXPECT_EQ(inter->start_point(), (Point{1, 2}));
}

TEST(RectTest, IntersectionOfDisjointIsEmpty) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(5, 1, 1, 1);
  EXPECT_FALSE(Intersection(a, b).has_value());
}

TEST(RectTest, IntersectionOfTouchingIsDegenerate) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(1, 1, 1, 1);
  const auto inter = Intersection(a, b);
  ASSERT_TRUE(inter.has_value());
  EXPECT_DOUBLE_EQ(inter->Area(), 0);
  EXPECT_DOUBLE_EQ(inter->min_x(), 1);
  EXPECT_DOUBLE_EQ(inter->max_x(), 1);
}

TEST(RectTest, EnlargeByDistanceMatchesSection53) {
  // §5.3: top-left (x1-d, y1+d), bottom-right (x2+d, y2-d).
  const Rect r = Rect::FromXYLB(2, 5, 2, 1);
  const Rect e = r.EnlargeByDistance(0.5);
  EXPECT_DOUBLE_EQ(e.x(), 1.5);
  EXPECT_DOUBLE_EQ(e.y(), 5.5);
  EXPECT_DOUBLE_EQ(e.length(), 3);
  EXPECT_DOUBLE_EQ(e.breadth(), 2);
}

TEST(RectTest, EnlargedRectangleCoversEuclideanBall) {
  // Any rectangle within Euclidean distance d overlaps the enlargement.
  const Rect r = Rect::FromXYLB(2, 5, 2, 1);
  const Rect near = Rect::FromXYLB(4.3, 4.7, 0.2, 0.2);  // 0.3 to the right.
  ASSERT_TRUE(WithinDistance(r, near, 0.5));
  EXPECT_TRUE(Overlaps(r.EnlargeByDistance(0.5), near));
  // The converse fails: corner rectangles overlap the enlargement but are
  // farther than d (the paper's r2' counter-example).
  const Rect corner = Rect::FromXYLB(4.4, 5.4, 0.05, 0.05);
  EXPECT_TRUE(Overlaps(r.EnlargeByDistance(0.5), corner));
  EXPECT_FALSE(WithinDistance(r, corner, 0.5));
}

TEST(RectTest, EnlargeByFactorKeepsCenter) {
  // §7.8.6: length and breadth scale by k about the center.
  const Rect r = Rect::FromXYLB(1, 4, 2, 2);
  const Rect e = r.EnlargeByFactor(1.5);
  EXPECT_EQ(e.center(), r.center());
  EXPECT_DOUBLE_EQ(e.length(), 3);
  EXPECT_DOUBLE_EQ(e.breadth(), 3);
  // Factor 1 is the identity.
  EXPECT_EQ(r.EnlargeByFactor(1.0), r);
}

TEST(RectTest, UnionCoversBoth) {
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(3, 4, 1, 1);
  const Rect u = Rect::Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_EQ(u, Rect(0, 0, 4, 4));
}

TEST(RectTest, ContainsPointAndRect) {
  const Rect r = Rect::FromXYLB(0, 2, 2, 2);
  EXPECT_TRUE(r.Contains(Point{1, 1}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));  // Boundary inclusive.
  EXPECT_FALSE(r.Contains(Point{2.1, 1}));
  EXPECT_TRUE(r.Contains(Rect::FromXYLB(0.5, 1.5, 1, 1)));
  EXPECT_FALSE(r.Contains(Rect::FromXYLB(0.5, 1.5, 2, 1)));
}

}  // namespace
}  // namespace mwsj
