// Unit tests for the rectilinear partitioning of §4.

#include <gtest/gtest.h>

#include "common/random.h"
#include "grid/grid_partition.h"

namespace mwsj {
namespace {

TEST(GridPartitionTest, CreateValidatesArguments) {
  EXPECT_FALSE(GridPartition::Create(Rect(0, 0, 4, 4), 0, 4).ok());
  EXPECT_FALSE(GridPartition::Create(Rect(0, 0, 4, 4), 4, -1).ok());
  EXPECT_FALSE(GridPartition::Create(Rect(0, 0, 0, 4), 2, 2).ok());
  EXPECT_TRUE(GridPartition::Create(Rect(0, 0, 4, 4), 2, 2).ok());
}

TEST(GridPartitionTest, CreateSquareRequiresPerfectSquare) {
  EXPECT_TRUE(GridPartition::CreateSquare(Rect(0, 0, 8, 8), 64).ok());
  EXPECT_FALSE(GridPartition::CreateSquare(Rect(0, 0, 8, 8), 60).ok());
  EXPECT_FALSE(GridPartition::CreateSquare(Rect(0, 0, 8, 8), 0).ok());
  const GridPartition g =
      GridPartition::CreateSquare(Rect(0, 0, 8, 8), 64).value();
  EXPECT_EQ(g.rows(), 8);
  EXPECT_EQ(g.cols(), 8);
  EXPECT_EQ(g.num_cells(), 64);
}

TEST(GridPartitionTest, CellRectsTileTheSpace) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 8, 4), 4, 8).value();
  double area = 0;
  for (CellId c = 0; c < g.num_cells(); ++c) area += g.CellRect(c).Area();
  EXPECT_DOUBLE_EQ(area, 32.0);
  // Cell 0 is the top-left corner.
  EXPECT_EQ(g.CellRect(0), Rect(0, 3, 1, 4));
  // Last cell is the bottom-right corner.
  EXPECT_EQ(g.CellRect(g.num_cells() - 1), Rect(7, 0, 8, 1));
}

TEST(GridPartitionTest, RowColRoundTrip) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 6, 4), 2, 3).value();
  for (int row = 0; row < g.rows(); ++row) {
    for (int col = 0; col < g.cols(); ++col) {
      const CellId id = g.CellIdOf(row, col);
      EXPECT_EQ(g.RowOf(id), row);
      EXPECT_EQ(g.ColOf(id), col);
    }
  }
}

TEST(GridPartitionTest, InteriorPointOwnership) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  EXPECT_EQ(g.CellOfPoint(Point{0.5, 3.5}), 0);   // Top-left cell.
  EXPECT_EQ(g.CellOfPoint(Point{3.5, 0.5}), 15);  // Bottom-right cell.
  EXPECT_EQ(g.CellOfPoint(Point{1.5, 2.5}), g.CellIdOf(1, 1));
}

TEST(GridPartitionTest, BoundaryPointsBelongToLeftUpperCell) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  // x = 2 lies on the boundary between columns 1 and 2: left wins.
  EXPECT_EQ(g.ColOf(g.CellOfPoint(Point{2.0, 3.5})), 1);
  // y = 2 lies on the boundary between rows 1 and 2: upper wins.
  EXPECT_EQ(g.RowOf(g.CellOfPoint(Point{0.5, 2.0})), 1);
  // The space corner points clamp into corner cells.
  EXPECT_EQ(g.CellOfPoint(Point{0, 4}), 0);
  EXPECT_EQ(g.CellOfPoint(Point{4, 0}), 15);
}

TEST(GridPartitionTest, OutOfSpacePointsClampToBorderCells) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  EXPECT_EQ(g.CellOfPoint(Point{-3, 10}), 0);
  EXPECT_EQ(g.CellOfPoint(Point{9, -2}), 15);
}

TEST(GridPartitionTest, StartCellAlwaysOverlapsTheRectangle) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  // Including when the start point sits exactly on a grid line.
  const Rect cases[] = {
      Rect::FromXYLB(2.0, 3.0, 0.5, 0.5),  // Start on both boundaries.
      Rect::FromXYLB(1.0, 2.0, 0.0, 0.0),  // Degenerate on a crossing.
      Rect::FromXYLB(0.3, 3.9, 3.0, 3.0),  // Large rectangle.
  };
  for (const Rect& r : cases) {
    const CellId start = g.CellOfRect(r);
    EXPECT_TRUE(Overlaps(g.CellRect(start), r)) << r.ToString();
  }
}

TEST(GridPartitionTest, DistanceToCellMatchesGeometry) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const Rect r = Rect::FromXYLB(0.25, 3.75, 0.5, 0.5);  // Inside cell 0.
  EXPECT_DOUBLE_EQ(g.DistanceToCell(0, r), 0.0);
  EXPECT_DOUBLE_EQ(g.DistanceToCell(1, r), 0.25);      // Right neighbor.
  EXPECT_DOUBLE_EQ(g.DistanceToCell(g.CellIdOf(1, 0), r), 0.25);
  // Diagonal neighbor: Euclidean corner distance.
  EXPECT_DOUBLE_EQ(g.DistanceToCell(g.CellIdOf(1, 1), r),
                   std::sqrt(0.25 * 0.25 + 0.25 * 0.25));
}

TEST(RectilinearGridTest, CreateValidatesBoundaries) {
  EXPECT_TRUE(GridPartition::CreateRectilinear({0, 1, 4}, {0, 3, 4}).ok());
  EXPECT_FALSE(GridPartition::CreateRectilinear({0}, {0, 1}).ok());
  EXPECT_FALSE(GridPartition::CreateRectilinear({0, 1, 1}, {0, 1}).ok());
  EXPECT_FALSE(GridPartition::CreateRectilinear({0, 2, 1}, {0, 1}).ok());
}

TEST(RectilinearGridTest, NonUniformCellGeometry) {
  // Columns [0,1), [1,4); rows (top-down) [3,4], [0,3].
  const GridPartition g =
      GridPartition::CreateRectilinear({0, 1, 4}, {0, 3, 4}).value();
  EXPECT_FALSE(g.is_uniform());
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g.cols(), 2);
  EXPECT_EQ(g.CellRect(0), Rect(0, 3, 1, 4));  // Top-left: thin tall strip.
  EXPECT_EQ(g.CellRect(3), Rect(1, 0, 4, 3));  // Bottom-right: big cell.
  EXPECT_EQ(g.CellOfPoint(Point{0.5, 3.5}), 0);
  EXPECT_EQ(g.CellOfPoint(Point{2, 1}), 3);
  // Boundary ownership: x=1 belongs to the left column, y=3 to the top row.
  EXPECT_EQ(g.CellOfPoint(Point{1.0, 3.5}), 0);
  EXPECT_EQ(g.CellOfPoint(Point{0.5, 3.0}), 0);
}

TEST(RectilinearGridTest, SplitRangesRespectNonUniformBoundaries) {
  const GridPartition g =
      GridPartition::CreateRectilinear({0, 1, 4}, {0, 3, 4}).value();
  const Rect r = Rect::FromXYLB(0.5, 3.5, 1.0, 1.0);  // x:[0.5,1.5] y:[2.5,3.5]
  const auto range = g.CellsOverlapping(r);
  EXPECT_EQ(range.col_lo, 0);
  EXPECT_EQ(range.col_hi, 1);
  EXPECT_EQ(range.row_lo, 0);
  EXPECT_EQ(range.row_hi, 1);
  const Rect inside = Rect::FromXYLB(2, 2, 1, 1);  // Fully in cell 3.
  const auto one = g.CellsOverlapping(inside);
  EXPECT_EQ(one.col_lo, 1);
  EXPECT_EQ(one.col_hi, 1);
  EXPECT_EQ(one.row_lo, 1);
  EXPECT_EQ(one.row_hi, 1);
}

TEST(EquiDepthGridTest, BoundariesFollowTheDataQuantiles) {
  // 1000 points clustered in x < 10 of a [0,100] space: most column
  // boundaries must fall inside the cluster.
  std::vector<Rect> sample;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = (i % 10 == 0) ? rng.Uniform(10, 100) : rng.Uniform(0, 10);
    sample.push_back(Rect::FromPoint(Point{x, rng.Uniform(0, 100)}));
  }
  const GridPartition g =
      GridPartition::CreateEquiDepth(Rect(0, 0, 100, 100), 4, 4, sample)
          .value();
  EXPECT_FALSE(g.is_uniform());
  // The first three column boundaries sit inside the dense region, so the
  // three left columns end before x=12 while a uniform grid would place
  // the first boundary at x=25.
  EXPECT_LT(g.CellRect(g.CellIdOf(0, 2)).max_x(), 12.0);
  // Start-point occupancy per column is roughly balanced.
  std::vector<int> per_col(4, 0);
  for (const Rect& r : sample) ++per_col[static_cast<size_t>(g.ColOf(g.CellOfRect(r)))];
  for (int c : per_col) EXPECT_NEAR(c, 250, 60);
}

TEST(EquiDepthGridTest, TinySampleFallsBackToUniform) {
  const std::vector<Rect> sample = {Rect::FromPoint(Point{1, 1})};
  const GridPartition g =
      GridPartition::CreateEquiDepth(Rect(0, 0, 100, 100), 4, 4, sample)
          .value();
  EXPECT_TRUE(g.is_uniform());
}

TEST(EquiDepthGridTest, DuplicateCoordinatesStillYieldValidGrid) {
  // Every start point identical: quantiles collapse; the repair keeps the
  // boundaries strictly increasing.
  const std::vector<Rect> sample(500, Rect::FromXYLB(50, 50, 1, 1));
  const auto g =
      GridPartition::CreateEquiDepth(Rect(0, 0, 100, 100), 4, 4, sample);
  ASSERT_TRUE(g.ok());
  double total = 0;
  for (CellId c = 0; c < g.value().num_cells(); ++c) {
    EXPECT_GT(g.value().CellRect(c).Area(), 0);
    total += g.value().CellRect(c).Area();
  }
  EXPECT_DOUBLE_EQ(total, 100.0 * 100.0);
}

TEST(GridPartitionTest, FourthQuadrantPredicate) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const CellId anchor = g.CellIdOf(1, 1);
  int count = 0;
  for (CellId c = 0; c < g.num_cells(); ++c) {
    if (g.InFourthQuadrant(c, anchor)) ++count;
  }
  EXPECT_EQ(count, 9);  // Rows 1-3 x cols 1-3.
  EXPECT_TRUE(g.InFourthQuadrant(anchor, anchor));
  EXPECT_FALSE(g.InFourthQuadrant(g.CellIdOf(0, 3), anchor));
}

}  // namespace
}  // namespace mwsj
