// Randomized invariants of the grid substrate, on uniform and non-uniform
// (equi-depth) partitions alike:
//  * cells tile the space exactly (disjoint closed interiors, full cover);
//  * every point has exactly one owner, and the owner's closed cell
//    contains it;
//  * Split returns exactly the cells geometrically touching a rectangle;
//  * f1 equals the 4th-quadrant filter; f2(metric) equals the distance
//    filter over f1.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "grid/transform.h"

namespace mwsj {
namespace {

GridPartition RandomGrid(Rng& rng, const Rect& space) {
  const int rows = static_cast<int>(rng.UniformInt(1, 6));
  const int cols = static_cast<int>(rng.UniformInt(1, 6));
  if (rng.Bernoulli(0.5)) {
    return GridPartition::Create(space, rows, cols).value();
  }
  // Random strictly-increasing interior boundaries.
  auto bounds = [&rng](double lo, double hi, int n) {
    std::vector<double> b = {lo};
    for (int i = 1; i < n; ++i) b.push_back(rng.Uniform(lo, hi));
    b.push_back(hi);
    std::sort(b.begin(), b.end());
    // Collisions are vanishingly unlikely with doubles; repair anyway.
    for (size_t i = 1; i < b.size(); ++i) {
      if (b[i] <= b[i - 1]) b[i] = b[i - 1] + 1e-9;
    }
    b.back() = hi;
    return b;
  };
  return GridPartition::CreateRectilinear(
             bounds(space.min_x(), space.max_x(), cols),
             bounds(space.min_y(), space.max_y(), rows))
      .value();
}

Rect RandomRect(Rng& rng, const Rect& space, bool integers) {
  double l = rng.Uniform(0, space.length() / 2);
  double b = rng.Uniform(0, space.breadth() / 2);
  double x = rng.Uniform(space.min_x(), space.max_x() - l);
  double y = rng.Uniform(space.min_y() + b, space.max_y());
  if (integers) {
    l = std::floor(l);
    b = std::floor(b);
    x = std::floor(x);
    y = std::ceil(y);
  }
  return Rect::FromXYLB(x, y, l, b);
}

class GridPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridPropertyTest, CellsTileTheSpace) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 1);
  const Rect space(0, 0, 64, 32);
  const GridPartition g = RandomGrid(rng, space);
  double area = 0;
  for (CellId c = 0; c < g.num_cells(); ++c) {
    const Rect cell = g.CellRect(c);
    EXPECT_TRUE(space.Contains(cell));
    area += cell.Area();
  }
  EXPECT_NEAR(area, space.Area(), 1e-6);
}

TEST_P(GridPropertyTest, EveryPointHasExactlyOneOwnerContainingIt) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 2);
  const Rect space(0, 0, 64, 32);
  const GridPartition g = RandomGrid(rng, space);
  for (int i = 0; i < 200; ++i) {
    Point p{rng.Uniform(0, 64), rng.Uniform(0, 32)};
    if (i % 4 == 0) {  // Snap onto grid lines to stress ties.
      const CellId c = g.CellOfPoint(p);
      p.x = g.CellRect(c).max_x();
    }
    const CellId owner = g.CellOfPoint(p);
    EXPECT_TRUE(g.CellRect(owner).Contains(p))
        << "point (" << p.x << "," << p.y << ")";
  }
}

TEST_P(GridPropertyTest, SplitEqualsGeometricTouchSet) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  const Rect space(0, 0, 64, 32);
  const GridPartition g = RandomGrid(rng, space);
  for (int i = 0; i < 100; ++i) {
    const Rect r = RandomRect(rng, space, i % 3 == 0);
    std::vector<CellId> split;
    SplitCells(g, r, &split);
    std::vector<CellId> expected;
    for (CellId c = 0; c < g.num_cells(); ++c) {
      if (Overlaps(g.CellRect(c), r)) expected.push_back(c);
    }
    std::sort(split.begin(), split.end());
    EXPECT_EQ(split, expected) << r.ToString();
    // The start cell is always in the split set.
    EXPECT_TRUE(std::binary_search(split.begin(), split.end(),
                                   g.CellOfRect(r)));
  }
}

TEST_P(GridPropertyTest, ReplicateFunctionsMatchTheirDefinitions) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 4);
  const Rect space(0, 0, 64, 32);
  const GridPartition g = RandomGrid(rng, space);
  for (int i = 0; i < 60; ++i) {
    const Rect r = RandomRect(rng, space, false);
    const CellId anchor = g.CellOfRect(r);

    std::vector<CellId> f1;
    ReplicateF1Cells(g, r, &f1);
    std::vector<CellId> f1_expected;
    for (CellId c = 0; c < g.num_cells(); ++c) {
      if (g.InFourthQuadrant(c, anchor)) f1_expected.push_back(c);
    }
    std::sort(f1.begin(), f1.end());
    EXPECT_EQ(f1, f1_expected);

    const double d = rng.Uniform(0, 30);
    for (DistanceMetric metric :
         {DistanceMetric::kEuclidean, DistanceMetric::kChebyshev}) {
      std::vector<CellId> f2;
      ReplicateF2Cells(g, r, d, metric, &f2);
      std::vector<CellId> f2_expected;
      for (CellId c : f1_expected) {
        if (CellRectDistance(g, c, r, metric) <= d) f2_expected.push_back(c);
      }
      std::sort(f2.begin(), f2.end());
      EXPECT_EQ(f2, f2_expected) << "d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace mwsj
