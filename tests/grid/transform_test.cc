// Replays Figure 2 of the paper: the project, split and replicate outputs
// of rectangle r1 on a 4x4 partitioning, plus general transform properties.

#include <gtest/gtest.h>

#include <algorithm>

#include "grid/transform.h"

namespace mwsj {
namespace {

std::vector<int> PaperIds(const std::vector<CellId>& cells) {
  std::vector<int> out;
  out.reserve(cells.size());
  for (CellId c : cells) out.push_back(c + 1);
  std::sort(out.begin(), out.end());
  return out;
}

class Figure2Test : public ::testing::Test {
 protected:
  Figure2Test()
      : grid_(GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value()),
        // r1 starts in cell 6 (row 1, col 1) and crosses into cell 7.
        r1_(Rect::FromXYLB(1.5, 2.5, 1.0, 0.3)) {}

  GridPartition grid_;
  Rect r1_;
};

TEST_F(Figure2Test, ProjectReturnsCell6) {
  EXPECT_EQ(ProjectCell(grid_, r1_) + 1, 6);
}

TEST_F(Figure2Test, SplitReturnsCells6And7) {
  std::vector<CellId> cells;
  SplitCells(grid_, r1_, &cells);
  EXPECT_EQ(PaperIds(cells), (std::vector<int>{6, 7}));
}

TEST_F(Figure2Test, ReplicateF1ReturnsFourthQuadrantCells) {
  std::vector<CellId> cells;
  ReplicateF1Cells(grid_, r1_, &cells);
  EXPECT_EQ(PaperIds(cells),
            (std::vector<int>{6, 7, 8, 10, 11, 12, 14, 15, 16}));
  EXPECT_EQ(CountReplicateF1Cells(grid_, r1_),
            static_cast<int64_t>(cells.size()));
}

TEST_F(Figure2Test, ReplicateF2ReturnsNearbyFourthQuadrantCells) {
  // With d = 0.4 exactly the paper's cells 6, 7, 10, 11 qualify: cell 8 is
  // 0.5 away in x, row 3 is 1.2 away in y.
  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kChebyshev}) {
    std::vector<CellId> cells;
    ReplicateF2Cells(grid_, r1_, 0.4, metric, &cells);
    EXPECT_EQ(PaperIds(cells), (std::vector<int>{6, 7, 10, 11}));
  }
}

TEST_F(Figure2Test, ChebyshevF2IsASupersetOfEuclideanF2) {
  for (double d : {0.1, 0.5, 0.9, 1.4, 2.3}) {
    std::vector<CellId> euclidean, chebyshev;
    ReplicateF2Cells(grid_, r1_, d, DistanceMetric::kEuclidean, &euclidean);
    ReplicateF2Cells(grid_, r1_, d, DistanceMetric::kChebyshev, &chebyshev);
    EXPECT_TRUE(std::includes(chebyshev.begin(), chebyshev.end(),
                              euclidean.begin(), euclidean.end()))
        << "d=" << d;
  }
}

TEST_F(Figure2Test, F2WithHugeDistanceEqualsF1) {
  std::vector<CellId> f1, f2;
  ReplicateF1Cells(grid_, r1_, &f1);
  ReplicateF2Cells(grid_, r1_, 100.0, DistanceMetric::kEuclidean, &f2);
  EXPECT_EQ(PaperIds(f1), PaperIds(f2));
}

TEST_F(Figure2Test, F2WithZeroDistanceCoversSplitWithinFourthQuadrant) {
  // d = 0: exactly the 4th-quadrant cells touching the rectangle.
  std::vector<CellId> f2;
  ReplicateF2Cells(grid_, r1_, 0.0, DistanceMetric::kEuclidean, &f2);
  EXPECT_EQ(PaperIds(f2), (std::vector<int>{6, 7}));
}

TEST_F(Figure2Test, EnlargedSplitMatchesRangeRouting) {
  // §5.3's example shape: enlarging r1 by one cell reaches the row above
  // and the columns around it.
  std::vector<CellId> cells;
  EnlargedSplitCells(grid_, r1_, 1.0, &cells);
  EXPECT_EQ(PaperIds(cells),
            (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
}

TEST(TransformEdgeTest, RectOnCellBoundaryIsSplitToBothSides) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  // Right edge exactly on the x=2 grid line: touches column 2 as well.
  const Rect r = Rect::FromXYLB(1.2, 3.5, 0.8, 0.2);
  std::vector<CellId> cells;
  SplitCells(g, r, &cells);
  EXPECT_EQ(cells.size(), 2u);  // cols 1 and 2 of row 0.
}

TEST(TransformEdgeTest, SpaceSpanningRectSplitsEverywhere) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const Rect r = Rect::FromXYLB(0, 4, 4, 4);
  std::vector<CellId> cells;
  SplitCells(g, r, &cells);
  EXPECT_EQ(cells.size(), 16u);
}

TEST(TransformEdgeTest, DegeneratePointRectProjectsAndSplitsConsistently) {
  const GridPartition g =
      GridPartition::Create(Rect(0, 0, 4, 4), 4, 4).value();
  const Rect r = Rect::FromPoint(Point{2.5, 1.5});
  std::vector<CellId> cells;
  SplitCells(g, r, &cells);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], ProjectCell(g, r));
}

}  // namespace
}  // namespace mwsj
