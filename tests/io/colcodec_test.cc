// Columnar spill-codec tests: bijective double<->u64 ordered bits,
// randomized encode/decode round trips (single-row runs, block-boundary
// lengths, >2^20-row columns), malformed-input rejection, and per-ISA
// parity of the delta+zigzag kernels — every compiled ISA must produce
// byte-identical encodings, mirroring tests/simd/kernels_test.cc.

#include "io/colcodec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "simd/simd.h"

namespace mwsj::colcodec {
namespace {

std::vector<simd::Isa> AvailableIsas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::IsaAvailable(simd::Isa::kSse)) isas.push_back(simd::Isa::kSse);
  if (simd::IsaAvailable(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  return isas;
}

// NaN-free canonical doubles: the ordered-bits transform is bijective on
// all bit patterns, but rectangle coordinates are ordinary finite values;
// the property tests draw from those plus the signed-zero / infinity
// edge cases.
std::vector<double> InterestingDoubles() {
  return {0.0,
          -0.0,
          1.0,
          -1.0,
          0.5,
          -0.5,
          1e-300,
          -1e-300,
          1e300,
          -1e300,
          std::numeric_limits<double>::min(),
          -std::numeric_limits<double>::min(),
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max(),
          std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
}

TEST(OrderedBitsTest, RoundTripsExactBitPatterns) {
  for (const double d : InterestingDoubles()) {
    const uint64_t key = OrderedBitsFromDouble(d);
    const double back = DoubleFromOrderedBits(key);
    uint64_t d_bits = 0;
    uint64_t back_bits = 0;
    std::memcpy(&d_bits, &d, 8);
    std::memcpy(&back_bits, &back, 8);
    EXPECT_EQ(d_bits, back_bits) << "value " << d;
  }
  // -0.0 and +0.0 must stay distinguishable (bijective, not canonicalizing
  // like simd::OrderedKeyFromDouble).
  EXPECT_NE(OrderedBitsFromDouble(0.0), OrderedBitsFromDouble(-0.0));
}

TEST(OrderedBitsTest, PreservesOrderOnFiniteValues) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Uniform(-1e6, 1e6));
  for (const double d : InterestingDoubles()) {
    if (std::isfinite(d) || std::isinf(d)) values.push_back(d);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      if (values[i] < values[j]) {
        EXPECT_LT(OrderedBitsFromDouble(values[i]),
                  OrderedBitsFromDouble(values[j]))
            << values[i] << " vs " << values[j];
      }
    }
  }
}

std::vector<uint64_t> RandomColumn(uint64_t seed, size_t n, int shape) {
  Rng rng(seed);
  std::vector<uint64_t> vals(n);
  uint64_t acc = rng.Next();
  for (size_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:  // Sorted-ish: small increments (the spill key column).
        acc += rng.Next() % 1000;
        vals[i] = acc;
        break;
      case 1:  // Constant runs.
        if (rng.Next() % 7 == 0) acc = rng.Next();
        vals[i] = acc;
        break;
      case 2:  // Ordered doubles from a clustered coordinate stream.
        vals[i] = OrderedBitsFromDouble(
            std::floor(rng.Uniform(0, 1e5)) + rng.Uniform(0, 1.0));
        break;
      default:  // Full-entropy bits.
        vals[i] = rng.Next();
        break;
    }
  }
  return vals;
}

TEST(ColCodecTest, ColumnRoundTripsAcrossLengthsAndShapes) {
  // Lengths straddle every block boundary: empty, single row, one block,
  // one block +/- 1, several blocks with a partial tail.
  const size_t lengths[] = {0,   1,   2,   255, 256,
                            257, 511, 512, 513, 3 * 256 + 17};
  for (const size_t n : lengths) {
    for (int shape = 0; shape < 4; ++shape) {
      const std::vector<uint64_t> vals =
          RandomColumn(1000 + n * 7 + static_cast<uint64_t>(shape), n, shape);
      std::vector<uint8_t> buf;
      const size_t written = EncodeColumn(vals.data(), n, &buf);
      EXPECT_EQ(written, buf.size());
      std::vector<uint64_t> out(n + 1, 0xdeadbeefdeadbeefull);
      const size_t consumed = DecodeColumn(buf.data(), buf.size(), n,
                                           out.data());
      ASSERT_EQ(consumed, buf.size()) << "n=" << n << " shape=" << shape;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], vals[i]) << "n=" << n << " shape=" << shape
                                   << " i=" << i;
      }
      EXPECT_EQ(out[n], 0xdeadbeefdeadbeefull);  // No overrun.
    }
  }
}

TEST(ColCodecTest, LargeColumnRoundTrips) {
  // > 2^20 rows: thousands of blocks, mixed content.
  const size_t n = (1u << 20) + 321;
  std::vector<uint64_t> vals = RandomColumn(42, n, 0);
  for (size_t i = 0; i < n; i += 97) vals[i] = i % 3 == 0 ? 0 : ~vals[i];
  std::vector<uint8_t> buf;
  EncodeColumn(vals.data(), n, &buf);
  std::vector<uint64_t> out(n);
  ASSERT_EQ(DecodeColumn(buf.data(), buf.size(), n, out.data()), buf.size());
  EXPECT_EQ(out, vals);
}

TEST(ColCodecTest, SortedStreamsCompress) {
  // The design target: a sorted ordered-bits coordinate stream should
  // pack to a fraction of its raw 8 bytes/value.
  const size_t n = 1 << 16;
  Rng rng(9);
  std::vector<double> coords(n);
  for (size_t i = 0; i < n; ++i) coords[i] = rng.Uniform(0, 1e5);
  std::sort(coords.begin(), coords.end());
  std::vector<uint64_t> vals(n);
  for (size_t i = 0; i < n; ++i) vals[i] = OrderedBitsFromDouble(coords[i]);
  std::vector<uint8_t> buf;
  EncodeColumn(vals.data(), n, &buf);
  EXPECT_LT(buf.size(), n * 8 * 3 / 4) << "sorted stream failed to compress";
}

TEST(ColCodecTest, DecodeRejectsMalformedInput) {
  const std::vector<uint64_t> vals = RandomColumn(5, 600, 0);
  std::vector<uint8_t> buf;
  EncodeColumn(vals.data(), vals.size(), &buf);
  std::vector<uint64_t> out(vals.size());
  // Truncations at every structural boundary: empty, inside the first
  // block header, inside packed payload, one byte short.
  for (const size_t cut : {size_t{0}, size_t{4}, buf.size() / 2,
                           buf.size() - 1}) {
    EXPECT_EQ(DecodeColumn(buf.data(), cut, vals.size(), out.data()),
              size_t{0})
        << "cut=" << cut;
  }
  // Corrupt width byte (> 64).
  std::vector<uint8_t> corrupt = buf;
  corrupt[0] = 200;
  EXPECT_EQ(DecodeColumn(corrupt.data(), corrupt.size(), vals.size(),
                         out.data()),
            size_t{0});
}

TEST(ColCodecTest, FrameRoundTripsMultipleColumns) {
  const size_t n = 2 * 256 + 77;
  const size_t cols = 5;
  std::vector<std::vector<uint64_t>> columns;
  std::vector<const uint64_t*> ptrs;
  for (size_t c = 0; c < cols; ++c) {
    columns.push_back(RandomColumn(100 + c, n, static_cast<int>(c % 4)));
    ptrs.push_back(columns.back().data());
  }
  std::vector<uint8_t> buf;
  EncodeFrame(ptrs.data(), cols, n, &buf);
  FrameReader reader;
  ASSERT_TRUE(reader.Init(buf.data(), buf.size()));
  EXPECT_EQ(reader.rows(), n);
  EXPECT_EQ(reader.cols(), cols);
  std::vector<uint64_t> block(cols * kBlockRows);
  size_t row = 0;
  while (row < n) {
    const size_t got = reader.NextBlock(block.data());
    ASSERT_GT(got, 0u);
    for (size_t c = 0; c < cols; ++c) {
      for (size_t i = 0; i < got; ++i) {
        ASSERT_EQ(block[c * kBlockRows + i], columns[c][row + i])
            << "col " << c << " row " << row + i;
      }
    }
    row += got;
  }
  EXPECT_EQ(row, n);
}

TEST(ColCodecTest, FrameRejectsTruncation) {
  const size_t n = 300;
  const std::vector<uint64_t> col = RandomColumn(3, n, 3);
  const uint64_t* ptr = col.data();
  std::vector<uint8_t> buf;
  EncodeFrame(&ptr, 1, n, &buf);
  FrameReader reader;
  EXPECT_FALSE(reader.Init(buf.data(), buf.size() / 2));
  EXPECT_FALSE(reader.Init(buf.data(), 3));  // Shorter than the header.
  ASSERT_TRUE(reader.Init(buf.data(), buf.size()));
}

TEST(ColCodecTest, EncodingIsByteIdenticalAcrossIsas) {
  // Per-ISA parity: the encode bytes (and decode results) must match the
  // scalar reference exactly for every compiled ISA and tail length, the
  // same contract the batch kernels test. Runs the kernels directly from
  // the per-ISA tables, so one process covers every ISA.
  for (const size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                         size_t{5}, size_t{8}, size_t{9}, size_t{255},
                         size_t{256}, size_t{1000}}) {
    for (int shape = 0; shape < 4; ++shape) {
      const std::vector<uint64_t> vals =
          RandomColumn(7000 + n * 13 + static_cast<uint64_t>(shape), n,
                       shape);
      std::vector<uint64_t> ref_deltas(n > 0 ? n - 1 : 0);
      const uint64_t ref_mask =
          simd::KernelsFor(simd::Isa::kScalar)
              .delta_zigzag_encode(vals.data(), n, ref_deltas.data());
      std::vector<uint64_t> ref_decoded(n);
      simd::KernelsFor(simd::Isa::kScalar)
          .delta_zigzag_decode(ref_deltas.data(), n, vals.empty() ? 0
                                                                  : vals[0],
                               ref_decoded.data());
      ASSERT_EQ(ref_decoded, vals) << "scalar decode n=" << n;
      for (const simd::Isa isa : AvailableIsas()) {
        std::vector<uint64_t> deltas(n > 0 ? n - 1 : 0, 0xabababababababab);
        const uint64_t mask = simd::KernelsFor(isa).delta_zigzag_encode(
            vals.data(), n, deltas.data());
        EXPECT_EQ(mask, ref_mask)
            << "isa " << static_cast<int>(isa) << " n=" << n;
        ASSERT_EQ(deltas, ref_deltas)
            << "isa " << static_cast<int>(isa) << " n=" << n
            << " shape=" << shape;
        std::vector<uint64_t> decoded(n);
        simd::KernelsFor(isa).delta_zigzag_decode(
            deltas.data(), n, vals.empty() ? 0 : vals[0], decoded.data());
        ASSERT_EQ(decoded, vals)
            << "isa " << static_cast<int>(isa) << " n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace mwsj::colcodec
