// Dataset I/O: CSV/binary round trips and malformed-input handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "common/random.h"
#include "io/dataset_io.h"

namespace mwsj {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "mwsj_io_" + name;
  }

  void TearDown() override {
    for (const std::string& p : created_) std::remove(p.c_str());
  }

  std::string Track(std::string path) {
    created_.push_back(path);
    return path;
  }

  std::vector<Rect> RandomRects(int n) {
    Rng rng(3);
    std::vector<Rect> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(Rect::FromXYLB(rng.Uniform(-50, 50), rng.Uniform(-50, 50),
                                   rng.Uniform(0, 10), rng.Uniform(0, 10)));
    }
    return out;
  }

  std::vector<std::string> created_;
};

TEST_F(DatasetIoTest, CsvRoundTrip) {
  const std::string path = Track(TempPath("roundtrip.csv"));
  const std::vector<Rect> rects = RandomRects(200);
  ASSERT_TRUE(WriteRectsCsv(path, rects).ok());
  const auto loaded = ReadRectsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), rects);  // %.17g is lossless for doubles.
}

TEST_F(DatasetIoTest, BinaryRoundTrip) {
  const std::string path = Track(TempPath("roundtrip.bin"));
  const std::vector<Rect> rects = RandomRects(500);
  ASSERT_TRUE(WriteRectsBinary(path, rects).ok());
  const auto loaded = ReadRectsBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), rects);
}

TEST_F(DatasetIoTest, EmptyDatasetsRoundTrip) {
  const std::string csv = Track(TempPath("empty.csv"));
  const std::string bin = Track(TempPath("empty.bin"));
  ASSERT_TRUE(WriteRectsCsv(csv, {}).ok());
  ASSERT_TRUE(WriteRectsBinary(bin, {}).ok());
  EXPECT_TRUE(ReadRectsCsv(csv).value().empty());
  EXPECT_TRUE(ReadRectsBinary(bin).value().empty());
}

TEST_F(DatasetIoTest, ExtensionDispatch) {
  const std::string csv = Track(TempPath("dispatch.csv"));
  const std::string bin = Track(TempPath("dispatch.bin"));
  const std::vector<Rect> rects = RandomRects(50);
  ASSERT_TRUE(WriteRects(csv, rects).ok());
  ASSERT_TRUE(WriteRects(bin, rects).ok());
  EXPECT_EQ(ReadRects(csv).value(), rects);
  EXPECT_EQ(ReadRects(bin).value(), rects);
}

TEST_F(DatasetIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadRectsCsv("/nonexistent/x.csv").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadRectsBinary("/nonexistent/x.bin").status().code(),
            StatusCode::kNotFound);
}

TEST_F(DatasetIoTest, CsvRejectsBadHeaderAndRows) {
  const std::string path = Track(TempPath("bad.csv"));
  {
    std::ofstream out(path);
    out << "a,b,c\n1,2,3,4\n";
  }
  EXPECT_EQ(ReadRectsCsv(path).status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "x,y,l,b\n1,2,three,4\n";
  }
  EXPECT_EQ(ReadRectsCsv(path).status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(path);
    out << "x,y,l,b\n1,2,-3,4\n";  // Negative length.
  }
  EXPECT_EQ(ReadRectsCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, CsvRejectsNonFiniteCoordinates) {
  // NaN makes every branch-free predicate comparison false, so a NaN MBR
  // that survives ingest silently deletes join results. The reader must
  // reject it and name the offending line.
  const std::string path = Track(TempPath("nan.csv"));
  {
    std::ofstream out(path);
    out << "x,y,l,b\n1,2,3,4\nnan,2,3,4\n";
  }
  const auto nan_result = ReadRectsCsv(path);
  EXPECT_EQ(nan_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nan_result.status().message().find("line 3"), std::string::npos)
      << nan_result.status().ToString();
  {
    std::ofstream out(path);
    out << "x,y,l,b\n1,2,inf,4\n";
  }
  EXPECT_EQ(ReadRectsCsv(path).status().code(), StatusCode::kInvalidArgument);
  {
    // Finite fields whose corner arithmetic overflows: x + l == inf.
    std::ofstream out(path);
    out << "x,y,l,b\n1e308,2,1e308,4\n";
  }
  EXPECT_EQ(ReadRectsCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, BinaryRejectsNaNAndInvertedRecords) {
  const std::string path = Track(TempPath("nan.bin"));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Write records through the raw writer: Rect carries whatever bits the
  // caller supplies, so a hostile/buggy producer can serialize NaN or
  // min > max; the reader is the validation boundary.
  ASSERT_TRUE(
      WriteRectsBinary(path, {Rect(0, 0, 1, 1), Rect(nan, 0, 1, 1)}).ok());
  const auto nan_result = ReadRectsBinary(path);
  EXPECT_EQ(nan_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(nan_result.status().message().find("record 1"), std::string::npos)
      << nan_result.status().ToString();

  ASSERT_TRUE(WriteRectsBinary(path, {Rect(2, 0, 1, 1)}).ok());  // min > max.
  const auto inverted = ReadRectsBinary(path);
  EXPECT_EQ(inverted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(inverted.status().message().find("record 0"), std::string::npos);
}

TEST_F(DatasetIoTest, CsvToleratesCrlfAndBlankLines) {
  const std::string path = Track(TempPath("crlf.csv"));
  {
    std::ofstream out(path);
    out << "x,y,l,b\r\n1,2,3,1\r\n\r\n5,6,1,2\r\n";
  }
  const auto loaded = ReadRectsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0], Rect::FromXYLB(1, 2, 3, 1));
}

TEST_F(DatasetIoTest, BinaryRejectsWrongMagicAndTruncation) {
  const std::string path = Track(TempPath("bad.bin"));
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTMWSJ";
  }
  EXPECT_EQ(ReadRectsBinary(path).status().code(),
            StatusCode::kInvalidArgument);

  // Valid file, then truncate the payload.
  ASSERT_TRUE(WriteRectsBinary(path, RandomRects(10)).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 16));
  }
  EXPECT_EQ(ReadRectsBinary(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, TuplesCsv) {
  const std::string path = Track(TempPath("tuples.csv"));
  ASSERT_TRUE(
      WriteTuplesCsv(path, {"city", "river"}, {{1, 2}, {3, 4}}).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "city,river");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
}

}  // namespace
}  // namespace mwsj
