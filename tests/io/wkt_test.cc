// WKT polygon (de)serialization tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/wkt.h"

namespace mwsj {
namespace {

TEST(WktParseTest, BasicTriangle) {
  const auto p = ParseWktPolygon("POLYGON ((0 0, 4 0, 2 3, 0 0))");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p.value().size(), 3u);  // Closing vertex dropped.
  EXPECT_EQ(p.value().vertices()[2], (Point{2, 3}));
}

TEST(WktParseTest, UnclosedRingIsAccepted) {
  const auto p = ParseWktPolygon("POLYGON((0 0, 4 0, 2 3))");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().size(), 3u);
}

TEST(WktParseTest, CaseAndWhitespaceFlexibility) {
  EXPECT_TRUE(ParseWktPolygon("polygon ( ( 0 0 , 1 0 , 1 1 ) )").ok());
  EXPECT_TRUE(
      ParseWktPolygon("Polygon((-1.5 -2.25, 3e2 0, 0 4.5))").ok());
}

TEST(WktParseTest, Rejections) {
  EXPECT_FALSE(ParseWktPolygon("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(ParseWktPolygon("POLYGON (0 0, 1 0, 1 1)").ok());   // One paren.
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 0))").ok());      // 2 points.
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 x, 1 1))").ok()); // Bad num.
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1)) junk").ok());
  EXPECT_FALSE(ParseWktPolygon("").ok());
}

TEST(WktTest, RoundTripThroughText) {
  const Polygon original({{0.5, 0.25}, {4, 0}, {2.125, 3.75}});
  const auto parsed = ParseWktPolygon(ToWkt(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.value().vertices()[i], original.vertices()[i]);
  }
}

TEST(WktFileTest, FileRoundTripWithCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "mwsj_wkt_test.wkt";
  const std::vector<Polygon> polygons = {
      Polygon({{0, 0}, {1, 0}, {1, 1}}),
      Polygon::RegularNGon({5, 5}, 2, 6),
  };
  ASSERT_TRUE(WritePolygonsWkt(path, polygons).ok());
  // Inject a comment and a blank line.
  {
    std::ofstream out(path, std::ios::app);
    out << "\n# a comment\n";
  }
  const auto loaded = ReadPolygonsWkt(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].size(), 6u);
  std::remove(path.c_str());
}

TEST(WktFileTest, ErrorsCarryLineNumbers) {
  const std::string path = ::testing::TempDir() + "mwsj_wkt_bad.wkt";
  {
    std::ofstream out(path);
    out << "POLYGON ((0 0, 1 0, 1 1))\nPOLYGON ((broken\n";
  }
  const auto loaded = ReadPolygonsWkt(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WktFileTest, MissingFile) {
  EXPECT_EQ(ReadPolygonsWkt("/nonexistent/p.wkt").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mwsj
