// Multiway local join (the reducer-side kernel) vs. brute force.

#include <gtest/gtest.h>

#include <algorithm>

#include "localjoin/brute_force.h"
#include "localjoin/multiway.h"
#include "testing/world.h"

namespace mwsj {
namespace {

std::vector<IdTuple> RunLocalJoin(const Query& query,
                                  const std::vector<std::vector<Rect>>& data) {
  std::vector<std::vector<LocalRect>> local(data.size());
  for (size_t r = 0; r < data.size(); ++r) {
    for (size_t i = 0; i < data[r].size(); ++i) {
      local[r].push_back(LocalRect{data[r][i], static_cast<int64_t>(i)});
    }
  }
  std::vector<std::span<const LocalRect>> spans;
  for (const auto& rel : local) spans.emplace_back(rel.data(), rel.size());
  MultiwayLocalJoin join(query, std::move(spans));
  std::vector<IdTuple> out;
  join.Execute([&out](const std::vector<const LocalRect*>& members) {
    IdTuple ids;
    ids.reserve(members.size());
    for (const LocalRect* m : members) ids.push_back(m->id);
    out.push_back(std::move(ids));
  });
  SortTuples(&out);
  return out;
}

class MultiwayLocalJoinTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
// Params: (shape index, seed).

TEST_P(MultiwayLocalJoinTest, MatchesBruteForce) {
  using testing::QueryShape;
  const QueryShape shapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                               QueryShape::kStar4, QueryShape::kCycle3};
  testing::WorldConfig config;
  config.shape = shapes[std::get<0>(GetParam())];
  config.mix = (std::get<1>(GetParam()) % 2 == 0)
                   ? testing::PredicateMix::kOverlapOnly
                   : testing::PredicateMix::kHybrid;
  config.seed = static_cast<uint64_t>(std::get<1>(GetParam())) * 31 + 5;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  EXPECT_EQ(RunLocalJoin(query, data), BruteForceJoin(query, data));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiwayLocalJoinTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 6)));

TEST(MultiwayLocalJoinEdge, EmptyRelationShortCircuits) {
  testing::WorldConfig config;
  const Query query = testing::MakeWorldQuery(config);
  auto data = testing::MakeWorldData(config, query.num_relations());
  data[2].clear();
  EXPECT_TRUE(RunLocalJoin(query, data).empty());
}

TEST(MultiwayLocalJoinEdge, ChainBindsThroughSmallestRelationFirst) {
  // Functional check that planning from a tiny relation does not change
  // results: one relation has a single rectangle.
  testing::WorldConfig config;
  config.seed = 77;
  const Query query = testing::MakeWorldQuery(config);
  auto data = testing::MakeWorldData(config, query.num_relations());
  data[1].resize(std::min<size_t>(data[1].size(), 1));
  EXPECT_EQ(RunLocalJoin(query, data), BruteForceJoin(query, data));
}

TEST(BruteForceTest, TinyHandComputedCase) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {
      {Rect::FromXYLB(0, 2, 2, 2)},                           // a0
      {Rect::FromXYLB(1, 2, 2, 2), Rect::FromXYLB(9, 2, 1, 1)},  // b0, b1
      {Rect::FromXYLB(2.5, 2, 2, 2)},                         // c0
  };
  // a0-b0 overlap; b0-c0 overlap; b1 matches nothing.
  EXPECT_EQ(BruteForceJoin(q, data), (std::vector<IdTuple>{{0, 0, 0}}));
}

TEST(SortTuplesTest, LexicographicOrder) {
  std::vector<IdTuple> tuples = {{2, 1}, {1, 5}, {1, 2}};
  SortTuples(&tuples);
  EXPECT_EQ(tuples, (std::vector<IdTuple>{{1, 2}, {1, 5}, {2, 1}}));
}

}  // namespace
}  // namespace mwsj
