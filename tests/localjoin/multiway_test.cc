// Multiway local join (the reducer-side kernel) vs. brute force.

#include <gtest/gtest.h>

#include <algorithm>

#include "localjoin/brute_force.h"
#include "localjoin/multiway.h"
#include "testing/world.h"

namespace mwsj {
namespace {

std::vector<IdTuple> RunLocalJoin(const Query& query,
                                  const std::vector<std::vector<Rect>>& data) {
  std::vector<std::vector<LocalRect>> local(data.size());
  for (size_t r = 0; r < data.size(); ++r) {
    for (size_t i = 0; i < data[r].size(); ++i) {
      local[r].push_back(LocalRect{data[r][i], static_cast<int64_t>(i)});
    }
  }
  std::vector<std::span<const LocalRect>> spans;
  for (const auto& rel : local) spans.emplace_back(rel.data(), rel.size());
  MultiwayLocalJoin join(query, std::move(spans));
  std::vector<IdTuple> out;
  join.Execute([&out](const std::vector<const LocalRect*>& members) {
    IdTuple ids;
    ids.reserve(members.size());
    for (const LocalRect* m : members) ids.push_back(m->id);
    out.push_back(std::move(ids));
  });
  SortTuples(&out);
  return out;
}

class MultiwayLocalJoinTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
// Params: (shape index, seed).

TEST_P(MultiwayLocalJoinTest, MatchesBruteForce) {
  using testing::QueryShape;
  const QueryShape shapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                               QueryShape::kStar4, QueryShape::kCycle3};
  testing::WorldConfig config;
  config.shape = shapes[std::get<0>(GetParam())];
  config.mix = (std::get<1>(GetParam()) % 2 == 0)
                   ? testing::PredicateMix::kOverlapOnly
                   : testing::PredicateMix::kHybrid;
  config.seed = static_cast<uint64_t>(std::get<1>(GetParam())) * 31 + 5;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());

  EXPECT_EQ(RunLocalJoin(query, data), BruteForceJoin(query, data));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultiwayLocalJoinTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 6)));

TEST(MultiwayLocalJoinEdge, EmptyRelationShortCircuits) {
  testing::WorldConfig config;
  const Query query = testing::MakeWorldQuery(config);
  auto data = testing::MakeWorldData(config, query.num_relations());
  data[2].clear();
  EXPECT_TRUE(RunLocalJoin(query, data).empty());
}

TEST(MultiwayLocalJoinEdge, ChainBindsThroughSmallestRelationFirst) {
  // Functional check that planning from a tiny relation does not change
  // results: one relation has a single rectangle.
  testing::WorldConfig config;
  config.seed = 77;
  const Query query = testing::MakeWorldQuery(config);
  auto data = testing::MakeWorldData(config, query.num_relations());
  data[1].resize(std::min<size_t>(data[1].size(), 1));
  EXPECT_EQ(RunLocalJoin(query, data), BruteForceJoin(query, data));
}

TEST(MultiwayLocalJoinProperty, MatchesBruteForceOnRandomWorlds) {
  // ~100 seeded random (query, dataset) pairs across every shape and
  // predicate mix, with relation sizes straddling the linear-scan
  // threshold so both the R-tree and scan probe paths are exercised.
  using testing::PredicateMix;
  using testing::QueryShape;
  const QueryShape shapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                               QueryShape::kStar4, QueryShape::kCycle3};
  const PredicateMix mixes[] = {PredicateMix::kOverlapOnly,
                                PredicateMix::kRangeOnly,
                                PredicateMix::kHybrid};
  for (int trial = 0; trial < 100; ++trial) {
    testing::WorldConfig config;
    config.shape = shapes[trial % 4];
    config.mix = mixes[trial % 3];
    config.seed = 5000 + static_cast<uint64_t>(trial) * 13;
    config.max_rects_per_relation = 2 + (trial * 7) % 40;
    config.integer_coords = (trial % 5 == 0);
    const Query query = testing::MakeWorldQuery(config);
    const auto data = testing::MakeWorldData(config, query.num_relations());
    EXPECT_EQ(RunLocalJoin(query, data), BruteForceJoin(query, data))
        << "trial " << trial;
  }
}

TEST(MultiwayLocalJoinPlan, EqualSizeCliqueOrderIsIndexTieBroken) {
  // On a 3-clique with equal-size relations every greedy step ties on
  // size; the plan must break ties by relation index so order_ is
  // platform-deterministic.
  QueryBuilder b;
  const int r1 = b.AddRelation("R1");
  const int r2 = b.AddRelation("R2");
  const int r3 = b.AddRelation("R3");
  b.AddOverlap(r1, r2).AddOverlap(r2, r3).AddOverlap(r3, r1);
  const Query query = b.Build().value();

  std::vector<std::vector<LocalRect>> local(3);
  for (size_t r = 0; r < 3; ++r) {
    for (int i = 0; i < 10; ++i) {
      local[r].push_back(LocalRect{
          Rect::FromXYLB(static_cast<double>(i), 1, 1, 1), i});
    }
  }
  std::vector<std::span<const LocalRect>> spans;
  for (const auto& rel : local) spans.emplace_back(rel.data(), rel.size());
  const MultiwayLocalJoin join(query, std::move(spans));
  EXPECT_EQ(join.binding_order(), (std::vector<int>{0, 1, 2}));
}

TEST(MultiwayLocalJoinEdge, RelationsBelowScanThresholdMatchBruteForce) {
  // Every relation below kLinearScanThreshold: no R-tree is built and all
  // probes take the linear-scan path.
  testing::WorldConfig config;
  config.seed = 123;
  config.max_rects_per_relation =
      static_cast<int>(MultiwayLocalJoin::kLinearScanThreshold) - 1;
  const Query query = testing::MakeWorldQuery(config);
  const auto data = testing::MakeWorldData(config, query.num_relations());
  EXPECT_EQ(RunLocalJoin(query, data), BruteForceJoin(query, data));
}

TEST(BruteForceTest, TinyHandComputedCase) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {
      {Rect::FromXYLB(0, 2, 2, 2)},                           // a0
      {Rect::FromXYLB(1, 2, 2, 2), Rect::FromXYLB(9, 2, 1, 1)},  // b0, b1
      {Rect::FromXYLB(2.5, 2, 2, 2)},                         // c0
  };
  // a0-b0 overlap; b0-c0 overlap; b1 matches nothing.
  EXPECT_EQ(BruteForceJoin(q, data), (std::vector<IdTuple>{{0, 0, 0}}));
}

TEST(SortTuplesTest, LexicographicOrder) {
  std::vector<IdTuple> tuples = {{2, 1}, {1, 5}, {1, 2}};
  SortTuples(&tuples);
  EXPECT_EQ(tuples, (std::vector<IdTuple>{{1, 2}, {1, 5}, {2, 1}}));
}

}  // namespace
}  // namespace mwsj
