// Plane-sweep pairwise join vs. nested-loop reference.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "localjoin/plane_sweep.h"

namespace mwsj {
namespace {

using Pair = std::pair<int32_t, int32_t>;

std::vector<Rect> RandomRects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 12);
    const double b = rng.Uniform(0, 12);
    out.push_back(
        Rect::FromXYLB(rng.Uniform(0, 100 - l), rng.Uniform(b, 100), l, b));
  }
  return out;
}

std::vector<Pair> Reference(const std::vector<Rect>& a,
                            const std::vector<Rect>& b,
                            const Predicate& pred) {
  std::vector<Pair> out;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (pred.Evaluate(a[i], b[j])) {
        out.emplace_back(static_cast<int32_t>(i), static_cast<int32_t>(j));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Pair> Sweep(const std::vector<Rect>& a, const std::vector<Rect>& b,
                        const Predicate& pred) {
  std::vector<Pair> out;
  PlaneSweepJoin(a, b, pred,
                 [&out](int32_t i, int32_t j) { out.emplace_back(i, j); });
  std::sort(out.begin(), out.end());
  return out;
}

class PlaneSweepRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PlaneSweepRandomTest, OverlapMatchesReference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const auto a = RandomRects(120, seed * 2 + 1);
  const auto b = RandomRects(150, seed * 2 + 2);
  const Predicate p = Predicate::Overlap();
  EXPECT_EQ(Sweep(a, b, p), Reference(a, b, p));
}

TEST_P(PlaneSweepRandomTest, RangeMatchesReference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const auto a = RandomRects(100, seed * 3 + 1);
  const auto b = RandomRects(100, seed * 3 + 2);
  const Predicate p = Predicate::Range(6.5);
  EXPECT_EQ(Sweep(a, b, p), Reference(a, b, p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaneSweepRandomTest, ::testing::Range(0, 8));

TEST(PlaneSweepTest, EmptySidesProduceNothing) {
  const auto a = RandomRects(10, 1);
  EXPECT_TRUE(Sweep(a, {}, Predicate::Overlap()).empty());
  EXPECT_TRUE(Sweep({}, a, Predicate::Overlap()).empty());
  EXPECT_TRUE(Sweep({}, {}, Predicate::Overlap()).empty());
}

TEST(PlaneSweepTest, TouchingRectanglesAreReported) {
  const std::vector<Rect> a = {Rect::FromXYLB(0, 1, 1, 1)};
  const std::vector<Rect> b = {Rect::FromXYLB(1, 1, 1, 1)};  // Shares edge.
  EXPECT_EQ(Sweep(a, b, Predicate::Overlap()), (std::vector<Pair>{{0, 0}}));
}

TEST(PlaneSweepTest, DuplicatedXCoordinatesMatchReference) {
  // Grid-aligned data: many rectangles share min_x, so the sweep order
  // depends entirely on the tie-break. Correctness must not.
  Rng rng(42);
  auto grid_rects = [&rng](int n) {
    std::vector<Rect> out;
    for (int i = 0; i < n; ++i) {
      const double x = static_cast<double>(rng.UniformInt(0, 5)) * 10;
      const double y = static_cast<double>(rng.UniformInt(0, 5)) * 10;
      out.push_back(Rect::FromXYLB(x, y + 8, 8, 8));
    }
    return out;
  };
  const auto a = grid_rects(60);
  const auto b = grid_rects(70);
  for (const Predicate& p : {Predicate::Overlap(), Predicate::Range(4)}) {
    EXPECT_EQ(Sweep(a, b, p), Reference(a, b, p));
  }
}

TEST(PlaneSweepTest, EmitOrderIsDeterministicUnderTies) {
  // All four rectangles start at the same x: the (min_x, from_a, index)
  // tie-break processes b-side events first, then a-side, each by index —
  // so the unsorted emit sequence is fully specified.
  const std::vector<Rect> a = {Rect::FromXYLB(0, 10, 5, 5),
                               Rect::FromXYLB(0, 9, 5, 5)};
  const std::vector<Rect> b = {Rect::FromXYLB(0, 10, 5, 5),
                               Rect::FromXYLB(0, 8, 5, 5)};
  std::vector<Pair> emitted;
  PlaneSweepJoin(a, b, Predicate::Overlap(),
                 [&emitted](int32_t i, int32_t j) {
                   emitted.emplace_back(i, j);
                 });
  EXPECT_EQ(emitted,
            (std::vector<Pair>{{0, 0}, {0, 1}, {1, 0}, {1, 1}}));
}

TEST(PlaneSweepTest, RangeZeroEqualsOverlap) {
  const auto a = RandomRects(80, 5);
  const auto b = RandomRects(80, 6);
  EXPECT_EQ(Sweep(a, b, Predicate::Range(0)),
            Sweep(a, b, Predicate::Overlap()));
}

}  // namespace
}  // namespace mwsj
