// STR R-tree: probe results must exactly match linear scans.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "localjoin/rtree.h"

namespace mwsj {
namespace {

std::vector<Rect> RandomRects(int n, uint64_t seed, double space = 100,
                              double max_dim = 10) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, max_dim);
    const double b = rng.Uniform(0, max_dim);
    out.push_back(Rect::FromXYLB(rng.Uniform(0, space - l),
                                 rng.Uniform(b, space), l, b));
  }
  return out;
}

std::vector<int32_t> Sorted(std::vector<int32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RTreeTest, EmptyTreeReturnsNothing) {
  const RTree tree(std::vector<Rect>{});
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect(0, 0, 100, 100), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RTreeTest, SingleEntry) {
  const std::vector<Rect> rects = {Rect::FromXYLB(5, 10, 2, 2)};
  const RTree tree(rects);
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect::FromXYLB(6, 9, 2, 2), &out);
  EXPECT_EQ(out, (std::vector<int32_t>{0}));
  out.clear();
  tree.CollectOverlapping(Rect::FromXYLB(50, 50, 1, 1), &out);
  EXPECT_TRUE(out.empty());
}

class RTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeRandomTest, OverlapProbesMatchLinearScan) {
  const int seed = GetParam();
  const std::vector<Rect> rects =
      RandomRects(400, static_cast<uint64_t>(seed) + 1);
  const RTree tree(rects, /*leaf_capacity=*/8);
  Rng rng(static_cast<uint64_t>(seed) + 1000);
  for (int probe = 0; probe < 50; ++probe) {
    const Rect q = Rect::FromXYLB(rng.Uniform(0, 90), rng.Uniform(10, 100),
                                  rng.Uniform(0, 20), rng.Uniform(0, 20));
    std::vector<int32_t> got;
    tree.CollectOverlapping(q, &got);
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (Overlaps(rects[i], q)) want.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(Sorted(got), want) << "probe " << probe;
  }
}

TEST_P(RTreeRandomTest, DistanceProbesMatchLinearScan) {
  const int seed = GetParam();
  const std::vector<Rect> rects =
      RandomRects(300, static_cast<uint64_t>(seed) + 7);
  const RTree tree(rects, /*leaf_capacity=*/4);
  Rng rng(static_cast<uint64_t>(seed) + 2000);
  for (int probe = 0; probe < 30; ++probe) {
    const Rect q = Rect::FromXYLB(rng.Uniform(0, 95), rng.Uniform(5, 100),
                                  rng.Uniform(0, 5), rng.Uniform(0, 5));
    const double d = rng.Uniform(0, 15);
    std::vector<int32_t> got;
    tree.CollectWithinDistance(q, d, &got);
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (WithinDistance(rects[i], q, d)) want.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(Sorted(got), want) << "probe " << probe << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeRandomTest, ::testing::Range(0, 6));

TEST(RTreeScratchTest, EmptyTreeWithScratchReturnsNothing) {
  const RTree tree(std::vector<Rect>{});
  RTree::QueryScratch scratch;
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect(0, 0, 100, 100), &scratch, &out);
  EXPECT_TRUE(out.empty());
  tree.CollectWithinDistance(Rect(0, 0, 100, 100), 5.0, &scratch, &out);
  EXPECT_TRUE(out.empty());
  // The empty early-out must not grow the scratch stack.
  EXPECT_TRUE(scratch.stack.empty());
}

TEST(RTreeScratchTest, SingleRectTree) {
  const std::vector<Rect> rects = {Rect::FromXYLB(5, 10, 2, 2)};
  const RTree tree(rects);
  RTree::QueryScratch scratch;
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect::FromXYLB(6, 9, 2, 2), &scratch, &out);
  EXPECT_EQ(out, (std::vector<int32_t>{0}));
  out.clear();
  tree.CollectOverlapping(Rect::FromXYLB(50, 50, 1, 1), &scratch, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  tree.CollectWithinDistance(Rect::FromXYLB(10, 9, 1, 1), 3.0, &scratch, &out);
  EXPECT_EQ(out, (std::vector<int32_t>{0}));
  out.clear();
  tree.CollectWithinDistance(Rect::FromXYLB(10, 9, 1, 1), 2.9, &scratch, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeScratchTest, ScratchReusableAcrossProbesAndTrees) {
  const std::vector<Rect> rects_a = RandomRects(200, 11);
  const std::vector<Rect> rects_b = RandomRects(150, 12);
  const RTree tree_a(rects_a, /*leaf_capacity=*/8);
  const RTree tree_b(rects_b, /*leaf_capacity=*/4);
  RTree::QueryScratch scratch;
  Rng rng(99);
  for (int probe = 0; probe < 40; ++probe) {
    const Rect q = Rect::FromXYLB(rng.Uniform(0, 90), rng.Uniform(10, 100),
                                  rng.Uniform(0, 15), rng.Uniform(0, 15));
    const RTree& tree = (probe % 2 == 0) ? tree_a : tree_b;
    const std::vector<Rect>& rects = (probe % 2 == 0) ? rects_a : rects_b;
    std::vector<int32_t> got;
    tree.CollectOverlapping(q, &scratch, &got);
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (Overlaps(rects[i], q)) want.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(Sorted(got), want) << "probe " << probe;
  }
}

TEST(RTreeScratchTest, DistanceZeroMatchesTouchingRectangles) {
  // d = 0 range queries degenerate to "MinDistance == 0": overlapping or
  // exactly touching rectangles qualify, disjoint ones do not.
  const std::vector<Rect> rects = {
      Rect(0, 0, 2, 2),    // Overlaps the probe.
      Rect(3, 0, 5, 2),    // Touches the probe's right edge.
      Rect(3, 3, 5, 5),    // Touches the probe's corner.
      Rect(3.1, 0, 5, 2),  // Disjoint by 0.1.
  };
  const RTree tree(rects, /*leaf_capacity=*/2);
  const Rect probe(1, 0, 3, 3);
  RTree::QueryScratch scratch;
  std::vector<int32_t> out;
  tree.CollectWithinDistance(probe, 0.0, &scratch, &out);
  EXPECT_EQ(Sorted(out), (std::vector<int32_t>{0, 1, 2}));
  // A random set, cross-checked against a linear scan at d = 0.
  const std::vector<Rect> random = RandomRects(300, 21);
  const RTree random_tree(random, /*leaf_capacity=*/8);
  Rng rng(22);
  for (int probe_i = 0; probe_i < 30; ++probe_i) {
    const Rect q = Rect::FromXYLB(rng.Uniform(0, 90), rng.Uniform(10, 100),
                                  rng.Uniform(0, 20), rng.Uniform(0, 20));
    std::vector<int32_t> got;
    random_tree.CollectWithinDistance(q, 0.0, &scratch, &got);
    std::vector<int32_t> want;
    for (size_t i = 0; i < random.size(); ++i) {
      if (WithinDistance(random[i], q, 0.0)) {
        want.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(Sorted(got), want) << "probe " << probe_i;
  }
}

TEST(RTreeTest, HandlesManyIdenticalRectangles) {
  const std::vector<Rect> rects(100, Rect::FromXYLB(5, 5, 1, 1));
  const RTree tree(rects);
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect::FromXYLB(5.5, 5, 1, 1), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RTreeTest, DegeneratePointEntriesAreFound) {
  std::vector<Rect> rects;
  for (int i = 0; i < 20; ++i) {
    rects.push_back(Rect::FromPoint(Point{static_cast<double>(i), 1.0}));
  }
  const RTree tree(rects, 4);
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect(4.5, 0, 9.5, 2), &out);
  EXPECT_EQ(Sorted(out), (std::vector<int32_t>{5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace mwsj
