// STR R-tree: probe results must exactly match linear scans.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "localjoin/rtree.h"

namespace mwsj {
namespace {

std::vector<Rect> RandomRects(int n, uint64_t seed, double space = 100,
                              double max_dim = 10) {
  Rng rng(seed);
  std::vector<Rect> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, max_dim);
    const double b = rng.Uniform(0, max_dim);
    out.push_back(Rect::FromXYLB(rng.Uniform(0, space - l),
                                 rng.Uniform(b, space), l, b));
  }
  return out;
}

std::vector<int32_t> Sorted(std::vector<int32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RTreeTest, EmptyTreeReturnsNothing) {
  const RTree tree(std::vector<Rect>{});
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect(0, 0, 100, 100), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RTreeTest, SingleEntry) {
  const std::vector<Rect> rects = {Rect::FromXYLB(5, 10, 2, 2)};
  const RTree tree(rects);
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect::FromXYLB(6, 9, 2, 2), &out);
  EXPECT_EQ(out, (std::vector<int32_t>{0}));
  out.clear();
  tree.CollectOverlapping(Rect::FromXYLB(50, 50, 1, 1), &out);
  EXPECT_TRUE(out.empty());
}

class RTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeRandomTest, OverlapProbesMatchLinearScan) {
  const int seed = GetParam();
  const std::vector<Rect> rects =
      RandomRects(400, static_cast<uint64_t>(seed) + 1);
  const RTree tree(rects, /*leaf_capacity=*/8);
  Rng rng(static_cast<uint64_t>(seed) + 1000);
  for (int probe = 0; probe < 50; ++probe) {
    const Rect q = Rect::FromXYLB(rng.Uniform(0, 90), rng.Uniform(10, 100),
                                  rng.Uniform(0, 20), rng.Uniform(0, 20));
    std::vector<int32_t> got;
    tree.CollectOverlapping(q, &got);
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (Overlaps(rects[i], q)) want.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(Sorted(got), want) << "probe " << probe;
  }
}

TEST_P(RTreeRandomTest, DistanceProbesMatchLinearScan) {
  const int seed = GetParam();
  const std::vector<Rect> rects =
      RandomRects(300, static_cast<uint64_t>(seed) + 7);
  const RTree tree(rects, /*leaf_capacity=*/4);
  Rng rng(static_cast<uint64_t>(seed) + 2000);
  for (int probe = 0; probe < 30; ++probe) {
    const Rect q = Rect::FromXYLB(rng.Uniform(0, 95), rng.Uniform(5, 100),
                                  rng.Uniform(0, 5), rng.Uniform(0, 5));
    const double d = rng.Uniform(0, 15);
    std::vector<int32_t> got;
    tree.CollectWithinDistance(q, d, &got);
    std::vector<int32_t> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (WithinDistance(rects[i], q, d)) want.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(Sorted(got), want) << "probe " << probe << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeRandomTest, ::testing::Range(0, 6));

TEST(RTreeTest, HandlesManyIdenticalRectangles) {
  const std::vector<Rect> rects(100, Rect::FromXYLB(5, 5, 1, 1));
  const RTree tree(rects);
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect::FromXYLB(5.5, 5, 1, 1), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RTreeTest, DegeneratePointEntriesAreFound) {
  std::vector<Rect> rects;
  for (int i = 0; i < 20; ++i) {
    rects.push_back(Rect::FromPoint(Point{static_cast<double>(i), 1.0}));
  }
  const RTree tree(rects, 4);
  std::vector<int32_t> out;
  tree.CollectOverlapping(Rect(4.5, 0, 9.5, 2), &out);
  EXPECT_EQ(Sorted(out), (std::vector<int32_t>{5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace mwsj
