// Cost model: the counter-to-cluster-seconds conversion.

#include <gtest/gtest.h>

#include "mapreduce/cost_model.h"

namespace mwsj {
namespace {

JobStats MakeJob(int64_t in_bytes, int64_t shuffle_bytes, int64_t out_bytes,
                 std::vector<double> reducer_seconds) {
  JobStats j;
  j.map_input_bytes = in_bytes;
  j.intermediate_bytes = shuffle_bytes;
  j.reduce_output_bytes = out_bytes;
  j.per_reducer_seconds = std::move(reducer_seconds);
  return j;
}

TEST(CostModelTest, StartupDominatesEmptyJob) {
  CostModel model;
  const double t = model.JobSeconds(MakeJob(0, 0, 0, {}));
  EXPECT_DOUBLE_EQ(t, model.job_startup_seconds);
}

TEST(CostModelTest, ShuffleBytesScaleLinearly) {
  CostModel model;
  const double base = model.JobSeconds(MakeJob(0, 0, 0, {}));
  const double one = model.JobSeconds(
      MakeJob(0, static_cast<int64_t>(model.shuffle_bytes_per_sec), 0, {}));
  EXPECT_NEAR(one - base, 1.0, 1e-9);
  const double ten = model.JobSeconds(MakeJob(
      0, static_cast<int64_t>(model.shuffle_bytes_per_sec) * 10, 0, {}));
  EXPECT_NEAR(ten - base, 10.0, 1e-9);
}

TEST(CostModelTest, ReduceCpuPacksOntoSlots) {
  CostModel model;
  model.reduce_slots = 4;
  model.cpu_scale = 1.0;
  // 8 reducers of 1s each on 4 slots -> 2s.
  const double t =
      model.JobSeconds(MakeJob(0, 0, 0, std::vector<double>(8, 1.0)));
  EXPECT_NEAR(t - model.job_startup_seconds, 2.0, 1e-9);
}

TEST(CostModelTest, SlowestReducerLowerBoundsThePhase) {
  CostModel model;
  model.reduce_slots = 16;
  // One straggler of 5s among tiny tasks: the phase cannot beat 5s.
  std::vector<double> reducers(16, 0.01);
  reducers[7] = 5.0;
  const double t = model.JobSeconds(MakeJob(0, 0, 0, reducers));
  EXPECT_GE(t - model.job_startup_seconds, 5.0);
}

TEST(CostModelTest, CpuScaleAppliesToMeasuredSeconds) {
  CostModel model;
  model.reduce_slots = 1;
  model.cpu_scale = 2.0;
  const double t = model.JobSeconds(MakeJob(0, 0, 0, {1.0}));
  EXPECT_NEAR(t - model.job_startup_seconds, 2.0, 1e-9);
}

TEST(CostModelTest, RunSecondsSumsJobs) {
  CostModel model;
  RunStats run;
  run.Add(MakeJob(0, 0, 0, {}));
  run.Add(MakeJob(0, 0, 0, {}));
  EXPECT_DOUBLE_EQ(model.RunSeconds(run), 2 * model.job_startup_seconds);
}

TEST(CostModelTest, MoreCommunicationCostsMore) {
  // The property the paper's comparison rests on: with identical inputs, a
  // plan that shuffles more bytes is modeled as slower.
  CostModel model;
  const double cheap = model.JobSeconds(MakeJob(1000, 1 << 20, 1000, {0.1}));
  const double heavy = model.JobSeconds(MakeJob(1000, 64 << 20, 1000, {0.1}));
  EXPECT_LT(cheap, heavy);
}

}  // namespace
}  // namespace mwsj
