// Simulated DFS: dataset lifecycle and byte accounting.

#include <gtest/gtest.h>

#include "geometry/rect.h"
#include "mapreduce/dfs.h"

namespace mwsj {
namespace {

TEST(DfsTest, WriteThenReadRoundTrips) {
  Dfs dfs;
  auto data = std::make_shared<const std::vector<int>>(
      std::vector<int>{1, 2, 3});
  dfs.Write("numbers", data, /*record_bytes=*/8);
  ASSERT_TRUE(dfs.Exists("numbers"));

  auto loaded = dfs.Read<int>("numbers");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded.value(), (std::vector<int>{1, 2, 3}));
}

TEST(DfsTest, AccountingChargesWritesAndReads) {
  Dfs dfs;
  auto data = std::make_shared<const std::vector<int>>(
      std::vector<int>{1, 2, 3, 4});
  dfs.Write("a", data, 10);
  EXPECT_EQ(dfs.bytes_written(), 40);
  EXPECT_EQ(dfs.records_written(), 4);
  EXPECT_EQ(dfs.bytes_read(), 0);

  ASSERT_TRUE(dfs.Read<int>("a").ok());
  ASSERT_TRUE(dfs.Read<int>("a").ok());  // Every read is charged.
  EXPECT_EQ(dfs.bytes_read(), 80);
  EXPECT_EQ(dfs.records_read(), 8);
}

TEST(DfsTest, MissingDatasetIsNotFound) {
  Dfs dfs;
  const auto result = dfs.Read<int>("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DfsTest, TypeMismatchIsFailedPrecondition) {
  Dfs dfs;
  auto data = std::make_shared<const std::vector<int>>(std::vector<int>{1});
  dfs.Write("a", data);
  const auto result = dfs.Read<Rect>("a");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DfsTest, NullRecordVectorIsRejected) {
  Dfs dfs;
  const Status st = dfs.Write<int>("broken", nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(dfs.Exists("broken"));
  EXPECT_EQ(dfs.bytes_written(), 0);
  EXPECT_EQ(dfs.records_written(), 0);
}

TEST(DfsTest, OverwriteChargesBothWrites) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("a",
                        std::make_shared<const std::vector<int>>(
                            std::vector<int>{1, 2, 3}),
                        /*record_bytes=*/10)
                  .ok());
  ASSERT_TRUE(dfs.Write("a",
                        std::make_shared<const std::vector<int>>(
                            std::vector<int>{4, 5}),
                        /*record_bytes=*/10)
                  .ok());
  // Every write costs I/O, including the overwrite; reads are charged at
  // the surviving dataset's size.
  EXPECT_EQ(dfs.bytes_written(), 50);
  EXPECT_EQ(dfs.records_written(), 5);
  ASSERT_TRUE(dfs.Read<int>("a").ok());
  EXPECT_EQ(dfs.bytes_read(), 20);
  EXPECT_EQ(dfs.records_read(), 2);
}

TEST(DfsTest, OverwriteReplacesDataset) {
  Dfs dfs;
  dfs.Write("a",
            std::make_shared<const std::vector<int>>(std::vector<int>{1}));
  dfs.Write("a", std::make_shared<const std::vector<int>>(
                     std::vector<int>{2, 3}));
  const auto result = dfs.Read<int>("a");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value(), (std::vector<int>{2, 3}));
}

TEST(DfsTest, RemoveIsIdempotent) {
  Dfs dfs;
  dfs.Write("a",
            std::make_shared<const std::vector<int>>(std::vector<int>{1}));
  dfs.Remove("a");
  EXPECT_FALSE(dfs.Exists("a"));
  dfs.Remove("a");  // No-op.
  EXPECT_FALSE(dfs.Exists("a"));
}

}  // namespace
}  // namespace mwsj
