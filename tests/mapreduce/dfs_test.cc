// Simulated DFS: dataset lifecycle and byte accounting.

#include <gtest/gtest.h>

#include "geometry/rect.h"
#include "mapreduce/dfs.h"

namespace mwsj {
namespace {

TEST(DfsTest, WriteThenReadRoundTrips) {
  Dfs dfs;
  auto data = std::make_shared<const std::vector<int>>(
      std::vector<int>{1, 2, 3});
  dfs.Write("numbers", data, /*record_bytes=*/8);
  ASSERT_TRUE(dfs.Exists("numbers"));

  auto loaded = dfs.Read<int>("numbers");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded.value(), (std::vector<int>{1, 2, 3}));
}

TEST(DfsTest, AccountingChargesWritesAndReads) {
  Dfs dfs;
  auto data = std::make_shared<const std::vector<int>>(
      std::vector<int>{1, 2, 3, 4});
  dfs.Write("a", data, 10);
  EXPECT_EQ(dfs.bytes_written(), 40);
  EXPECT_EQ(dfs.records_written(), 4);
  EXPECT_EQ(dfs.bytes_read(), 0);

  ASSERT_TRUE(dfs.Read<int>("a").ok());
  ASSERT_TRUE(dfs.Read<int>("a").ok());  // Every read is charged.
  EXPECT_EQ(dfs.bytes_read(), 80);
  EXPECT_EQ(dfs.records_read(), 8);
}

TEST(DfsTest, MissingDatasetIsNotFound) {
  Dfs dfs;
  const auto result = dfs.Read<int>("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DfsTest, TypeMismatchIsFailedPrecondition) {
  Dfs dfs;
  auto data = std::make_shared<const std::vector<int>>(std::vector<int>{1});
  dfs.Write("a", data);
  const auto result = dfs.Read<Rect>("a");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DfsTest, NullRecordVectorIsRejected) {
  Dfs dfs;
  const Status st = dfs.Write<int>("broken", nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(dfs.Exists("broken"));
  EXPECT_EQ(dfs.bytes_written(), 0);
  EXPECT_EQ(dfs.records_written(), 0);
}

TEST(DfsTest, OverwriteChargesBothWrites) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Write("a",
                        std::make_shared<const std::vector<int>>(
                            std::vector<int>{1, 2, 3}),
                        /*record_bytes=*/10)
                  .ok());
  ASSERT_TRUE(dfs.Write("a",
                        std::make_shared<const std::vector<int>>(
                            std::vector<int>{4, 5}),
                        /*record_bytes=*/10)
                  .ok());
  // Every write costs I/O, including the overwrite; reads are charged at
  // the surviving dataset's size.
  EXPECT_EQ(dfs.bytes_written(), 50);
  EXPECT_EQ(dfs.records_written(), 5);
  ASSERT_TRUE(dfs.Read<int>("a").ok());
  EXPECT_EQ(dfs.bytes_read(), 20);
  EXPECT_EQ(dfs.records_read(), 2);
}

TEST(DfsTest, OverwriteReplacesDataset) {
  Dfs dfs;
  dfs.Write("a",
            std::make_shared<const std::vector<int>>(std::vector<int>{1}));
  dfs.Write("a", std::make_shared<const std::vector<int>>(
                     std::vector<int>{2, 3}));
  const auto result = dfs.Read<int>("a");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value(), (std::vector<int>{2, 3}));
}

TEST(DfsTest, RemoveIsIdempotent) {
  Dfs dfs;
  dfs.Write("a",
            std::make_shared<const std::vector<int>>(std::vector<int>{1}));
  dfs.Remove("a");
  EXPECT_FALSE(dfs.Exists("a"));
  dfs.Remove("a");  // No-op.
  EXPECT_FALSE(dfs.Exists("a"));
}

TEST(DfsTest, LiveBytesTrackCurrentDatasetsNotWriteHistory) {
  Dfs dfs;
  dfs.Write("a",
            std::make_shared<const std::vector<int>>(std::vector<int>{1, 2}),
            10);
  dfs.Write("a",
            std::make_shared<const std::vector<int>>(std::vector<int>{3}),
            10);
  // The overwrite is charged twice to the write ledger but only the
  // surviving dataset is live.
  EXPECT_EQ(dfs.bytes_written(), 30);
  EXPECT_EQ(dfs.live_bytes(), 10);
  EXPECT_EQ(dfs.live_records(), 1);
  dfs.Remove("a");
  EXPECT_EQ(dfs.live_bytes(), 0);
  EXPECT_EQ(dfs.bytes_written(), 30);  // History is never un-charged.
}

TEST(DfsTest, SpillRunRecyclingKeepsLiveBytesExact) {
  // A spill run name overwritten many times (run recycling across
  // engine phases) must occupy exactly its latest size, while the write
  // ledger accumulates every transfer. Mixes the direct-Write and the
  // staged-commit install paths, since both must charge the size delta.
  Dfs dfs;
  int64_t ledger = 0;
  int64_t latest_bytes = 0;
  int64_t latest_records = 0;
  for (int i = 1; i <= 100; ++i) {
    const int64_t n = 1 + (i * 7) % 13;
    auto data = std::make_shared<const std::vector<int>>(
        std::vector<int>(static_cast<size_t>(n), i));
    if (i % 2 == 0) {
      ASSERT_TRUE(dfs.Write("spill/chunk-3/r-7", data, /*record_bytes=*/8)
                      .ok());
    } else {
      DfsStage stage(&dfs);
      ASSERT_TRUE(stage.Write("spill/chunk-3/r-7", data, /*record_bytes=*/8)
                      .ok());
      stage.Commit();
    }
    ledger += n * 8;
    latest_bytes = n * 8;
    latest_records = n;
    ASSERT_EQ(dfs.live_bytes(), latest_bytes) << "iteration " << i;
    ASSERT_EQ(dfs.live_records(), latest_records) << "iteration " << i;
    ASSERT_EQ(dfs.bytes_written(), ledger) << "iteration " << i;
  }
  dfs.Remove("spill/chunk-3/r-7");
  EXPECT_EQ(dfs.live_bytes(), 0);
  EXPECT_EQ(dfs.live_records(), 0);
  EXPECT_EQ(dfs.bytes_written(), ledger);
}

TEST(DfsTest, TotalBytesOverrideChargesEncodedSize) {
  // Compressed spill runs are not records x constant: the total_bytes
  // override must drive both the ledger and the live counters, on the
  // direct and the staged path alike.
  Dfs dfs;
  auto run = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>(1000, 0xab));
  ASSERT_TRUE(dfs.Write("enc", run, /*record_bytes=*/1,
                        /*total_bytes=*/137)
                  .ok());
  EXPECT_EQ(dfs.bytes_written(), 137);
  EXPECT_EQ(dfs.live_bytes(), 137);
  EXPECT_EQ(dfs.live_records(), 1000);
  {
    DfsStage stage(&dfs);
    ASSERT_TRUE(stage.Write("enc", run, /*record_bytes=*/1,
                            /*total_bytes=*/91)
                    .ok());
    EXPECT_EQ(stage.staged_bytes(), 91);
    stage.Commit();
  }
  EXPECT_EQ(dfs.bytes_written(), 137 + 91);
  EXPECT_EQ(dfs.live_bytes(), 91);  // Overwrite absorbed the delta.
  ASSERT_TRUE(dfs.Read<uint8_t>("enc").ok());
  EXPECT_EQ(dfs.bytes_read(), 91);  // Reads charge the stored size.
}

TEST(DfsStageTest, CommitPublishesAndChargesStagedWrites) {
  Dfs dfs;
  DfsStage stage(&dfs);
  ASSERT_TRUE(stage
                  .Write("job/part-0",
                         std::make_shared<const std::vector<int>>(
                             std::vector<int>{1, 2, 3}),
                         4)
                  .ok());
  EXPECT_EQ(stage.staged_records(), 3);
  EXPECT_EQ(stage.staged_bytes(), 12);
  // Nothing is visible or charged before commit.
  EXPECT_FALSE(dfs.Exists("job/part-0"));
  EXPECT_EQ(dfs.bytes_written(), 0);

  stage.Commit();
  EXPECT_TRUE(dfs.Exists("job/part-0"));
  EXPECT_EQ(dfs.bytes_written(), 12);
  EXPECT_EQ(dfs.records_written(), 3);
  EXPECT_EQ(stage.staged_records(), 0);  // The stage is drained.
}

TEST(DfsStageTest, AbortDiscardsWithoutTouchingTheDfs) {
  Dfs dfs;
  DfsStage stage(&dfs);
  ASSERT_TRUE(stage
                  .Write("job/part-1",
                         std::make_shared<const std::vector<int>>(
                             std::vector<int>{7}),
                         8)
                  .ok());
  stage.Abort();
  EXPECT_FALSE(dfs.Exists("job/part-1"));
  EXPECT_EQ(dfs.bytes_written(), 0);
  EXPECT_EQ(dfs.live_bytes(), 0);
  stage.Commit();  // Commit after abort publishes nothing.
  EXPECT_EQ(dfs.bytes_written(), 0);
}

TEST(DfsStageTest, DestructorDiscardsUncommittedWrites) {
  // A failed task attempt unwinds without calling Commit; its stage's
  // destructor must leave no phantom bytes in any counter.
  Dfs dfs;
  {
    DfsStage stage(&dfs);
    ASSERT_TRUE(stage
                    .Write("job/part-2",
                           std::make_shared<const std::vector<int>>(
                               std::vector<int>{1, 2}),
                           16)
                    .ok());
  }
  EXPECT_FALSE(dfs.Exists("job/part-2"));
  EXPECT_EQ(dfs.bytes_written(), 0);
  EXPECT_EQ(dfs.records_written(), 0);
  EXPECT_EQ(dfs.live_bytes(), 0);
}

TEST(DfsStageTest, LaterStagedWriteOfSameNameShadowsEarlier) {
  Dfs dfs;
  DfsStage stage(&dfs);
  ASSERT_TRUE(stage
                  .Write("part",
                         std::make_shared<const std::vector<int>>(
                             std::vector<int>{1, 2, 3}),
                         4)
                  .ok());
  ASSERT_TRUE(stage
                  .Write("part",
                         std::make_shared<const std::vector<int>>(
                             std::vector<int>{9}),
                         4)
                  .ok());
  stage.Commit();
  const auto result = dfs.Read<int>("part");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value(), (std::vector<int>{9}));
  // Both staged writes are charged on commit (same contract as two direct
  // Dfs::Write calls), but only the last one is live.
  EXPECT_EQ(dfs.bytes_written(), 16);
  EXPECT_EQ(dfs.live_bytes(), 4);
}

TEST(DfsStageTest, CommittedWritesEqualLiveBytesAcrossAttempts) {
  // The exactly-once invariant the chaos harness asserts end-to-end:
  // commit each part once (failed attempts abort), and the write ledger
  // equals the live datasets.
  Dfs dfs;
  for (int task = 0; task < 4; ++task) {
    {
      DfsStage failed(&dfs);  // Attempt 0 of each task dies uncommitted.
      ASSERT_TRUE(failed
                      .Write("job/part-" + std::to_string(task),
                             std::make_shared<const std::vector<int>>(
                                 std::vector<int>{task}),
                             4)
                      .ok());
    }
    DfsStage retry(&dfs);
    ASSERT_TRUE(retry
                    .Write("job/part-" + std::to_string(task),
                           std::make_shared<const std::vector<int>>(
                               std::vector<int>{task}),
                           4)
                    .ok());
    retry.Commit();
  }
  EXPECT_EQ(dfs.bytes_written(), 16);
  EXPECT_EQ(dfs.bytes_written(), dfs.live_bytes());
  EXPECT_EQ(dfs.records_written(), dfs.live_records());
}

}  // namespace
}  // namespace mwsj
