// Fault injection and recovery semantics of the engine: deterministic
// FaultPlan decisions, attempt-scoped discarding (emits, user counters,
// DFS writes), bounded retry with injectable backoff clock, straggler
// speculation, and retry-exhaustion aborts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/str_format.h"
#include "common/trace.h"
#include "mapreduce/dfs.h"
#include "mapreduce/engine.h"
#include "mapreduce/fault.h"

namespace mwsj {
namespace {

using FaultJob = MapReduceJob<int, int, int, std::pair<int, int>>;

// A small deterministic job: 12 input records → 12 single-record map
// chunks (task ids 0..11), 4 reducers (task ids 0..3), with a user
// counter bumped once per map record and once per reduce group. Small on
// purpose: explicit Inject calls can then target exact (task, attempt)
// keys.
struct JobRun {
  std::vector<std::pair<int, int>> output;
  JobStats stats;
};

JobRun RunFaultJob(const ExecutionContext& ctx) {
  const std::vector<int> input = {5, 3, 11, 0, 7, 2, 9, 4, 1, 10, 6, 8};
  FaultJob job("fault_job", 4);
  job.set_partition([](const int& k) { return k; });
  job.set_map([](const int& v, FaultJob::Emitter& emit) {
    emit.IncrementCounter("mapped", 1);
    emit.Emit(v % 4, v);
  });
  job.set_reduce([](const int& k, std::span<const int> vals,
                    FaultJob::OutEmitter& out) {
    out.IncrementCounter("groups", 1);
    int sum = 0;
    for (int v : vals) sum += v;
    out.Emit({k, sum});
  });
  JobRun run;
  run.stats = job.Run(std::span<const int>(input), &run.output, ctx);
  return run;
}

TEST(FaultPlanTest, SeededPlanIsAPureFunctionOfItsKey) {
  const FaultPlan a = FaultPlan::Seeded(99, 0.2, 0.2, 0.1);
  const FaultPlan b = FaultPlan::Seeded(99, 0.2, 0.2, 0.1);
  const FaultPlan other = FaultPlan::Seeded(100, 0.2, 0.2, 0.1);
  int faults = 0, diverged = 0;
  for (int phase = 0; phase < 2; ++phase) {
    for (int64_t task = 0; task < 200; ++task) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        const FaultPhase p = static_cast<FaultPhase>(phase);
        EXPECT_EQ(a.At(p, task, attempt), b.At(p, task, attempt));
        if (a.At(p, task, attempt) != FaultKind::kNone) ++faults;
        if (a.At(p, task, attempt) != other.At(p, task, attempt)) ++diverged;
      }
    }
  }
  // ~50% of 1200 keys should fault, and a different seed should disagree
  // on a healthy fraction of them.
  EXPECT_GT(faults, 400);
  EXPECT_LT(faults, 800);
  EXPECT_GT(diverged, 200);
}

TEST(FaultPlanTest, SeededFaultsAreBoundedByMaxFaultedAttempts) {
  FaultPlan plan = FaultPlan::Seeded(7, 0.5, 0.3, 0.2);  // Faults everywhere.
  for (int64_t task = 0; task < 100; ++task) {
    EXPECT_EQ(plan.At(FaultPhase::kMap, task, 3), FaultKind::kNone);
    EXPECT_EQ(plan.At(FaultPhase::kReduce, task, 7), FaultKind::kNone);
  }
  plan.set_max_faulted_attempts(1);
  for (int64_t task = 0; task < 100; ++task) {
    EXPECT_EQ(plan.At(FaultPhase::kMap, task, 1), FaultKind::kNone);
  }
}

TEST(FaultPlanTest, InjectOverridesTheSeededLayer) {
  FaultPlan plan;
  plan.Inject(FaultPhase::kReduce, 2, 1, FaultKind::kFlakyIo);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.At(FaultPhase::kReduce, 2, 1), FaultKind::kFlakyIo);
  EXPECT_EQ(plan.At(FaultPhase::kReduce, 2, 0), FaultKind::kNone);
  EXPECT_EQ(plan.At(FaultPhase::kMap, 2, 1), FaultKind::kNone);
}

TEST(FaultPlanTest, ParseRoundTripsAndRejectsBadSpecs) {
  const StatusOr<FaultPlan> plan =
      FaultPlan::Parse("seed=42,crash=0.25,flaky=0.1,slow=0.05,bound=2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().seed(), 42u);
  EXPECT_FALSE(plan.value().empty());
  FaultPlan same = FaultPlan::Seeded(42, 0.25, 0.1, 0.05);
  same.set_max_faulted_attempts(2);
  for (int64_t task = 0; task < 50; ++task) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(plan.value().At(FaultPhase::kMap, task, attempt),
                same.At(FaultPhase::kMap, task, attempt));
    }
  }
  EXPECT_FALSE(FaultPlan::Parse("crash=2.0").ok());       // Out of [0,1].
  EXPECT_FALSE(FaultPlan::Parse("crash=0.6,flaky=0.6").ok());  // Sum > 1.
  EXPECT_FALSE(FaultPlan::Parse("frobnicate=1").ok());    // Unknown key.
  EXPECT_FALSE(FaultPlan::Parse("seed=abc").ok());        // Unparseable.
}

TEST(EngineFaultTest, ZeroFaultPlanMatchesPlanFreeRunExactly) {
  const JobRun plain = RunFaultJob(ExecutionContext());
  const FaultPlan zero = FaultPlan::Seeded(123, 0.0, 0.0, 0.0);
  EXPECT_TRUE(zero.empty());
  ExecutionContext ctx;
  ctx.faults = &zero;
  const JobRun planned = RunFaultJob(ctx);

  EXPECT_EQ(plain.output, planned.output);
  EXPECT_EQ(plain.stats.intermediate_records,
            planned.stats.intermediate_records);
  EXPECT_EQ(plain.stats.user_counters, planned.stats.user_counters);
  // Task/attempt accounting is filled even without a plan (attempts ==
  // tasks on a clean run) and must be identical in both runs.
  EXPECT_EQ(plain.stats.map_faults.tasks, planned.stats.map_faults.tasks);
  EXPECT_EQ(plain.stats.map_faults.attempts,
            planned.stats.map_faults.attempts);
  EXPECT_EQ(plain.stats.map_faults.tasks, plain.stats.map_faults.attempts);
  EXPECT_FALSE(plain.stats.AnyFaults());
  EXPECT_FALSE(planned.stats.AnyFaults());
}

TEST(EngineFaultTest, InjectedFaultsRecoverWithIdenticalOutputAndCounters) {
  const JobRun baseline = RunFaultJob(ExecutionContext());

  FaultPlan plan;
  plan.Inject(FaultPhase::kMap, 0, 0, FaultKind::kCrash);
  plan.Inject(FaultPhase::kMap, 5, 0, FaultKind::kFlakyIo);
  plan.Inject(FaultPhase::kMap, 5, 1, FaultKind::kCrash);
  plan.Inject(FaultPhase::kMap, 7, 0, FaultKind::kSlow);
  plan.Inject(FaultPhase::kReduce, 1, 0, FaultKind::kFlakyIo);
  plan.Inject(FaultPhase::kReduce, 3, 0, FaultKind::kSlow);
  RetryPolicy retry;
  retry.sleep = [](double) {};
  ExecutionContext ctx;
  ctx.faults = &plan;
  ctx.retry = &retry;
  const JobRun faulted = RunFaultJob(ctx);

  // Exactly-once: output, shuffle accounting, and user counters are
  // byte-identical to the fault-free run despite 6 faulted attempts.
  EXPECT_EQ(faulted.output, baseline.output);
  EXPECT_EQ(faulted.stats.intermediate_records,
            baseline.stats.intermediate_records);
  EXPECT_EQ(faulted.stats.intermediate_bytes,
            baseline.stats.intermediate_bytes);
  EXPECT_EQ(faulted.stats.per_reducer_records,
            baseline.stats.per_reducer_records);
  EXPECT_EQ(faulted.stats.user_counters, baseline.stats.user_counters);

  // And the wasted work is all accounted: 12 map tasks, 4 faulted map
  // attempts (crash + flaky + crash = 3 retries, 1 speculative), 4 reduce
  // tasks with 1 retry + 1 speculative.
  EXPECT_TRUE(faulted.stats.AnyFaults());
  EXPECT_EQ(faulted.stats.map_faults.tasks, 12);
  EXPECT_EQ(faulted.stats.map_faults.attempts, 12 + 4);
  EXPECT_EQ(faulted.stats.map_faults.retries, 3);
  EXPECT_EQ(faulted.stats.map_faults.speculative, 1);
  EXPECT_EQ(faulted.stats.reduce_faults.tasks, 4);
  EXPECT_EQ(faulted.stats.reduce_faults.attempts, 4 + 2);
  EXPECT_EQ(faulted.stats.reduce_faults.retries, 1);
  EXPECT_EQ(faulted.stats.reduce_faults.speculative, 1);
  // The flaky map attempt processed (and discarded) half of a 1-record
  // chunk = 0 records, but the speculative attempts re-emitted real pairs.
  EXPECT_GT(faulted.stats.map_faults.wasted_records, 0);
  EXPECT_GT(faulted.stats.reduce_faults.wasted_records, 0);
}

TEST(EngineFaultTest, BackoffFollowsExponentialScheduleOnVirtualClock) {
  FaultPlan plan;
  plan.Inject(FaultPhase::kMap, 3, 0, FaultKind::kCrash);
  plan.Inject(FaultPhase::kMap, 3, 1, FaultKind::kCrash);
  plan.Inject(FaultPhase::kMap, 3, 2, FaultKind::kCrash);
  RetryPolicy retry;
  retry.backoff_initial_seconds = 1.0;  // Would stall for 7s if real.
  retry.backoff_multiplier = 2.0;
  std::vector<double> sleeps;
  retry.sleep = [&sleeps](double s) { sleeps.push_back(s); };
  ExecutionContext ctx;
  ctx.faults = &plan;
  ctx.retry = &retry;
  const JobRun run = RunFaultJob(ctx);

  ASSERT_EQ(sleeps, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_DOUBLE_EQ(run.stats.map_faults.backoff_seconds, 7.0);
  EXPECT_EQ(run.stats.map_faults.retries, 3);
  // BackoffSeconds itself, for good measure.
  EXPECT_DOUBLE_EQ(BackoffSeconds(retry, 0), 1.0);
  EXPECT_DOUBLE_EQ(BackoffSeconds(retry, 4), 16.0);
}

TEST(EngineFaultDeathTest, MapRetryExhaustionAbortsTheJob) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  FaultPlan plan;
  for (int attempt = 0; attempt < 4; ++attempt) {
    plan.Inject(FaultPhase::kMap, 2, attempt, FaultKind::kCrash);
  }
  RetryPolicy retry;
  retry.sleep = [](double) {};
  ExecutionContext ctx;
  ctx.faults = &plan;
  ctx.retry = &retry;
  EXPECT_DEATH(RunFaultJob(ctx),
               "MapReduceJob 'fault_job': map task 2 failed 4 attempts");
}

TEST(EngineFaultDeathTest, ReduceRetryExhaustionAbortsTheJob) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  FaultPlan plan;
  plan.Inject(FaultPhase::kReduce, 1, 0, FaultKind::kCrash);
  plan.Inject(FaultPhase::kReduce, 1, 1, FaultKind::kFlakyIo);
  RetryPolicy retry;
  retry.max_attempts = 2;  // Tight budget: two failures exhaust it.
  retry.sleep = [](double) {};
  ExecutionContext ctx;
  ctx.faults = &plan;
  ctx.retry = &retry;
  EXPECT_DEATH(RunFaultJob(ctx),
               "MapReduceJob 'fault_job': reduce task 1 failed 2 attempts");
}

TEST(EngineFaultTest, DfsPartFilesAreCommittedExactlyOnce) {
  Dfs baseline_dfs;
  ExecutionContext baseline_ctx;
  baseline_ctx.dfs = &baseline_dfs;
  const JobRun baseline = RunFaultJob(baseline_ctx);
  ASSERT_TRUE(baseline_dfs.Exists("fault_job/part-0"));
  ASSERT_TRUE(baseline_dfs.Exists("fault_job/part-3"));

  FaultPlan plan = FaultPlan::Seeded(17, 0.2, 0.15, 0.1);
  RetryPolicy retry;
  retry.sleep = [](double) {};
  Dfs faulted_dfs;
  ExecutionContext ctx;
  ctx.faults = &plan;
  ctx.retry = &retry;
  ctx.dfs = &faulted_dfs;
  const JobRun faulted = RunFaultJob(ctx);

  EXPECT_EQ(faulted.output, baseline.output);
  // Every part file committed once, by the committing attempt only: the
  // write ledger equals the live datasets and matches the fault-free run.
  EXPECT_EQ(faulted_dfs.bytes_written(), baseline_dfs.bytes_written());
  EXPECT_EQ(faulted_dfs.records_written(), baseline_dfs.records_written());
  EXPECT_EQ(faulted_dfs.bytes_written(), faulted_dfs.live_bytes());
  EXPECT_EQ(faulted_dfs.records_written(), faulted_dfs.live_records());
}

TEST(EngineFaultTest, TracerMarksFailedAndSpeculativeAttempts) {
  FaultPlan plan;
  plan.Inject(FaultPhase::kMap, 4, 0, FaultKind::kCrash);
  plan.Inject(FaultPhase::kReduce, 0, 0, FaultKind::kSlow);
  RetryPolicy retry;
  retry.sleep = [](double) {};
  Tracer tracer;
  ExecutionContext ctx;
  ctx.tracer = &tracer;
  ctx.faults = &plan;
  ctx.retry = &retry;
  RunFaultJob(ctx);

  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"name\": \"map_attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"reduce_attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"speculative\": 1"), std::string::npos);
  // Committing tasks keep their regular span names.
  EXPECT_NE(json.find("\"name\": \"map_chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"reduce_task\""), std::string::npos);
}

TEST(EngineFaultTest, SeededPlanIsThreadCountInvariant) {
  FaultPlan plan = FaultPlan::Seeded(31, 0.15, 0.15, 0.1);
  RetryPolicy retry;
  retry.sleep = [](double) {};
  ExecutionContext serial_ctx;
  serial_ctx.faults = &plan;
  serial_ctx.retry = &retry;
  const JobRun serial = RunFaultJob(serial_ctx);

  ThreadPool pool(4);
  ExecutionContext pool_ctx = serial_ctx;
  pool_ctx.pool = &pool;
  const JobRun threaded = RunFaultJob(pool_ctx);

  EXPECT_EQ(serial.output, threaded.output);
  EXPECT_EQ(serial.stats.map_faults.attempts, threaded.stats.map_faults.attempts);
  EXPECT_EQ(serial.stats.map_faults.retries, threaded.stats.map_faults.retries);
  EXPECT_EQ(serial.stats.reduce_faults.attempts,
            threaded.stats.reduce_faults.attempts);
  EXPECT_EQ(serial.stats.reduce_faults.wasted_records,
            threaded.stats.reduce_faults.wasted_records);
  EXPECT_EQ(serial.stats.user_counters, threaded.stats.user_counters);
}

}  // namespace
}  // namespace mwsj
