// Map-reduce engine semantics: shuffle routing, grouping, determinism,
// counters.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/str_format.h"
#include "mapreduce/engine.h"

namespace mwsj {
namespace {

using WordCountJob = MapReduceJob<std::string, std::string, int,
                                  std::pair<std::string, int>>;

TEST(EngineTest, WordCount) {
  const std::vector<std::string> input = {"a b", "b c", "c c"};
  WordCountJob job("wordcount", 4);
  job.set_map([](const std::string& line, WordCountJob::Emitter& emit) {
    size_t pos = 0;
    while (pos < line.size()) {
      size_t end = line.find(' ', pos);
      if (end == std::string::npos) end = line.size();
      emit.Emit(line.substr(pos, end - pos), 1);
      pos = end + 1;
    }
  });
  job.set_reduce([](const std::string& word, std::span<const int> counts,
                    WordCountJob::OutEmitter& out) {
    int total = 0;
    for (int c : counts) total += c;
    out.Emit({word, total});
  });

  std::vector<std::pair<std::string, int>> output;
  const JobStats stats = job.Run(std::span<const std::string>(input), &output);

  std::map<std::string, int> result(output.begin(), output.end());
  EXPECT_EQ(result, (std::map<std::string, int>{{"a", 1}, {"b", 2}, {"c", 3}}));
  EXPECT_EQ(stats.map_input_records, 3);
  EXPECT_EQ(stats.intermediate_records, 6);
  EXPECT_EQ(stats.reduce_output_records, 3);
  EXPECT_EQ(stats.num_reducers, 4);
}

using IntJob = MapReduceJob<int, int, int, std::pair<int, int>>;

TEST(EngineTest, IdentityPartitionRoutesKeyToReducer) {
  const std::vector<int> input = {0, 1, 2, 3, 0, 1};
  IntJob job("identity", 4);
  job.set_partition([](const int& k) { return k; });
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int& k, std::span<const int> vals,
                    IntJob::OutEmitter& out) {
    out.Emit({k, static_cast<int>(vals.size())});
  });
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);

  ASSERT_EQ(stats.per_reducer_records.size(), 4u);
  EXPECT_EQ(stats.per_reducer_records[0], 2);
  EXPECT_EQ(stats.per_reducer_records[1], 2);
  EXPECT_EQ(stats.per_reducer_records[2], 1);
  EXPECT_EQ(stats.per_reducer_records[3], 1);
  EXPECT_EQ(stats.MaxReducerRecords(), 2);
}

TEST(EngineTest, ValuesArriveGroupedAndInArrivalOrder) {
  // All values of one key reach a single reduce call, ordered by original
  // input position (Hadoop-like merge of mapper outputs).
  std::vector<int> input;
  for (int i = 0; i < 500; ++i) input.push_back(i);
  using SeqJob = MapReduceJob<int, int, int, int>;
  SeqJob job("grouping", 3);
  job.set_map([](const int& v, SeqJob::Emitter& emit) {
    emit.Emit(v % 7, v);
  });
  job.set_partition([](const int& k) { return k % 3; });
  int reduce_calls = 0;
  job.set_reduce([&reduce_calls](const int& k, std::span<const int> vals,
                                 SeqJob::OutEmitter& out) {
    ++reduce_calls;
    int prev = -1;
    for (int v : vals) {
      EXPECT_EQ(v % 7, k);
      EXPECT_GT(v, prev);  // Arrival order = input order.
      prev = v;
      out.Emit(v);
    }
  });
  std::vector<int> output;
  job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(reduce_calls, 7);
  EXPECT_EQ(output.size(), 500u);
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  std::vector<int> input;
  for (int i = 0; i < 2000; ++i) input.push_back(i * 37 % 1000);

  auto run = [&input](ThreadPool* pool, JobStats* stats) {
    using SeqJob = MapReduceJob<int, int, int, int>;
    SeqJob job("determinism", 8);
    job.set_map([](const int& v, SeqJob::Emitter& emit) {
      emit.Emit(v % 31, v);
    });
    job.set_reduce([](const int&, std::span<const int> vals,
                      SeqJob::OutEmitter& out) {
      for (int v : vals) out.Emit(v);
    });
    std::vector<int> output;
    *stats = job.Run(std::span<const int>(input), &output,
                     ExecutionContext(pool));
    return output;
  };

  JobStats serial_stats;
  const std::vector<int> serial = run(nullptr, &serial_stats);
  ThreadPool pool(4);
  JobStats parallel_stats;
  const std::vector<int> parallel = run(&pool, &parallel_stats);
  EXPECT_EQ(serial, parallel);
  // All accounting (not just output) must be scheduling-independent.
  EXPECT_EQ(serial_stats.intermediate_records,
            parallel_stats.intermediate_records);
  EXPECT_EQ(serial_stats.intermediate_bytes, parallel_stats.intermediate_bytes);
  EXPECT_EQ(serial_stats.per_reducer_records,
            parallel_stats.per_reducer_records);
  EXPECT_EQ(serial_stats.per_chunk_map_seconds.size(),
            parallel_stats.per_chunk_map_seconds.size());
}

TEST(EngineTest, StringOutputsByteIdenticalSerialVsPool) {
  // Variable-length keys/values across many reducers and chunks: the
  // concatenated output must be byte-for-byte identical with and without a
  // pool (mapper-partitioned shuffle keeps chunk-major order).
  std::vector<int> input;
  for (int i = 0; i < 5000; ++i) input.push_back(i * 7919 % 997);

  auto run = [&input](ThreadPool* pool) {
    using StrJob = MapReduceJob<int, std::string, std::string, std::string>;
    StrJob job("strings", 64);
    job.set_map([](const int& v, StrJob::Emitter& emit) {
      emit.Emit("k" + std::to_string(v % 100), "v" + std::to_string(v));
    });
    job.set_reduce([](const std::string& k, std::span<const std::string> vals,
                      StrJob::OutEmitter& out) {
      std::string joined = k + ":";
      for (const std::string& v : vals) joined += v + ",";
      out.Emit(std::move(joined));
    });
    std::vector<std::string> output;
    job.Run(std::span<const int>(input), &output, ExecutionContext(pool));
    std::string bytes;
    for (const std::string& s : output) bytes += s + "\n";
    return bytes;
  };

  const std::string serial = run(nullptr);
  for (size_t threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(serial, run(&pool)) << threads << " threads";
  }
}

TEST(EngineTest, GroupByMatchesPairSortGolden) {
  // Golden comparison for the SoA reduce path: the engine's contract is
  // that each reducer stable-sorts its arrival-ordered pairs by key and
  // reduces each group in key order. Simulate exactly that with an
  // independent pair-based reference and require byte-for-byte identical
  // output, with and without a thread pool.
  std::vector<int> input;
  for (int i = 0; i < 3000; ++i) input.push_back(i * 31 % 257);
  const int num_reducers = 8;

  auto key_of = [](int v) { return "k" + std::to_string(v % 53); };
  auto value_of = [](int v) { return "v" + std::to_string(v); };
  auto partition_of = [](const std::string& k) {
    return static_cast<int>(std::hash<std::string>{}(k) % 8);
  };
  auto render = [](const std::string& k,
                   std::span<const std::string> vals) {
    std::string s = k + "=";
    for (const std::string& v : vals) s += v + ";";
    return s;
  };

  // Reference: arrival order is input order (one emit per record), split
  // by reducer, stable-sorted by key as (key, value) pairs — the pre-SoA
  // group-by — then rendered group by group in reducer-major order.
  std::vector<std::string> golden;
  for (int r = 0; r < num_reducers; ++r) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int v : input) {
      const std::string k = key_of(v);
      if (partition_of(k) == r) pairs.emplace_back(k, value_of(v));
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    size_t i = 0;
    while (i < pairs.size()) {
      size_t j = i;
      std::vector<std::string> vals;
      while (j < pairs.size() && pairs[j].first == pairs[i].first) {
        vals.push_back(pairs[j].second);
        ++j;
      }
      golden.push_back(
          render(pairs[i].first, std::span<const std::string>(vals)));
      i = j;
    }
  }

  auto run = [&](ThreadPool* pool) {
    using StrJob = MapReduceJob<int, std::string, std::string, std::string>;
    StrJob job("golden_group_by", num_reducers);
    job.set_partition(partition_of);
    job.set_map([&](const int& v, StrJob::Emitter& emit) {
      emit.Emit(key_of(v), value_of(v));
    });
    job.set_reduce([&](const std::string& k,
                       std::span<const std::string> vals,
                       StrJob::OutEmitter& out) {
      out.Emit(render(k, vals));
    });
    std::vector<std::string> output;
    job.Run(std::span<const int>(input), &output, ExecutionContext(pool));
    return output;
  };

  EXPECT_EQ(run(nullptr), golden);
  ThreadPool pool(4);
  EXPECT_EQ(run(&pool), golden);
}

TEST(EngineTest, PhaseTimingsArePopulated) {
  std::vector<int> input;
  for (int i = 0; i < 1000; ++i) input.push_back(i);
  using SeqJob = MapReduceJob<int, int, int, int>;
  SeqJob job("phases", 4);
  job.set_map([](const int& v, SeqJob::Emitter& emit) { emit.Emit(v % 4, v); });
  job.set_reduce([](const int&, std::span<const int> vals,
                    SeqJob::OutEmitter& out) {
    for (int v : vals) out.Emit(v);
  });
  std::vector<int> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);

  EXPECT_GT(stats.map_seconds, 0.0);
  EXPECT_GT(stats.shuffle_seconds, 0.0);
  EXPECT_GT(stats.reduce_seconds, 0.0);
  // 1000 inputs in ceil(1000/64)-sized chunks -> 63 chunks of 16.
  EXPECT_EQ(stats.per_chunk_map_seconds.size(), 63u);
  EXPECT_GE(stats.MaxMapChunkSeconds(), 0.0);
  EXPECT_GE(stats.SumMapChunkSeconds(), 0.0);
  // The three phases account for (almost) the whole job.
  EXPECT_LE(stats.PhaseSeconds(), stats.wall_seconds);
  EXPECT_DOUBLE_EQ(stats.PhaseSeconds(),
                   stats.map_seconds + stats.shuffle_seconds +
                       stats.reduce_seconds);
}

TEST(EngineTest, RunTwiceDoesNotDoubleCountUserCounters) {
  IntJob job("rerun", 2);
  job.set_partition([](const int& k) { return k % 2; });
  job.set_map([&job](const int& v, IntJob::Emitter& emit) {
    job.IncrementCounter("mapped", 1);
    emit.Emit(v, v);
  });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) {});
  const std::vector<int> input = {1, 2, 3, 4};

  std::vector<std::pair<int, int>> output;
  const JobStats first = job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(first.user_counters.at("mapped"), 4);
  const JobStats second = job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(second.user_counters.at("mapped"), 4);  // Not 8: counters reset.
}

TEST(EngineTest, EmptyInputProducesEmptyOutputAndZeroCounters) {
  IntJob job("empty", 2);
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) { FAIL() << "no reduce expected"; });
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(), &output);
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(stats.map_input_records, 0);
  EXPECT_EQ(stats.intermediate_records, 0);
}

TEST(EngineTest, UserCountersAreCollected) {
  IntJob job("counters", 2);
  job.set_partition([](const int& k) { return k % 2; });
  job.set_map([&job](const int& v, IntJob::Emitter& emit) {
    if (v % 2 == 0) job.IncrementCounter("evens", 1);
    emit.Emit(v, v);
  });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) {});
  const std::vector<int> input = {1, 2, 3, 4, 5, 6};
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(stats.user_counters.at("evens"), 3);
}

TEST(EngineTest, ValueSizeDrivesIntermediateBytes) {
  IntJob job("bytes", 2);
  job.set_partition([](const int& k) { return k % 2; });
  job.set_value_size([](const int&) { return int64_t{100}; });
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) {});
  const std::vector<int> input = {1, 2, 3};
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(stats.intermediate_bytes, 300);
}

TEST(EngineDeathTest, PartitionResultAboveRangeAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  IntJob job("bad_partition_high", 4);
  job.set_partition([](const int& k) { return k; });  // Key 9 -> reducer 9.
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int&, std::span<const int>, IntJob::OutEmitter&) {});
  const std::vector<int> input = {9};
  std::vector<std::pair<int, int>> output;
  EXPECT_DEATH(job.Run(std::span<const int>(input), &output),
               "MapReduceJob 'bad_partition_high': partition function "
               "returned 9 for key 9");
}

TEST(EngineDeathTest, PartitionResultNegativeAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  IntJob job("bad_partition_negative", 4);
  job.set_partition([](const int&) { return -2; });
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int&, std::span<const int>, IntJob::OutEmitter&) {});
  const std::vector<int> input = {1};
  std::vector<std::pair<int, int>> output;
  EXPECT_DEATH(job.Run(std::span<const int>(input), &output),
               "partition function returned -2");
}

TEST(EngineTest, DefaultContextMatchesExplicitContext) {
  std::vector<int> input;
  for (int i = 0; i < 300; ++i) input.push_back(i * 13 % 97);

  auto make_job = []() {
    using SeqJob = MapReduceJob<int, int, int, int>;
    auto job = std::make_unique<SeqJob>("ctx_vs_shim", 8);
    job->set_map([](const int& v, SeqJob::Emitter& emit) {
      emit.Emit(v % 8, v);
    });
    job->set_partition([](const int& k) { return k; });
    job->set_reduce([](const int&, std::span<const int> vals,
                       SeqJob::OutEmitter& out) {
      for (int v : vals) out.Emit(v);
    });
    return job;
  };

  std::vector<int> via_default, via_ctx;
  const JobStats default_stats =
      make_job()->Run(std::span<const int>(input), &via_default);
  ThreadPool pool(3);
  Tracer tracer;
  const JobStats ctx_stats = make_job()->Run(std::span<const int>(input),
                                             &via_ctx,
                                             ExecutionContext(&pool, &tracer));
  EXPECT_EQ(via_default, via_ctx);
  EXPECT_EQ(default_stats.intermediate_records, ctx_stats.intermediate_records);
  EXPECT_EQ(default_stats.per_reducer_records, ctx_stats.per_reducer_records);
  EXPECT_GT(tracer.event_count(), 0);
}

TEST(EngineTest, TracerRecordsJobPhaseAndTaskSpans) {
  std::vector<int> input;
  for (int i = 0; i < 200; ++i) input.push_back(i);
  using SeqJob = MapReduceJob<int, int, int, int>;
  SeqJob job("traced_job", 4);
  job.set_partition([](const int& k) { return k; });
  job.set_map([](const int& v, SeqJob::Emitter& emit) { emit.Emit(v % 4, v); });
  job.set_reduce([](const int&, std::span<const int> vals,
                    SeqJob::OutEmitter& out) {
    for (int v : vals) out.Emit(v);
  });

  Tracer tracer;
  std::vector<int> output;
  ExecutionContext ctx(nullptr, &tracer);
  // The asserted span set is the in-memory pipeline's (shuffle_merge does
  // not exist in budget mode, where the merge is deferred to reduce
  // time); pin unlimited so an MWSJ_SHUFFLE_BUDGET env override can't
  // change the traced structure.
  ctx.options.shuffle_memory_budget = -1;
  job.Run(std::span<const int>(input), &output, ctx);

  const std::string json = tracer.ToJson();
  for (const char* span_name :
       {"traced_job", "map", "shuffle", "reduce", "map_chunk",
        "shuffle_merge", "reduce_task"}) {
    EXPECT_NE(json.find(StrFormat("\"name\": \"%s\"", span_name)),
              std::string::npos)
        << "missing span " << span_name;
  }
}

TEST(RunStatsTest, AggregationAcrossJobs) {
  RunStats run;
  JobStats a;
  a.intermediate_records = 10;
  a.intermediate_bytes = 100;
  a.wall_seconds = 1.5;
  a.user_counters["marked"] = 4;
  JobStats b;
  b.intermediate_records = 5;
  b.intermediate_bytes = 50;
  b.wall_seconds = 0.5;
  b.user_counters["marked"] = 2;
  run.Add(a);
  run.Add(b);
  EXPECT_EQ(run.TotalIntermediateRecords(), 15);
  EXPECT_EQ(run.TotalIntermediateBytes(), 150);
  EXPECT_DOUBLE_EQ(run.total_wall_seconds, 2.0);
  EXPECT_EQ(run.UserCounter("marked"), 6);
  EXPECT_EQ(run.UserCounter("absent"), 0);
}

}  // namespace
}  // namespace mwsj
