// Map-reduce engine semantics: shuffle routing, grouping, determinism,
// counters.

#include <gtest/gtest.h>

#include <string>

#include "mapreduce/engine.h"

namespace mwsj {
namespace {

using WordCountJob = MapReduceJob<std::string, std::string, int,
                                  std::pair<std::string, int>>;

TEST(EngineTest, WordCount) {
  const std::vector<std::string> input = {"a b", "b c", "c c"};
  WordCountJob job("wordcount", 4);
  job.set_map([](const std::string& line, WordCountJob::Emitter& emit) {
    size_t pos = 0;
    while (pos < line.size()) {
      size_t end = line.find(' ', pos);
      if (end == std::string::npos) end = line.size();
      emit.Emit(line.substr(pos, end - pos), 1);
      pos = end + 1;
    }
  });
  job.set_reduce([](const std::string& word, std::span<const int> counts,
                    WordCountJob::OutEmitter& out) {
    int total = 0;
    for (int c : counts) total += c;
    out.Emit({word, total});
  });

  std::vector<std::pair<std::string, int>> output;
  const JobStats stats = job.Run(std::span<const std::string>(input), &output);

  std::map<std::string, int> result(output.begin(), output.end());
  EXPECT_EQ(result, (std::map<std::string, int>{{"a", 1}, {"b", 2}, {"c", 3}}));
  EXPECT_EQ(stats.map_input_records, 3);
  EXPECT_EQ(stats.intermediate_records, 6);
  EXPECT_EQ(stats.reduce_output_records, 3);
  EXPECT_EQ(stats.num_reducers, 4);
}

using IntJob = MapReduceJob<int, int, int, std::pair<int, int>>;

TEST(EngineTest, IdentityPartitionRoutesKeyToReducer) {
  const std::vector<int> input = {0, 1, 2, 3, 0, 1};
  IntJob job("identity", 4);
  job.set_partition([](const int& k) { return k; });
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int& k, std::span<const int> vals,
                    IntJob::OutEmitter& out) {
    out.Emit({k, static_cast<int>(vals.size())});
  });
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);

  ASSERT_EQ(stats.per_reducer_records.size(), 4u);
  EXPECT_EQ(stats.per_reducer_records[0], 2);
  EXPECT_EQ(stats.per_reducer_records[1], 2);
  EXPECT_EQ(stats.per_reducer_records[2], 1);
  EXPECT_EQ(stats.per_reducer_records[3], 1);
  EXPECT_EQ(stats.MaxReducerRecords(), 2);
}

TEST(EngineTest, ValuesArriveGroupedAndInArrivalOrder) {
  // All values of one key reach a single reduce call, ordered by original
  // input position (Hadoop-like merge of mapper outputs).
  std::vector<int> input;
  for (int i = 0; i < 500; ++i) input.push_back(i);
  using SeqJob = MapReduceJob<int, int, int, int>;
  SeqJob job("grouping", 3);
  job.set_map([](const int& v, SeqJob::Emitter& emit) {
    emit.Emit(v % 7, v);
  });
  job.set_partition([](const int& k) { return k % 3; });
  int reduce_calls = 0;
  job.set_reduce([&reduce_calls](const int& k, std::span<const int> vals,
                                 SeqJob::OutEmitter& out) {
    ++reduce_calls;
    int prev = -1;
    for (int v : vals) {
      EXPECT_EQ(v % 7, k);
      EXPECT_GT(v, prev);  // Arrival order = input order.
      prev = v;
      out.Emit(v);
    }
  });
  std::vector<int> output;
  job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(reduce_calls, 7);
  EXPECT_EQ(output.size(), 500u);
}

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  std::vector<int> input;
  for (int i = 0; i < 2000; ++i) input.push_back(i * 37 % 1000);

  auto run = [&input](ThreadPool* pool) {
    using SeqJob = MapReduceJob<int, int, int, int>;
    SeqJob job("determinism", 8);
    job.set_map([](const int& v, SeqJob::Emitter& emit) {
      emit.Emit(v % 31, v);
    });
    job.set_reduce([](const int&, std::span<const int> vals,
                      SeqJob::OutEmitter& out) {
      for (int v : vals) out.Emit(v);
    });
    std::vector<int> output;
    job.Run(std::span<const int>(input), &output, pool);
    return output;
  };

  const std::vector<int> serial = run(nullptr);
  ThreadPool pool(4);
  const std::vector<int> parallel = run(&pool);
  EXPECT_EQ(serial, parallel);
}

TEST(EngineTest, EmptyInputProducesEmptyOutputAndZeroCounters) {
  IntJob job("empty", 2);
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) { FAIL() << "no reduce expected"; });
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(), &output);
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(stats.map_input_records, 0);
  EXPECT_EQ(stats.intermediate_records, 0);
}

TEST(EngineTest, UserCountersAreCollected) {
  IntJob job("counters", 2);
  job.set_partition([](const int& k) { return k % 2; });
  job.set_map([&job](const int& v, IntJob::Emitter& emit) {
    if (v % 2 == 0) job.IncrementCounter("evens", 1);
    emit.Emit(v, v);
  });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) {});
  const std::vector<int> input = {1, 2, 3, 4, 5, 6};
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(stats.user_counters.at("evens"), 3);
}

TEST(EngineTest, ValueSizeDrivesIntermediateBytes) {
  IntJob job("bytes", 2);
  job.set_partition([](const int& k) { return k % 2; });
  job.set_value_size([](const int&) { return int64_t{100}; });
  job.set_map([](const int& v, IntJob::Emitter& emit) { emit.Emit(v, v); });
  job.set_reduce([](const int&, std::span<const int>,
                    IntJob::OutEmitter&) {});
  const std::vector<int> input = {1, 2, 3};
  std::vector<std::pair<int, int>> output;
  const JobStats stats = job.Run(std::span<const int>(input), &output);
  EXPECT_EQ(stats.intermediate_bytes, 300);
}

TEST(RunStatsTest, AggregationAcrossJobs) {
  RunStats run;
  JobStats a;
  a.intermediate_records = 10;
  a.intermediate_bytes = 100;
  a.wall_seconds = 1.5;
  a.user_counters["marked"] = 4;
  JobStats b;
  b.intermediate_records = 5;
  b.intermediate_bytes = 50;
  b.wall_seconds = 0.5;
  b.user_counters["marked"] = 2;
  run.Add(a);
  run.Add(b);
  EXPECT_EQ(run.TotalIntermediateRecords(), 15);
  EXPECT_EQ(run.TotalIntermediateBytes(), 150);
  EXPECT_DOUBLE_EQ(run.total_wall_seconds, 2.0);
  EXPECT_EQ(run.UserCounter("marked"), 6);
  EXPECT_EQ(run.UserCounter("absent"), 0);
}

}  // namespace
}  // namespace mwsj
