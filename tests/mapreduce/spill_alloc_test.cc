// Pins the flush-retry allocation contract of spill::EncodeRun
// (mapreduce/spill.h): with the caller-threaded column scratch warmed to
// the largest bucket and the output vector holding its capacity, a
// re-encode — exactly what a flaky-I/O retry or a speculative duplicate
// flush performs — touches the heap zero times, and the re-encoded bytes
// are identical to the first attempt's. Whole-binary allocation counting
// via the replaced operator new, as in bench/micro_localjoin.cc;
// gtest_discover_tests runs each TEST in its own process.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "core/records.h"
#include "gtest/gtest.h"
#include "mapreduce/spill.h"

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mwsj {
namespace {

// A sorted bucket of (cell, RelRect) pairs like the ones a budgeted map
// chunk flushes.
std::vector<std::pair<int32_t, RelRect>> MakeBucket(size_t n) {
  std::vector<std::pair<int32_t, RelRect>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RelRect r;
    const double x = static_cast<double>(i % 37);
    const double y = static_cast<double>(i % 11);
    r.rect = Rect(x, y, x + 1.5, y + 2.5);
    r.id = static_cast<int64_t>(i);
    r.relation = static_cast<int32_t>(i % 3);
    pairs.emplace_back(static_cast<int32_t>(i / 16), r);
  }
  return pairs;
}

TEST(SpillEncodeRunAllocTest, RetryReencodeIsAllocationFree) {
  static_assert(spill::kEncodable<int32_t, RelRect>);
  const auto pairs = MakeBucket(1000);

  // First attempt: grows the column scratch to the bucket and gives the
  // output vector its capacity.
  std::vector<uint64_t> scratch;
  std::vector<uint8_t> bytes;
  spill::EncodeRun(pairs.data(), pairs.size(), &scratch, &bytes);
  const std::vector<uint8_t> first = bytes;
  ASSERT_FALSE(first.empty());

  // Retry attempts re-encode the same (and then a smaller) intact bucket.
  // With the scratch threaded through — the engine holds one per chunk
  // across flush attempts — no allocation may occur.
  for (size_t n : {pairs.size(), pairs.size() / 2}) {
    bytes.clear();
    const int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    spill::EncodeRun(pairs.data(), n, &scratch, &bytes);
    const int64_t allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(allocs, 0) << "EncodeRun allocated on a warmed scratch (n="
                         << n << ")";
  }

  // The full-bucket retry must be byte-identical to the first attempt:
  // the spill byte-identity contract across flush attempts.
  bytes.clear();
  spill::EncodeRun(pairs.data(), pairs.size(), &scratch, &bytes);
  EXPECT_EQ(bytes, first);
}

TEST(SpillEncodeRunAllocTest, ScratchOverloadMatchesOneShotOverload) {
  const auto pairs = MakeBucket(300);
  std::vector<uint8_t> one_shot;
  spill::EncodeRun(pairs.data(), pairs.size(), &one_shot);

  std::vector<uint64_t> scratch(1, 0);  // Deliberately undersized.
  std::vector<uint8_t> threaded;
  spill::EncodeRun(pairs.data(), pairs.size(), &scratch, &threaded);
  EXPECT_EQ(threaded, one_shot);

  // An oversized scratch (left over from a larger bucket) must not leak
  // stale columns into the frame.
  std::vector<uint64_t> big(64 * 1024, ~uint64_t{0});
  std::vector<uint8_t> from_big;
  spill::EncodeRun(pairs.data(), pairs.size(), &big, &from_big);
  EXPECT_EQ(from_big, one_shot);
}

}  // namespace
}  // namespace mwsj
