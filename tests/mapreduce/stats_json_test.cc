// JSON stats export tests.

#include <gtest/gtest.h>

#include "mapreduce/stats_json.h"

namespace mwsj {
namespace {

TEST(StatsJsonTest, EmptyRun) {
  RunStats stats;
  EXPECT_EQ(RunStatsToJson(stats),
            "{\"total_wall_seconds\": 0.000000, \"jobs\": []}");
}

TEST(StatsJsonTest, FullJobFieldsAppear) {
  RunStats stats;
  JobStats job;
  job.job_name = "crep_round1_mark";
  job.map_input_records = 100;
  job.map_input_bytes = 4800;
  job.intermediate_records = 130;
  job.intermediate_bytes = 6240;
  job.reduce_output_records = 100;
  job.reduce_output_bytes = 4800;
  job.num_reducers = 4;
  job.per_reducer_records = {10, 50, 30, 40};
  job.per_reducer_seconds = {0.001, 0.004, 0.002, 0.003};
  job.per_chunk_map_seconds = {0.002, 0.005};
  job.map_seconds = 0.01;
  job.shuffle_seconds = 0.002;
  job.reduce_seconds = 0.015;
  job.wall_seconds = 0.05;
  job.user_counters["rectangles_replicated"] = 12;
  stats.Add(job);

  const std::string json = RunStatsToJson(stats);
  EXPECT_NE(json.find("\"name\": \"crep_round1_mark\""), std::string::npos);
  EXPECT_NE(json.find("\"intermediate_records\": 130"), std::string::npos);
  EXPECT_NE(json.find("\"max_reducer_records\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"rectangles_replicated\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"num_reducers\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"map_seconds\": 0.010000"), std::string::npos);
  EXPECT_NE(json.find("\"shuffle_seconds\": 0.002000"), std::string::npos);
  EXPECT_NE(json.find("\"reduce_seconds\": 0.015000"), std::string::npos);
  EXPECT_NE(json.find("\"map_chunks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"map_chunk_seconds_max\": 0.005000"),
            std::string::npos);
}

TEST(StatsJsonTest, SpillObjectAppearsOnlyWhenBudgeted) {
  RunStats stats;
  JobStats job;
  job.job_name = "budgeted";
  job.spill.budget_bytes = 65536;
  job.spill.spilled_chunks = 3;
  job.spill.spilled_runs = 24;
  job.spill.spilled_raw_bytes = 200000;
  job.spill.spilled_stored_bytes = 50000;
  job.spill.peak_shuffle_bytes = 40000;
  job.spill.peak_inbox_bytes = 9000;
  job.spill.merge_runs_max = 4;
  job.spill.flush_retries = 2;
  job.spill.wasted_flush_bytes = 123;
  stats.Add(job);

  const std::string json = RunStatsToJson(stats);
  EXPECT_NE(json.find("\"spill\": {"), std::string::npos);
  EXPECT_NE(json.find("\"budget_bytes\": 65536"), std::string::npos);
  EXPECT_NE(json.find("\"spilled_runs\": 24"), std::string::npos);
  EXPECT_NE(json.find("\"compression_ratio\": 4.0000"), std::string::npos);
  EXPECT_NE(json.find("\"peak_inbox_bytes\": 9000"), std::string::npos);
  EXPECT_NE(json.find("\"merge_runs_max\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"flush_retries\": 2"), std::string::npos);

  // An in-memory job (no budget) must not emit the object at all.
  RunStats plain;
  JobStats unbudgeted;
  unbudgeted.job_name = "inmemory";
  plain.Add(unbudgeted);
  EXPECT_EQ(RunStatsToJson(plain).find("\"spill\""), std::string::npos);
}

TEST(StatsJsonTest, PhasesObjectSummarizesPerPhaseTimings) {
  RunStats stats;
  JobStats job;
  job.job_name = "phased";
  job.num_reducers = 2;
  job.map_seconds = 0.01;
  job.shuffle_seconds = 0.002;
  job.reduce_seconds = 0.015;
  job.per_chunk_map_seconds = {0.002, 0.005, 0.003};
  job.per_reducer_seconds = {0.004, 0.011};
  stats.Add(job);

  const std::string json = RunStatsToJson(stats);
  EXPECT_NE(json.find("\"phases\": {"), std::string::npos) << json;
  EXPECT_NE(json.find("\"map\": {\"seconds\": 0.010000, \"tasks\": 3, "
                      "\"max_task_seconds\": 0.005000}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shuffle\": {\"seconds\": 0.002000}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"reduce\": {\"seconds\": 0.015000, \"tasks\": 2, "
                      "\"max_task_seconds\": 0.011000}"),
            std::string::npos)
      << json;
}

TEST(StatsJsonTest, EscapesSpecialCharacters) {
  RunStats stats;
  JobStats job;
  job.job_name = "weird \"name\"\nwith\\stuff";
  stats.Add(job);
  const std::string json = RunStatsToJson(stats);
  EXPECT_NE(json.find("weird \\\"name\\\"\\nwith\\\\stuff"),
            std::string::npos);
}

TEST(StatsJsonTest, CountersAreSortedDeterministically) {
  RunStats stats;
  JobStats job;
  job.user_counters["zeta"] = 1;
  job.user_counters["alpha"] = 2;
  stats.Add(job);
  const std::string json = RunStatsToJson(stats);
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
}

}  // namespace
}  // namespace mwsj
