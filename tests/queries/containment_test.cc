// Containment query vs. nested-loop reference.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "queries/containment.h"

namespace mwsj {
namespace {

using Pair = std::pair<int64_t, int64_t>;

std::vector<Point> RandomPoints(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Point> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Point{rng.Uniform(0, space), rng.Uniform(0, space)});
  }
  return out;
}

std::vector<Rect> RandomRects(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 20);
    const double b = rng.Uniform(0, 20);
    out.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return out;
}

std::vector<Pair> Reference(const std::vector<Point>& points,
                            const std::vector<Rect>& rects) {
  std::vector<Pair> out;
  for (size_t p = 0; p < points.size(); ++p) {
    for (size_t r = 0; r < rects.size(); ++r) {
      if (rects[r].Contains(points[p])) {
        out.emplace_back(static_cast<int64_t>(p), static_cast<int64_t>(r));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class ContainmentTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentTest, MatchesReference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const auto points = RandomPoints(300, seed * 3 + 1);
  const auto rects = RandomRects(200, seed * 3 + 2);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto result = ContainmentJoin(grid, points, rects);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().pairs, Reference(points, rects));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentTest, ::testing::Range(0, 6));

TEST(ContainmentEdgeTest, PointOnRectangleBoundaryCounts) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 10, 10), 2, 2).value();
  const std::vector<Point> points = {{3, 7}};
  const std::vector<Rect> rects = {Rect::FromXYLB(3, 7, 2, 2)};  // Corner.
  const auto result = ContainmentJoin(grid, points, rects);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().pairs, (std::vector<Pair>{{0, 0}}));
}

TEST(ContainmentEdgeTest, PointOnGridLineFindsRectAcrossTheLine) {
  // Point exactly on the vertical grid line x=5; its owner is the left
  // cell, and the containing rectangle starts right of the line but is
  // split to both cells.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 10, 10), 2, 2).value();
  const std::vector<Point> points = {{5, 7}};
  const std::vector<Rect> rects = {Rect::FromXYLB(4.5, 8, 2, 2)};
  const auto result = ContainmentJoin(grid, points, rects);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().pairs, (std::vector<Pair>{{0, 0}}));
}

TEST(ContainmentEdgeTest, EmptyInputs) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 10, 10), 2, 2).value();
  EXPECT_TRUE(ContainmentJoin(grid, {}, {}).value().pairs.empty());
  const auto points = RandomPoints(10, 1, 10);
  EXPECT_TRUE(ContainmentJoin(grid, points, {}).value().pairs.empty());
}

}  // namespace
}  // namespace mwsj
