// Pins the MWSJ_ALLOC_FREE contract of knn_internal::MergeTopK
// (queries/knn_mr.h): after its thread-local scratch reaches the worker's
// high-water candidate count, merging a point allocates nothing. The
// whole-binary operator new replacement below counts every heap
// allocation, the same idiom bench/micro_localjoin.cc uses for
// allocs_per_probe; gtest_discover_tests runs each TEST in its own
// process, so the counter only ever measures this file's probes.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "queries/knn_mr.h"

namespace {
std::atomic<int64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mwsj {
namespace {

// One point's candidate list: `n` pairs with deterministic distances, every
// third pair duplicated as an overlapping-cell copy would produce it
// (identical rect id *and* distance).
std::vector<KnnCandidate> MakeCandidates(int64_t point_id, int n) {
  std::vector<KnnCandidate> out;
  out.reserve(static_cast<size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    const KnnCandidate c{point_id, int64_t{100} + i,
                         1.0 + 0.25 * static_cast<double>(i % 7)};
    out.push_back(c);
    if (i % 3 == 0) out.push_back(c);
  }
  return out;
}

TEST(KnnMrMergeTopKAllocTest, SteadyStateIsAllocationFree) {
  const int k = 8;
  std::vector<KnnCandidate> warm = MakeCandidates(0, 256);
  std::vector<std::pair<int64_t, int64_t>> rows;
  rows.reserve(static_cast<size_t>(k));
  auto emit = [&rows](int64_t rank, int64_t rect_id) {
    rows.emplace_back(rank, rect_id);
  };

  // Warm the thread-local scratch to its high-water size.
  knn_internal::MergeTopK(std::span<const KnnCandidate>(warm), k, emit);

  // Every later point with a candidate list no larger than the high-water
  // mark must merge without touching the heap — this is what the
  // MWSJ_ALLOC_FREE annotation promises and what a per-call sort buffer
  // (the pre-hoist lambda) would break.
  for (int n : {256, 255, 64, 1}) {
    std::vector<KnnCandidate> values = MakeCandidates(1000 + n, n);
    rows.clear();
    const int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    knn_internal::MergeTopK(std::span<const KnnCandidate>(values), k, emit);
    const int64_t allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(allocs, 0) << "MergeTopK allocated on a warmed scratch (n="
                         << n << ")";
  }
}

TEST(KnnMrMergeTopKAllocTest, MergesDropDuplicatesAndRankByDistance) {
  const std::vector<KnnCandidate> values = {
      {7, 30, 3.0}, {7, 10, 1.0}, {7, 20, 2.0}, {7, 10, 1.0},  // dup pair
      {7, 11, 1.0},  // exact distance tie: rect id breaks it
  };
  std::vector<std::pair<int64_t, int64_t>> rows;
  knn_internal::MergeTopK(std::span<const KnnCandidate>(values), 3,
                          [&rows](int64_t rank, int64_t rect_id) {
                            rows.emplace_back(rank, rect_id);
                          });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::pair<int64_t, int64_t>{0, 10}));
  EXPECT_EQ(rows[1], (std::pair<int64_t, int64_t>{1, 11}));
  EXPECT_EQ(rows[2], (std::pair<int64_t, int64_t>{2, 20}));
}

TEST(KnnMrMergeTopKAllocTest, TruncatesAtKAfterDeduplication) {
  std::vector<KnnCandidate> values = MakeCandidates(3, 32);
  int emitted = 0;
  int64_t last_rank = -1;
  knn_internal::MergeTopK(std::span<const KnnCandidate>(values), 5,
                          [&](int64_t rank, int64_t rect_id) {
                            EXPECT_EQ(rank, last_rank + 1);
                            EXPECT_GE(rect_id, 100);
                            last_rank = rank;
                            ++emitted;
                          });
  EXPECT_EQ(emitted, 5);
}

}  // namespace
}  // namespace mwsj
